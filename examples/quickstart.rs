//! Quickstart: map an SoC application onto the SMART NoC and watch
//! single-cycle multi-hop traversal happen.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use smart_noc::arch::config::NocConfig;
use smart_noc::arch::noc::{Design, DesignKind};
use smart_noc::mapping::MappedApp;
use smart_noc::sim::BernoulliTraffic;
use smart_noc::taskgraph::apps;

fn main() {
    // 1. The paper's design point: 4x4 mesh, 2 GHz, 32-bit flits,
    //    2 VCs x 10 flits, single-cycle reach of 8 hops (Table I/II).
    let cfg = NocConfig::paper_4x4();
    println!(
        "SMART NoC: {}x{} mesh at {} GHz, HPC_max = {} hops/cycle",
        cfg.mesh.width(),
        cfg.mesh.height(),
        cfg.clock_ghz,
        cfg.hpc_max
    );

    // 2. Take the VOPD task graph, place it with the modified NMAP and
    //    route its flows contention-aware.
    let graph = apps::vopd();
    let mapped = MappedApp::from_graph(&cfg, &graph);
    println!(
        "\n{}: {} tasks, {} flows, {:.2} hops/flow after NMAP",
        mapped.name,
        graph.num_tasks(),
        mapped.routes.len(),
        mapped.avg_hops()
    );
    for (task, core) in mapped.placement.iter() {
        print!("{}@{} ", graph.task_name(*task), core);
    }
    println!();

    // 3. Build all three designs and run the same Bernoulli traffic.
    for kind in DesignKind::ALL {
        let mut design = Design::build(kind, &cfg, &mapped.routes);
        let flows = smart_noc::sim::FlowTable::mesh_baseline(cfg.mesh, &mapped.routes);
        let mut traffic = BernoulliTraffic::new(
            &mapped.rates,
            &flows,
            cfg.mesh,
            cfg.flits_per_packet(),
            2024,
        );
        design.run_with(&mut traffic, 30_000);
        design.drain(5_000);
        let stats = design.stats();
        println!(
            "{:<10} avg network latency {:>6.2} cycles over {:>5} packets",
            kind.label(),
            stats.avg_network_latency(),
            stats.packets()
        );
    }

    // 4. Peek at the presets SMART computed: how much of the mesh flies?
    let smart = smart_noc::arch::noc::SmartNoc::new(&cfg, &mapped.routes);
    let compiled = smart.compiled();
    println!(
        "\nSMART presets: {:.0}% of router visits bypassed, {:.2} stops/flow",
        compiled.bypass_fraction(cfg.mesh) * 100.0,
        compiled.avg_stops()
    );
}
