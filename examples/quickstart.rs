//! Quickstart: one `Experiment` per design — map an SoC application
//! onto the SMART NoC and watch single-cycle multi-hop traversal happen.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use smart_noc::prelude::*;

fn main() {
    // 1. The paper's design point: 4x4 mesh, 2 GHz, 32-bit flits,
    //    2 VCs x 10 flits, single-cycle reach of 8 hops (Table I/II).
    let cfg = NocConfig::paper_4x4();
    println!(
        "SMART NoC: {}x{} mesh at {} GHz, HPC_max = {} hops/cycle",
        cfg.topology.width(),
        cfg.topology.height(),
        cfg.clock_ghz,
        cfg.hpc_max
    );

    // 2. Take the VOPD task graph, place it with the modified NMAP and
    //    route its flows contention-aware.
    let graph = apps::vopd();
    let mapped = MappedApp::from_graph(&cfg, &graph);
    println!(
        "\n{}: {} tasks, {} flows, {:.2} hops/flow after NMAP",
        mapped.name,
        graph.num_tasks(),
        mapped.routes.len(),
        mapped.avg_hops()
    );
    for (task, core) in mapped.placement.iter() {
        print!("{}@{} ", graph.task_name(*task), core);
    }
    println!();

    // 3. One experiment matrix: all three designs, same mapped
    //    workload, same Bernoulli traffic — cells run in parallel.
    let plan = RunPlan {
        warmup: 0,
        measure: 30_000,
        drain: 5_000,
        seed: 2024,
    };
    let reports = ExperimentMatrix::new(cfg)
        .designs(&DesignKind::ALL)
        .workloads(vec![Workload::from(&mapped)])
        .plan(plan)
        .run();
    for report in &reports {
        println!(
            "{:<10} avg network latency {:>6.2} cycles over {:>5} packets",
            report.design.label(),
            report.avg_network_latency,
            report.measured_packets
        );
    }

    // 4. Peek at the presets SMART computed: how much of the mesh flies?
    let smart = reports
        .iter()
        .find(|r| r.design == DesignKind::Smart)
        .expect("SMART ran");
    let compiled = smart.compile.as_ref().expect("SMART compile metrics");
    println!(
        "\nSMART presets: {:.0}% of router visits bypassed, {:.2} stops/flow",
        compiled.bypass_fraction * 100.0,
        compiled.avg_stops
    );
}
