//! Watch a packet traverse the SMART pipeline cycle by cycle, and dump
//! the activity as a VCD waveform — the reproduction's analogue of the
//! paper's VCD-based power flow.
//!
//! ```text
//! cargo run --example pipeline_trace
//! ```

use smart_noc::arch::config::NocConfig;
use smart_noc::arch::noc::SmartNoc;
use smart_noc::arch::scenarios::fig7_flows;
use smart_noc::sim::{FlowId, PacketId, ScriptedTraffic, SourceRoute};
use std::fs;

fn main() -> std::io::Result<()> {
    let cfg = NocConfig::paper_4x4();
    let flows = fig7_flows(cfg.topology);
    let routes: Vec<(FlowId, SourceRoute)> =
        flows.iter().map(|(f, r, _)| (*f, r.clone())).collect();
    let mut noc = SmartNoc::new(&cfg, &routes);
    noc.network_mut()
        .enable_tracing(10_000)
        .expect("serial engine traces");

    // One blue packet (the stop-twice flow of Fig 7).
    let blue = flows[3].0;
    let mut traffic = ScriptedTraffic::new(
        vec![(0, blue)],
        cfg.flits_per_packet(),
        noc.network().flows(),
        cfg.topology,
    );
    noc.network_mut().run_with(&mut traffic, 60);

    let tracer = noc.network().tracer().expect("tracing enabled");
    println!("journey of the blue packet (8 -> 9 -> 10 -> 11 -> 7 -> NIC3):\n");
    print!("{}", tracer.journey(PacketId(0)));
    println!(
        "\n({} events recorded, {} dropped)",
        tracer.records().len(),
        tracer.dropped()
    );

    let vcd = tracer.to_vcd(cfg.topology, "smart_mesh_4x4");
    let path = "target/generated/activity.vcd";
    fs::create_dir_all("target/generated")?;
    fs::write(path, &vcd)?;
    println!(
        "\nwrote {} ({} lines) — openable in any VCD viewer",
        path,
        vcd.lines().count()
    );
    Ok(())
}
