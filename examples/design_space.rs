//! Design-space exploration: how far does single-cycle reach carry as
//! the SoC grows and the clock scales? The paper's conclusion hopes
//! SMART "will pave the way towards locality-oblivious SoC design" —
//! this example quantifies that: latency as a function of mesh size and
//! clock frequency, with HPC_max tracking the link model at each clock.
//! Placement is fixed-random (the heterogeneous-SoC scenario): when
//! tasks are tied to arbitrary cores, route lengths grow with the mesh
//! and the single-cycle reach becomes the difference between a local
//! and a distance-oblivious SoC.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use smart_noc::link::units::Gbps;
use smart_noc::mapping::place_random;
use smart_noc::prelude::*;

fn main() {
    let graph = apps::vopd();
    println!("VOPD across the design space (SMART vs Mesh, fixed random placement)\n");
    println!(
        "{:>6} {:>7} {:>9} {:>10} {:>10} {:>11}",
        "mesh", "clock", "HPC_max", "Mesh lat", "SMART lat", "reduction"
    );
    for k in [4u16, 6, 8] {
        for clock in [1.0f64, 2.0, 3.0] {
            let mut cfg = NocConfig::scaled(k);
            cfg.clock_ghz = clock;
            // HPC_max follows the calibrated low-swing link at this clock.
            let link = smart_noc::link::CalibratedLinkModel::new(
                smart_noc::link::LinkStyle::LowSwing,
                smart_noc::link::CircuitVariant::Resized2GHz,
                smart_noc::link::WireSpacing::Double,
            );
            cfg.hpc_max = link.max_hops_per_cycle(Gbps(clock)) as usize;

            let placement = place_random(cfg.topology, &graph, 2013);
            let mapped = MappedApp::with_placement(&cfg, &graph, placement);
            let reports = ExperimentMatrix::new(cfg.clone())
                .designs(&[DesignKind::Mesh, DesignKind::Smart])
                .workloads(vec![Workload::from(&mapped)])
                .plan(RunPlan {
                    warmup: 1_000,
                    measure: 11_000,
                    drain: 4_000,
                    seed: 5,
                })
                .run();
            let lat: Vec<f64> = reports.iter().map(|r| r.avg_network_latency).collect();
            println!(
                "{:>4}x{:<2} {:>5}GHz {:>9} {:>10.2} {:>10.2} {:>10.1}%",
                k,
                k,
                clock,
                cfg.hpc_max,
                lat[0],
                lat[1],
                (1.0 - lat[1] / lat[0]) * 100.0
            );
        }
    }
    println!(
        "\nReading: at 1 GHz the link reaches 16 hops per cycle and SMART is\n\
         nearly distance-oblivious; at 3 GHz the reach shrinks to 6 hops and\n\
         long paths start paying segment stops again — the latency/frequency\n\
         trade the paper's Table I quantifies."
    );
}
