//! Fig 1: runtime reconfiguration — one physical mesh, three virtual
//! topologies.
//!
//! The same 4x4 SMART NoC is retargeted to WLAN, then H264, then VOPD:
//! drain the network, execute one memory-mapped store per router
//! (16 instructions), run. Each application sees a mesh whose bold
//! single-cycle paths match *its* traffic.
//!
//! ```text
//! cargo run --example reconfigure
//! ```

use smart_noc::arch::config::NocConfig;
use smart_noc::arch::reconfig::ReconfigurableNoc;
use smart_noc::mapping::MappedApp;
use smart_noc::sim::BernoulliTraffic;
use smart_noc::taskgraph::apps;

fn main() {
    let cfg = NocConfig::paper_4x4();
    let mut noc = ReconfigurableNoc::new(cfg.clone(), 0x4000_0000);

    for graph in [apps::wlan(), apps::h264(), apps::vopd()] {
        let mapped = MappedApp::from_graph(&cfg, &graph);
        let report = noc
            .load_app(&mapped.name, &mapped.routes, 50_000)
            .expect("traffic drains within the budget");
        println!(
            "== {} == ({} stores at {:#x}.., drained previous app in {} cycles)",
            report.app_name, report.cost_instructions, report.stores[0].addr, report.drain_cycles
        );

        let live = noc.noc_mut().expect("app loaded");
        println!(
            "   bypass fraction {:.0}%, enabled ports {}/160",
            live.compiled().bypass_fraction(cfg.topology) * 100.0,
            live.presets().enabled_ports()
        );
        // A couple of interesting registers, as the memory map sees them.
        for store in report.stores.iter().take(3) {
            println!("   store [{:#010x}] = {:#018x}", store.addr, store.value);
        }

        let mut traffic = BernoulliTraffic::new(
            &mapped.rates,
            live.network().flows(),
            cfg.topology,
            cfg.flits_per_packet(),
            99,
        );
        live.network_mut().run_with(&mut traffic, 20_000);
        let stats = live.network().stats();
        println!(
            "   ran 20k cycles: {} packets, avg latency {:.2} cycles\n",
            stats.packets(),
            stats.avg_network_latency()
        );
    }
    println!(
        "Reconfigured {} times; each switch cost {} store instructions.",
        noc.reconfig_count(),
        cfg.topology.len()
    );
}
