//! Fig 7 walk-through: "SMART NoC in action with four flows".
//!
//! Green and purple never conflict and fly source-NIC to
//! destination-NIC in a single cycle. Red and blue share the link
//! between routers 9 and 10, so they stop (buffer + arbitrate) at both
//! routers around it and arrive at cycle 7 — exactly the numbers
//! printed next to the arrows in the paper's figure.
//!
//! ```text
//! cargo run --example four_flows
//! ```

use smart_noc::arch::scenarios::fig7_flows;
use smart_noc::prelude::*;

fn main() {
    let cfg = NocConfig::paper_4x4();
    let flows = fig7_flows(cfg.topology);
    let names = ["green", "purple", "red", "blue"];

    // Inject one packet per flow, staggered so each sees an idle
    // network — Fig 7's labels are per-flow traversal times.
    let events: Vec<(u64, FlowId)> = flows
        .iter()
        .enumerate()
        .map(|(i, (f, _, _))| (40 * i as u64, *f))
        .collect();
    let report = Experiment::new(cfg.clone())
        .design(DesignKind::Smart)
        .workload(Workload::fig7())
        .scripted(events)
        .plan(RunPlan::measure_all(300, 0, 0))
        .run();
    assert!(report.drained, "all packets delivered");
    let compiled = report.compile.as_ref().expect("SMART compile metrics");

    println!("Fig 7: four flows on the 4x4 SMART mesh\n");
    for ((flow, route, expected), name) in flows.iter().zip(names.iter()) {
        let stops = &compiled
            .stops
            .iter()
            .find(|(f, _)| f == flow)
            .expect("every flow compiled")
            .1;
        println!(
            "{name:<7} {:?}  stops {:?}  predicted latency {expected}",
            route.routers(cfg.topology),
            stops
        );
    }

    println!("\nmeasured head-flit latencies (idle network):");
    let mut all_match = true;
    for ((flow, _, expected), name) in flows.iter().zip(names.iter()) {
        let got = report.flow_latency(*flow).expect("flow delivered");
        let ok = (got - *expected as f64).abs() < 1e-9;
        all_match &= ok;
        println!(
            "  {name:<7} {got:>4.0} cycles (paper: {expected}) {}",
            if ok { "✓" } else { "✗" }
        );
    }
    assert!(all_match, "Fig 7 latencies must match the paper exactly");
    println!("\nAll four flows match the traversal times printed in Fig 7.");

    // Footnote 7: "If flits from the red and blue flow arrive at router 9
    // at exactly the same time, they will be sent out serially from the
    // crossbar's East output port." Inject them together and watch the
    // loser wait out the winner's 8-flit packet.
    let together = Experiment::new(cfg)
        .design(DesignKind::Smart)
        .workload(Workload::fig7())
        .scripted(vec![(0, flows[2].0), (0, flows[3].0)])
        .plan(RunPlan::measure_all(300, 0, 0))
        .run();
    let red = together.flow_latency(flows[2].0).expect("red delivered");
    let blue = together.flow_latency(flows[3].0).expect("blue delivered");
    println!(
        "\nfootnote 7 (simultaneous arrival): red {red:.0} / blue {blue:.0} cycles \
         — the loser waits out the winner's packet at router 9."
    );
    assert!((red - blue).abs() >= 7.0, "serialization must be visible");
}
