//! The Section V tool flow, end to end: network configuration in —
//! RTL + macro blocks + .lib/.lef views + floorplan out, written to
//! `target/generated/`.
//!
//! ```text
//! cargo run --example tool_flow
//! ```

use smart_noc::arch::config::NocConfig;
use smart_noc::link::units::Gbps;
use smart_noc::link::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};
use smart_noc::rtlgen::{generate_all, lef, liberty, sdc, Floorplan, GenParams, MacroBlock};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let cfg = NocConfig::paper_4x4();
    let params = GenParams::from_config(&cfg);
    let out_dir = Path::new("target/generated");
    fs::create_dir_all(out_dir)?;

    // RTL.
    let modules = generate_all(&params);
    let mut total_lines = 0;
    for m in &modules {
        let path = out_dir.join(format!("{}.v", m.name));
        fs::write(&path, &m.source)?;
        total_lines += m.source.lines().count();
    }
    println!(
        "wrote {} Verilog modules ({} lines) to {}",
        modules.len(),
        total_lines,
        out_dir.display()
    );

    // Transceiver macro blocks + views.
    let link = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::Double,
    );
    let tx = MacroBlock::fig8_tx32();
    fs::write(
        out_dir.join("vlr_tx32.lib"),
        liberty(&tx, &link, Gbps(cfg.clock_ghz)),
    )?;
    fs::write(out_dir.join("vlr_tx32.lef"), lef(&tx))?;
    println!(
        "wrote vlr_tx32.lib / vlr_tx32.lef ({} bits, {:.0} um2)",
        tx.bits,
        tx.area_um2()
    );

    // Timing constraints: the single-cycle bypass budget as SDC.
    fs::write(
        out_dir.join("smart_router.sdc"),
        sdc(&params, &link, cfg.clock_ghz),
    )?;
    println!(
        "wrote smart_router.sdc (bypass budget for HPC_max = {})",
        cfg.hpc_max
    );

    // Floorplan.
    let plan = Floorplan::generate(&params);
    fs::write(out_dir.join("floorplan.txt"), plan.report())?;
    println!("wrote floorplan.txt:\n");
    println!("{}", plan.report());
    Ok(())
}
