//! Run the cross-design conformance battery and print the matrix.
//!
//! ```sh
//! cargo run --release --example conformance_matrix
//! ```
//!
//! Every cell that prints has already passed the delivery,
//! link-exclusivity and zero-load-latency invariants — a panic names
//! the failing (design, scenario) pair instead.

use smart_testkit::{Conformance, DesignUnderTest, Scenario};

fn main() {
    let conf = Conformance::default();
    // `Scenario` is the experiment API's `RoutedWorkload`; the battery
    // is `Workload::presets()` routed onto the conformance design point.
    let scenarios = Scenario::presets(&conf.cfg);
    println!(
        "{:<14} {:<14} {:>8} {:>10} {:>8} {:>7}",
        "scenario", "design", "packets", "latency", "0-load✓", "shared"
    );
    for report in conf.run_matrix(&DesignUnderTest::ALL, &scenarios) {
        println!(
            "{:<14} {:<14} {:>8} {:>10.2} {:>8} {:>7}",
            report.scenario,
            report.design,
            report.packets_delivered,
            report.avg_network_latency,
            report.zero_load_flows_checked,
            report.shared_links
        );
    }
}
