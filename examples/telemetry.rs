//! Windowed telemetry from one experiment: enable metrics collection,
//! run a moderately loaded SMART mesh, and render the dynamic-behavior
//! views the end-of-run aggregates cannot show — the achieved-bypass
//! histogram and the link-utilization heatmap over time — then
//! round-trip the series through its `metrics-v1` JSONL schema.
//!
//! ```text
//! cargo run --example telemetry
//! ```

use smart_noc::arch::viz;
use smart_noc::prelude::*;

fn main() {
    let cfg = NocConfig::paper_4x4();

    // Same cell twice: plain, and with a metrics window every 2k cycles.
    // Telemetry never perturbs the simulation — both runs deliver the
    // exact same packets.
    let base = Experiment::new(cfg.clone())
        .design(DesignKind::Smart)
        .workload(Workload::uniform(24, 0.02, 7))
        .plan(RunPlan::quick());
    let plain = base.run();
    let probed = base.with_telemetry(TelemetryConfig::windowed(2_000)).run();
    assert_eq!(plain.snapshot_line(), probed.snapshot_line());

    let series = probed.telemetry.as_ref().expect("telemetry enabled");
    println!("{}", viz::bypass_histogram(series, cfg.hpc_max));
    println!("{}", viz::link_heatmap_over_time(series, cfg.topology));

    // The series serializes as versioned JSONL (`smart-telemetry/
    // metrics-v1`) and parses back losslessly.
    let jsonl = series.to_jsonl();
    let parsed = TelemetrySeries::parse(&jsonl).expect("round-trip");
    assert_eq!(&parsed, series);
    println!(
        "metrics-v1: {} windows, {} bytes, round-trips losslessly",
        series.windows.len(),
        jsonl.len()
    );
}
