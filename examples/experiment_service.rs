//! The experiment service end to end, in one process: spawn the JSONL
//! server on an ephemeral port, submit a small designs × workloads
//! matrix twice (cold, then served from the compiled-design cache),
//! stream a design-space search, and shut the daemon down.
//!
//! ```text
//! cargo run --release --example experiment_service
//! ```
//!
//! The same wire protocol works across machines — point
//! `smart_server::Client` (or `nc`) at a standalone
//! `cargo run -p smart-server --bin smart_server` daemon.

use smart_server::{
    Client, PlanSpec, Request, ResponseEvent, SearchStrategy, Server, ServiceConfig, TopologySpec,
    WorkloadSpec,
};

fn main() {
    let server =
        Server::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.spawn().expect("spawn the accept loop");
    println!("experiment service listening on {addr}\n");
    let mut client = Client::connect(addr).expect("connect");

    // A 3-design x 2-workload matrix; cells stream back as they finish.
    let matrix = |id: &str| Request::Matrix {
        id: id.to_owned(),
        mesh: 4,
        topology: TopologySpec::Mesh,
        shards: 1,
        designs: smart_core::noc::DesignKind::ALL.to_vec(),
        workloads: vec![WorkloadSpec::Fig7, WorkloadSpec::App("VOPD".to_owned())],
        plan: PlanSpec {
            warmup: 0,
            measure: 2_000,
            drain: 2_000,
            seed: 0xC0FFEE,
        },
    };
    println!("matrix, cold (every cell compiled):");
    for event in client.submit(&matrix("cold")).expect("matrix streams") {
        println!("  {}", event.to_line());
    }
    println!("\nmatrix again (every cell from the compiled-design cache):");
    for event in client.submit(&matrix("warm")).expect("matrix streams") {
        println!("  {}", event.to_line());
    }

    // A small exhaustive search over mapping x design x segmentation.
    println!("\nsearch, 2 designs x fig7 x HPC_max in {{1, 8}}:");
    let search = Request::Search {
        id: "sweep".to_owned(),
        mesh: 4,
        topology: TopologySpec::Mesh,
        strategy: SearchStrategy::Exhaustive,
        designs: vec![
            smart_core::noc::DesignKind::Mesh,
            smart_core::noc::DesignKind::Smart,
        ],
        workloads: vec![WorkloadSpec::Fig7],
        hpc: vec![1, 8],
        plan: PlanSpec {
            warmup: 0,
            measure: 2_000,
            drain: 2_000,
            seed: 0xC0FFEE,
        },
    };
    let events = client.submit(&search).expect("search streams");
    for event in &events {
        println!("  {}", event.to_line());
    }
    let winner = events
        .iter()
        .find_map(|e| match e {
            ResponseEvent::Winner { index, score, .. } => Some((*index, *score)),
            _ => None,
        })
        .expect("a non-empty space crowns a winner");
    println!(
        "\nwinner: candidate {} (Smapper score {:.4})",
        winner.0, winner.1
    );

    handle.shutdown().expect("shutdown handshake");
    println!("server shut down cleanly");
}
