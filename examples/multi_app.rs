//! Multi-application schedules: WLAN → H.264 → VOPD on one live
//! reconfigurable SMART NoC (Fig 1), through the `MultiAppExperiment`
//! API — per-transition drain + store costs, per-phase latency, and
//! the Section V amortized instruction overhead.
//!
//! ```text
//! cargo run --example multi_app
//! ```

use smart_noc::prelude::*;

fn main() {
    let schedule = AppSchedule::new()
        .then(Workload::app("WLAN"), RunPlan::quick())
        .then(Workload::app("H264"), RunPlan::quick())
        .then(Workload::app("VOPD"), RunPlan::quick())
        .drain_budget(50_000);

    let report = MultiAppExperiment::new(NocConfig::paper_4x4(), schedule)
        .run()
        .expect("every transition drains within the budget");
    println!("{report}");
    println!();

    // The same schedule across all four designs: only SMART pays the
    // reconfiguration cost, and only the live design ever drains.
    let schedule = AppSchedule::new()
        .then(Workload::app("WLAN"), RunPlan::quick())
        .then(Workload::app("H264"), RunPlan::quick())
        .then(Workload::app("VOPD"), RunPlan::quick());
    println!("The same schedule across the design space:");
    for result in ScheduleMatrix::new(NocConfig::paper_4x4(), schedule)
        .run()
        .expect("every design completes")
    {
        println!(
            "  {:<14} {:>8.2} cyc avg, {:>3} store instructions, {:>6} drain cycles",
            result.design.label(),
            result.avg_network_latency(),
            result.total_store_instructions(),
            result.total_drain_cycles()
        );
    }
}
