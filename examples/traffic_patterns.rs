//! Traffic-pattern showcase: the classic synthetic pattern battery
//! fanned across every design, a bursty phase inside a multi-app
//! schedule, and a trace record/replay round trip.
//!
//! ```text
//! cargo run --release --example traffic_patterns
//! ```

use smart_noc::prelude::*;

fn main() {
    let cfg = NocConfig::paper_4x4();

    // 1. Pattern × design mini-matrix: seven patterns, three designs,
    // one ExperimentMatrix — cells run on scoped threads and come back
    // in deterministic order.
    let patterns = SpatialPattern::battery(cfg.topology);
    let workloads: Vec<Workload> = patterns
        .iter()
        .map(|p| Workload::patterned(p.clone(), 0.02))
        .collect();
    let reports = ExperimentMatrix::new(cfg.clone())
        .designs(&DesignKind::ALL)
        .workloads(workloads)
        .plan(RunPlan::quick())
        .run();

    println!("pattern x design matrix (avg head latency, cycles)");
    println!(
        "{:>18} {:>8} {:>8} {:>10}",
        "pattern", "Mesh", "SMART", "Dedicated"
    );
    for row in reports.chunks(DesignKind::ALL.len()) {
        print!("{:>18}", row[0].workload.split('@').next().unwrap_or("?"));
        for r in row {
            print!(" {:>8.2}", r.avg_network_latency);
        }
        println!();
    }

    // 2. A bursty phase in a multi-app schedule: H264 steady, then the
    // transpose pattern under on/off Markov bursts, on the live
    // reconfigurable design.
    let schedule = AppSchedule::new()
        .then(Workload::app("H264"), RunPlan::quick())
        .then_driven(
            Workload::patterned(SpatialPattern::Transpose, 0.02),
            RunPlan::quick(),
            Drive::Temporal(TemporalModel::on_off(0.01, 0.01)),
        );
    let report = MultiAppExperiment::new(cfg.clone(), schedule)
        .run()
        .expect("schedule drains");
    println!("\nbursty schedule on the live reconfigurable design:");
    println!("{report}");

    // 3. Record a bursty run, then replay the frozen trace — the
    // replayed experiment reproduces the original bit-exactly.
    let exp = Experiment::new(cfg)
        .workload(Workload::patterned_with(
            SpatialPattern::Tornado,
            TemporalModel::on_off(0.02, 0.02),
            0.03,
        ))
        .plan(RunPlan::quick());
    let (live, trace) = exp.run_recorded();
    let replayed = exp.drive(Drive::Trace(trace.clone())).run();
    println!("\ntrace record/replay ({} events):", trace.events.len());
    println!("  live:   {}", live.snapshot_line());
    println!("  replay: {}", replayed.snapshot_line());
    assert_eq!(live.snapshot_line(), replayed.snapshot_line());
    println!("  bit-exact ✓");
}
