//! Explore the SMART link design space: sweep data rate and compare the
//! clockless low-swing VLR against full-swing repeaters — hops per
//! cycle, energy, BER, and the switch-level transient model.
//!
//! ```text
//! cargo run --example link_explorer
//! ```

use smart_noc::link::device::{FullSwingParams, Repeater, VlrParams};
use smart_noc::link::transient::{max_hops_per_cycle, simulate, ChainSpec, TransientConfig};
use smart_noc::link::units::{Gbps, Picoseconds};
use smart_noc::link::wire::{Spacing, WireRc};
use smart_noc::link::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};

fn main() {
    println!("== Calibrated model sweep (resized-for-2GHz circuit, 2x spacing) ==");
    println!(
        "{:>6} | {:>14} {:>12} {:>9} | {:>14} {:>12} {:>9}",
        "Gb/s", "LS hops/cyc", "LS fJ/b/mm", "LS BER", "FS hops/cyc", "FS fJ/b/mm", "FS BER"
    );
    let ls = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::Double,
    );
    let fs = CalibratedLinkModel::new(
        LinkStyle::FullSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::Double,
    );
    for r in [1.0, 1.5, 2.0, 2.5, 3.0] {
        let rate = Gbps(r);
        println!(
            "{r:>6} | {:>14} {:>12.0} {:>9.1e} | {:>14} {:>12.0} {:>9.1e}",
            ls.max_hops_per_cycle(rate),
            ls.energy_fj_per_bit_mm(rate),
            ls.ber(rate),
            fs.max_hops_per_cycle(rate),
            fs.energy_fj_per_bit_mm(rate),
            fs.ber(rate),
        );
    }

    println!("\n== Switch-level transient cross-check (min-pitch wires) ==");
    let wire = WireRc::for_45nm(Spacing::MinPitch);
    for (name, rep) in [
        (
            "low-swing ",
            Repeater::VoltageLocked(VlrParams::default_45nm()),
        ),
        (
            "full-swing",
            Repeater::FullSwing(FullSwingParams::default_45nm()),
        ),
    ] {
        let spec = ChainSpec {
            repeater: rep,
            wire,
            hops: 6,
            sections_per_mm: 5,
        };
        let out = simulate(&spec, &TransientConfig::at_rate(Gbps(1.0)));
        let hops2g = max_hops_per_cycle(
            rep,
            WireRc::for_45nm(Spacing::Double),
            Gbps(2.0),
            Picoseconds(20.0),
        );
        println!(
            "{name}: {:.0} ps/mm, {:.0} fJ/b/mm at 1 Gb/s; {} hops/cycle at 2 GHz (2x spacing)",
            out.delay_ps_per_mm, out.energy_fj_per_bit_mm, hops2g
        );
    }

    println!("\n== Single-cycle reach vs clock frequency (low-swing) ==");
    for clk in [1.0, 2.0, 3.0] {
        println!(
            "  {clk} GHz -> {} mm in one cycle",
            ls.single_cycle_range(clk).0
        );
    }
    println!("\nThe paper's SMART design point: 2 GHz, 8 mm per cycle, 104 fJ/b/mm.");
}
