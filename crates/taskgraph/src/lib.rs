//! SoC application task graphs for the SMART NoC evaluation
//! (DATE 2013, Section VI).
//!
//! [`graph::TaskGraph`] is the application model — tasks plus directed
//! bandwidth-annotated flows — and [`apps`] embeds the paper's
//! eight-application suite (H264, MMS_DEC, MMS_ENC, MMS_MP3, MWD, VOPD,
//! WLAN, PIP) with provenance notes on each.
//!
//! ```
//! use smart_taskgraph::apps;
//!
//! let vopd = apps::vopd();
//! assert_eq!(vopd.num_tasks(), 12);
//! // The VOP reconstruction → padding flow is the hottest at 500 MB/s.
//! let max = vopd
//!     .flows()
//!     .iter()
//!     .map(|f| f.bandwidth_mbs)
//!     .fold(0.0f64, f64::max);
//! assert_eq!(max, 500.0);
//! ```

pub mod apps;
pub mod graph;

pub use graph::{Flow, TaskGraph, TaskId};
