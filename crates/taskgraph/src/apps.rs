//! The eight SoC applications of the paper's evaluation (Section VI):
//! H264, MMS_DEC, MMS_ENC, MMS_MP3, MWD, VOPD, WLAN and PIP.
//!
//! Provenance:
//!
//! * **VOPD** (Video Object Plane Decoder, 12 tasks) and **MWD**
//!   (Multi-Window Display, 12 tasks) follow the standard graphs of the
//!   NoC-synthesis literature (Bertozzi/Murali, the NMAP paper the SMART
//!   authors cite as \[24\]); bandwidths in MB/s.
//! * **PIP** (Picture-in-Picture, 8 tasks) follows the widely used
//!   8-node version.
//! * **MMS_DEC / MMS_ENC / MMS_MP3** are the decoder / encoder / MP3
//!   partitions of Hu & Marculescu's MultiMedia System. Original
//!   bandwidths are in KB/s; per the paper's footnote 9 they are
//!   **scaled ×100** here so the 2 GHz NoC sees reasonable traffic.
//! * **H264** (M. Kinsy's task graph, unavailable) and **WLAN** are
//!   reconstructions matching the paper's qualitative description:
//!   H264's frame memory is the *sink* of most flows, WLAN is a mostly
//!   linear baseband pipeline. The paper's observations (H264 suffers
//!   sink serialization; WLAN ≈ Dedicated) depend on exactly these
//!   shapes.

use crate::graph::TaskGraph;

/// Footnote 9: MMS bandwidths are scaled up 100× (and the raw numbers
/// are KB/s, so ×100 KB/s = ×0.1 MB/s).
const MMS_SCALE: f64 = 100.0 * 1e-3;

/// Build a graph from a task list and `(src, dst, bandwidth)` edges.
fn build(name: &str, tasks: &[&str], edges: &[(&str, &str, f64)]) -> TaskGraph {
    let mut g = TaskGraph::new(name);
    for t in tasks {
        g.add_task(t);
    }
    for (s, d, bw) in edges {
        let src = g.task_by_name(s).unwrap_or_else(|| panic!("{name}: {s}?"));
        let dst = g.task_by_name(d).unwrap_or_else(|| panic!("{name}: {d}?"));
        g.add_flow(src, dst, *bw);
    }
    g.validate();
    g
}

/// Video Object Plane Decoder — the classic 12-task pipeline.
#[must_use]
pub fn vopd() -> TaskGraph {
    build(
        "VOPD",
        &[
            "vld",
            "run_le_dec",
            "inv_scan",
            "ac_dc_pred",
            "stripe_mem",
            "iquan",
            "idct",
            "up_samp",
            "vop_rec",
            "pad",
            "vop_mem",
            "arm",
        ],
        &[
            ("vld", "run_le_dec", 70.0),
            ("run_le_dec", "inv_scan", 362.0),
            ("inv_scan", "ac_dc_pred", 362.0),
            ("ac_dc_pred", "stripe_mem", 49.0),
            ("stripe_mem", "iquan", 27.0),
            ("ac_dc_pred", "iquan", 357.0),
            ("iquan", "idct", 353.0),
            ("idct", "up_samp", 300.0),
            ("up_samp", "vop_rec", 313.0),
            ("vop_rec", "pad", 500.0),
            ("pad", "vop_mem", 313.0),
            ("vop_mem", "pad", 94.0),
            ("arm", "pad", 16.0),
            ("vop_mem", "arm", 16.0),
        ],
    )
}

/// Multi-Window Display — 12 tasks, two filter pipelines joining at the
/// blender.
#[must_use]
pub fn mwd() -> TaskGraph {
    build(
        "MWD",
        &[
            "in", "nr", "mem1", "hs", "vs", "mem2", "hvs", "jug1", "jug2", "mem3", "se", "blend",
        ],
        &[
            ("in", "nr", 64.0),
            ("in", "hs", 128.0),
            ("nr", "mem1", 64.0),
            ("mem1", "hvs", 64.0),
            ("hs", "vs", 96.0),
            ("vs", "mem2", 96.0),
            ("mem2", "hvs", 96.0),
            ("hvs", "jug1", 64.0),
            ("jug1", "mem3", 64.0),
            ("mem3", "jug2", 64.0),
            ("jug2", "se", 32.0),
            ("se", "blend", 32.0),
            ("mem1", "blend", 32.0),
        ],
    )
}

/// Picture-in-Picture — the 8-task version.
#[must_use]
pub fn pip() -> TaskGraph {
    build(
        "PIP",
        &[
            "inp_mem", "hs", "vs", "jug1", "mem", "jug2", "op_disp", "crop",
        ],
        &[
            ("inp_mem", "hs", 128.0),
            ("hs", "vs", 64.0),
            ("vs", "jug1", 64.0),
            ("jug1", "mem", 64.0),
            ("mem", "jug2", 64.0),
            ("jug2", "op_disp", 64.0),
            ("inp_mem", "crop", 64.0),
            ("crop", "op_disp", 64.0),
        ],
    )
}

/// MMS video **decoder** partition (H.263 decode + stream demux),
/// bandwidths ×100 from KB/s (footnote 9).
#[must_use]
pub fn mms_dec() -> TaskGraph {
    let e = |bw: f64| bw * MMS_SCALE;
    build(
        "MMS_DEC",
        &[
            "demux",
            "vld",
            "iq",
            "idct",
            "mc",
            "frame_mem",
            "upsamp",
            "display",
            "sync_ctl",
        ],
        &[
            ("demux", "vld", e(380.0)),
            ("vld", "iq", e(362.0)),
            ("iq", "idct", e(362.0)),
            ("idct", "mc", e(357.0)),
            ("frame_mem", "mc", e(640.0)),
            ("mc", "frame_mem", e(640.0)),
            ("frame_mem", "upsamp", e(510.0)),
            ("upsamp", "display", e(500.0)),
            ("demux", "sync_ctl", e(40.0)),
            ("sync_ctl", "display", e(32.0)),
        ],
    )
}

/// MMS video **encoder** partition (H.263 encode), bandwidths ×100 from
/// KB/s (footnote 9).
#[must_use]
pub fn mms_enc() -> TaskGraph {
    let e = |bw: f64| bw * MMS_SCALE;
    build(
        "MMS_ENC",
        &[
            "cam_in", "pre_proc", "me", "mc_enc", "dct", "quant", "vlc", "iq_enc", "idct_enc",
            "ref_mem", "rate_ctl",
        ],
        &[
            ("cam_in", "pre_proc", e(910.0)),
            ("pre_proc", "me", e(600.0)),
            ("ref_mem", "me", e(640.0)),
            ("me", "mc_enc", e(500.0)),
            ("mc_enc", "dct", e(410.0)),
            ("dct", "quant", e(410.0)),
            ("quant", "vlc", e(250.0)),
            ("quant", "iq_enc", e(190.0)),
            ("iq_enc", "idct_enc", e(190.0)),
            ("idct_enc", "ref_mem", e(190.0)),
            ("vlc", "rate_ctl", e(30.0)),
            ("rate_ctl", "quant", e(0.5)),
        ],
    )
}

/// MMS **MP3 audio** partition. One core — the PCM sample memory — is
/// the *source* of most flows (the paper: "another acts as the source
/// for most flows, thus resulting in heavy contention and
/// multiplexing"). Bandwidths ×100 from KB/s (footnote 9).
#[must_use]
pub fn mms_mp3() -> TaskGraph {
    let e = |bw: f64| bw * MMS_SCALE;
    build(
        "MMS_MP3",
        &[
            "adc",
            "pcm_mem",
            "subband",
            "mdct",
            "psycho",
            "fft",
            "quant_mp3",
            "huffman",
            "bitstream",
        ],
        &[
            ("adc", "pcm_mem", e(760.0)),
            // pcm_mem fans out to four consumers: the source hub.
            ("pcm_mem", "subband", e(910.0)),
            ("pcm_mem", "psycho", e(640.0)),
            ("pcm_mem", "fft", e(640.0)),
            ("pcm_mem", "mdct", e(380.0)),
            ("subband", "mdct", e(380.0)),
            ("fft", "psycho", e(260.0)),
            ("psycho", "quant_mp3", e(190.0)),
            ("mdct", "quant_mp3", e(380.0)),
            ("quant_mp3", "huffman", e(190.0)),
            ("huffman", "bitstream", e(130.0)),
        ],
    )
}

/// H.264 decoder (after M. Kinsy's task graph). The reconstructed
/// shape matches the paper's observation that "one core acts as a sink
/// for most flows": the frame memory collects residuals, predictions
/// and deblocked macroblocks from five producers.
#[must_use]
pub fn h264() -> TaskGraph {
    build(
        "H264",
        &[
            "nal_parse",
            "entropy_dec",
            "iq_it",
            "intra_pred",
            "mc_pred",
            "recon",
            "deblock",
            "frame_mem",
            "display",
            "audio_dec",
        ],
        &[
            ("nal_parse", "entropy_dec", 96.0),
            ("entropy_dec", "iq_it", 160.0),
            ("iq_it", "intra_pred", 80.0),
            ("iq_it", "mc_pred", 128.0),
            ("frame_mem", "mc_pred", 320.0),
            ("intra_pred", "recon", 96.0),
            ("mc_pred", "recon", 160.0),
            ("recon", "deblock", 240.0),
            // frame_mem as the sink hub: five producers.
            ("deblock", "frame_mem", 240.0),
            ("recon", "frame_mem", 96.0),
            ("intra_pred", "frame_mem", 48.0),
            ("entropy_dec", "frame_mem", 32.0),
            ("audio_dec", "frame_mem", 24.0),
            ("nal_parse", "audio_dec", 48.0),
            ("frame_mem", "display", 220.0),
        ],
    )
}

/// 802.11 WLAN baseband — a mostly linear RX pipeline with a small MAC
/// loop; the shape the paper finds nearly indistinguishable from a
/// dedicated topology under SMART.
#[must_use]
pub fn wlan() -> TaskGraph {
    build(
        "WLAN",
        &[
            "rf_agc",
            "sync",
            "fft",
            "chan_est",
            "equalize",
            "demap",
            "deinterleave",
            "viterbi",
            "descramble",
            "mac_rx",
            "pkt_mem",
            "mac_tx",
        ],
        &[
            ("rf_agc", "sync", 64.0),
            ("sync", "fft", 128.0),
            ("fft", "chan_est", 96.0),
            ("chan_est", "equalize", 96.0),
            ("equalize", "demap", 96.0),
            ("demap", "deinterleave", 64.0),
            ("deinterleave", "viterbi", 128.0),
            ("viterbi", "descramble", 32.0),
            ("descramble", "mac_rx", 32.0),
            ("mac_rx", "pkt_mem", 64.0),
            ("pkt_mem", "mac_tx", 32.0),
        ],
    )
}

/// All eight applications, in the paper's Fig 10 order.
#[must_use]
pub fn all() -> Vec<TaskGraph> {
    vec![
        h264(),
        mms_dec(),
        mms_enc(),
        mms_mp3(),
        mwd(),
        vopd(),
        wlan(),
        pip(),
    ]
}

/// Look an application up by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<TaskGraph> {
    all()
        .into_iter()
        .find(|g| g.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_valid_apps() {
        let apps = all();
        assert_eq!(apps.len(), 8);
        for g in &apps {
            g.validate();
            assert!(
                g.num_tasks() <= 16,
                "{} must fit the 4x4 mesh ({} tasks)",
                g.name(),
                g.num_tasks()
            );
            assert!(g.flows().len() >= g.num_tasks() - 1);
        }
        let names: Vec<&str> = apps.iter().map(TaskGraph::name).collect();
        assert_eq!(
            names,
            ["H264", "MMS_DEC", "MMS_ENC", "MMS_MP3", "MWD", "VOPD", "WLAN", "PIP"]
        );
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(by_name("vopd").expect("found").name(), "VOPD");
        assert_eq!(by_name("MMS_mp3").expect("found").name(), "MMS_MP3");
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn vopd_matches_published_totals() {
        let g = vopd();
        assert_eq!(g.num_tasks(), 12);
        assert_eq!(g.flows().len(), 14);
        // Our VOPD edge table sums to 3132 MB/s of traffic.
        assert!(
            (g.total_bandwidth() - 3132.0).abs() < 1.0,
            "{}",
            g.total_bandwidth()
        );
    }

    #[test]
    fn h264_is_sink_heavy() {
        let g = h264();
        let (hub, fan_in) = g.max_fan_in().expect("nonempty");
        assert_eq!(g.task_name(hub), "frame_mem");
        assert!(
            fan_in >= 5,
            "frame_mem must be the sink of most flows, fan-in {fan_in}"
        );
    }

    #[test]
    fn mms_mp3_is_source_heavy() {
        let g = mms_mp3();
        let (hub, fan_out) = g.max_fan_out().expect("nonempty");
        assert_eq!(g.task_name(hub), "pcm_mem");
        assert!(fan_out >= 4, "pcm_mem must source most flows");
    }

    #[test]
    fn wlan_is_mostly_linear() {
        let g = wlan();
        // A linear pipeline: max fan-in and fan-out are 1.
        let (_, fi) = g.max_fan_in().expect("nonempty");
        let (_, fo) = g.max_fan_out().expect("nonempty");
        assert_eq!(fi, 1);
        assert_eq!(fo, 1);
    }

    #[test]
    fn mms_bandwidths_carry_the_100x_scaling() {
        // 910 KB/s × 100 = 91 MB/s: the largest MMS flow.
        let g = mms_enc();
        let max = g
            .flows()
            .iter()
            .map(|f| f.bandwidth_mbs)
            .fold(0.0f64, f64::max);
        assert!((max - 91.0).abs() < 1e-9, "got {max}");
    }

    #[test]
    fn bandwidths_give_low_but_nonzero_injection_rates() {
        // At 2 GHz / 32-byte packets, every flow must be well below
        // saturation (open-loop Bernoulli assumption) but nonzero.
        for g in all() {
            for f in g.flows() {
                let rate = f.bandwidth_mbs * 1e6 / 2e9 / 32.0;
                assert!(
                    rate > 0.0 && rate < 0.25,
                    "{}: flow rate {rate} packets/cycle out of range",
                    g.name()
                );
            }
        }
    }
}
