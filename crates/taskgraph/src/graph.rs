//! Task graphs: tasks, communication flows and their bandwidths.
//!
//! A task graph is the application-level input to the SMART tool flow:
//! tasks get mapped to physical cores (NMAP, `smart-mapping`), flows to
//! static routes, and routes to presets (`smart-core`).

use std::collections::BTreeMap;
use std::fmt;

/// A task (IP core workload) within an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u16);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A directed communication flow between two tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// Required bandwidth in MB/s.
    pub bandwidth_mbs: f64,
}

/// An application's task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<String>,
    flows: Vec<Flow>,
}

impl TaskGraph {
    /// Empty graph named `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        TaskGraph {
            name: name.to_owned(),
            tasks: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Application name (e.g. `"VOPD"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a task; returns its id.
    pub fn add_task(&mut self, name: &str) -> TaskId {
        self.tasks.push(name.to_owned());
        TaskId((self.tasks.len() - 1) as u16)
    }

    /// Add a flow of `bandwidth_mbs` MB/s from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, unknown tasks, non-positive bandwidth, or a
    /// duplicate (src, dst) edge.
    pub fn add_flow(&mut self, src: TaskId, dst: TaskId, bandwidth_mbs: f64) {
        assert_ne!(src, dst, "{}: self-loop at {src}", self.name);
        assert!(
            (src.0 as usize) < self.tasks.len() && (dst.0 as usize) < self.tasks.len(),
            "{}: flow references unknown task",
            self.name
        );
        assert!(
            bandwidth_mbs > 0.0,
            "{}: bandwidth must be positive",
            self.name
        );
        assert!(
            !self.flows.iter().any(|f| f.src == src && f.dst == dst),
            "{}: duplicate flow {src}->{dst}",
            self.name
        );
        self.flows.push(Flow {
            src,
            dst,
            bandwidth_mbs,
        });
    }

    /// Number of tasks.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// All task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u16).map(TaskId)
    }

    /// Name of a task.
    ///
    /// # Panics
    ///
    /// Panics if the task id is out of range.
    #[must_use]
    pub fn task_name(&self, t: TaskId) -> &str {
        &self.tasks[t.0 as usize]
    }

    /// Task id by name, if present.
    #[must_use]
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t == name)
            .map(|i| TaskId(i as u16))
    }

    /// The communication flows.
    #[must_use]
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Total bandwidth demand, MB/s.
    #[must_use]
    pub fn total_bandwidth(&self) -> f64 {
        self.flows.iter().map(|f| f.bandwidth_mbs).sum()
    }

    /// Communication demand of a task: the bandwidth it sends plus
    /// receives — NMAP's seeding metric.
    #[must_use]
    pub fn comm_demand(&self, t: TaskId) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.src == t || f.dst == t)
            .map(|f| f.bandwidth_mbs)
            .sum()
    }

    /// Number of flows terminating at `t` (fan-in).
    #[must_use]
    pub fn fan_in(&self, t: TaskId) -> usize {
        self.flows.iter().filter(|f| f.dst == t).count()
    }

    /// Number of flows leaving `t` (fan-out).
    #[must_use]
    pub fn fan_out(&self, t: TaskId) -> usize {
        self.flows.iter().filter(|f| f.src == t).count()
    }

    /// The task with the largest fan-in and that fan-in (the "sink hub"
    /// the paper describes for H264).
    #[must_use]
    pub fn max_fan_in(&self) -> Option<(TaskId, usize)> {
        self.task_ids()
            .map(|t| (t, self.fan_in(t)))
            .max_by_key(|(_, n)| *n)
    }

    /// The task with the largest fan-out and that fan-out (the "source
    /// hub" of MMS_MP3).
    #[must_use]
    pub fn max_fan_out(&self) -> Option<(TaskId, usize)> {
        self.task_ids()
            .map(|t| (t, self.fan_out(t)))
            .max_by_key(|(_, n)| *n)
    }

    /// Validate structural sanity: every task participates in at least
    /// one flow and the graph is weakly connected.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violation.
    pub fn validate(&self) {
        assert!(!self.flows.is_empty(), "{}: no flows", self.name);
        for t in self.task_ids() {
            assert!(
                self.comm_demand(t) > 0.0,
                "{}: task {} ({}) is isolated",
                self.name,
                t,
                self.task_name(t)
            );
        }
        // Weak connectivity by union-find.
        let mut parent: Vec<usize> = (0..self.tasks.len()).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        for f in &self.flows {
            let (a, b) = (
                find(&mut parent, f.src.0 as usize),
                find(&mut parent, f.dst.0 as usize),
            );
            parent[a] = b;
        }
        let root = find(&mut parent, 0);
        for i in 0..self.tasks.len() {
            assert_eq!(
                find(&mut parent, i),
                root,
                "{}: task graph is disconnected at {}",
                self.name,
                self.tasks[i]
            );
        }
    }

    /// Graphviz DOT rendering (for documentation and debugging).
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut s = format!("digraph \"{}\" {{\n  rankdir=LR;\n", self.name);
        for (i, t) in self.tasks.iter().enumerate() {
            s.push_str(&format!("  t{i} [label=\"{t}\"];\n"));
        }
        for f in &self.flows {
            s.push_str(&format!(
                "  t{} -> t{} [label=\"{:.0}\"];\n",
                f.src.0, f.dst.0, f.bandwidth_mbs
            ));
        }
        s.push_str("}\n");
        s
    }

    /// Histogram of per-flow bandwidths, bucketed to powers of two —
    /// handy in reports.
    #[must_use]
    pub fn bandwidth_histogram(&self) -> BTreeMap<u64, usize> {
        let mut h = BTreeMap::new();
        for f in &self.flows {
            let bucket = (f.bandwidth_mbs.max(1.0)).log2().floor() as u64;
            *h.entry(1u64 << bucket).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskGraph {
        let mut g = TaskGraph::new("sample");
        let a = g.add_task("a");
        let b = g.add_task("b");
        let c = g.add_task("c");
        g.add_flow(a, b, 100.0);
        g.add_flow(b, c, 50.0);
        g.add_flow(a, c, 25.0);
        g
    }

    #[test]
    fn bandwidth_accounting() {
        let g = sample();
        assert!((g.total_bandwidth() - 175.0).abs() < 1e-12);
        let a = g.task_by_name("a").expect("a exists");
        assert!((g.comm_demand(a) - 125.0).abs() < 1e-12);
        let c = g.task_by_name("c").expect("c exists");
        assert_eq!(g.fan_in(c), 2);
        assert_eq!(g.fan_out(c), 0);
        assert_eq!(g.max_fan_in(), Some((c, 2)));
        let a = g.task_by_name("a").expect("a");
        assert_eq!(g.max_fan_out(), Some((a, 2)));
    }

    #[test]
    fn validation_passes_for_connected_graph() {
        sample().validate();
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_task_rejected() {
        let mut g = sample();
        g.add_task("lonely");
        g.validate();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = TaskGraph::new("x");
        let a = g.add_task("a");
        g.add_flow(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate flow")]
    fn duplicate_edge_rejected() {
        let mut g = sample();
        let a = g.task_by_name("a").expect("a");
        let b = g.task_by_name("b").expect("b");
        g.add_flow(a, b, 1.0);
    }

    #[test]
    fn dot_contains_all_edges() {
        let dot = sample().to_dot();
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.contains("digraph"));
        assert_eq!(dot.matches("->").count(), 3);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = sample().bandwidth_histogram();
        assert_eq!(h.get(&64), Some(&1)); // 100 MB/s
        assert_eq!(h.get(&32), Some(&1)); // 50
        assert_eq!(h.get(&16), Some(&1)); // 25
    }
}
