//! Property tests for the JSONL protocol and the compiled-design cache
//! key: every structured request/response round-trips through its wire
//! form, arbitrary and truncated input never panics the parsers, and
//! the config hash is stable under equality / sensitive to perturbation.

use proptest::prelude::*;
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_harness::{config_key, ScheduleDesign, Workload};
use smart_server::{
    PlanSpec, Request, RequestHeader, ResponseEvent, SearchStrategy, TopologySpec, WorkloadSpec,
};
use smart_traffic::TraceFile;

const APPS: [&str; 8] = [
    "H264", "MMS_DEC", "MMS_ENC", "MMS_MP3", "MWD", "VOPD", "WLAN", "PIP",
];
const PATTERNS: [&str; 6] = [
    "transpose",
    "bit-complement",
    "bit-reverse",
    "shuffle",
    "tornado",
    "neighbor",
];
const ID_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";

fn workload_spec(sel: usize, flows: u64, rate: f64, seed: u64) -> WorkloadSpec {
    match sel % 4 {
        0 => WorkloadSpec::Fig7,
        1 => WorkloadSpec::App(APPS[seed as usize % APPS.len()].to_owned()),
        2 => WorkloadSpec::Uniform { flows, rate, seed },
        _ => WorkloadSpec::Pattern {
            name: PATTERNS[seed as usize % PATTERNS.len()].to_owned(),
            rate,
        },
    }
}

fn plan_spec(warmup: u64, measure: u64, drain: u64, seed: u64) -> PlanSpec {
    PlanSpec {
        warmup,
        measure,
        drain,
        seed,
    }
}

fn topology_spec(sel: u64) -> TopologySpec {
    if sel.is_multiple_of(2) {
        TopologySpec::Mesh
    } else {
        TopologySpec::Torus
    }
}

fn id_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| ID_CHARS[i % ID_CHARS.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn workload_specs_round_trip(
        parts in (0usize..4, 1u64..50, 0.0f64..0.5, 0u64..1000)
    ) {
        let (sel, flows, rate, seed) = parts;
        let spec = workload_spec(sel, flows, rate, seed);
        prop_assert_eq!(WorkloadSpec::parse(&spec.render()), Ok(spec.clone()));
        // Every grammatical spec also resolves to a real workload.
        prop_assert!(spec.to_workload().is_ok(), "{:?}", spec);
    }

    #[test]
    fn experiment_and_matrix_requests_round_trip(
        id_idx in prop::collection::vec(0usize..64, 1..12),
        parts in (0usize..4, 1u64..50, 0.0f64..0.5, 0u64..1000),
        plan_parts in (0u64..5000, 1u64..50_000, 0u64..20_000),
        shape in (2u64..17, 0usize..3)
    ) {
        let (sel, flows, rate, seed) = parts;
        let (warmup, measure, drain) = plan_parts;
        let (mesh, design_sel) = shape;
        let id = id_from(&id_idx);
        let design = DesignKind::ALL[design_sel];
        let plan = plan_spec(warmup, measure, drain, seed);
        let experiment = Request::Experiment {
            id: id.clone(),
            mesh: mesh as u16,
            topology: topology_spec(seed),
            shards: 1 + seed as usize % 8,
            design,
            workload: workload_spec(sel, flows, rate, seed),
            plan,
        };
        prop_assert_eq!(Request::parse(&experiment.to_jsonl()), Ok(experiment));
        let matrix = Request::Matrix {
            id,
            mesh: mesh as u16,
            topology: topology_spec(seed + 1),
            shards: 1 + (seed + 1) as usize % 8,
            designs: DesignKind::ALL[..=design_sel].to_vec(),
            workloads: (0..4).map(|s| workload_spec(s, flows, rate, seed + s as u64)).collect(),
            plan,
        };
        prop_assert_eq!(Request::parse(&matrix.to_jsonl()), Ok(matrix));
    }

    #[test]
    fn schedule_search_and_diff_requests_round_trip(
        id_idx in prop::collection::vec(0usize..64, 1..12),
        phases in prop::collection::vec(
            (0usize..4, 1u64..20, 0.0f64..0.3, 0u64..500), 1..5),
        plan_parts in (0u64..5000, 1u64..50_000, 0u64..20_000, 0u64..1000),
        events in prop::collection::vec((0u64..10_000, 0u64..64), 0..30)
    ) {
        let (warmup, measure, drain, seed) = plan_parts;
        let id = id_from(&id_idx);
        let plan = plan_spec(warmup, measure, drain, seed);
        let schedule = Request::Schedule {
            id: id.clone(),
            mesh: 4,
            topology: topology_spec(seed),
            designs: vec![ScheduleDesign::Smart, ScheduleDesign::Reconfigurable],
            drain_budget: drain + 1,
            phases: phases
                .iter()
                .map(|(sel, flows, rate, seed)| (workload_spec(*sel, *flows, *rate, *seed), plan))
                .collect(),
        };
        prop_assert_eq!(Request::parse(&schedule.to_jsonl()), Ok(schedule));
        let search = Request::Search {
            id: id.clone(),
            mesh: 4,
            topology: topology_spec(seed + 1),
            strategy: if seed % 2 == 0 { SearchStrategy::Exhaustive } else { SearchStrategy::Greedy },
            designs: DesignKind::ALL.to_vec(),
            workloads: phases
                .iter()
                .map(|(sel, flows, rate, seed)| workload_spec(*sel, *flows, *rate, *seed))
                .collect(),
            hpc: vec![1 + seed % 8, 8, 16],
            plan,
        };
        prop_assert_eq!(Request::parse(&search.to_jsonl()), Ok(search));
        let diff = Request::TraceDiff {
            id,
            mesh: 4,
            topology: topology_spec(seed),
            baseline: DesignKind::Mesh,
            candidate: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan,
            trace: TraceFile {
                flits_per_packet: 8,
                events: events
                    .iter()
                    .map(|(c, f)| (*c, smart_sim::FlowId(*f as u32)))
                    .collect(),
            },
        };
        prop_assert_eq!(Request::parse(&diff.to_jsonl()), Ok(diff));
    }

    #[test]
    fn topology_field_is_optional_and_defaults_to_mesh(
        id_idx in prop::collection::vec(0usize..64, 1..12),
        parts in (0usize..4, 1u64..50, 0.0f64..0.5, 0u64..1000),
        mesh in 2u64..17
    ) {
        let (sel, flows, rate, seed) = parts;
        let id = id_from(&id_idx);
        let build = |topology: TopologySpec| Request::Experiment {
            id: id.clone(),
            mesh: mesh as u16,
            topology,
            shards: 1,
            design: DesignKind::Smart,
            workload: workload_spec(sel, flows, rate, seed),
            plan: plan_spec(0, 2000, 2000, seed),
        };
        // Mesh requests never mention the field: pre-torus documents
        // and their renders stay byte-identical.
        let mesh_text = build(TopologySpec::Mesh).to_jsonl();
        prop_assert!(!mesh_text.contains("topology"), "{}", mesh_text);
        // A torus document with the field stripped parses as the mesh
        // request (absent ⇒ mesh).
        let torus_text = build(TopologySpec::Torus).to_jsonl();
        prop_assert!(torus_text.contains("\"topology\":\"torus\""), "{}", torus_text);
        let stripped = torus_text.replace(",\"topology\":\"torus\"", "");
        prop_assert_eq!(Request::parse(&stripped), Ok(build(TopologySpec::Mesh)));
        prop_assert_eq!(stripped, mesh_text);
    }

    #[test]
    fn shards_field_is_optional_and_defaults_to_serial(
        id_idx in prop::collection::vec(0usize..64, 1..12),
        parts in (0usize..4, 1u64..50, 0.0f64..0.5, 0u64..1000),
        shape in (2u64..17, 2usize..9)
    ) {
        let (sel, flows, rate, seed) = parts;
        let (mesh, shards) = shape;
        let id = id_from(&id_idx);
        let build = |shards: usize| Request::Matrix {
            id: id.clone(),
            mesh: mesh as u16,
            topology: topology_spec(seed),
            shards,
            designs: DesignKind::ALL.to_vec(),
            workloads: vec![workload_spec(sel, flows, rate, seed)],
            plan: plan_spec(0, 2000, 2000, seed),
        };
        // Serial requests never mention the field: pre-sharding
        // documents and their renders stay byte-identical.
        let serial_text = build(1).to_jsonl();
        prop_assert!(!serial_text.contains("shards"), "{}", serial_text);
        // A sharded document with the field stripped parses as the
        // serial request (absent ⇒ serial).
        let sharded_text = build(shards).to_jsonl();
        let field = format!(",\"shards\":{shards}");
        prop_assert!(sharded_text.contains(&field), "{}", sharded_text);
        let stripped = sharded_text.replace(&field, "");
        prop_assert_eq!(Request::parse(&stripped), Ok(build(1)));
        prop_assert_eq!(stripped, serial_text);
    }

    #[test]
    fn stats_optional_fields_default_and_stay_byte_identical(
        counts in (0u64..1000, 0u64..1000, 1u64..1000, 1u64..100_000)
    ) {
        let (jobs, hits, active, busy) = counts;
        let old = ResponseEvent::Stats {
            jobs,
            cache_hits: hits,
            cache_misses: jobs,
            cached_designs: hits,
            active_jobs: 0,
            busy_ms: 0,
        };
        // Default values never appear on the wire: pre-existing stats
        // documents and their renders stay byte-identical.
        let old_line = old.to_line();
        prop_assert!(!old_line.contains("active_jobs"), "{}", old_line);
        prop_assert!(!old_line.contains("busy_ms"), "{}", old_line);
        prop_assert_eq!(ResponseEvent::parse(&old_line), Ok(old.clone()));
        // A new document with the fields stripped parses as the old
        // snapshot (absent ⇒ 0).
        let new = ResponseEvent::Stats {
            jobs,
            cache_hits: hits,
            cache_misses: jobs,
            cached_designs: hits,
            active_jobs: active,
            busy_ms: busy,
        };
        let new_line = new.to_line();
        prop_assert_eq!(ResponseEvent::parse(&new_line), Ok(new));
        let stripped = new_line
            .replace(&format!(",\"active_jobs\":{active}"), "")
            .replace(&format!(",\"busy_ms\":{busy}"), "");
        prop_assert_eq!(&stripped, &old_line);
        prop_assert_eq!(ResponseEvent::parse(&stripped), Ok(old));
    }

    #[test]
    fn watch_requests_round_trip(
        id_idx in prop::collection::vec(0usize..64, 1..12),
        parts in (0usize..4, 1u64..50, 0.0f64..0.5, 0u64..1000),
        shape in (2u64..17, 0usize..3, 1u64..100_000)
    ) {
        let (sel, flows, rate, seed) = parts;
        let (mesh, design_sel, window) = shape;
        let watch = Request::Watch {
            id: id_from(&id_idx),
            mesh: mesh as u16,
            topology: topology_spec(seed),
            shards: 1 + seed as usize % 8,
            design: DesignKind::ALL[design_sel],
            workload: workload_spec(sel, flows, rate, seed),
            plan: plan_spec(0, 2000, 2000, seed),
            window,
        };
        prop_assert_eq!(Request::parse(&watch.to_jsonl()), Ok(watch));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parsers(
        bytes in prop::collection::vec(0u8..=255, 0..300)
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // Any outcome is fine; panicking is not.
        let _ = Request::parse(&text);
        for line in text.lines() {
            let _ = RequestHeader::parse(line);
            let _ = ResponseEvent::parse(line);
        }
    }

    #[test]
    fn truncated_valid_documents_never_panic(
        parts in (0usize..4, 1u64..50, 0.0f64..0.5, 0u64..1000),
        cut_permille in 0u64..1000
    ) {
        let (sel, flows, rate, seed) = parts;
        let request = Request::Matrix {
            id: "trunc".to_owned(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            shards: 1,
            designs: DesignKind::ALL.to_vec(),
            workloads: vec![workload_spec(sel, flows, rate, seed)],
            plan: plan_spec(0, 2000, 2000, seed),
        };
        let text = request.to_jsonl();
        let mut cut = (text.len() as u64 * cut_permille / 1000) as usize;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = Request::parse(&text[..cut]);
    }

    #[test]
    fn response_events_round_trip(
        counts in (0u64..1000, 0u64..1000, 0u64..1000),
        floats in (0.0f64..500.0, -20.0f64..20.0),
        id_idx in prop::collection::vec(0usize..64, 1..12)
    ) {
        let (index, cells, hits) = counts;
        let (latency, score) = floats;
        let id = id_from(&id_idx);
        let events = vec![
            ResponseEvent::Accepted { id: id.clone(), cells },
            ResponseEvent::Cell {
                index,
                design: "SMART".to_owned(),
                workload: "fig7".to_owned(),
                injected: cells,
                delivered: cells,
                flits: cells * 8,
                latency,
                measured: cells,
                cycles: cells * 4,
                cached: index % 2 == 0,
            },
            ResponseEvent::Candidate {
                index,
                design: "Mesh".to_owned(),
                workload: "app:VOPD".to_owned(),
                hpc: 1 + index % 8,
                energy_pj: latency * 1e3,
                area_mm2: latency + 0.5,
                cycles: latency,
                score,
            },
            ResponseEvent::Winner { index, score, evaluated: cells },
            ResponseEvent::FlowDiff { flow: index, baseline: latency, candidate: score },
            ResponseEvent::Metric {
                index,
                end: cells * 512,
                setups: cells,
                grants: hits.min(cells),
                premature: cells - hits.min(cells),
                injected: cells * 3,
                delivered: cells * 2,
                buffered: hits,
                bypass: if cells == 0 { String::new() } else { format!("0:{cells} 8:{hits}") },
            },
            // Both zero (optional fields absent on the wire) and
            // nonzero (rendered) stats snapshots must round-trip.
            ResponseEvent::Stats {
                jobs: cells,
                cache_hits: hits,
                cache_misses: cells,
                cached_designs: hits,
                active_jobs: 0,
                busy_ms: 0,
            },
            ResponseEvent::Stats {
                jobs: cells,
                cache_hits: hits,
                cache_misses: cells,
                cached_designs: hits,
                active_jobs: index,
                busy_ms: cells,
            },
            ResponseEvent::Done { id: id.clone(), cells, cache_hits: hits },
            ResponseEvent::Error { id, message: format!("fail {score}: \"quoted\"\n{latency}") },
        ];
        for event in events {
            let line = event.to_line();
            prop_assert_eq!(ResponseEvent::parse(&line), Ok(event), "{}", line);
        }
    }

    #[test]
    fn equal_triples_key_equal_and_perturbations_differ(
        parts in (1u64..50, 0.0f64..0.5, 0u64..1000),
        shape in (1usize..16, 0usize..3)
    ) {
        let (flows, rate, seed) = parts;
        let (hpc, design_sel) = shape;
        let design = DesignKind::ALL[design_sel];
        let mut cfg = NocConfig::paper_4x4();
        cfg.hpc_max = hpc;
        let w = Workload::uniform(flows as usize, rate, seed);

        // Equality: rebuilding the identical triple keys identically.
        let mut cfg2 = NocConfig::paper_4x4();
        cfg2.hpc_max = hpc;
        let base = config_key(&cfg, design, &w);
        prop_assert_eq!(
            base,
            config_key(&cfg2, design, &Workload::uniform(flows as usize, rate, seed))
        );

        // Sensitivity: any single-field perturbation moves the key.
        let mut hpc_bump = cfg.clone();
        hpc_bump.hpc_max = hpc + 1;
        prop_assert_ne!(base, config_key(&hpc_bump, design, &w));
        let other_design = DesignKind::ALL[(design_sel + 1) % 3];
        prop_assert_ne!(base, config_key(&cfg, other_design, &w));
        prop_assert_ne!(
            base,
            config_key(&cfg, design, &Workload::uniform(flows as usize + 1, rate, seed))
        );
        prop_assert_ne!(
            base,
            config_key(&cfg, design, &Workload::uniform(flows as usize, rate + 0.625, seed))
        );
        prop_assert_ne!(
            base,
            config_key(&cfg, design, &Workload::uniform(flows as usize, rate, seed + 1))
        );
        // Insensitivity: the shard count is an execution strategy with
        // bit-identical results, so serial and sharded runs of one
        // design point must share a cache entry.
        prop_assert_eq!(
            base,
            config_key(&cfg.clone().sharded(2 + seed as usize % 7), design, &w)
        );
        // Topology: a torus of the same dimensions must key differently
        // from the mesh (the wrap links change every compiled route).
        let mut torus = cfg.clone();
        torus.topology = smart_sim::Topology::Torus(smart_sim::Torus::new(
            cfg.topology.width(),
            cfg.topology.height(),
        ));
        prop_assert_ne!(base, config_key(&torus, design, &w));
    }
}
