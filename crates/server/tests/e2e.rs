//! End-to-end smoke test over a real TCP socket: spawn the server on an
//! ephemeral port, drive the full request vocabulary through the
//! blocking [`Client`], and hold the streamed results to the same
//! bit-exactness bar the in-process service tests use — a served matrix
//! must reproduce a direct `ExperimentMatrix` run line for line, and a
//! resubmission must come entirely from the compiled-design cache
//! without changing a byte.

use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_harness::{ExperimentMatrix, RunPlan, Workload};
use smart_server::{
    Client, PlanSpec, Request, ResponseEvent, SearchStrategy, Server, ServiceConfig, TopologySpec,
    WorkloadSpec,
};
use smart_traffic::TraceFile;

const DESIGNS: [DesignKind; 3] = [DesignKind::Mesh, DesignKind::Smart, DesignKind::Dedicated];

fn workload_specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Fig7,
        WorkloadSpec::App("PIP".to_owned()),
        WorkloadSpec::Uniform {
            flows: 6,
            rate: 0.02,
            seed: 9,
        },
    ]
}

fn matrix_request(id: &str) -> Request {
    Request::Matrix {
        id: id.to_owned(),
        mesh: 4,
        topology: TopologySpec::Mesh,
        shards: 1,
        designs: DESIGNS.to_vec(),
        workloads: workload_specs(),
        plan: PlanSpec::from(RunPlan::smoke()),
    }
}

/// Cell events of one response, sorted back into matrix order, as
/// `(snapshot_line, cached)` pairs.
fn cells_of(events: &[ResponseEvent]) -> Vec<(String, bool)> {
    let mut cells: Vec<(u64, String, bool)> = events
        .iter()
        .filter_map(|e| match e {
            ResponseEvent::Cell { index, cached, .. } => {
                Some((*index, e.snapshot_line().expect("cell"), *cached))
            }
            _ => None,
        })
        .collect();
    cells.sort_by_key(|(i, _, _)| *i);
    cells
        .into_iter()
        .map(|(_, line, cached)| (line, cached))
        .collect()
}

fn done_hits(events: &[ResponseEvent]) -> u64 {
    match events.last() {
        Some(ResponseEvent::Done { cache_hits, .. }) => *cache_hits,
        other => panic!("stream did not end in a done event: {other:?}"),
    }
}

#[test]
fn served_requests_are_bit_exact_cached_and_searchable() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            threads: 2,
            cache_capacity: 32,
        },
    )
    .expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn accept loop");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // 1. A served matrix reproduces the direct serial harness run.
    let cold = client.submit(&matrix_request("cold")).expect("matrix");
    let cold_cells = cells_of(&cold);
    let reference: Vec<String> = ExperimentMatrix::new(NocConfig::paper_4x4())
        .designs(&DESIGNS)
        .workloads(vec![
            Workload::fig7(),
            Workload::app("PIP"),
            Workload::uniform(6, 0.02, 9),
        ])
        .plan(RunPlan::smoke())
        .threads(1)
        .run()
        .iter()
        .map(smart_harness::ExperimentReport::snapshot_line)
        .collect();
    assert_eq!(
        cold_cells
            .iter()
            .map(|(l, _)| l.clone())
            .collect::<Vec<_>>(),
        reference,
        "served matrix diverged from the direct run"
    );
    assert_eq!(done_hits(&cold), 0, "first submission cannot hit cache");

    // 2. Resubmitting is fully cached and does not change a byte.
    let warm = client.submit(&matrix_request("warm")).expect("matrix");
    let warm_cells = cells_of(&warm);
    assert_eq!(
        warm_cells
            .iter()
            .map(|(l, _)| l.clone())
            .collect::<Vec<_>>(),
        reference,
        "cache changed results"
    );
    assert!(
        warm_cells.iter().all(|(_, cached)| *cached),
        "every warm cell should come from the cache"
    );
    assert_eq!(done_hits(&warm), reference.len() as u64);

    // 2b. A torus matrix over the same workloads runs end-to-end,
    // matches the direct torus harness run, and never shares cache
    // entries with the mesh (its cells are all cold despite the warm
    // mesh cache).
    let torus_req = Request::Matrix {
        id: "torus".to_owned(),
        mesh: 4,
        topology: TopologySpec::Torus,
        shards: 1,
        designs: DESIGNS.to_vec(),
        workloads: workload_specs(),
        plan: PlanSpec::from(RunPlan::smoke()),
    };
    let torus = client.submit(&torus_req).expect("torus matrix");
    let torus_cells = cells_of(&torus);
    let torus_reference: Vec<String> = ExperimentMatrix::new(NocConfig::scaled_torus(4))
        .designs(&DESIGNS)
        .workloads(vec![
            Workload::fig7(),
            Workload::app("PIP"),
            Workload::uniform(6, 0.02, 9),
        ])
        .plan(RunPlan::smoke())
        .threads(1)
        .run()
        .iter()
        .map(smart_harness::ExperimentReport::snapshot_line)
        .collect();
    assert_eq!(
        torus_cells
            .iter()
            .map(|(l, _)| l.clone())
            .collect::<Vec<_>>(),
        torus_reference,
        "served torus matrix diverged from the direct run"
    );
    assert_eq!(
        done_hits(&torus),
        0,
        "the torus must not be served mesh cache entries"
    );

    // 3. A search streams one candidate per point plus a winner.
    let search = client
        .submit(&Request::Search {
            id: "search".to_owned(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            strategy: SearchStrategy::Exhaustive,
            designs: vec![DesignKind::Mesh, DesignKind::Smart],
            workloads: vec![WorkloadSpec::Fig7],
            hpc: vec![1, 8],
            plan: PlanSpec::from(RunPlan::smoke()),
        })
        .expect("search");
    let candidates: Vec<(u64, f64)> = search
        .iter()
        .filter_map(|e| match e {
            ResponseEvent::Candidate { index, score, .. } => Some((*index, *score)),
            _ => None,
        })
        .collect();
    assert_eq!(candidates.len(), 4, "2 designs x 1 workload x 2 hpc");
    let winner = search
        .iter()
        .find_map(|e| match e {
            ResponseEvent::Winner { index, score, .. } => Some((*index, *score)),
            _ => None,
        })
        .expect("winner event");
    let best = candidates
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("candidates");
    assert_eq!(winner, best, "winner must carry the best streamed score");

    // 4. A trace diff isolates the design change on a shared trace.
    let diff = client
        .submit(&Request::TraceDiff {
            id: "diff".to_owned(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            baseline: DesignKind::Mesh,
            candidate: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan: PlanSpec::from(RunPlan::smoke()),
            trace: TraceFile {
                flits_per_packet: 8,
                events: (0..8).map(|i| (i * 40, smart_sim::FlowId(0))).collect(),
            },
        })
        .expect("trace diff");
    let (delivered_delta, latency_delta) = diff
        .iter()
        .find_map(|e| match e {
            ResponseEvent::DiffSummary {
                delivered_delta,
                latency_delta,
                ..
            } => Some((*delivered_delta, *latency_delta)),
            _ => None,
        })
        .expect("diff summary");
    assert_eq!(delivered_delta, 0, "same trace, same deliveries");
    assert!(latency_delta < 0.0, "SMART should beat the mesh");

    // 5. Stats reflect the traffic this connection generated.
    let stats = client
        .submit(&Request::Stats {
            id: "stats".to_owned(),
        })
        .expect("stats");
    let (jobs, hits) = stats
        .iter()
        .find_map(|e| match e {
            ResponseEvent::Stats {
                jobs, cache_hits, ..
            } => Some((*jobs, *cache_hits)),
            _ => None,
        })
        .expect("stats event");
    assert_eq!(jobs, 5, "matrix x2 + torus matrix + search + diff");
    assert!(hits >= reference.len() as u64, "warm matrix hit the cache");

    // 6. A malformed body poisons only its request; the connection and
    // the protocol stream stay usable.
    let events = client
        .submit(&Request::Matrix {
            id: "bad".to_owned(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            shards: 1,
            designs: vec![DesignKind::Mesh],
            workloads: vec![WorkloadSpec::App("NO_SUCH_APP".to_owned())],
            plan: PlanSpec::from(RunPlan::smoke()),
        })
        .expect("error streams, connection survives");
    assert!(
        matches!(events.last(), Some(ResponseEvent::Error { .. })),
        "unknown app must surface as an error event: {events:?}"
    );
    let after = client.submit(&matrix_request("after")).expect("matrix");
    assert_eq!(done_hits(&after), reference.len() as u64);

    handle.shutdown().expect("shutdown handshake");
}
