//! Transport-independent request handling: one [`Service`] owns the
//! worker pool sizing, the [`DesignCache`], and the table of cancellable
//! in-flight jobs; [`Service::handle`] executes a [`Request`] and
//! streams [`ResponseEvent`]s into any [`EventSink`]. The TCP front end
//! ([`crate::server`]) is one sink; tests drive the service directly
//! with an in-memory one.
//!
//! Determinism: every run-type request fans its cells out through
//! `smart-harness`'s shared cell runner, whose parallel results are
//! bit-identical to a serial run. Events *stream* in completion order
//! (nondeterministic under threads), but each carries its cell index,
//! so re-ordering by index recovers the deterministic result exactly.

use crate::cache::DesignCache;
use crate::protocol::{PlanSpec, Request, ResponseEvent, WorkloadSpec};
use crate::search::{self, SearchSpace};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_harness::{
    run_cells_observed, AppSchedule, CompiledDesign, Drive, Experiment, MultiAppExperiment,
    ScheduleDesign, TelemetryConfig, TraceDiffReport, TraceFile, Workload,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing knobs for one service instance.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads per run-type request.
    pub threads: usize,
    /// Compiled designs the cache may hold.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            cache_capacity: 64,
        }
    }
}

/// Where response events go. The TCP server writes lines to the
/// connection; tests collect into a `Mutex<Vec<_>>`.
pub trait EventSink: Sync {
    /// Deliver one event. Called from worker threads as cells finish.
    fn emit(&self, event: &ResponseEvent);
}

impl EventSink for Mutex<Vec<ResponseEvent>> {
    fn emit(&self, event: &ResponseEvent) {
        self.lock().expect("unpoisoned sink").push(event.clone());
    }
}

/// The experiment service: cache + job table + counters.
pub struct Service {
    cfg: ServiceConfig,
    cache: DesignCache,
    jobs: Mutex<HashMap<String, Arc<AtomicBool>>>,
    jobs_run: AtomicU64,
    /// Cumulative wall-clock milliseconds spent executing run-type
    /// jobs, surfaced by [`crate::protocol::ResponseEvent::Stats`].
    busy_ms: AtomicU64,
}

/// Deregisters a job id when the handler leaves (including by panic, so
/// a crashed job never wedges its id).
struct JobGuard<'a> {
    service: &'a Service,
    id: String,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        self.service
            .jobs
            .lock()
            .expect("unpoisoned job table")
            .remove(&self.id);
    }
}

/// Per-job plumbing every engine threads through: the job id the
/// response events carry, the cooperative-cancellation flag (engines
/// whose work is too short to cancel pass `None`), and the event sink.
struct Job<'a> {
    id: &'a str,
    cancel: Option<&'a AtomicBool>,
    sink: &'a dyn EventSink,
}

impl Service {
    /// A fresh service with an empty cache.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Self {
        Service {
            cfg: ServiceConfig {
                threads: cfg.threads.max(1),
                cache_capacity: cfg.cache_capacity,
            },
            cache: DesignCache::new(cfg.cache_capacity),
            jobs_run: AtomicU64::new(0),
            busy_ms: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
        }
    }

    /// The shared compiled-design cache.
    #[must_use]
    pub fn cache(&self) -> &DesignCache {
        &self.cache
    }

    /// Execute one request, streaming events into `sink`. Always emits
    /// exactly one terminal event. Returns `true` only for
    /// [`Request::Shutdown`] — the front end's signal to stop accepting.
    ///
    /// # Panics
    ///
    /// Panics if a workload that validated still fails to materialize
    /// (e.g. a synthetic pattern on an incompatible mesh) — the TCP
    /// front end wraps handlers in `catch_unwind` and turns panics into
    /// [`ResponseEvent::Error`].
    pub fn handle(&self, request: &Request, sink: &dyn EventSink) -> bool {
        let id = request.id().to_owned();
        let done = |cells: u64, cache_hits: u64| ResponseEvent::Done {
            id: id.clone(),
            cells,
            cache_hits,
        };
        let fail = |message: String| {
            sink.emit(&ResponseEvent::Error {
                id: id.clone(),
                message,
            });
            false
        };
        // Run-type jobs (everything that simulates) accumulate into the
        // busy_ms wall-clock the stats event reports.
        let run_type = !matches!(
            request,
            Request::Cancel { .. } | Request::Stats { .. } | Request::Shutdown { .. }
        );
        let started = std::time::Instant::now();
        let shutdown = match request {
            Request::Experiment {
                mesh,
                topology,
                shards,
                design,
                workload,
                plan,
                ..
            } => match self.register(&id) {
                Ok((guard, cancel)) => {
                    let job = Job {
                        id: &id,
                        cancel: Some(&cancel),
                        sink,
                    };
                    let outcome = self.run_matrix(
                        &job,
                        topology.config(*mesh).sharded(*shards),
                        &[*design],
                        std::slice::from_ref(workload),
                        *plan,
                    );
                    drop(guard);
                    match outcome {
                        Ok((cells, hits)) => {
                            sink.emit(&done(cells, hits));
                            false
                        }
                        Err(m) => fail(m),
                    }
                }
                Err(m) => fail(m),
            },
            Request::Watch {
                mesh,
                topology,
                shards,
                design,
                workload,
                plan,
                window,
                ..
            } => match self.register(&id) {
                Ok((guard, _cancel)) => {
                    let job = Job {
                        id: &id,
                        cancel: None,
                        sink,
                    };
                    let outcome = self.run_watch(
                        &job,
                        topology.config(*mesh).sharded(*shards),
                        *design,
                        workload,
                        *plan,
                        *window,
                    );
                    drop(guard);
                    match outcome {
                        Ok(hits) => {
                            sink.emit(&done(1, hits));
                            false
                        }
                        Err(m) => fail(m),
                    }
                }
                Err(m) => fail(m),
            },
            Request::Matrix {
                mesh,
                topology,
                shards,
                designs,
                workloads,
                plan,
                ..
            } => match self.register(&id) {
                Ok((guard, cancel)) => {
                    let job = Job {
                        id: &id,
                        cancel: Some(&cancel),
                        sink,
                    };
                    let outcome = self.run_matrix(
                        &job,
                        topology.config(*mesh).sharded(*shards),
                        designs,
                        workloads,
                        *plan,
                    );
                    drop(guard);
                    match outcome {
                        Ok((cells, hits)) => {
                            sink.emit(&done(cells, hits));
                            false
                        }
                        Err(m) => fail(m),
                    }
                }
                Err(m) => fail(m),
            },
            Request::Schedule {
                mesh,
                topology,
                designs,
                drain_budget,
                phases,
                ..
            } => match self.register(&id) {
                Ok((guard, cancel)) => {
                    let job = Job {
                        id: &id,
                        cancel: Some(&cancel),
                        sink,
                    };
                    let outcome = self.run_schedule(
                        &job,
                        topology.config(*mesh),
                        designs,
                        *drain_budget,
                        phases,
                    );
                    drop(guard);
                    match outcome {
                        Ok(cells) => {
                            sink.emit(&done(cells, 0));
                            false
                        }
                        Err(m) => fail(m),
                    }
                }
                Err(m) => fail(m),
            },
            Request::Search {
                mesh,
                topology,
                strategy,
                designs,
                workloads,
                hpc,
                plan,
                ..
            } => {
                self.jobs_run.fetch_add(1, Ordering::Relaxed);
                let space = SearchSpace {
                    mesh: *mesh,
                    topology: *topology,
                    designs: designs.clone(),
                    workloads: workloads.clone(),
                    hpc: hpc.clone(),
                    plan: *plan,
                };
                sink.emit(&ResponseEvent::Accepted {
                    id: id.clone(),
                    cells: space.len() as u64,
                });
                let emit = |c: &search::CandidateScore| {
                    sink.emit(&ResponseEvent::Candidate {
                        index: c.index as u64,
                        design: c.design.label().to_owned(),
                        workload: c.workload.clone(),
                        hpc: c.hpc,
                        energy_pj: c.energy_pj,
                        area_mm2: c.area_mm2,
                        cycles: c.cycles,
                        score: c.score,
                    });
                };
                match search::run(&space, *strategy, self.cfg.threads, &self.cache, &emit) {
                    Ok(outcome) => {
                        sink.emit(&ResponseEvent::Winner {
                            index: outcome.winner_index as u64,
                            score: outcome.winner_score,
                            evaluated: outcome.candidates.len() as u64,
                        });
                        sink.emit(&done(outcome.candidates.len() as u64, 0));
                        false
                    }
                    Err(m) => fail(m),
                }
            }
            Request::TraceDiff {
                mesh,
                topology,
                baseline,
                candidate,
                workload,
                plan,
                trace,
                ..
            } => {
                self.jobs_run.fetch_add(1, Ordering::Relaxed);
                let job = Job {
                    id: &id,
                    cancel: None,
                    sink,
                };
                match self.run_trace_diff(
                    &job,
                    topology.config(*mesh),
                    (*baseline, *candidate),
                    workload,
                    *plan,
                    trace,
                ) {
                    Ok(hits) => {
                        sink.emit(&done(2, hits));
                        false
                    }
                    Err(m) => fail(m),
                }
            }
            Request::Cancel { target, .. } => {
                let flag = self
                    .jobs
                    .lock()
                    .expect("unpoisoned job table")
                    .get(target)
                    .cloned();
                match flag {
                    Some(cancel) => {
                        cancel.store(true, Ordering::Relaxed);
                        sink.emit(&done(0, 0));
                        false
                    }
                    None => fail(format!("no running job {target:?}")),
                }
            }
            Request::Stats { .. } => {
                sink.emit(&ResponseEvent::Stats {
                    jobs: self.jobs_run.load(Ordering::Relaxed),
                    cache_hits: self.cache.hits(),
                    cache_misses: self.cache.misses(),
                    cached_designs: self.cache.len() as u64,
                    active_jobs: self.jobs.lock().expect("unpoisoned job table").len() as u64,
                    busy_ms: self.busy_ms.load(Ordering::Relaxed),
                });
                sink.emit(&done(0, 0));
                false
            }
            Request::Shutdown { .. } => {
                sink.emit(&done(0, 0));
                true
            }
        };
        if run_type {
            let elapsed = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            self.busy_ms.fetch_add(elapsed, Ordering::Relaxed);
        }
        shutdown
    }

    /// Register a cancellable job, refusing duplicate live ids.
    fn register(&self, id: &str) -> Result<(JobGuard<'_>, Arc<AtomicBool>), String> {
        self.jobs_run.fetch_add(1, Ordering::Relaxed);
        let cancel = Arc::new(AtomicBool::new(false));
        let mut jobs = self.jobs.lock().expect("unpoisoned job table");
        if jobs.contains_key(id) {
            return Err(format!("job id {id:?} is already running"));
        }
        jobs.insert(id.to_owned(), Arc::clone(&cancel));
        Ok((
            JobGuard {
                service: self,
                id: id.to_owned(),
            },
            cancel,
        ))
    }

    /// The experiment/matrix engine: compile every cell through the
    /// cache (workload-major, design-minor — `ExperimentMatrix`'s cell
    /// order), then fan the runs out on the worker pool, streaming a
    /// [`ResponseEvent::Cell`] per finished cell. Returns
    /// `(completed cells, cells served from cache)`.
    fn run_matrix(
        &self,
        job: &Job<'_>,
        cfg: NocConfig,
        designs: &[DesignKind],
        workloads: &[WorkloadSpec],
        plan: PlanSpec,
    ) -> Result<(u64, u64), String> {
        let mut cells: Vec<(DesignKind, Workload, Arc<CompiledDesign>, bool)> =
            Vec::with_capacity(designs.len() * workloads.len());
        for spec in workloads {
            let workload = spec.to_workload()?;
            for design in designs {
                let (handle, cached) = self.cache.design(&cfg, *design, &workload);
                cells.push((*design, workload.clone(), handle, cached));
            }
        }
        job.sink.emit(&ResponseEvent::Accepted {
            id: job.id.to_owned(),
            cells: cells.len() as u64,
        });
        let run_one = |i: usize| {
            let (design, workload, handle, _) = &cells[i];
            Experiment::new(cfg.clone())
                .design(*design)
                .workload(workload.clone())
                .plan(plan.to_plan())
                .run_compiled(handle)
        };
        let (slots, _) = run_cells_observed(
            cells.len(),
            self.cfg.threads,
            job.cancel,
            run_one,
            |i, report| {
                job.sink.emit(&ResponseEvent::Cell {
                    index: i as u64,
                    design: report.design.label().to_owned(),
                    workload: report.workload.clone(),
                    injected: report.packets_injected,
                    delivered: report.packets_delivered,
                    flits: report.flits_delivered,
                    latency: report.avg_network_latency,
                    measured: report.measured_packets,
                    cycles: report.total_cycles,
                    cached: cells[i].3,
                });
            },
        );
        let completed = slots.iter().filter(|s| s.is_some()).count();
        let hits = slots
            .iter()
            .enumerate()
            .filter(|(i, s)| s.is_some() && cells[*i].3)
            .count();
        Ok((completed as u64, hits as u64))
    }

    /// The watch engine: one telemetry-enabled experiment cell through
    /// the compiled-design cache, streaming one [`ResponseEvent::Metric`]
    /// per closed window (in window order) before the final
    /// [`ResponseEvent::Cell`]. Returns the cache hits (0 or 1).
    fn run_watch(
        &self,
        job: &Job<'_>,
        cfg: NocConfig,
        design: DesignKind,
        workload: &WorkloadSpec,
        plan: PlanSpec,
        window: u64,
    ) -> Result<u64, String> {
        if window == 0 {
            return Err("watch window must be at least 1 cycle".to_owned());
        }
        let workload = workload.to_workload()?;
        let (handle, cached) = self.cache.design(&cfg, design, &workload);
        job.sink.emit(&ResponseEvent::Accepted {
            id: job.id.to_owned(),
            cells: 1,
        });
        let report = Experiment::new(cfg)
            .design(design)
            .workload(workload)
            .plan(plan.to_plan())
            .with_telemetry(TelemetryConfig::windowed(window))
            .run_compiled(&handle);
        // The Dedicated yardstick has no telemetry: zero metric events.
        if let Some(series) = &report.telemetry {
            for (i, w) in series.windows.iter().enumerate() {
                job.sink.emit(&ResponseEvent::Metric {
                    index: i as u64,
                    end: w.end,
                    setups: w.ssr_setups,
                    grants: w.ssr_grants,
                    premature: w.premature_stops(),
                    injected: w.injected,
                    delivered: w.delivered,
                    buffered: w.buffered,
                    bypass: w.bypass_sparse(),
                });
            }
        }
        job.sink.emit(&ResponseEvent::Cell {
            index: 0,
            design: report.design.label().to_owned(),
            workload: report.workload.clone(),
            injected: report.packets_injected,
            delivered: report.packets_delivered,
            flits: report.flits_delivered,
            latency: report.avg_network_latency,
            measured: report.measured_packets,
            cycles: report.total_cycles,
            cached,
        });
        Ok(u64::from(cached))
    }

    /// The schedule engine: one cell per schedule design, each running
    /// the full multi-phase schedule; streams a [`ResponseEvent::Phase`]
    /// per finished phase (or a [`ResponseEvent::CellError`] when a
    /// design exhausts its drain budget). Schedules rebuild their
    /// network at every phase, so they bypass the compiled-design cache.
    fn run_schedule(
        &self,
        job: &Job<'_>,
        cfg: NocConfig,
        designs: &[ScheduleDesign],
        drain_budget: u64,
        phases: &[(WorkloadSpec, PlanSpec)],
    ) -> Result<u64, String> {
        let mut schedule = AppSchedule::new().drain_budget(drain_budget);
        for (spec, plan) in phases {
            schedule = schedule.then(spec.to_workload()?, plan.to_plan());
        }
        job.sink.emit(&ResponseEvent::Accepted {
            id: job.id.to_owned(),
            cells: designs.len() as u64,
        });
        let run_one = |i: usize| {
            MultiAppExperiment::new(cfg.clone(), schedule.clone())
                .design(designs[i])
                .run()
        };
        let (slots, _) = run_cells_observed(
            designs.len(),
            self.cfg.threads,
            job.cancel,
            run_one,
            |i, outcome| match outcome {
                Ok(report) => {
                    for (pi, phase) in report.phases.iter().enumerate() {
                        job.sink.emit(&ResponseEvent::Phase {
                            index: i as u64,
                            phase: pi as u64,
                            design: report.design.label().to_owned(),
                            workload: phase.workload.clone(),
                            delivered: phase.packets_delivered,
                            latency: phase.avg_network_latency,
                            drain_cycles: report.transitions[pi].drain_cycles,
                            stores: report.transitions[pi].store_count as u64,
                        });
                    }
                }
                Err(err) => job.sink.emit(&ResponseEvent::CellError {
                    index: i as u64,
                    message: err.to_string(),
                }),
            },
        );
        Ok(slots.iter().filter(|s| s.is_some()).count() as u64)
    }

    /// The trace-diff engine: replay one trace on both designs (through
    /// the cache), then stream the per-flow deltas and the summary.
    /// Returns the number of replays served from cache.
    fn run_trace_diff(
        &self,
        job: &Job<'_>,
        cfg: NocConfig,
        (baseline, candidate): (DesignKind, DesignKind),
        workload: &WorkloadSpec,
        plan: PlanSpec,
        trace: &TraceFile,
    ) -> Result<u64, String> {
        let workload = workload.to_workload()?;
        job.sink.emit(&ResponseEvent::Accepted {
            id: job.id.to_owned(),
            cells: 2,
        });
        let mut hits = 0u64;
        let mut replay = |design: DesignKind| {
            let (handle, cached) = self.cache.design(&cfg, design, &workload);
            hits += u64::from(cached);
            Experiment::new(cfg.clone())
                .design(design)
                .workload(workload.clone())
                .plan(plan.to_plan())
                .drive(Drive::Trace(trace.clone()))
                .run_compiled(&handle)
                .to_phase_outcome()
        };
        let base = replay(baseline);
        let cand = replay(candidate);
        let report = TraceDiffReport::between(&base, &cand);
        for delta in &report.flows {
            job.sink.emit(&ResponseEvent::FlowDiff {
                flow: u64::from(delta.flow.0),
                baseline: delta.baseline.unwrap_or(f64::NAN),
                candidate: delta.candidate.unwrap_or(f64::NAN),
            });
        }
        job.sink.emit(&ResponseEvent::DiffSummary {
            baseline: report.baseline.clone(),
            candidate: report.candidate.clone(),
            delivered_delta: report.delivered_delta,
            flit_delta: report.flit_delta,
            latency_delta: report.latency_delta,
        });
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{SearchStrategy, TopologySpec};
    use smart_harness::{ExperimentMatrix, RunPlan};

    fn collect(service: &Service, request: &Request) -> Vec<ResponseEvent> {
        let sink: Mutex<Vec<ResponseEvent>> = Mutex::new(Vec::new());
        let shutdown = service.handle(request, &sink);
        assert_eq!(shutdown, matches!(request, Request::Shutdown { .. }));
        let events = sink.into_inner().expect("unpoisoned sink");
        assert!(events.last().expect("terminal event").is_terminal());
        events
    }

    fn cell_lines(events: &[ResponseEvent]) -> Vec<String> {
        let mut cells: Vec<(u64, String)> = events
            .iter()
            .filter_map(|e| match e {
                ResponseEvent::Cell { index, .. } => {
                    Some((*index, e.snapshot_line().expect("cell")))
                }
                _ => None,
            })
            .collect();
        cells.sort_by_key(|(i, _)| *i);
        cells.into_iter().map(|(_, l)| l).collect()
    }

    fn matrix_request(id: &str) -> Request {
        Request::Matrix {
            id: id.into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            shards: 1,
            designs: vec![DesignKind::Mesh, DesignKind::Smart, DesignKind::Dedicated],
            workloads: vec![WorkloadSpec::Fig7, WorkloadSpec::App("PIP".into())],
            plan: PlanSpec::from(RunPlan::smoke()),
        }
    }

    #[test]
    fn matrix_results_match_direct_runs_bit_exactly() {
        let service = Service::new(ServiceConfig {
            threads: 2,
            cache_capacity: 16,
        });
        let events = collect(&service, &matrix_request("m1"));
        let served = cell_lines(&events);
        // The serial reference: same axes, same order, direct harness.
        let reference: Vec<String> = ExperimentMatrix::new(NocConfig::paper_4x4())
            .designs(&[DesignKind::Mesh, DesignKind::Smart, DesignKind::Dedicated])
            .workloads(vec![Workload::fig7(), Workload::app("PIP")])
            .plan(RunPlan::smoke())
            .threads(1)
            .run()
            .iter()
            .map(smart_harness::ExperimentReport::snapshot_line)
            .collect();
        assert_eq!(served, reference);
    }

    #[test]
    fn repeat_request_is_fully_cached_and_identical() {
        let service = Service::new(ServiceConfig {
            threads: 2,
            cache_capacity: 16,
        });
        let cold = collect(&service, &matrix_request("m1"));
        let warm = collect(&service, &matrix_request("m2"));
        assert_eq!(cell_lines(&cold), cell_lines(&warm));
        let hits = |events: &[ResponseEvent]| match events.last() {
            Some(ResponseEvent::Done { cache_hits, .. }) => *cache_hits,
            other => panic!("no done event: {other:?}"),
        };
        assert_eq!(hits(&cold), 0);
        assert_eq!(hits(&warm), 6, "every warm cell comes from cache");
    }

    #[test]
    fn sharded_request_matches_serial_and_shares_the_cache() {
        let service = Service::new(ServiceConfig {
            threads: 1,
            cache_capacity: 16,
        });
        let request = |id: &str, shards: usize| Request::Matrix {
            id: id.into(),
            mesh: 8,
            topology: TopologySpec::Mesh,
            shards,
            designs: vec![DesignKind::Mesh, DesignKind::Smart],
            workloads: vec![WorkloadSpec::Uniform {
                flows: 24,
                rate: 0.02,
                seed: 7,
            }],
            plan: PlanSpec::from(RunPlan::smoke()),
        };
        let serial = collect(&service, &request("s", 1));
        let sharded = collect(&service, &request("p", 4));
        // Bit-identical cells: sharding is an execution strategy.
        assert_eq!(cell_lines(&serial), cell_lines(&sharded));
        // And one cache entry: the sharded run replays the compiled
        // artifacts the serial run populated.
        let hits = |events: &[ResponseEvent]| match events.last() {
            Some(ResponseEvent::Done { cache_hits, .. }) => *cache_hits,
            other => panic!("no done event: {other:?}"),
        };
        assert_eq!(hits(&serial), 0);
        assert_eq!(hits(&sharded), 2, "serial and sharded share entries");
    }

    #[test]
    fn schedule_streams_phases_per_design() {
        let service = Service::new(ServiceConfig {
            threads: 2,
            cache_capacity: 16,
        });
        let request = Request::Schedule {
            id: "s1".into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            designs: vec![ScheduleDesign::Smart, ScheduleDesign::Reconfigurable],
            drain_budget: 50_000,
            phases: vec![
                (
                    WorkloadSpec::App("VOPD".into()),
                    PlanSpec::from(RunPlan::smoke()),
                ),
                (
                    WorkloadSpec::App("PIP".into()),
                    PlanSpec::from(RunPlan::smoke()),
                ),
            ],
        };
        let events = collect(&service, &request);
        let phases = events
            .iter()
            .filter(|e| matches!(e, ResponseEvent::Phase { .. }))
            .count();
        assert_eq!(phases, 4, "2 designs x 2 phases: {events:?}");
    }

    #[test]
    fn search_streams_candidates_and_a_winner() {
        let service = Service::new(ServiceConfig {
            threads: 2,
            cache_capacity: 32,
        });
        let request = Request::Search {
            id: "q1".into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            strategy: SearchStrategy::Exhaustive,
            designs: vec![DesignKind::Mesh, DesignKind::Smart],
            workloads: vec![WorkloadSpec::Fig7],
            hpc: vec![1, 8],
            plan: PlanSpec::from(RunPlan::smoke()),
        };
        let events = collect(&service, &request);
        let candidates = events
            .iter()
            .filter(|e| matches!(e, ResponseEvent::Candidate { .. }))
            .count();
        assert_eq!(candidates, 4);
        assert!(events
            .iter()
            .any(|e| matches!(e, ResponseEvent::Winner { .. })));
    }

    #[test]
    fn trace_diff_isolates_the_design_change() {
        let service = Service::new(ServiceConfig {
            threads: 1,
            cache_capacity: 16,
        });
        let request = Request::TraceDiff {
            id: "d1".into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            baseline: DesignKind::Mesh,
            candidate: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan: PlanSpec::from(RunPlan::smoke()),
            trace: TraceFile {
                flits_per_packet: 8,
                events: (0..8).map(|i| (i * 40, smart_sim::FlowId(0))).collect(),
            },
        };
        let events = collect(&service, &request);
        let summary = events
            .iter()
            .find_map(|e| match e {
                ResponseEvent::DiffSummary {
                    delivered_delta,
                    latency_delta,
                    ..
                } => Some((*delivered_delta, *latency_delta)),
                _ => None,
            })
            .expect("diff summary");
        assert_eq!(summary.0, 0, "same trace, same deliveries: {events:?}");
        assert!(summary.1 < 0.0, "SMART should beat the mesh: {events:?}");
    }

    #[test]
    fn unknown_cancel_target_is_an_error() {
        let service = Service::new(ServiceConfig::default());
        let events = collect(
            &service,
            &Request::Cancel {
                id: "c1".into(),
                target: "ghost".into(),
            },
        );
        assert!(matches!(events.last(), Some(ResponseEvent::Error { .. })));
    }

    #[test]
    fn bad_workload_fails_without_panicking() {
        let service = Service::new(ServiceConfig::default());
        let request = Request::Experiment {
            id: "e1".into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            shards: 1,
            design: DesignKind::Mesh,
            workload: WorkloadSpec::App("DOOM".into()),
            plan: PlanSpec::from(RunPlan::smoke()),
        };
        let events = collect(&service, &request);
        assert!(matches!(events.last(), Some(ResponseEvent::Error { .. })));
    }

    #[test]
    fn stats_count_jobs_and_cache_traffic() {
        let service = Service::new(ServiceConfig {
            threads: 1,
            cache_capacity: 16,
        });
        collect(&service, &matrix_request("m1"));
        collect(&service, &matrix_request("m2"));
        let events = collect(&service, &Request::Stats { id: "st".into() });
        match events.first() {
            Some(ResponseEvent::Stats {
                jobs,
                cache_hits,
                cache_misses,
                cached_designs,
                active_jobs,
                ..
            }) => {
                assert_eq!(*jobs, 2);
                assert_eq!(*cache_misses, 6);
                assert_eq!(*cache_hits, 6);
                assert_eq!(*cached_designs, 6);
                assert_eq!(*active_jobs, 0, "both jobs deregistered");
            }
            other => panic!("expected stats first: {other:?}"),
        }
    }

    #[test]
    fn stats_busy_ms_accumulates_run_wall_time() {
        let service = Service::new(ServiceConfig {
            threads: 1,
            cache_capacity: 16,
        });
        let before = match collect(&service, &Request::Stats { id: "s0".into() }).first() {
            Some(ResponseEvent::Stats { busy_ms, .. }) => *busy_ms,
            other => panic!("expected stats: {other:?}"),
        };
        assert_eq!(before, 0, "nothing has run yet");
        // A deliberately long cell so the wall clock registers ≥ 1 ms.
        let request = Request::Experiment {
            id: "slow".into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            shards: 1,
            design: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan: PlanSpec::from(RunPlan::quick()),
        };
        collect(&service, &request);
        let after = match collect(&service, &Request::Stats { id: "s1".into() }).first() {
            Some(ResponseEvent::Stats { busy_ms, .. }) => *busy_ms,
            other => panic!("expected stats: {other:?}"),
        };
        assert!(after > 0, "a 27k-cycle run takes measurable wall time");
    }

    #[test]
    fn watch_streams_metric_windows_matching_a_direct_run() {
        let service = Service::new(ServiceConfig {
            threads: 1,
            cache_capacity: 16,
        });
        let request = Request::Watch {
            id: "w1".into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            shards: 1,
            design: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan: PlanSpec::from(RunPlan::smoke()),
            window: 500,
        };
        let events = collect(&service, &request);
        let metrics: Vec<&ResponseEvent> = events
            .iter()
            .filter(|e| matches!(e, ResponseEvent::Metric { .. }))
            .collect();
        // The direct harness run is the reference.
        let report = Experiment::new(NocConfig::paper_4x4())
            .workload(Workload::fig7())
            .plan(RunPlan::smoke())
            .with_telemetry(TelemetryConfig::windowed(500))
            .run();
        let series = report.telemetry.as_ref().expect("telemetry requested");
        assert_eq!(metrics.len(), series.windows.len());
        for (event, w) in metrics.iter().zip(&series.windows) {
            match event {
                ResponseEvent::Metric {
                    end,
                    setups,
                    grants,
                    premature,
                    bypass,
                    ..
                } => {
                    assert_eq!(*end, w.end);
                    assert_eq!(*setups, w.ssr_setups);
                    assert_eq!(*grants, w.ssr_grants);
                    assert_eq!(*premature, w.premature_stops());
                    assert_eq!(*bypass, w.bypass_sparse());
                }
                other => panic!("not a metric: {other:?}"),
            }
        }
        // The terminal cell agrees with the direct report too.
        let cell = events
            .iter()
            .find_map(ResponseEvent::snapshot_line)
            .expect("cell event");
        assert_eq!(cell, report.snapshot_line());
    }
}
