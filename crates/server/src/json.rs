//! Flat-JSON field extraction and rendering, shared by the request and
//! response codecs.
//!
//! The protocol's lines are flat objects whose keys are fixed
//! identifiers and whose string values come from a restricted grammar
//! (job ids, design labels, workload specs) — the same hand-rolled
//! discipline as `smart-traffic/trace-v1`, so no JSON dependency is
//! needed. Extractors return `None` on a missing or malformed field;
//! they never panic on arbitrary input (property-tested in
//! `tests/protocol_properties.rs`).

/// Extract a `"key":"value"` string field from a flat JSON object line.
#[must_use]
pub fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let rest = &line[line.find(&needle)? + needle.len()..];
    rest.split('"').next()
}

/// Extract a `"key":123` unsigned numeric field.
#[must_use]
pub fn u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extract a `"key":-123` signed numeric field.
#[must_use]
pub fn i64_field(line: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let token: String = rest
        .chars()
        .enumerate()
        .take_while(|(i, c)| c.is_ascii_digit() || (*i == 0 && *c == '-'))
        .map(|(_, c)| c)
        .collect();
    token.parse().ok()
}

/// Extract a `"key":<float>` field. The value `null` parses as NaN —
/// the codec writes non-finite floats as `null` (JSON has no NaN), and
/// every NaN in the protocol means "nothing was measured".
#[must_use]
pub fn f64_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let token = rest.split([',', '}']).next()?.trim();
    if token == "null" {
        return Some(f64::NAN);
    }
    // Reject tokens str::parse would take but JSON couldn't carry
    // (inf/NaN spellings), so round-trips stay within the format.
    if !token
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        return None;
    }
    token.parse().ok()
}

/// Render a float for a JSON line: shortest-round-trip `Display` for
/// finite values (bit-exact when parsed back), `null` for the rest.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Escape a free-form string (an error message) for embedding in a
/// line: quotes, backslashes and control characters become `\uXXXX`, so
/// the escaped form contains no raw `"` and [`str_field`]'s
/// split-at-quote extraction stays correct.
#[must_use]
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(c, '"' | '\\') || (c as u32) < 0x20 {
            out.push_str(&format!("\\u{:04x}", c as u32));
        } else {
            out.push(c);
        }
    }
    out
}

/// Invert [`escape_str`]: decode `\uXXXX` sequences, passing everything
/// else (including malformed escapes) through unchanged.
#[must_use]
pub fn unescape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let rest: String = chars.clone().take(5).collect();
            if let Some(hex) = rest.strip_prefix('u') {
                if hex.len() == 4 {
                    if let Some(ch) = u32::from_str_radix(hex, 16).ok().and_then(char::from_u32) {
                        out.push(ch);
                        for _ in 0..5 {
                            chars.next();
                        }
                        continue;
                    }
                }
            }
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_and_numeric_fields_extract() {
        let line = "{\"id\":\"job-1\",\"cells\":12,\"delta\":-3,\"lat\":16.25}";
        assert_eq!(str_field(line, "id"), Some("job-1"));
        assert_eq!(u64_field(line, "cells"), Some(12));
        assert_eq!(i64_field(line, "delta"), Some(-3));
        assert_eq!(f64_field(line, "lat"), Some(16.25));
        assert_eq!(str_field(line, "missing"), None);
        assert_eq!(u64_field(line, "missing"), None);
    }

    #[test]
    fn null_floats_round_trip_as_nan() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        let line = format!("{{\"lat\":{}}}", fmt_f64(f64::NAN));
        assert!(f64_field(&line, "lat").expect("present").is_nan());
    }

    #[test]
    fn full_precision_floats_round_trip() {
        for x in [0.1 + 0.2, 1.0 / 3.0, 1e-300, -42.5, 2.0f64.powi(60)] {
            let line = format!("{{\"x\":{}}}", fmt_f64(x));
            assert_eq!(f64_field(&line, "x"), Some(x), "{line}");
        }
    }

    #[test]
    fn escaping_round_trips_hostile_messages() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand tab\t",
            "already-escaped \\u0022 stays",
            "",
        ] {
            let escaped = escape_str(s);
            assert!(!escaped.contains('"'), "{escaped}");
            assert_eq!(unescape_str(&escaped), s);
        }
    }

    #[test]
    fn malformed_values_are_none_not_panics() {
        for line in [
            "{\"x\":}",
            "{\"x\":abc}",
            "{\"x\":\"str\"}",
            "{\"x\":inf}",
            "not json at all",
            "",
        ] {
            assert_eq!(f64_field(line, "x"), None, "{line:?}");
            assert_eq!(u64_field(line, "x"), None, "{line:?}");
        }
    }
}
