//! Design-space search from the command line: score every point of a
//! mapping × design × segmentation space (or hill-climb it) with the
//! Smapper objective and report the winner.
//!
//! ```text
//! cargo run --release -p smart-server --bin smart_search -- \
//!     [--mesh 4] [--topology mesh|torus] [--designs mesh,smart,dedicated] \
//!     [--workloads fig7,app:PIP] [--hpc 1,2,4,8] \
//!     [--strategy exhaustive|greedy] [--threads N] \
//!     [--warmup 0] [--measure 20000] [--drain 20000] [--seed 12648430]
//! ```
//!
//! Axes are comma-separated; workload specs use the protocol grammar
//! (`fig7`, `app:VOPD`, `uniform:<flows>:<rate>:<seed>`,
//! `pattern:<name>:<rate>`). Each candidate is fully simulated for
//! energy and latency (compiled artifacts are cached across candidates)
//! and scored `-(log10(energy_pj) + log10(area_mm2) + log10(cycles))`.
//! The per-candidate lines and winner line are the same stable format
//! the search golden locks.

use smart_server::{
    CandidateScore, DesignCache, PlanSpec, SearchSpace, SearchStrategy, TopologySpec, WorkloadSpec,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_u64 = |name: &str, default: u64| {
        flag(name).map_or(default, |v| {
            v.parse().unwrap_or_else(|e| panic!("{name} {v}: {e}"))
        })
    };
    let mesh = parse_u64("--mesh", 4) as u16;
    let topology = flag("--topology").map_or(TopologySpec::Mesh, |t| {
        TopologySpec::parse(&t).unwrap_or_else(|e| panic!("--topology: {e}"))
    });
    let designs: Vec<_> = flag("--designs")
        .unwrap_or_else(|| "mesh,smart,dedicated".to_owned())
        .split(',')
        .map(|d| smart_server::parse_design(d).unwrap_or_else(|e| panic!("--designs: {e}")))
        .collect();
    let workloads: Vec<_> = flag("--workloads")
        .unwrap_or_else(|| "fig7,app:PIP".to_owned())
        .split(',')
        .map(|w| WorkloadSpec::parse(w).unwrap_or_else(|e| panic!("--workloads: {e}")))
        .collect();
    let hpc: Vec<u64> = flag("--hpc")
        .unwrap_or_else(|| "1,2,4,8".to_owned())
        .split(',')
        .map(|h| h.parse().unwrap_or_else(|e| panic!("--hpc {h}: {e}")))
        .collect();
    let strategy = flag("--strategy").map_or(SearchStrategy::Exhaustive, |s| {
        SearchStrategy::parse(&s).unwrap_or_else(|e| panic!("--strategy: {e}"))
    });
    let threads = flag("--threads").map_or_else(
        || std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        |t| t.parse().unwrap_or_else(|e| panic!("--threads {t}: {e}")),
    );
    let space = SearchSpace {
        mesh,
        topology,
        designs,
        workloads,
        hpc,
        plan: PlanSpec {
            warmup: parse_u64("--warmup", 0),
            measure: parse_u64("--measure", 20_000),
            drain: parse_u64("--drain", 20_000),
            seed: parse_u64("--seed", 0xC0FFEE),
        },
    };

    println!(
        "smart_search: {} points ({} workloads x {} designs x {} hpc) on a {mesh}x{mesh} mesh, \
         strategy {}",
        space.len(),
        space.workloads.len(),
        space.designs.len(),
        space.hpc.len(),
        strategy.name()
    );
    let cache = DesignCache::new(space.len().max(16));
    let quiet = |_: &CandidateScore| {};
    let outcome = smart_server::search::run(&space, strategy, threads, &cache, &quiet)
        .unwrap_or_else(|e| panic!("search failed: {e}"));
    print!("{}", outcome.render());
    let w = outcome.winner();
    println!(
        "best design point: {} running {} at HPC_max={} \
         (energy {:.1} pJ, area {:.3} mm2, {:.2} cycles avg latency)",
        w.design.label(),
        w.workload,
        w.hpc,
        w.energy_pj,
        w.area_mm2,
        w.cycles
    );
}
