//! The server-cache scorecard: time one compile-heavy matrix request
//! against a freshly spawned in-process server, cold (empty cache) and
//! warm (every cell served from the compiled-design cache), and emit a
//! `BENCH_<label>.json` snapshot in the `smart-bench/perf-v1` schema.
//!
//! ```text
//! cargo run --release -p smart-server --bin server_bench -- \
//!     [--quick] [--label server_cache] [--out benchmarks]
//! ```
//!
//! The request fans the paper's eight applications across all three
//! designs (24 cells) on a 16×16 mesh (8×8 under `--quick`) with a
//! short measurement window — the interactive shape the cache serves: a
//! client iterating on a design space re-submits construction-heavy,
//! simulation-light requests. The cold run pays 24 placements +
//! routings + preset compilations; the warm run pays none, so the
//! measured gap is exactly what the cache buys a repeat client. The
//! warm figure is the better of two repeats (the second also confirms
//! the cache is not a one-shot). The bench asserts the cold and warm
//! snapshot lines are identical before reporting: a cache that changes
//! results would be a correctness bug, not a speedup.

use smart_bench::perf::{peak_rss_kb, to_json, PerfResult};
use smart_server::{
    Client, PlanSpec, Request, ResponseEvent, Server, ServiceConfig, TopologySpec, WorkloadSpec,
};
use std::path::PathBuf;
use std::time::Instant;

/// Sorted-by-index `(snapshot_line, cycles)` pairs of a response.
fn cells_of(events: &[ResponseEvent]) -> Vec<(String, u64)> {
    let mut cells: Vec<(u64, String, u64)> = events
        .iter()
        .filter_map(|e| match e {
            ResponseEvent::Cell { index, cycles, .. } => {
                Some((*index, e.snapshot_line().expect("cell"), *cycles))
            }
            _ => None,
        })
        .collect();
    cells.sort_by_key(|(i, _, _)| *i);
    cells
        .into_iter()
        .map(|(_, line, cyc)| (line, cyc))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let label = flag("--label").unwrap_or_else(|| "server_cache".to_owned());
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "benchmarks".to_owned()));
    // The scale knob grows the *construction* cost (mesh size), not the
    // cycle budget: the cache's value is compilation, so the committed
    // snapshot must keep the request compile-bound.
    let mesh: u16 = if quick { 8 } else { 16 };

    let server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            cache_capacity: 64,
            ..ServiceConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let request = |id: &str| Request::Matrix {
        id: id.to_owned(),
        mesh,
        topology: TopologySpec::Mesh,
        shards: 1,
        designs: smart_core::noc::DesignKind::ALL.to_vec(),
        workloads: smart_taskgraph::apps::all()
            .iter()
            .map(|app| WorkloadSpec::App(app.name().to_owned()))
            .collect(),
        plan: PlanSpec {
            warmup: 0,
            measure: 2_000,
            drain: 2_000,
            seed: 0xC0FFEE,
        },
    };
    let submit = |client: &mut Client, id: &str| {
        let start = Instant::now();
        let events = client.submit(&request(id)).expect("submit matrix");
        (start.elapsed().as_secs_f64(), events)
    };

    let (cold_secs, cold) = submit(&mut client, "cold");
    let (warm1_secs, warm1) = submit(&mut client, "warm1");
    let (warm2_secs, warm2) = submit(&mut client, "warm2");
    let warm_secs = warm1_secs.min(warm2_secs);

    let cold_cells = cells_of(&cold);
    assert!(!cold_cells.is_empty(), "matrix returned no cells");
    assert_eq!(cold_cells, cells_of(&warm1), "cache changed results");
    assert_eq!(cold_cells, cells_of(&warm2), "cache changed results");
    let warm_hits = match warm2.last() {
        Some(ResponseEvent::Done {
            cache_hits, cells, ..
        }) => {
            assert_eq!(cache_hits, cells, "warm run should be fully cached");
            *cache_hits
        }
        other => panic!("no done event: {other:?}"),
    };
    handle.shutdown().expect("shutdown");

    let cycles: u64 = cold_cells.iter().map(|(_, c)| *c).sum();
    let result = |name: &str, wall: f64| PerfResult {
        name: name.to_owned(),
        cycles,
        wall_seconds: wall,
        cycles_per_sec: cycles as f64 / wall.max(1e-12),
        packets_delivered: 0,
        peak_rss_kb: peak_rss_kb(),
    };
    let results = vec![
        result("server_cold_matrix", cold_secs),
        result("server_warm_matrix", warm_secs),
    ];
    println!(
        "server_bench: {} cells on a {mesh}x{mesh} mesh, {cycles} simulated cycles per request",
        cold_cells.len()
    );
    println!("  cold (compile everything): {cold_secs:.3} s");
    println!("  warm ({warm_hits} cache hits):      {warm_secs:.3} s");
    println!("  cached speedup:            {:.2}x", cold_secs / warm_secs);

    let json = to_json(&label, if quick { 0.1 } else { 1.0 }, &results);
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join(format!("BENCH_{label}.json"));
    std::fs::write(&path, json).expect("write BENCH json");
    println!("wrote {}", path.display());
}
