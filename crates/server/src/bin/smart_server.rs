//! The experiment daemon: accept JSONL requests over TCP and stream
//! results until a `shutdown` request arrives.
//!
//! ```text
//! cargo run --release -p smart-server --bin smart_server -- \
//!     [--addr 127.0.0.1:7433] [--threads N] [--cache N]
//! ```
//!
//! `--addr` is the listen address (port 0 picks an ephemeral port,
//! printed on stdout); `--threads` sizes the per-request worker pool
//! (default: all cores); `--cache` bounds the compiled-design cache
//! (default 64). Protocol reference: the `smart_server::protocol`
//! module docs and the README's "Experiment service" section.

use smart_server::{Server, ServiceConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let addr = flag("--addr").unwrap_or_else(|| "127.0.0.1:7433".to_owned());
    let mut cfg = ServiceConfig::default();
    if let Some(threads) = flag("--threads") {
        cfg.threads = threads
            .parse()
            .unwrap_or_else(|e| panic!("--threads {threads}: {e}"));
    }
    if let Some(cache) = flag("--cache") {
        cfg.cache_capacity = cache
            .parse()
            .unwrap_or_else(|e| panic!("--cache {cache}: {e}"));
    }

    let server = Server::bind(&addr, cfg).unwrap_or_else(|e| panic!("bind {addr}: {e}"));
    let bound = server.local_addr().expect("bound socket has an address");
    println!(
        "smart_server listening on {bound} ({} worker threads, cache {})",
        cfg.threads, cfg.cache_capacity
    );
    server.run().expect("accept loop");
    println!("smart_server: shutdown request honored, exiting");
}
