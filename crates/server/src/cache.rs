//! The compiled-artifact cache: [`CompiledDesign`] handles keyed by the
//! stable [`config_key`] hash, plus routed workloads keyed by
//! [`workload_key`] so the design axis of one request shares a single
//! materialization (the same trick `ExperimentMatrix` plays serially).
//!
//! Compilation happens **outside** the lock — concurrent requests for
//! different keys compile in parallel; concurrent requests for the same
//! key may compile twice, and the second insert wins harmlessly because
//! compilation is a pure function of the key. Eviction is FIFO by first
//! insertion, bounded by `capacity`.

use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_harness::{config_key, workload_key, CompiledDesign, RoutedWorkload, Workload};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Keyed store state behind one lock.
struct CacheState {
    /// Routed workloads by [`workload_key`].
    routed: HashMap<u64, Arc<RoutedWorkload>>,
    /// Compiled designs by [`config_key`].
    designs: HashMap<u64, Arc<CompiledDesign>>,
    /// Design keys in first-insertion order (FIFO eviction queue).
    order: VecDeque<u64>,
}

/// A bounded, thread-safe cache of compiled design handles.
pub struct DesignCache {
    state: Mutex<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DesignCache {
    /// An empty cache holding at most `capacity` compiled designs
    /// (routed workloads ride along uncapped — they are shared by the
    /// cached designs and small in comparison).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DesignCache {
            state: Mutex::new(CacheState {
                routed: HashMap::new(),
                designs: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The compiled handle for `(cfg, kind, workload)`, compiling on a
    /// miss. The boolean is `true` on a hit.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as `Workload::materialize`
    /// (unknown application name, pattern on an incompatible mesh) —
    /// callers validate specs first or wrap in `catch_unwind`.
    pub fn design(
        &self,
        cfg: &NocConfig,
        kind: DesignKind,
        workload: &Workload,
    ) -> (Arc<CompiledDesign>, bool) {
        let key = config_key(cfg, kind, workload);
        if let Some(found) = self
            .state
            .lock()
            .expect("unpoisoned cache")
            .designs
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(found), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compile outside the lock; share the routed form across kinds.
        let routed = self.routed(cfg, workload);
        let compiled = Arc::new(CompiledDesign::from_routed(cfg, kind, (*routed).clone()));
        let mut state = self.state.lock().expect("unpoisoned cache");
        let state = &mut *state;
        if let std::collections::hash_map::Entry::Vacant(slot) = state.designs.entry(key) {
            slot.insert(Arc::clone(&compiled));
            state.order.push_back(key);
            while state.designs.len() > self.capacity {
                if let Some(evicted) = state.order.pop_front() {
                    state.designs.remove(&evicted);
                }
            }
        }
        (compiled, false)
    }

    /// The routed (placed + routed) form of `workload` on `cfg`,
    /// materializing on a miss. Shared across the design axis.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as `Workload::materialize`.
    pub fn routed(&self, cfg: &NocConfig, workload: &Workload) -> Arc<RoutedWorkload> {
        let key = workload_key(cfg, workload);
        if let Some(found) = self
            .state
            .lock()
            .expect("unpoisoned cache")
            .routed
            .get(&key)
        {
            return Arc::clone(found);
        }
        let routed = Arc::new(workload.materialize(cfg));
        let mut state = self.state.lock().expect("unpoisoned cache");
        Arc::clone(state.routed.entry(key).or_insert(routed))
    }

    /// Compiled-design lookups that hit.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Compiled-design lookups that missed (and compiled).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Compiled designs currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("unpoisoned cache").designs.len()
    }

    /// `true` when no design is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares_the_handle() {
        let cache = DesignCache::new(8);
        let cfg = NocConfig::paper_4x4();
        let w = Workload::fig7();
        let (first, hit1) = cache.design(&cfg, DesignKind::Smart, &w);
        let (second, hit2) = cache.design(&cfg, DesignKind::Smart, &w);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn torus_and_mesh_of_equal_size_miss_separately() {
        let cache = DesignCache::new(8);
        let w = Workload::fig7();
        let (mesh_handle, _) = cache.design(&NocConfig::scaled(4), DesignKind::Smart, &w);
        let (torus_handle, hit) = cache.design(&NocConfig::scaled_torus(4), DesignKind::Smart, &w);
        assert!(
            !hit,
            "a torus must never be served the mesh's compiled design"
        );
        assert!(!Arc::ptr_eq(&mesh_handle, &torus_handle));
    }

    #[test]
    fn designs_share_one_routed_workload() {
        let cache = DesignCache::new(8);
        let cfg = NocConfig::paper_4x4();
        let w = Workload::app("PIP");
        cache.design(&cfg, DesignKind::Mesh, &w);
        cache.design(&cfg, DesignKind::Smart, &w);
        let routed = cache.routed(&cfg, &w);
        assert_eq!(routed.name, "PIP");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = DesignCache::new(2);
        let cfg = NocConfig::paper_4x4();
        let w = Workload::fig7();
        cache.design(&cfg, DesignKind::Mesh, &w);
        cache.design(&cfg, DesignKind::Smart, &w);
        cache.design(&cfg, DesignKind::Dedicated, &w);
        assert_eq!(cache.len(), 2);
        // Mesh (oldest) was evicted; re-requesting it misses.
        let (_, hit) = cache.design(&cfg, DesignKind::Mesh, &w);
        assert!(!hit);
        // Dedicated is still resident.
        let (_, hit) = cache.design(&cfg, DesignKind::Dedicated, &w);
        assert!(hit);
    }
}
