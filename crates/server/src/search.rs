//! Design-space search over mapping × design × segmentation, scored
//! with the Smapper objective
//! `score = -(log10(energy) + log10(area) + log10(cycles))` — higher is
//! better; each factor-of-ten saved in energy, silicon or latency adds
//! one point.
//!
//! * **mapping axis** — which workload is placed ([`WorkloadSpec`]),
//! * **design axis** — Mesh / SMART / Dedicated ([`DesignKind`]),
//! * **segmentation axis** — `HPC_max`, the link segmentation the SMART
//!   presets are compiled against.
//!
//! Energy and cycles come from a full simulation of each candidate
//! (through the shared [`DesignCache`], so repeated points are free);
//! area comes from the analytic wire/buffer model below. Two
//! strategies: [`SearchStrategy::Exhaustive`] scores every point in
//! parallel, [`SearchStrategy::Greedy`] hill-climbs from the first
//! point, evaluating only visited neighborhoods.

use crate::cache::DesignCache;
use crate::protocol::{PlanSpec, SearchStrategy, TopologySpec, WorkloadSpec};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_harness::{run_cells_observed, CompiledDesign, Experiment, Workload};
use std::collections::HashMap;

/// Input buffer cell area, µm² per bit (45 nm SRAM-cell scale).
const BUFFER_UM2_PER_BIT: f64 = 0.6;
/// Crossbar area, µm² per crosspoint bit.
const XBAR_UM2_PER_BIT: f64 = 0.3;
/// Repeated-wire pitch, mm per track (140 nm double spacing).
const WIRE_PITCH_MM: f64 = 0.000_14;
/// Per-hop SMART crossbar overhead: the bypass path deepens the switch
/// by one mux stage per additional hop of reach.
const SMART_XBAR_PER_HOP: f64 = 0.04;

/// The searched space: every axis plus the per-candidate run schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Mesh edge (`k × k`).
    pub mesh: u16,
    /// Fabric shape the edge scales.
    pub topology: TopologySpec,
    /// Design axis.
    pub designs: Vec<DesignKind>,
    /// Mapping axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Segmentation axis (`HPC_max` values).
    pub hpc: Vec<u64>,
    /// Run schedule shared by every candidate.
    pub plan: PlanSpec,
}

impl SearchSpace {
    /// Total points in the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len() * self.designs.len() * self.hpc.len()
    }

    /// `true` when any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattened index of `(workload wi, design di, hpc hi)` —
    /// workload-major, design-middle, hpc-minor.
    #[must_use]
    pub fn index(&self, wi: usize, di: usize, hi: usize) -> usize {
        (wi * self.designs.len() + di) * self.hpc.len() + hi
    }

    /// Invert [`SearchSpace::index`].
    #[must_use]
    pub fn coords(&self, index: usize) -> (usize, usize, usize) {
        let hi = index % self.hpc.len();
        let rest = index / self.hpc.len();
        (rest / self.designs.len(), rest % self.designs.len(), hi)
    }
}

/// One scored candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Flattened index into the space.
    pub index: usize,
    /// Design of the candidate.
    pub design: DesignKind,
    /// Workload spec string of the candidate.
    pub workload: String,
    /// `HPC_max` of the candidate.
    pub hpc: u64,
    /// Simulated energy over the run, picojoules.
    pub energy_pj: f64,
    /// Analytic area, mm².
    pub area_mm2: f64,
    /// Average packet latency, cycles.
    pub cycles: f64,
    /// The Smapper score (`-inf` when nothing was measured).
    pub score: f64,
}

/// A finished search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Points in the space.
    pub space: usize,
    /// The strategy that ran.
    pub strategy: SearchStrategy,
    /// Evaluated candidates, in index order.
    pub candidates: Vec<CandidateScore>,
    /// Flattened index of the winner.
    pub winner_index: usize,
    /// The winning score.
    pub winner_score: f64,
}

impl SearchOutcome {
    /// The winning candidate.
    ///
    /// # Panics
    ///
    /// Never — an outcome always holds its winner.
    #[must_use]
    pub fn winner(&self) -> &CandidateScore {
        self.candidates
            .iter()
            .find(|c| c.index == self.winner_index)
            .expect("winner is always an evaluated candidate")
    }

    /// Stable full-precision text rendering (the search golden's
    /// format): one `candidate` line per evaluated point in index
    /// order, then one `winner` line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.candidates {
            out.push_str(&format!(
                "candidate index={} design={} workload={} hpc={} energy_pj={} area_mm2={} \
                 cycles={} score={}\n",
                c.index,
                c.design.label(),
                c.workload,
                c.hpc,
                c.energy_pj,
                c.area_mm2,
                c.cycles,
                c.score
            ));
        }
        let w = self.winner();
        out.push_str(&format!(
            "winner index={} design={} workload={} hpc={} score={} evaluated={} space={}\n",
            w.index,
            w.design.label(),
            w.workload,
            w.hpc,
            w.score,
            self.candidates.len(),
            self.space
        ));
        out
    }
}

/// Run a search, streaming each scored candidate through `emit` as it
/// finishes (exhaustive searches evaluate in parallel, so emission
/// order is nondeterministic; the returned outcome is always in index
/// order).
///
/// # Errors
///
/// Returns a description when the space is empty or a workload spec
/// does not resolve.
///
/// # Panics
///
/// Panics under the same conditions as `Workload::materialize` (e.g. a
/// synthetic pattern on an incompatible mesh) — the server wraps
/// handlers in `catch_unwind`.
pub fn run(
    space: &SearchSpace,
    strategy: SearchStrategy,
    threads: usize,
    cache: &DesignCache,
    emit: &(dyn Fn(&CandidateScore) + Sync),
) -> Result<SearchOutcome, String> {
    if space.is_empty() {
        return Err("empty search space".to_owned());
    }
    // Resolve every workload up front so bad specs fail before any
    // simulation starts.
    let workloads: Vec<Workload> = space
        .workloads
        .iter()
        .map(WorkloadSpec::to_workload)
        .collect::<Result<_, _>>()?;
    let evaluate = |index: usize| -> CandidateScore {
        let (wi, di, hi) = space.coords(index);
        score_candidate(space, index, workloads[wi].clone(), di, hi, cache)
    };
    let candidates = match strategy {
        SearchStrategy::Exhaustive => {
            let (scored, _) = run_cells_observed(space.len(), threads, None, evaluate, |_, c| {
                emit(c);
            });
            scored
                .into_iter()
                .map(|c| c.expect("no cancel flag, so every point scored"))
                .collect()
        }
        SearchStrategy::Greedy => greedy(space, &evaluate, emit),
    };
    Ok(finish(space, strategy, candidates))
}

/// Score one point: simulate (through the cache) for energy and
/// latency, apply the analytic area model, combine.
fn score_candidate(
    space: &SearchSpace,
    index: usize,
    workload: Workload,
    di: usize,
    hi: usize,
    cache: &DesignCache,
) -> CandidateScore {
    let design = space.designs[di];
    let hpc = space.hpc[hi];
    let mut cfg = space.topology.config(space.mesh);
    cfg.hpc_max = hpc as usize;
    let (handle, _) = cache.design(&cfg, design, &workload);
    let report = Experiment::new(cfg.clone())
        .design(design)
        .workload(workload)
        .plan(space.plan.to_plan())
        .measure_power()
        .run_compiled(&handle);
    let seconds = report.total_cycles as f64 / (cfg.clock_ghz * 1e9);
    let energy_pj = report
        .power
        .as_ref()
        .map_or(f64::NAN, |p| p.total_w() * seconds * 1e12);
    let area_mm2 = area_mm2(&cfg, design, &handle);
    let cycles = report.avg_packet_latency;
    let score = if report.measured_packets == 0 {
        // A design that moved no traffic cannot win on cheapness.
        f64::NEG_INFINITY
    } else {
        -(energy_pj.log10() + area_mm2.log10() + cycles.log10())
    };
    CandidateScore {
        index,
        design,
        workload: space.workloads[space.coords(index).0].render(),
        hpc,
        energy_pj,
        area_mm2,
        cycles,
        score,
    }
}

/// Serial greedy hill-climb: start at point `(0, 0, 0)`, repeatedly
/// move to the best strictly-improving ±1 axis neighbor, memoizing
/// evaluations.
fn greedy(
    space: &SearchSpace,
    evaluate: &dyn Fn(usize) -> CandidateScore,
    emit: &(dyn Fn(&CandidateScore) + Sync),
) -> Vec<CandidateScore> {
    let mut seen: HashMap<usize, CandidateScore> = HashMap::new();
    let score_at = |pos: (usize, usize, usize), seen: &mut HashMap<usize, CandidateScore>| {
        let index = space.index(pos.0, pos.1, pos.2);
        if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(index) {
            let c = evaluate(index);
            emit(&c);
            slot.insert(c);
        }
        seen[&index].score
    };
    let mut here = (0usize, 0usize, 0usize);
    let mut best = score_at(here, &mut seen);
    loop {
        let (wi, di, hi) = here;
        let mut neighbors = Vec::with_capacity(6);
        if wi > 0 {
            neighbors.push((wi - 1, di, hi));
        }
        if wi + 1 < space.workloads.len() {
            neighbors.push((wi + 1, di, hi));
        }
        if di > 0 {
            neighbors.push((wi, di - 1, hi));
        }
        if di + 1 < space.designs.len() {
            neighbors.push((wi, di + 1, hi));
        }
        if hi > 0 {
            neighbors.push((wi, di, hi - 1));
        }
        if hi + 1 < space.hpc.len() {
            neighbors.push((wi, di, hi + 1));
        }
        let step = neighbors
            .into_iter()
            .map(|pos| (score_at(pos, &mut seen), pos))
            .filter(|(s, _)| *s > best)
            .max_by(|(a, _), (b, _)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        match step {
            Some((score, pos)) => {
                here = pos;
                best = score;
            }
            None => break,
        }
    }
    let mut candidates: Vec<CandidateScore> = seen.into_values().collect();
    candidates.sort_by_key(|c| c.index);
    candidates
}

/// Pick the winner (highest score, ties to the lowest index) and
/// assemble the outcome.
fn finish(
    space: &SearchSpace,
    strategy: SearchStrategy,
    candidates: Vec<CandidateScore>,
) -> SearchOutcome {
    let winner = candidates
        .iter()
        .max_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                // Ties (and NaN) resolve toward the lower index.
                .then(b.index.cmp(&a.index))
        })
        .expect("non-empty space yields candidates");
    SearchOutcome {
        space: space.len(),
        strategy,
        winner_index: winner.index,
        winner_score: winner.score,
        candidates: candidates.clone(),
    }
}

/// Analytic silicon area of one design point, mm² — buffers and
/// crossbars at 45 nm cell densities plus repeated link wires at the
/// double-spaced pitch.
#[must_use]
pub fn area_mm2(cfg: &NocConfig, design: DesignKind, handle: &CompiledDesign) -> f64 {
    let n = cfg.topology.len() as f64;
    let w = f64::from(cfg.topology.width());
    let h = f64::from(cfg.topology.height());
    let flit_bits = f64::from(cfg.flit_bits);
    let ports = f64::from(cfg.router_ports);
    let buffer_um2 =
        ports * cfg.vcs_per_port as f64 * cfg.vc_depth as f64 * flit_bits * BUFFER_UM2_PER_BIT;
    let xbar_um2 = ports * ports * flit_bits * XBAR_UM2_PER_BIT;
    // Directed inter-router channels of a w × h mesh.
    let links = 2.0 * (w * (h - 1.0) + h * (w - 1.0));
    let link_mm2 =
        links * cfg.hop_mm * f64::from(cfg.channel_bits + cfg.credit_bits) * WIRE_PITCH_MM;
    match design {
        DesignKind::Mesh => n * (buffer_um2 + xbar_um2) * 1e-6 + link_mm2,
        DesignKind::Smart => {
            // The bypass path deepens the crossbar per hop of reach, and
            // every channel carries SSR request wires sized to address
            // HPC_max hops ahead.
            let smart_xbar = xbar_um2 * (1.0 + SMART_XBAR_PER_HOP * cfg.hpc_max as f64);
            let ssr_bits = (usize::BITS - cfg.hpc_max.leading_zeros()) as f64;
            let ssr_mm2 = links * cfg.hop_mm * ssr_bits * WIRE_PITCH_MM;
            n * (buffer_um2 + smart_xbar) * 1e-6 + link_mm2 + ssr_mm2
        }
        DesignKind::Dedicated => {
            // Point-to-point wiring pays per flow: a full-width channel
            // along the whole route plus a FIFO at each endpoint. More
            // flows, more silicon — the yardstick is not free.
            let routes = &handle.routed().routes;
            let wire_mm2: f64 = routes
                .iter()
                .map(|(_, r)| {
                    r.num_hops() as f64 * cfg.hop_mm * f64::from(cfg.channel_bits) * WIRE_PITCH_MM
                })
                .sum();
            let fifo_um2 =
                2.0 * cfg.vc_depth as f64 * flit_bits * BUFFER_UM2_PER_BIT * routes.len() as f64;
            wire_mm2 + fifo_um2 * 1e-6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_harness::RunPlan;

    fn small_space() -> SearchSpace {
        SearchSpace {
            mesh: 4,
            topology: TopologySpec::Mesh,
            designs: vec![DesignKind::Mesh, DesignKind::Smart],
            workloads: vec![WorkloadSpec::Fig7, WorkloadSpec::App("PIP".into())],
            hpc: vec![1, 8],
            plan: PlanSpec::from(RunPlan::smoke()),
        }
    }

    #[test]
    fn index_round_trips() {
        let space = small_space();
        for i in 0..space.len() {
            let (wi, di, hi) = space.coords(i);
            assert_eq!(space.index(wi, di, hi), i);
        }
    }

    #[test]
    fn exhaustive_scores_every_point_deterministically() {
        let space = small_space();
        let cache = DesignCache::new(32);
        let first =
            run(&space, SearchStrategy::Exhaustive, 4, &cache, &|_| {}).expect("search runs");
        let second =
            run(&space, SearchStrategy::Exhaustive, 1, &cache, &|_| {}).expect("search runs");
        assert_eq!(first.candidates.len(), space.len());
        assert_eq!(first.render(), second.render(), "parallel == serial");
        let w = first.winner();
        assert!(w.score.is_finite());
        assert!(w.energy_pj > 0.0 && w.area_mm2 > 0.0 && w.cycles > 0.0);
    }

    #[test]
    fn greedy_evaluates_a_subset_and_agrees_on_local_quality() {
        let space = small_space();
        let cache = DesignCache::new(32);
        let outcome = run(&space, SearchStrategy::Greedy, 1, &cache, &|_| {}).expect("search runs");
        assert!(!outcome.candidates.is_empty());
        assert!(outcome.candidates.len() <= space.len());
        // The climb never returns a point worse than its start.
        let start = outcome
            .candidates
            .iter()
            .find(|c| c.index == 0)
            .expect("start evaluated");
        assert!(outcome.winner_score >= start.score);
    }

    #[test]
    fn smart_area_grows_with_segmentation() {
        let w = Workload::fig7();
        let mut low = NocConfig::paper_4x4();
        low.hpc_max = 1;
        let mut high = NocConfig::paper_4x4();
        high.hpc_max = 8;
        let hl = CompiledDesign::compile(&low, DesignKind::Smart, &w);
        let hh = CompiledDesign::compile(&high, DesignKind::Smart, &w);
        assert!(area_mm2(&high, DesignKind::Smart, &hh) > area_mm2(&low, DesignKind::Smart, &hl));
        // SMART always pays more silicon than the plain mesh it extends.
        let mesh = CompiledDesign::compile(&low, DesignKind::Mesh, &w);
        assert!(area_mm2(&low, DesignKind::Smart, &hl) > area_mm2(&low, DesignKind::Mesh, &mesh));
    }

    #[test]
    fn empty_space_is_an_error() {
        let mut space = small_space();
        space.hpc.clear();
        let cache = DesignCache::new(4);
        assert!(run(&space, SearchStrategy::Exhaustive, 1, &cache, &|_| {}).is_err());
    }
}
