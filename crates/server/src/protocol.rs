//! The versioned JSONL request/response protocol
//! (`smart-server/req-v1` / `smart-server/resp-v1`).
//!
//! A request is a **header line** — `{"schema":…,"id":…,"kind":…,
//! "lines":N}` — followed by exactly `N` body lines, so a stream reader
//! always knows how many lines to consume and a parse failure inside a
//! body never desynchronizes the connection. Responses are a stream of
//! self-describing event lines ending in exactly one terminal event
//! ([`ResponseEvent::Done`] or [`ResponseEvent::Error`]).
//!
//! Everything is hand-rolled flat JSON in the `smart-traffic/trace-v1`
//! idiom: fixed identifier keys, restricted string grammars (job ids,
//! design labels, workload specs), numeric fields in shortest
//! round-trip form — see [`crate::json`]. Parsing arbitrary input
//! returns typed [`ProtocolError`]s and never panics (property-tested).

use crate::json;
use smart_core::noc::DesignKind;
use smart_harness::{RunPlan, ScheduleDesign, SpatialPattern, Workload};
use smart_traffic::TraceFile;
use std::fmt;

/// Schema tag of every request header.
pub const REQUEST_SCHEMA: &str = "smart-server/req-v1";
/// Schema tag carried by the first response event of a stream.
pub const RESPONSE_SCHEMA: &str = "smart-server/resp-v1";

/// Longest accepted job id.
const MAX_ID_LEN: usize = 64;
/// Largest accepted `k × k` mesh edge.
const MAX_MESH: u64 = 64;

/// A malformed request document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// 1-based line of the offending text (0 for a missing header).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl ProtocolError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ProtocolError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// `true` for the job-id grammar: 1–64 chars of `[A-Za-z0-9_-]` (no
/// escaping needed anywhere the id is embedded).
#[must_use]
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_LEN
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// A workload in the protocol's compact spec grammar (no spaces, no
/// quotes — specs can be space-separated inside one JSON string field):
///
/// * `fig7` — the Fig 7 walk-through,
/// * `app:VOPD` — one of the eight applications,
/// * `uniform:<flows>:<rate>:<seed>` — uniform-random Bernoulli,
/// * `pattern:<name>:<rate>` — a synthetic [`SpatialPattern`] by label
///   (`transpose`, `bit-complement`, `bit-reverse`, `shuffle`,
///   `tornado`, `neighbor`).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The Fig 7 four-flow walk-through.
    Fig7,
    /// One of the paper's eight applications, by name.
    App(String),
    /// Uniform-random flows at one rate, seeded.
    Uniform {
        /// Number of random flows (≥ 1).
        flows: u64,
        /// Packets-per-cycle injection rate per flow.
        rate: f64,
        /// RNG seed for the pair choice.
        seed: u64,
    },
    /// A named synthetic pattern at one rate.
    Pattern {
        /// Pattern label (see the grammar above).
        name: String,
        /// Packets-per-cycle rate per unit-weight flow.
        rate: f64,
    },
}

impl WorkloadSpec {
    /// Render in the spec grammar (the inverse of [`WorkloadSpec::parse`]).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            WorkloadSpec::Fig7 => "fig7".to_owned(),
            WorkloadSpec::App(name) => format!("app:{name}"),
            WorkloadSpec::Uniform { flows, rate, seed } => {
                format!("uniform:{flows}:{rate}:{seed}")
            }
            WorkloadSpec::Pattern { name, rate } => format!("pattern:{name}:{rate}"),
        }
    }

    /// Parse one spec token.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated grammar rule.
    pub fn parse(spec: &str) -> Result<WorkloadSpec, String> {
        if spec == "fig7" {
            return Ok(WorkloadSpec::Fig7);
        }
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        let rate_of = |s: &str| -> Result<f64, String> {
            let rate: f64 = s
                .parse()
                .map_err(|_| format!("bad rate {s:?} in {spec:?}"))?;
            if !rate.is_finite() || rate < 0.0 {
                return Err(format!("rate {rate} out of range in {spec:?}"));
            }
            Ok(rate)
        };
        match (kind, rest.as_slice()) {
            ("app", [name]) => {
                if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return Err(format!("bad application name in {spec:?}"));
                }
                Ok(WorkloadSpec::App((*name).to_owned()))
            }
            ("uniform", [flows, rate, seed]) => {
                let flows: u64 = flows
                    .parse()
                    .map_err(|_| format!("bad flow count in {spec:?}"))?;
                if flows == 0 {
                    return Err(format!(
                        "uniform workload needs at least one flow: {spec:?}"
                    ));
                }
                let seed: u64 = seed.parse().map_err(|_| format!("bad seed in {spec:?}"))?;
                Ok(WorkloadSpec::Uniform {
                    flows,
                    rate: rate_of(rate)?,
                    seed,
                })
            }
            ("pattern", [name, rate]) => {
                if pattern_by_name(name).is_none() {
                    return Err(format!("unknown pattern {name:?} in {spec:?}"));
                }
                Ok(WorkloadSpec::Pattern {
                    name: (*name).to_owned(),
                    rate: rate_of(rate)?,
                })
            }
            _ => Err(format!(
                "unknown workload spec {spec:?} (expected fig7, app:<name>, \
                 uniform:<flows>:<rate>:<seed>, or pattern:<name>:<rate>)"
            )),
        }
    }

    /// Resolve to a harness [`Workload`], validating names the harness
    /// would otherwise panic on.
    ///
    /// # Errors
    ///
    /// Returns a description for an unknown application or pattern.
    pub fn to_workload(&self) -> Result<Workload, String> {
        match self {
            WorkloadSpec::Fig7 => Ok(Workload::fig7()),
            WorkloadSpec::App(name) => {
                if smart_taskgraph::apps::by_name(name).is_none() {
                    return Err(format!("unknown application {name:?}"));
                }
                Ok(Workload::app(name))
            }
            WorkloadSpec::Uniform { flows, rate, seed } => {
                Ok(Workload::uniform(*flows as usize, *rate, *seed))
            }
            WorkloadSpec::Pattern { name, rate } => {
                let pattern =
                    pattern_by_name(name).ok_or_else(|| format!("unknown pattern {name:?}"))?;
                Ok(Workload::patterned(pattern, *rate))
            }
        }
    }
}

/// The parameterless classic patterns addressable by spec label.
fn pattern_by_name(name: &str) -> Option<SpatialPattern> {
    match name {
        "transpose" => Some(SpatialPattern::Transpose),
        "bit-complement" => Some(SpatialPattern::BitComplement),
        "bit-reverse" => Some(SpatialPattern::BitReverse),
        "shuffle" => Some(SpatialPattern::Shuffle),
        "tornado" => Some(SpatialPattern::Tornado),
        "neighbor" => Some(SpatialPattern::Neighbor),
        _ => None,
    }
}

/// Fabric shape on the wire. The `"topology"` field is optional in
/// every run request: **absent means mesh**, so every
/// `smart-server/req-v1` document written before the torus existed
/// parses (and re-renders) byte-identically. Rendering emits the field
/// only for the torus for the same reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologySpec {
    /// `k × k` mesh (the wire default).
    #[default]
    Mesh,
    /// `k × k` torus: same grid plus wraparound links on every row and
    /// column.
    Torus,
}

impl TopologySpec {
    /// Protocol name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TopologySpec::Mesh => "mesh",
            TopologySpec::Torus => "torus",
        }
    }

    /// Parse a protocol name.
    ///
    /// # Errors
    ///
    /// Returns a description naming the accepted set.
    pub fn parse(name: &str) -> Result<TopologySpec, String> {
        match name {
            "mesh" => Ok(TopologySpec::Mesh),
            "torus" => Ok(TopologySpec::Torus),
            _ => Err(format!(
                "unknown topology {name:?} (expected mesh or torus)"
            )),
        }
    }

    /// The scaled `k × k` config this spec selects.
    #[must_use]
    pub fn config(self, k: u16) -> smart_core::config::NocConfig {
        match self {
            TopologySpec::Mesh => smart_core::config::NocConfig::scaled(k),
            TopologySpec::Torus => smart_core::config::NocConfig::scaled_torus(k),
        }
    }

    /// The `,"topology":…` body-line fragment: empty for the mesh so
    /// pre-torus documents render byte-identically.
    fn render_field(self) -> &'static str {
        match self {
            TopologySpec::Mesh => "",
            TopologySpec::Torus => ",\"topology\":\"torus\"",
        }
    }
}

/// Extract the optional `"topology"` field; absent defaults to mesh.
fn topology_field(line: &str, line_no: usize) -> Result<TopologySpec, ProtocolError> {
    match json::str_field(line, "topology") {
        None => Ok(TopologySpec::Mesh),
        Some(raw) => TopologySpec::parse(raw).map_err(|m| ProtocolError::new(line_no, m)),
    }
}

/// The `,"shards":…` body-line fragment: empty for the serial engine so
/// pre-sharding documents render byte-identically.
fn render_shards(shards: usize) -> String {
    if shards <= 1 {
        String::new()
    } else {
        format!(",\"shards\":{shards}")
    }
}

/// Extract the optional `"shards"` field; absent defaults to serial (1).
/// Sharding is an execution strategy with bit-identical results, so a
/// request without the field is exactly the pre-sharding protocol.
fn shards_field(line: &str, line_no: usize) -> Result<usize, ProtocolError> {
    match json::u64_field(line, "shards") {
        None => Ok(1),
        Some(0) => Err(ProtocolError::new(line_no, "shards must be at least 1")),
        Some(n) if n > MAX_MESH => Err(ProtocolError::new(
            line_no,
            format!("shards {n} outside 1..={MAX_MESH}"),
        )),
        Some(n) => Ok(n as usize),
    }
}

/// Render a design kind in the protocol's lowercase grammar.
#[must_use]
pub fn design_name(kind: DesignKind) -> &'static str {
    match kind {
        DesignKind::Mesh => "mesh",
        DesignKind::Smart => "smart",
        DesignKind::Dedicated => "dedicated",
    }
}

/// Parse a lowercase design name.
///
/// # Errors
///
/// Returns a description naming the accepted set.
pub fn parse_design(name: &str) -> Result<DesignKind, String> {
    match name {
        "mesh" => Ok(DesignKind::Mesh),
        "smart" => Ok(DesignKind::Smart),
        "dedicated" => Ok(DesignKind::Dedicated),
        _ => Err(format!(
            "unknown design {name:?} (expected mesh, smart, or dedicated)"
        )),
    }
}

/// Render a schedule design in the protocol's lowercase grammar.
#[must_use]
pub fn schedule_design_name(design: ScheduleDesign) -> &'static str {
    match design {
        ScheduleDesign::Mesh => "mesh",
        ScheduleDesign::Smart => "smart",
        ScheduleDesign::Dedicated => "dedicated",
        ScheduleDesign::Reconfigurable => "reconfigurable",
    }
}

/// Parse a lowercase schedule-design name.
///
/// # Errors
///
/// Returns a description naming the accepted set.
pub fn parse_schedule_design(name: &str) -> Result<ScheduleDesign, String> {
    match name {
        "mesh" => Ok(ScheduleDesign::Mesh),
        "smart" => Ok(ScheduleDesign::Smart),
        "dedicated" => Ok(ScheduleDesign::Dedicated),
        "reconfigurable" => Ok(ScheduleDesign::Reconfigurable),
        _ => Err(format!(
            "unknown schedule design {name:?} (expected mesh, smart, dedicated, or reconfigurable)"
        )),
    }
}

/// A [`RunPlan`] on the wire: the four schedule fields, flattened into
/// whichever body line carries them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSpec {
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Drain budget.
    pub drain: u64,
    /// Traffic seed.
    pub seed: u64,
}

impl From<RunPlan> for PlanSpec {
    fn from(p: RunPlan) -> Self {
        PlanSpec {
            warmup: p.warmup,
            measure: p.measure,
            drain: p.drain,
            seed: p.seed,
        }
    }
}

impl PlanSpec {
    /// The harness plan this spec describes.
    #[must_use]
    pub fn to_plan(self) -> RunPlan {
        RunPlan {
            warmup: self.warmup,
            measure: self.measure,
            drain: self.drain,
            seed: self.seed,
        }
    }

    /// Render the four fields (no braces) for embedding in a body line.
    fn render_fields(self) -> String {
        format!(
            "\"warmup\":{},\"measure\":{},\"drain\":{},\"seed\":{}",
            self.warmup, self.measure, self.drain, self.seed
        )
    }

    /// Extract the four fields from a body line.
    fn from_line(line: &str, line_no: usize) -> Result<PlanSpec, ProtocolError> {
        let field = |key: &str| {
            json::u64_field(line, key)
                .ok_or_else(|| ProtocolError::new(line_no, format!("missing plan field {key:?}")))
        };
        Ok(PlanSpec {
            warmup: field("warmup")?,
            measure: field("measure")?,
            drain: field("drain")?,
            seed: field("seed")?,
        })
    }
}

/// Search strategies the `search` request accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Score every point of the space.
    Exhaustive,
    /// Greedy hill-climb from the space's first point, moving to the
    /// best ±1 axis neighbor until no neighbor improves the score.
    Greedy,
}

impl SearchStrategy {
    /// Protocol name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SearchStrategy::Exhaustive => "exhaustive",
            SearchStrategy::Greedy => "greedy",
        }
    }

    /// Parse a protocol name.
    ///
    /// # Errors
    ///
    /// Returns a description naming the accepted set.
    pub fn parse(name: &str) -> Result<SearchStrategy, String> {
        match name {
            "exhaustive" => Ok(SearchStrategy::Exhaustive),
            "greedy" => Ok(SearchStrategy::Greedy),
            _ => Err(format!(
                "unknown strategy {name:?} (expected exhaustive or greedy)"
            )),
        }
    }
}

/// One parsed request. Every variant carries the job id from the
/// header; ids follow the [`valid_id`] grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one experiment cell.
    Experiment {
        /// Job id.
        id: String,
        /// Mesh edge (`k × k`).
        mesh: u16,
        /// Fabric shape (absent on the wire ⇒ mesh).
        topology: TopologySpec,
        /// Row-band shards for the cycle engine (absent on the wire ⇒
        /// serial). Bit-identical results for every value.
        shards: usize,
        /// Design to build.
        design: DesignKind,
        /// Workload to offer.
        workload: WorkloadSpec,
        /// Run schedule.
        plan: PlanSpec,
    },
    /// Run one telemetry-enabled experiment cell, streaming a
    /// [`ResponseEvent::Metric`] per closed telemetry window before the
    /// final [`ResponseEvent::Cell`].
    Watch {
        /// Job id.
        id: String,
        /// Mesh edge (`k × k`).
        mesh: u16,
        /// Fabric shape (absent on the wire ⇒ mesh).
        topology: TopologySpec,
        /// Row-band shards for the cycle engine (absent on the wire ⇒
        /// serial). Bit-identical results — including the streamed
        /// metric windows — for every value.
        shards: usize,
        /// Design to build.
        design: DesignKind,
        /// Workload to offer.
        workload: WorkloadSpec,
        /// Run schedule.
        plan: PlanSpec,
        /// Telemetry window width, cycles (≥ 1).
        window: u64,
    },
    /// Run a designs × workloads matrix (workload-major, design-minor
    /// cell order, exactly like `ExperimentMatrix`).
    Matrix {
        /// Job id.
        id: String,
        /// Mesh edge.
        mesh: u16,
        /// Fabric shape (absent on the wire ⇒ mesh).
        topology: TopologySpec,
        /// Row-band shards for the cycle engine (absent on the wire ⇒
        /// serial). Bit-identical results for every value.
        shards: usize,
        /// Design axis (non-empty).
        designs: Vec<DesignKind>,
        /// Workload axis (non-empty).
        workloads: Vec<WorkloadSpec>,
        /// Run schedule shared by every cell.
        plan: PlanSpec,
    },
    /// Run a multi-phase application schedule across schedule designs.
    Schedule {
        /// Job id.
        id: String,
        /// Mesh edge.
        mesh: u16,
        /// Fabric shape (absent on the wire ⇒ mesh).
        topology: TopologySpec,
        /// Design axis (non-empty); one cell per design.
        designs: Vec<ScheduleDesign>,
        /// Transition drain budget, cycles.
        drain_budget: u64,
        /// Ordered phases: workload + plan each.
        phases: Vec<(WorkloadSpec, PlanSpec)>,
    },
    /// Search the mapping × design × segmentation space.
    Search {
        /// Job id.
        id: String,
        /// Mesh edge.
        mesh: u16,
        /// Fabric shape (absent on the wire ⇒ mesh).
        topology: TopologySpec,
        /// How to walk the space.
        strategy: SearchStrategy,
        /// Design axis (non-empty).
        designs: Vec<DesignKind>,
        /// Mapping axis: workloads to place (non-empty).
        workloads: Vec<WorkloadSpec>,
        /// Segmentation axis: `HPC_max` values (non-empty, each 1–64).
        hpc: Vec<u64>,
        /// Run schedule per candidate.
        plan: PlanSpec,
    },
    /// Replay one trace on two designs and diff the outcomes.
    TraceDiff {
        /// Job id.
        id: String,
        /// Mesh edge.
        mesh: u16,
        /// Fabric shape (absent on the wire ⇒ mesh).
        topology: TopologySpec,
        /// Baseline design.
        baseline: DesignKind,
        /// Candidate design.
        candidate: DesignKind,
        /// Workload whose flow set the trace addresses.
        workload: WorkloadSpec,
        /// Run schedule for both replays.
        plan: PlanSpec,
        /// The recorded injection schedule.
        trace: TraceFile,
    },
    /// Cancel a running job by id.
    Cancel {
        /// Job id of this request.
        id: String,
        /// Job to cancel.
        target: String,
    },
    /// Report service statistics.
    Stats {
        /// Job id.
        id: String,
    },
    /// Stop accepting connections and exit the accept loop.
    Shutdown {
        /// Job id.
        id: String,
    },
}

impl Request {
    /// The job id.
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            Request::Experiment { id, .. }
            | Request::Watch { id, .. }
            | Request::Matrix { id, .. }
            | Request::Schedule { id, .. }
            | Request::Search { id, .. }
            | Request::TraceDiff { id, .. }
            | Request::Cancel { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id } => id,
        }
    }

    /// Protocol kind tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Experiment { .. } => "experiment",
            Request::Watch { .. } => "watch",
            Request::Matrix { .. } => "matrix",
            Request::Schedule { .. } => "schedule",
            Request::Search { .. } => "search",
            Request::TraceDiff { .. } => "trace_diff",
            Request::Cancel { .. } => "cancel",
            Request::Stats { .. } => "stats",
            Request::Shutdown { .. } => "shutdown",
        }
    }

    /// Body lines following the header.
    fn body_lines(&self) -> Vec<String> {
        let specs = |ws: &[WorkloadSpec]| {
            ws.iter()
                .map(WorkloadSpec::render)
                .collect::<Vec<_>>()
                .join(" ")
        };
        match self {
            Request::Experiment {
                mesh,
                topology,
                shards,
                design,
                workload,
                plan,
                ..
            } => vec![format!(
                "{{\"mesh\":{mesh}{}{},\"design\":\"{}\",\"workload\":\"{}\",{}}}",
                topology.render_field(),
                render_shards(*shards),
                design_name(*design),
                workload.render(),
                plan.render_fields()
            )],
            Request::Watch {
                mesh,
                topology,
                shards,
                design,
                workload,
                plan,
                window,
                ..
            } => vec![format!(
                "{{\"mesh\":{mesh}{}{},\"design\":\"{}\",\"workload\":\"{}\",\
                 \"window\":{window},{}}}",
                topology.render_field(),
                render_shards(*shards),
                design_name(*design),
                workload.render(),
                plan.render_fields()
            )],
            Request::Matrix {
                mesh,
                topology,
                shards,
                designs,
                workloads,
                plan,
                ..
            } => vec![format!(
                "{{\"mesh\":{mesh}{}{},\"designs\":\"{}\",\"workloads\":\"{}\",{}}}",
                topology.render_field(),
                render_shards(*shards),
                designs
                    .iter()
                    .map(|d| design_name(*d))
                    .collect::<Vec<_>>()
                    .join(" "),
                specs(workloads),
                plan.render_fields()
            )],
            Request::Schedule {
                mesh,
                topology,
                designs,
                drain_budget,
                phases,
                ..
            } => {
                let mut lines = vec![format!(
                    "{{\"mesh\":{mesh}{},\"designs\":\"{}\",\"drain_budget\":{drain_budget}}}",
                    topology.render_field(),
                    designs
                        .iter()
                        .map(|d| schedule_design_name(*d))
                        .collect::<Vec<_>>()
                        .join(" "),
                )];
                lines.extend(phases.iter().map(|(w, p)| {
                    format!("{{\"workload\":\"{}\",{}}}", w.render(), p.render_fields())
                }));
                lines
            }
            Request::Search {
                mesh,
                topology,
                strategy,
                designs,
                workloads,
                hpc,
                plan,
                ..
            } => {
                vec![format!(
                "{{\"mesh\":{mesh}{},\"strategy\":\"{}\",\"designs\":\"{}\",\"workloads\":\"{}\",\
                 \"hpc\":\"{}\",{}}}",
                topology.render_field(),
                strategy.name(),
                designs.iter().map(|d| design_name(*d)).collect::<Vec<_>>().join(" "),
                specs(workloads),
                hpc.iter().map(u64::to_string).collect::<Vec<_>>().join(" "),
                plan.render_fields()
            )]
            }
            Request::TraceDiff {
                mesh,
                topology,
                baseline,
                candidate,
                workload,
                plan,
                trace,
                ..
            } => {
                let mut lines = vec![format!(
                    "{{\"mesh\":{mesh}{},\"baseline\":\"{}\",\"candidate\":\"{}\",\
                     \"workload\":\"{}\",\"flits_per_packet\":{},\"events\":{},{}}}",
                    topology.render_field(),
                    design_name(*baseline),
                    design_name(*candidate),
                    workload.render(),
                    trace.flits_per_packet,
                    trace.events.len(),
                    plan.render_fields()
                )];
                lines.extend(
                    trace
                        .events
                        .iter()
                        .map(|(cycle, flow)| format!("{{\"cycle\":{cycle},\"flow\":{}}}", flow.0)),
                );
                lines
            }
            Request::Cancel { target, .. } => {
                vec![format!("{{\"target\":\"{target}\"}}")]
            }
            Request::Stats { .. } | Request::Shutdown { .. } => Vec::new(),
        }
    }

    /// Render the full request document: header line + body lines, each
    /// newline-terminated. [`Request::parse`] inverts this exactly.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let body = self.body_lines();
        let mut s = format!(
            "{{\"schema\":\"{REQUEST_SCHEMA}\",\"id\":\"{}\",\"kind\":\"{}\",\"lines\":{}}}\n",
            self.id(),
            self.kind(),
            body.len()
        );
        for line in body {
            s.push_str(&line);
            s.push('\n');
        }
        s
    }

    /// Parse a complete request document (header + declared body).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for a malformed header, a body-line
    /// count mismatch, or any malformed body line.
    pub fn parse(text: &str) -> Result<Request, ProtocolError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines
            .next()
            .ok_or_else(|| ProtocolError::new(0, "empty document (missing header)"))?;
        let header = RequestHeader::parse(header_line)?;
        let body: Vec<&str> = lines.collect();
        if body.len() != header.lines {
            return Err(ProtocolError::new(
                1,
                format!(
                    "header declares {} body lines, found {}",
                    header.lines,
                    body.len()
                ),
            ));
        }
        Request::from_lines(&header, &body)
    }

    /// Assemble a request from a parsed header and its body lines
    /// (exactly `header.lines` of them) — the streaming server's entry
    /// point after it has consumed the declared line count.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for a wrong body-line count or any
    /// malformed body line.
    pub fn from_lines(header: &RequestHeader, body: &[&str]) -> Result<Request, ProtocolError> {
        if body.len() != header.lines {
            return Err(ProtocolError::new(
                1,
                format!(
                    "header declares {} body lines, got {}",
                    header.lines,
                    body.len()
                ),
            ));
        }
        let id = header.id.clone();
        let one_body = || -> Result<&str, ProtocolError> {
            body.first()
                .copied()
                .ok_or_else(|| ProtocolError::new(1, format!("{} needs a body line", header.kind)))
        };
        match header.kind.as_str() {
            "experiment" => {
                let line = one_body()?;
                Ok(Request::Experiment {
                    id,
                    mesh: mesh_field(line, 2)?,
                    topology: topology_field(line, 2)?,
                    shards: shards_field(line, 2)?,
                    design: str_then(line, "design", 2, parse_design)?,
                    workload: str_then(line, "workload", 2, WorkloadSpec::parse)?,
                    plan: PlanSpec::from_line(line, 2)?,
                })
            }
            "watch" => {
                let line = one_body()?;
                let window = json::u64_field(line, "window")
                    .ok_or_else(|| ProtocolError::new(2, "missing field \"window\""))?;
                if window == 0 {
                    return Err(ProtocolError::new(2, "window must be at least 1 cycle"));
                }
                Ok(Request::Watch {
                    id,
                    mesh: mesh_field(line, 2)?,
                    topology: topology_field(line, 2)?,
                    shards: shards_field(line, 2)?,
                    design: str_then(line, "design", 2, parse_design)?,
                    workload: str_then(line, "workload", 2, WorkloadSpec::parse)?,
                    plan: PlanSpec::from_line(line, 2)?,
                    window,
                })
            }
            "matrix" => {
                let line = one_body()?;
                Ok(Request::Matrix {
                    id,
                    mesh: mesh_field(line, 2)?,
                    topology: topology_field(line, 2)?,
                    shards: shards_field(line, 2)?,
                    designs: list_then(line, "designs", 2, parse_design)?,
                    workloads: list_then(line, "workloads", 2, WorkloadSpec::parse)?,
                    plan: PlanSpec::from_line(line, 2)?,
                })
            }
            "schedule" => {
                let line = one_body()?;
                let drain_budget = json::u64_field(line, "drain_budget")
                    .ok_or_else(|| ProtocolError::new(2, "missing field \"drain_budget\""))?;
                let designs = list_then(line, "designs", 2, parse_schedule_design)?;
                let mut phases = Vec::with_capacity(body.len() - 1);
                for (i, line) in body[1..].iter().enumerate() {
                    let line_no = i + 3;
                    phases.push((
                        str_then(line, "workload", line_no, WorkloadSpec::parse)?,
                        PlanSpec::from_line(line, line_no)?,
                    ));
                }
                if phases.is_empty() {
                    return Err(ProtocolError::new(2, "schedule has no phases"));
                }
                Ok(Request::Schedule {
                    id,
                    mesh: mesh_field(line, 2)?,
                    topology: topology_field(line, 2)?,
                    designs,
                    drain_budget,
                    phases,
                })
            }
            "search" => {
                let line = one_body()?;
                let hpc = list_then(line, "hpc", 2, |tok| {
                    tok.parse::<u64>()
                        .map_err(|_| format!("bad hpc value {tok:?}"))
                })?;
                if let Some(h) = hpc.iter().find(|h| **h == 0 || **h > MAX_MESH) {
                    return Err(ProtocolError::new(
                        2,
                        format!("hpc {h} outside 1..={MAX_MESH}"),
                    ));
                }
                Ok(Request::Search {
                    id,
                    mesh: mesh_field(line, 2)?,
                    topology: topology_field(line, 2)?,
                    strategy: str_then(line, "strategy", 2, SearchStrategy::parse)?,
                    designs: list_then(line, "designs", 2, parse_design)?,
                    workloads: list_then(line, "workloads", 2, WorkloadSpec::parse)?,
                    hpc,
                    plan: PlanSpec::from_line(line, 2)?,
                })
            }
            "trace_diff" => {
                let line = one_body()?;
                let fpp = json::u64_field(line, "flits_per_packet")
                    .ok_or_else(|| ProtocolError::new(2, "missing field \"flits_per_packet\""))?;
                let fpp = u8::try_from(fpp).map_err(|_| {
                    ProtocolError::new(2, format!("flits_per_packet {fpp} does not fit a u8"))
                })?;
                let declared = json::u64_field(line, "events")
                    .ok_or_else(|| ProtocolError::new(2, "missing field \"events\""))?;
                if declared as usize != body.len() - 1 {
                    return Err(ProtocolError::new(
                        2,
                        format!("declares {declared} events, found {}", body.len() - 1),
                    ));
                }
                let mut events = Vec::with_capacity(body.len() - 1);
                for (i, line) in body[1..].iter().enumerate() {
                    let line_no = i + 3;
                    let cycle = json::u64_field(line, "cycle")
                        .ok_or_else(|| ProtocolError::new(line_no, "event missing \"cycle\""))?;
                    let flow = json::u64_field(line, "flow")
                        .ok_or_else(|| ProtocolError::new(line_no, "event missing \"flow\""))?;
                    let flow = u32::try_from(flow).map_err(|_| {
                        ProtocolError::new(line_no, format!("flow id {flow} does not fit a u32"))
                    })?;
                    events.push((cycle, smart_sim::FlowId(flow)));
                }
                Ok(Request::TraceDiff {
                    id,
                    mesh: mesh_field(line, 2)?,
                    topology: topology_field(line, 2)?,
                    baseline: str_then(line, "baseline", 2, parse_design)?,
                    candidate: str_then(line, "candidate", 2, parse_design)?,
                    workload: str_then(line, "workload", 2, WorkloadSpec::parse)?,
                    plan: PlanSpec::from_line(line, 2)?,
                    trace: TraceFile {
                        flits_per_packet: fpp,
                        events,
                    },
                })
            }
            "cancel" => {
                let line = one_body()?;
                let target = json::str_field(line, "target")
                    .ok_or_else(|| ProtocolError::new(2, "missing field \"target\""))?;
                if !valid_id(target) {
                    return Err(ProtocolError::new(
                        2,
                        format!("invalid target id {target:?}"),
                    ));
                }
                Ok(Request::Cancel {
                    id,
                    target: target.to_owned(),
                })
            }
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(ProtocolError::new(
                1,
                format!("unknown request kind {other:?}"),
            )),
        }
    }
}

/// Extract and range-check the `"mesh"` field.
fn mesh_field(line: &str, line_no: usize) -> Result<u16, ProtocolError> {
    let mesh = json::u64_field(line, "mesh")
        .ok_or_else(|| ProtocolError::new(line_no, "missing field \"mesh\""))?;
    if !(2..=MAX_MESH).contains(&mesh) {
        return Err(ProtocolError::new(
            line_no,
            format!("mesh {mesh} outside 2..={MAX_MESH}"),
        ));
    }
    Ok(mesh as u16)
}

/// Extract a string field and parse it with `f`.
fn str_then<T>(
    line: &str,
    key: &str,
    line_no: usize,
    f: impl Fn(&str) -> Result<T, String>,
) -> Result<T, ProtocolError> {
    let raw = json::str_field(line, key)
        .ok_or_else(|| ProtocolError::new(line_no, format!("missing field {key:?}")))?;
    f(raw).map_err(|m| ProtocolError::new(line_no, m))
}

/// Extract a space-separated list field, parse every token with `f`,
/// and require the list to be non-empty.
fn list_then<T>(
    line: &str,
    key: &str,
    line_no: usize,
    f: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, ProtocolError> {
    let raw = json::str_field(line, key)
        .ok_or_else(|| ProtocolError::new(line_no, format!("missing field {key:?}")))?;
    let items: Result<Vec<T>, ProtocolError> = raw
        .split_whitespace()
        .map(|tok| f(tok).map_err(|m| ProtocolError::new(line_no, m)))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(ProtocolError::new(line_no, format!("empty list {key:?}")));
    }
    Ok(items)
}

/// A parsed request header: what a streaming reader needs to consume
/// the body before dispatching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHeader {
    /// Job id ([`valid_id`] grammar).
    pub id: String,
    /// Request kind tag.
    pub kind: String,
    /// Number of body lines that follow.
    pub lines: usize,
}

impl RequestHeader {
    /// Parse the header line.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for a wrong schema, a bad id, or
    /// missing fields.
    pub fn parse(line: &str) -> Result<RequestHeader, ProtocolError> {
        let schema = json::str_field(line, "schema")
            .ok_or_else(|| ProtocolError::new(1, "header has no \"schema\" field"))?;
        if schema != REQUEST_SCHEMA {
            return Err(ProtocolError::new(
                1,
                format!("unsupported schema {schema:?}, expected {REQUEST_SCHEMA:?}"),
            ));
        }
        let id = json::str_field(line, "id")
            .ok_or_else(|| ProtocolError::new(1, "header has no \"id\" field"))?;
        if !valid_id(id) {
            return Err(ProtocolError::new(
                1,
                format!("invalid id {id:?} (want 1-{MAX_ID_LEN} chars of [A-Za-z0-9_-])"),
            ));
        }
        let kind = json::str_field(line, "kind")
            .ok_or_else(|| ProtocolError::new(1, "header has no \"kind\" field"))?;
        let lines = json::u64_field(line, "lines")
            .ok_or_else(|| ProtocolError::new(1, "header has no \"lines\" field"))?;
        let lines = usize::try_from(lines)
            .ok()
            .filter(|l| *l <= 1_000_000)
            .ok_or_else(|| ProtocolError::new(1, format!("unreasonable body size {lines}")))?;
        Ok(RequestHeader {
            id: id.to_owned(),
            kind: kind.to_owned(),
            lines,
        })
    }
}

/// One line of a response stream. Every request produces zero or more
/// progress events followed by exactly one terminal event
/// ([`ResponseEvent::Done`] or [`ResponseEvent::Error`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseEvent {
    /// The request was accepted; `cells` cells will run.
    Accepted {
        /// Job id.
        id: String,
        /// Cells scheduled.
        cells: u64,
    },
    /// One finished experiment cell (matrix/experiment jobs). Streams
    /// in completion order — `index` is the deterministic cell index.
    Cell {
        /// Cell index (workload-major, design-minor).
        index: u64,
        /// Design label (`Mesh`, `SMART`, `Dedicated`).
        design: String,
        /// Workload name as reported by the harness.
        workload: String,
        /// Packets offered after warm-up.
        injected: u64,
        /// Packets delivered after warm-up.
        delivered: u64,
        /// Flits delivered after warm-up.
        flits: u64,
        /// Average head-flit network latency (NaN if nothing measured).
        latency: f64,
        /// Packets in the latency statistics.
        measured: u64,
        /// Total cycles the cell advanced the network.
        cycles: u64,
        /// `true` when the cell ran from a cached compiled design.
        cached: bool,
    },
    /// One finished schedule phase (schedule jobs).
    Phase {
        /// Schedule cell index (one per design).
        index: u64,
        /// Phase index within the schedule.
        phase: u64,
        /// Schedule design label.
        design: String,
        /// Phase workload name.
        workload: String,
        /// Packets delivered over the phase.
        delivered: u64,
        /// Average head-flit network latency.
        latency: f64,
        /// Transition drain cycles paid to load this phase.
        drain_cycles: u64,
        /// Preset store instructions paid to load this phase.
        stores: u64,
    },
    /// A cell failed without sinking the job (e.g. a schedule whose
    /// drain budget was exhausted).
    CellError {
        /// Cell index.
        index: u64,
        /// What went wrong.
        message: String,
    },
    /// One scored search candidate.
    Candidate {
        /// Flattened index into the search space.
        index: u64,
        /// Design label.
        design: String,
        /// Workload spec string.
        workload: String,
        /// `HPC_max` of the candidate.
        hpc: u64,
        /// Total energy over the run, picojoules.
        energy_pj: f64,
        /// Analytic silicon area, mm².
        area_mm2: f64,
        /// Average packet latency, cycles.
        cycles: f64,
        /// Smapper score: `-(log10(energy) + log10(area) + log10(cycles))`.
        score: f64,
    },
    /// The search winner (follows every Candidate).
    Winner {
        /// Flattened index of the winning candidate.
        index: u64,
        /// Winning score.
        score: f64,
        /// Points actually evaluated.
        evaluated: u64,
    },
    /// One flow's latency under both designs of a trace diff (NaN on a
    /// side that delivered nothing for the flow).
    FlowDiff {
        /// Flow id.
        flow: u64,
        /// Baseline average head latency.
        baseline: f64,
        /// Candidate average head latency.
        candidate: f64,
    },
    /// Trace-diff aggregates (follows every FlowDiff).
    DiffSummary {
        /// Baseline design label.
        baseline: String,
        /// Candidate design label.
        candidate: String,
        /// `candidate − baseline` delivered packets.
        delivered_delta: i64,
        /// `candidate − baseline` delivered flits.
        flit_delta: i64,
        /// `candidate − baseline` average latency, cycles.
        latency_delta: f64,
    },
    /// One closed telemetry window of a watch job, streamed in window
    /// order before the job's final [`ResponseEvent::Cell`].
    Metric {
        /// Window index within the series (0-based).
        index: u64,
        /// Cycle at which the window closed.
        end: u64,
        /// SSR setup requests raised in the window.
        setups: u64,
        /// SSR setups granted end-to-end in the window.
        grants: u64,
        /// Premature stops (setups − grants) in the window.
        premature: u64,
        /// Cumulative packets injected since telemetry attached.
        injected: u64,
        /// Cumulative packets delivered since telemetry attached.
        delivered: u64,
        /// Flits buffered fabric-wide when the window closed.
        buffered: u64,
        /// Sparse achieved-bypass histogram of the window, metrics-v1
        /// `"len:count"` form (empty ⇒ no launches).
        bypass: String,
    },
    /// Service statistics (stats jobs).
    Stats {
        /// Run-type jobs handled since start.
        jobs: u64,
        /// Compiled-design cache hits.
        cache_hits: u64,
        /// Compiled-design cache misses.
        cache_misses: u64,
        /// Compiled designs currently cached.
        cached_designs: u64,
        /// Jobs registered in the live job table when the snapshot was
        /// taken (absent on the wire ⇒ 0, keeping pre-watch documents
        /// byte-identical).
        active_jobs: u64,
        /// Cumulative wall-clock milliseconds spent executing run-type
        /// jobs (absent on the wire ⇒ 0).
        busy_ms: u64,
    },
    /// Terminal: the job finished. `cells` counts completed cells (less
    /// than Accepted's count if the job was cancelled mid-run).
    Done {
        /// Job id.
        id: String,
        /// Cells completed.
        cells: u64,
        /// Cells served from the compiled-design cache.
        cache_hits: u64,
    },
    /// Terminal: the job failed.
    Error {
        /// Job id (`-` when the failure predates id extraction).
        id: String,
        /// What went wrong.
        message: String,
    },
}

impl ResponseEvent {
    /// Render as one response line (no trailing newline).
    /// [`ResponseEvent::parse`] inverts this exactly (modulo NaN,
    /// which is canonical).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            ResponseEvent::Accepted { id, cells } => format!(
                "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"event\":\"accepted\",\"id\":\"{id}\",\
                 \"cells\":{cells}}}"
            ),
            ResponseEvent::Cell {
                index,
                design,
                workload,
                injected,
                delivered,
                flits,
                latency,
                measured,
                cycles,
                cached,
            } => format!(
                "{{\"event\":\"cell\",\"index\":{index},\"design\":\"{design}\",\
                 \"workload\":\"{workload}\",\"injected\":{injected},\"delivered\":{delivered},\
                 \"flits\":{flits},\"latency\":{},\"measured\":{measured},\"cycles\":{cycles},\
                 \"cached\":{cached}}}",
                json::fmt_f64(*latency)
            ),
            ResponseEvent::Phase {
                index,
                phase,
                design,
                workload,
                delivered,
                latency,
                drain_cycles,
                stores,
            } => format!(
                "{{\"event\":\"phase\",\"index\":{index},\"phase\":{phase},\
                 \"design\":\"{design}\",\"workload\":\"{workload}\",\"delivered\":{delivered},\
                 \"latency\":{},\"drain_cycles\":{drain_cycles},\"stores\":{stores}}}",
                json::fmt_f64(*latency)
            ),
            ResponseEvent::CellError { index, message } => format!(
                "{{\"event\":\"cell_error\",\"index\":{index},\"message\":\"{}\"}}",
                json::escape_str(message)
            ),
            ResponseEvent::Candidate {
                index,
                design,
                workload,
                hpc,
                energy_pj,
                area_mm2,
                cycles,
                score,
            } => format!(
                "{{\"event\":\"candidate\",\"index\":{index},\"design\":\"{design}\",\
                 \"workload\":\"{workload}\",\"hpc\":{hpc},\"energy_pj\":{},\"area_mm2\":{},\
                 \"cycles\":{},\"score\":{}}}",
                json::fmt_f64(*energy_pj),
                json::fmt_f64(*area_mm2),
                json::fmt_f64(*cycles),
                json::fmt_f64(*score)
            ),
            ResponseEvent::Winner {
                index,
                score,
                evaluated,
            } => format!(
                "{{\"event\":\"winner\",\"index\":{index},\"score\":{},\"evaluated\":{evaluated}}}",
                json::fmt_f64(*score)
            ),
            ResponseEvent::FlowDiff {
                flow,
                baseline,
                candidate,
            } => format!(
                "{{\"event\":\"flow_diff\",\"flow\":{flow},\"baseline\":{},\"candidate\":{}}}",
                json::fmt_f64(*baseline),
                json::fmt_f64(*candidate)
            ),
            ResponseEvent::DiffSummary {
                baseline,
                candidate,
                delivered_delta,
                flit_delta,
                latency_delta,
            } => format!(
                "{{\"event\":\"diff_summary\",\"baseline\":\"{baseline}\",\
                 \"candidate\":\"{candidate}\",\"delivered_delta\":{delivered_delta},\
                 \"flit_delta\":{flit_delta},\"latency_delta\":{}}}",
                json::fmt_f64(*latency_delta)
            ),
            ResponseEvent::Metric {
                index,
                end,
                setups,
                grants,
                premature,
                injected,
                delivered,
                buffered,
                bypass,
            } => format!(
                "{{\"event\":\"metric\",\"index\":{index},\"end\":{end},\"setups\":{setups},\
                 \"grants\":{grants},\"premature\":{premature},\"injected\":{injected},\
                 \"delivered\":{delivered},\"buffered\":{buffered},\"bypass\":\"{}\"}}",
                json::escape_str(bypass)
            ),
            // The queue-depth and wall-time fields render only when
            // nonzero, so documents from before they existed stay
            // byte-identical (absent on parse ⇒ 0).
            ResponseEvent::Stats {
                jobs,
                cache_hits,
                cache_misses,
                cached_designs,
                active_jobs,
                busy_ms,
            } => format!(
                "{{\"event\":\"stats\",\"jobs\":{jobs},\"cache_hits\":{cache_hits},\
                 \"cache_misses\":{cache_misses},\"cached_designs\":{cached_designs}{}{}}}",
                opt_u64_field("active_jobs", *active_jobs),
                opt_u64_field("busy_ms", *busy_ms)
            ),
            ResponseEvent::Done {
                id,
                cells,
                cache_hits,
            } => format!(
                "{{\"event\":\"done\",\"id\":\"{id}\",\"cells\":{cells},\
                 \"cache_hits\":{cache_hits}}}"
            ),
            ResponseEvent::Error { id, message } => format!(
                "{{\"event\":\"error\",\"id\":\"{id}\",\"message\":\"{}\"}}",
                json::escape_str(message)
            ),
        }
    }

    /// `true` for the events that end a response stream.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            ResponseEvent::Done { .. } | ResponseEvent::Error { .. }
        )
    }

    /// Render a [`ResponseEvent::Cell`] in exactly the
    /// `ExperimentReport::snapshot_line` format, so streamed results
    /// can be compared bit-for-bit against direct harness runs.
    /// Returns `None` for other event kinds.
    #[must_use]
    pub fn snapshot_line(&self) -> Option<String> {
        match self {
            ResponseEvent::Cell {
                design,
                workload,
                injected,
                delivered,
                flits,
                latency,
                measured,
                ..
            } => Some(format!(
                "{design}/{workload} injected={injected} delivered={delivered} flits={flits} \
                 latency={latency} measured={measured}"
            )),
            _ => None,
        }
    }

    /// Parse one response line.
    ///
    /// # Errors
    ///
    /// Returns a description of the missing or malformed field.
    pub fn parse(line: &str) -> Result<ResponseEvent, String> {
        let event = json::str_field(line, "event")
            .ok_or_else(|| format!("response line has no \"event\" field: {line}"))?;
        let s = |key: &str| {
            json::str_field(line, key)
                .map(str::to_owned)
                .ok_or_else(|| format!("{event} event missing {key:?}"))
        };
        let u = |key: &str| {
            json::u64_field(line, key).ok_or_else(|| format!("{event} event missing {key:?}"))
        };
        let i = |key: &str| {
            json::i64_field(line, key).ok_or_else(|| format!("{event} event missing {key:?}"))
        };
        let f = |key: &str| {
            json::f64_field(line, key).ok_or_else(|| format!("{event} event missing {key:?}"))
        };
        match event {
            "accepted" => {
                let schema = json::str_field(line, "schema")
                    .ok_or_else(|| "accepted event missing \"schema\"".to_owned())?;
                if schema != RESPONSE_SCHEMA {
                    return Err(format!(
                        "unsupported schema {schema:?}, expected {RESPONSE_SCHEMA:?}"
                    ));
                }
                Ok(ResponseEvent::Accepted {
                    id: s("id")?,
                    cells: u("cells")?,
                })
            }
            "cell" => Ok(ResponseEvent::Cell {
                index: u("index")?,
                design: s("design")?,
                workload: s("workload")?,
                injected: u("injected")?,
                delivered: u("delivered")?,
                flits: u("flits")?,
                latency: f("latency")?,
                measured: u("measured")?,
                cycles: u("cycles")?,
                cached: bool_field(line, "cached")?,
            }),
            "phase" => Ok(ResponseEvent::Phase {
                index: u("index")?,
                phase: u("phase")?,
                design: s("design")?,
                workload: s("workload")?,
                delivered: u("delivered")?,
                latency: f("latency")?,
                drain_cycles: u("drain_cycles")?,
                stores: u("stores")?,
            }),
            "cell_error" => Ok(ResponseEvent::CellError {
                index: u("index")?,
                message: json::unescape_str(&s("message")?),
            }),
            "candidate" => Ok(ResponseEvent::Candidate {
                index: u("index")?,
                design: s("design")?,
                workload: s("workload")?,
                hpc: u("hpc")?,
                energy_pj: f("energy_pj")?,
                area_mm2: f("area_mm2")?,
                cycles: f("cycles")?,
                score: f("score")?,
            }),
            "winner" => Ok(ResponseEvent::Winner {
                index: u("index")?,
                score: f("score")?,
                evaluated: u("evaluated")?,
            }),
            "flow_diff" => Ok(ResponseEvent::FlowDiff {
                flow: u("flow")?,
                baseline: f("baseline")?,
                candidate: f("candidate")?,
            }),
            "diff_summary" => Ok(ResponseEvent::DiffSummary {
                baseline: s("baseline")?,
                candidate: s("candidate")?,
                delivered_delta: i("delivered_delta")?,
                flit_delta: i("flit_delta")?,
                latency_delta: f("latency_delta")?,
            }),
            "metric" => Ok(ResponseEvent::Metric {
                index: u("index")?,
                end: u("end")?,
                setups: u("setups")?,
                grants: u("grants")?,
                premature: u("premature")?,
                injected: u("injected")?,
                delivered: u("delivered")?,
                buffered: u("buffered")?,
                bypass: json::unescape_str(&s("bypass")?),
            }),
            "stats" => Ok(ResponseEvent::Stats {
                jobs: u("jobs")?,
                cache_hits: u("cache_hits")?,
                cache_misses: u("cache_misses")?,
                cached_designs: u("cached_designs")?,
                active_jobs: json::u64_field(line, "active_jobs").unwrap_or(0),
                busy_ms: json::u64_field(line, "busy_ms").unwrap_or(0),
            }),
            "done" => Ok(ResponseEvent::Done {
                id: s("id")?,
                cells: u("cells")?,
                cache_hits: u("cache_hits")?,
            }),
            "error" => Ok(ResponseEvent::Error {
                id: s("id")?,
                message: json::unescape_str(&s("message")?),
            }),
            other => Err(format!("unknown response event {other:?}")),
        }
    }
}

/// Render an optional numeric field: empty when zero (the default), so
/// documents written before the field existed stay byte-identical.
fn opt_u64_field(key: &str, value: u64) -> String {
    if value == 0 {
        String::new()
    } else {
        format!(",\"{key}\":{value}")
    }
}

/// Extract a `"key":true|false` field.
fn bool_field(line: &str, key: &str) -> Result<bool, String> {
    let needle = format!("\"{key}\":");
    let rest = &line[line
        .find(&needle)
        .ok_or_else(|| format!("missing field {key:?}"))?
        + needle.len()..];
    if rest.starts_with("true") {
        Ok(true)
    } else if rest.starts_with("false") {
        Ok(false)
    } else {
        Err(format!("field {key:?} is not a boolean"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PlanSpec {
        PlanSpec::from(RunPlan::smoke())
    }

    #[test]
    fn matrix_request_round_trips() {
        let req = Request::Matrix {
            id: "job-1".into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            shards: 1,
            designs: vec![DesignKind::Mesh, DesignKind::Smart],
            workloads: vec![
                WorkloadSpec::Fig7,
                WorkloadSpec::App("VOPD".into()),
                WorkloadSpec::Uniform {
                    flows: 8,
                    rate: 0.02,
                    seed: 42,
                },
            ],
            plan: plan(),
        };
        let text = req.to_jsonl();
        assert!(
            text.starts_with("{\"schema\":\"smart-server/req-v1\""),
            "{text}"
        );
        assert_eq!(Request::parse(&text), Ok(req));
    }

    #[test]
    fn every_request_kind_round_trips() {
        let reqs = vec![
            Request::Experiment {
                id: "e".into(),
                mesh: 8,
                topology: TopologySpec::Mesh,
                shards: 4,
                design: DesignKind::Dedicated,
                workload: WorkloadSpec::Pattern {
                    name: "transpose".into(),
                    rate: 0.03,
                },
                plan: plan(),
            },
            Request::Schedule {
                id: "s".into(),
                mesh: 4,
                topology: TopologySpec::Mesh,
                designs: vec![ScheduleDesign::Smart, ScheduleDesign::Reconfigurable],
                drain_budget: 50_000,
                phases: vec![
                    (WorkloadSpec::App("VOPD".into()), plan()),
                    (WorkloadSpec::App("PIP".into()), plan()),
                ],
            },
            Request::Search {
                id: "q".into(),
                mesh: 4,
                topology: TopologySpec::Mesh,
                strategy: SearchStrategy::Greedy,
                designs: vec![DesignKind::Smart],
                workloads: vec![WorkloadSpec::Fig7],
                hpc: vec![1, 2, 4, 8],
                plan: plan(),
            },
            Request::TraceDiff {
                id: "d".into(),
                mesh: 4,
                topology: TopologySpec::Mesh,
                baseline: DesignKind::Mesh,
                candidate: DesignKind::Smart,
                workload: WorkloadSpec::Fig7,
                plan: plan(),
                trace: TraceFile {
                    flits_per_packet: 8,
                    events: vec![(0, smart_sim::FlowId(0)), (3, smart_sim::FlowId(2))],
                },
            },
            Request::Cancel {
                id: "c".into(),
                target: "job-1".into(),
            },
            Request::Stats { id: "st".into() },
            Request::Shutdown { id: "down".into() },
        ];
        for req in reqs {
            let text = req.to_jsonl();
            assert_eq!(Request::parse(&text), Ok(req), "{text}");
        }
    }

    #[test]
    fn torus_requests_round_trip_and_mesh_stays_bare() {
        let torus = Request::Experiment {
            id: "t".into(),
            mesh: 8,
            topology: TopologySpec::Torus,
            shards: 1,
            design: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan: plan(),
        };
        let text = torus.to_jsonl();
        assert!(text.contains("\"topology\":\"torus\""), "{text}");
        assert_eq!(Request::parse(&text), Ok(torus));
        // The mesh default renders without the field, exactly as the
        // pre-torus protocol did.
        let mesh = Request::Experiment {
            id: "t".into(),
            mesh: 8,
            topology: TopologySpec::Mesh,
            shards: 1,
            design: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan: plan(),
        };
        let text = mesh.to_jsonl();
        assert!(!text.contains("topology"), "{text}");
        assert_eq!(Request::parse(&text), Ok(mesh));
    }

    #[test]
    fn sharded_requests_round_trip_and_serial_stays_bare() {
        let sharded = Request::Matrix {
            id: "sh".into(),
            mesh: 32,
            topology: TopologySpec::Torus,
            shards: 4,
            designs: vec![DesignKind::Smart],
            workloads: vec![WorkloadSpec::Fig7],
            plan: plan(),
        };
        let text = sharded.to_jsonl();
        assert!(text.contains("\"shards\":4"), "{text}");
        assert_eq!(Request::parse(&text), Ok(sharded));
        // The serial default renders without the field, exactly as the
        // pre-sharding protocol did.
        let serial = Request::Experiment {
            id: "sh".into(),
            mesh: 32,
            topology: TopologySpec::Mesh,
            shards: 1,
            design: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan: plan(),
        };
        let text = serial.to_jsonl();
        assert!(!text.contains("shards"), "{text}");
        assert_eq!(Request::parse(&text), Ok(serial));
    }

    #[test]
    fn zero_shards_is_rejected() {
        let text = "{\"schema\":\"smart-server/req-v1\",\"id\":\"a\",\"kind\":\"experiment\",\
                    \"lines\":1}\n{\"mesh\":4,\"shards\":0,\"design\":\"smart\",\
                    \"workload\":\"fig7\",\"warmup\":0,\"measure\":100,\"drain\":100,\"seed\":1}\n";
        let err = Request::parse(text).expect_err("zero shards");
        assert!(err.message.contains("at least 1"), "{err}");
    }

    #[test]
    fn unknown_topology_value_is_rejected() {
        let text = "{\"schema\":\"smart-server/req-v1\",\"id\":\"a\",\"kind\":\"experiment\",\
                    \"lines\":1}\n{\"mesh\":4,\"topology\":\"klein-bottle\",\"design\":\"smart\",\
                    \"workload\":\"fig7\",\"warmup\":0,\"measure\":100,\"drain\":100,\"seed\":1}\n";
        let err = Request::parse(text).expect_err("bad topology");
        assert!(err.message.contains("klein-bottle"), "{err}");
    }

    #[test]
    fn invalid_documents_are_typed_errors() {
        let cases = [
            ("", 0),
            ("{\"schema\":\"smart-server/req-v9\",\"id\":\"a\",\"kind\":\"stats\",\"lines\":0}", 1),
            ("{\"schema\":\"smart-server/req-v1\",\"id\":\"bad id\",\"kind\":\"stats\",\"lines\":0}", 1),
            ("{\"schema\":\"smart-server/req-v1\",\"id\":\"a\",\"kind\":\"nope\",\"lines\":0}", 1),
            ("{\"schema\":\"smart-server/req-v1\",\"id\":\"a\",\"kind\":\"matrix\",\"lines\":0}", 1),
        ];
        for (text, line) in cases {
            let err = Request::parse(text).expect_err(text);
            assert_eq!(err.line, line, "{text}");
        }
    }

    #[test]
    fn bad_workload_specs_are_rejected() {
        for spec in [
            "",
            "fig8",
            "app:",
            "app:no good",
            "uniform:0:0.1:5",
            "uniform:4:abc:5",
            "uniform:4:-1:5",
            "pattern:doom:0.1",
            "pattern:transpose:inf",
        ] {
            assert!(WorkloadSpec::parse(spec).is_err(), "{spec:?}");
        }
        assert!(WorkloadSpec::parse("uniform:4:0.1:5").is_ok());
    }

    #[test]
    fn unknown_app_fails_at_resolution_not_panic() {
        let spec = WorkloadSpec::App("DOOM".into());
        assert!(spec.to_workload().is_err());
        assert!(WorkloadSpec::App("VOPD".into()).to_workload().is_ok());
    }

    #[test]
    fn response_events_round_trip() {
        let events = vec![
            ResponseEvent::Accepted {
                id: "j".into(),
                cells: 9,
            },
            ResponseEvent::Cell {
                index: 3,
                design: "SMART".into(),
                workload: "fig7".into(),
                injected: 160,
                delivered: 160,
                flits: 1280,
                latency: 3.4625,
                measured: 160,
                cycles: 4000,
                cached: true,
            },
            ResponseEvent::Phase {
                index: 1,
                phase: 2,
                design: "Reconfigurable".into(),
                workload: "VOPD".into(),
                delivered: 99,
                latency: 11.5,
                drain_cycles: 37,
                stores: 16,
            },
            ResponseEvent::CellError {
                index: 2,
                message: "drain budget \"exhausted\"\nbadly".into(),
            },
            ResponseEvent::Candidate {
                index: 7,
                design: "SMART".into(),
                workload: "app:VOPD".into(),
                hpc: 8,
                energy_pj: 1.25e6,
                area_mm2: 2.5,
                cycles: 21.75,
                score: -7.9,
            },
            ResponseEvent::Winner {
                index: 7,
                score: -7.9,
                evaluated: 16,
            },
            ResponseEvent::FlowDiff {
                flow: 4,
                baseline: 16.0,
                candidate: 1.0,
            },
            ResponseEvent::DiffSummary {
                baseline: "Mesh".into(),
                candidate: "SMART".into(),
                delivered_delta: -2,
                flit_delta: -16,
                latency_delta: -15.0,
            },
            ResponseEvent::Metric {
                index: 3,
                end: 4096,
                setups: 40,
                grants: 32,
                premature: 8,
                injected: 120,
                delivered: 117,
                buffered: 24,
                bypass: "0:9 3:14 8:2".into(),
            },
            ResponseEvent::Stats {
                jobs: 5,
                cache_hits: 9,
                cache_misses: 3,
                cached_designs: 3,
                active_jobs: 2,
                busy_ms: 1375,
            },
            ResponseEvent::Stats {
                jobs: 5,
                cache_hits: 9,
                cache_misses: 3,
                cached_designs: 3,
                active_jobs: 0,
                busy_ms: 0,
            },
            ResponseEvent::Done {
                id: "j".into(),
                cells: 9,
                cache_hits: 4,
            },
            ResponseEvent::Error {
                id: "j".into(),
                message: "boom".into(),
            },
        ];
        for ev in events {
            let line = ev.to_line();
            assert_eq!(ResponseEvent::parse(&line), Ok(ev), "{line}");
        }
    }

    #[test]
    fn stats_optional_fields_stay_absent_at_zero() {
        // A snapshot with no live jobs and no accumulated wall time
        // renders exactly the pre-watch document.
        let old = ResponseEvent::Stats {
            jobs: 5,
            cache_hits: 9,
            cache_misses: 3,
            cached_designs: 3,
            active_jobs: 0,
            busy_ms: 0,
        };
        assert_eq!(
            old.to_line(),
            "{\"event\":\"stats\",\"jobs\":5,\"cache_hits\":9,\"cache_misses\":3,\
             \"cached_designs\":3}"
        );
        assert_eq!(ResponseEvent::parse(&old.to_line()), Ok(old));
    }

    #[test]
    fn watch_request_round_trips_and_rejects_zero_window() {
        let req = Request::Watch {
            id: "w1".into(),
            mesh: 4,
            topology: TopologySpec::Mesh,
            shards: 2,
            design: DesignKind::Smart,
            workload: WorkloadSpec::Fig7,
            plan: plan(),
            window: 512,
        };
        let text = req.to_jsonl();
        assert!(text.contains("\"kind\":\"watch\""), "{text}");
        assert!(text.contains("\"window\":512"), "{text}");
        assert_eq!(Request::parse(&text), Ok(req));
        let zero = text.replace("\"window\":512", "\"window\":0");
        let err = Request::parse(&zero).expect_err("zero window");
        assert!(err.to_string().contains("window"), "{err}");
    }

    #[test]
    fn nan_latency_rides_as_null() {
        let ev = ResponseEvent::FlowDiff {
            flow: 0,
            baseline: f64::NAN,
            candidate: 2.0,
        };
        let line = ev.to_line();
        assert!(line.contains("\"baseline\":null"), "{line}");
        match ResponseEvent::parse(&line).expect("parses") {
            ResponseEvent::FlowDiff {
                baseline,
                candidate,
                ..
            } => {
                assert!(baseline.is_nan());
                assert_eq!(candidate, 2.0);
            }
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn cell_snapshot_matches_report_format() {
        let ev = ResponseEvent::Cell {
            index: 0,
            design: "Mesh".into(),
            workload: "fig7".into(),
            injected: 10,
            delivered: 10,
            flits: 80,
            latency: 16.25,
            measured: 10,
            cycles: 4000,
            cached: false,
        };
        assert_eq!(
            ev.snapshot_line().expect("cell"),
            "Mesh/fig7 injected=10 delivered=10 flits=80 latency=16.25 measured=10"
        );
        assert_eq!(
            ResponseEvent::Done {
                id: "x".into(),
                cells: 0,
                cache_hits: 0
            }
            .snapshot_line(),
            None
        );
    }
}
