//! The TCP front end: a hand-rolled JSONL-over-TCP accept loop on
//! `std::net` (one thread per connection, no async runtime), plus the
//! matching blocking [`Client`].
//!
//! Wire discipline per connection: the client writes request documents
//! (header line + declared body lines); the server streams response
//! event lines, ending each request with exactly one terminal event.
//! A malformed *body* poisons only its request (the declared line count
//! was still consumed, so the stream stays in sync); a malformed
//! *header* closes the connection, because nothing downstream can be
//! trusted to align with line boundaries.

use crate::protocol::{ProtocolError, Request, RequestHeader, ResponseEvent};
use crate::service::{EventSink, Service, ServiceConfig};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A bound (not yet running) experiment server.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    join: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the server accepts on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop (by submitting a `shutdown` request over
    /// a fresh connection) and wait for the accept loop to exit.
    ///
    /// # Errors
    ///
    /// Propagates connection errors and the accept loop's exit status.
    ///
    /// # Panics
    ///
    /// Panics if the accept-loop thread itself panicked.
    pub fn shutdown(self) -> io::Result<()> {
        let mut client = Client::connect(self.addr)?;
        client.submit(&Request::Shutdown {
            id: "shutdown".to_owned(),
        })?;
        self.join.join().expect("accept loop does not panic")
    }
}

/// Writes each event as one line, flushed immediately so clients see
/// results stream in as cells finish.
struct LineSink {
    writer: Mutex<BufWriter<TcpStream>>,
}

impl EventSink for LineSink {
    fn emit(&self, event: &ResponseEvent) {
        let mut w = self.writer.lock().expect("unpoisoned writer");
        // A client that hung up mid-stream is not an error worth
        // crashing the connection thread over; drop the event.
        let _ = writeln!(w, "{}", event.to_line());
        let _ = w.flush();
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServiceConfig) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(Service::new(cfg)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop on the calling thread until a `shutdown`
    /// request arrives. Each connection gets its own thread.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn run(self) -> io::Result<()> {
        let own_addr = self.local_addr()?;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let stream = stream?;
            // Line-at-a-time streaming: Nagle + delayed ACK would add
            // ~40 ms to every request after the first on a connection.
            let _ = stream.set_nodelay(true);
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || {
                if serve_connection(&stream, &service) {
                    stop.store(true, Ordering::Relaxed);
                    // Unblock the accept loop so it observes the flag.
                    drop(TcpStream::connect(own_addr));
                }
            });
        }
        Ok(())
    }

    /// Run the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, join })
    }
}

/// Serve one connection to completion. Returns `true` when a shutdown
/// request was handled.
fn serve_connection(stream: &TcpStream, service: &Service) -> bool {
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let Ok(write_half) = stream.try_clone() else {
        return false;
    };
    let mut reader = BufReader::new(read_half);
    let sink = LineSink {
        writer: Mutex::new(BufWriter::new(write_half)),
    };
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return false,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let header = match RequestHeader::parse(line.trim_end()) {
            Ok(h) => h,
            Err(err) => {
                // With no trusted line count the stream cannot resync.
                emit_protocol_error(&sink, "-", &err);
                return false;
            }
        };
        let mut body = Vec::with_capacity(header.lines);
        for _ in 0..header.lines {
            let mut body_line = String::new();
            match reader.read_line(&mut body_line) {
                Ok(0) | Err(_) => {
                    emit_protocol_error(
                        &sink,
                        &header.id,
                        &ProtocolError {
                            line: 0,
                            message: "connection closed mid-request".to_owned(),
                        },
                    );
                    return false;
                }
                Ok(_) => body.push(body_line.trim_end().to_owned()),
            }
        }
        let body_refs: Vec<&str> = body.iter().map(String::as_str).collect();
        match Request::from_lines(&header, &body_refs) {
            Ok(request) => {
                // The declared body was consumed, so a handler panic
                // (or error) poisons only this request.
                match catch_unwind(AssertUnwindSafe(|| service.handle(&request, &sink))) {
                    Ok(false) => {}
                    Ok(true) => return true,
                    Err(panic) => {
                        let message = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "request handler panicked".to_owned());
                        sink.emit(&ResponseEvent::Error {
                            id: header.id.clone(),
                            message,
                        });
                    }
                }
            }
            Err(err) => emit_protocol_error(&sink, &header.id, &err),
        }
    }
}

/// Turn a parse failure into the stream's terminal error event.
fn emit_protocol_error(sink: &dyn EventSink, id: &str, err: &ProtocolError) {
    sink.emit(&ResponseEvent::Error {
        id: id.to_owned(),
        message: err.to_string(),
    });
}

/// A blocking client for the JSONL protocol: submit a request, collect
/// the streamed events through the terminal one.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // See the server side: request documents must not sit in
        // Nagle's buffer behind an unacknowledged previous exchange.
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Submit one request and read events until the terminal one
    /// (inclusive). Returns every event in stream order.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure, an unparseable response
    /// line, or a stream that ends without a terminal event.
    pub fn submit(&mut self, request: &Request) -> io::Result<Vec<ResponseEvent>> {
        let stream = self.reader.get_mut();
        stream.write_all(request.to_jsonl().as_bytes())?;
        stream.flush()?;
        let mut events = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the stream before a terminal event",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            let event = ResponseEvent::parse(line.trim_end())
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
            let terminal = event.is_terminal();
            events.push(event);
            if terminal {
                return Ok(events);
            }
        }
    }
}
