//! # smart-server — the long-running experiment service
//!
//! The workspace's batch tools (`smart-bench` bins, examples) pay the
//! full construction cost — placement, routing, preset compilation —
//! on every invocation. This crate keeps a process warm instead: a
//! daemon accepts experiment, matrix, schedule, search and trace-diff
//! requests as JSONL over TCP, fans their cells out across cores, and
//! streams per-cell results back as they finish — with all compiled
//! artifacts held in a keyed cache so repeated design points cost only
//! the simulation itself.
//!
//! The layers, transport-independent first:
//!
//! * [`protocol`] — the versioned request/response codec
//!   (`smart-server/req-v1` / `smart-server/resp-v1`): hand-rolled flat
//!   JSON in the `smart-traffic/trace-v1` idiom, typed errors, never
//!   panics on arbitrary input.
//! * [`cache`] — [`DesignCache`]: `CompiledDesign` handles keyed by the
//!   stable config hash, routed workloads shared across the design
//!   axis, FIFO-bounded.
//! * [`search`] — design-space search over mapping × design ×
//!   segmentation, scored `-(log10(energy) + log10(area) +
//!   log10(cycles))`, exhaustive or greedy.
//! * [`service`] — [`Service::handle`]: executes one request against
//!   the worker pool + cache + job table, streaming [`ResponseEvent`]s
//!   into any [`EventSink`]; per-job cancellation via `cancel`
//!   requests.
//! * [`server`] — the TCP front end ([`Server`], one thread per
//!   connection, no async runtime) and the blocking [`Client`].
//!
//! Determinism contract: cell results are bit-identical to direct
//! [`smart_harness::ExperimentMatrix`] runs — same cell order, same
//! snapshot lines — whether compiled cold or served from cache; events
//! stream in completion order but carry indices, so sorting recovers
//! the canonical order exactly (locked by `tests/e2e.rs`).
//!
//! ```no_run
//! use smart_server::{Client, Request, Server, ServiceConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
//! let handle = server.spawn().expect("spawn");
//! let mut client = Client::connect(handle.addr()).expect("connect");
//! let request = Request::parse(concat!(
//!     "{\"schema\":\"smart-server/req-v1\",\"id\":\"m1\",\"kind\":\"matrix\",\"lines\":1}\n",
//!     "{\"mesh\":4,\"designs\":\"mesh smart\",\"workloads\":\"fig7 app:VOPD\",",
//!     "\"warmup\":0,\"measure\":2000,\"drain\":2000,\"seed\":12648430}\n",
//! ))
//! .expect("valid request");
//! for event in client.submit(&request).expect("submit") {
//!     println!("{}", event.to_line());
//! }
//! handle.shutdown().expect("shutdown");
//! ```
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod search;
pub mod server;
pub mod service;

pub use cache::DesignCache;
pub use protocol::{
    parse_design, PlanSpec, ProtocolError, Request, RequestHeader, ResponseEvent, SearchStrategy,
    TopologySpec, WorkloadSpec, REQUEST_SCHEMA, RESPONSE_SCHEMA,
};
pub use search::{CandidateScore, SearchOutcome, SearchSpace};
pub use server::{Client, Server, ServerHandle};
pub use service::{EventSink, Service, ServiceConfig};
