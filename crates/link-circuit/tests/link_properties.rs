//! Property-based tests on the link models: physical monotonicities and
//! invariants that must hold for *any* operating point, not just the
//! paper's calibration anchors.

use proptest::prelude::*;
use smart_link::ber::MarginModel;
use smart_link::device::VlrParams;
use smart_link::units::{Gbps, Millimeters, Picoseconds, Volts};
use smart_link::wire::{Spacing, WireRc};
use smart_link::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};

fn models() -> Vec<CalibratedLinkModel> {
    let mut v = Vec::new();
    for style in [LinkStyle::FullSwing, LinkStyle::LowSwing] {
        for variant in [CircuitVariant::Fabricated, CircuitVariant::Resized2GHz] {
            for spacing in [WireSpacing::MinPitch, WireSpacing::Double] {
                v.push(CalibratedLinkModel::new(style, variant, spacing));
            }
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hops_never_increase_with_rate(r1 in 0.5f64..7.5, dr in 0.01f64..2.0) {
        let r2 = r1 + dr;
        for m in models() {
            prop_assert!(
                m.max_hops_per_cycle(Gbps(r1)) >= m.max_hops_per_cycle(Gbps(r2)),
                "{:?}/{:?}/{:?} at {r1} vs {r2}",
                m.style(), m.variant(), m.spacing()
            );
        }
    }

    #[test]
    fn delay_positive_and_bounded(rate in 0.5f64..8.0) {
        for m in models() {
            let d = m.delay_ps_per_mm(Gbps(rate)).0;
            prop_assert!(d > 10.0 && d < 200.0, "{d} ps/mm is not on-chip-wire-like");
        }
    }

    #[test]
    fn energy_positive_everywhere(rate in 0.8f64..7.0) {
        for m in models() {
            let e = m.energy_fj_per_bit_mm(Gbps(rate));
            prop_assert!(e > 10.0 && e < 500.0, "{e} fJ/b/mm out of band");
        }
    }

    #[test]
    fn power_scales_linearly_with_length(rate in 1.0f64..6.0, mm in 1.0f64..16.0) {
        let m = CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Resized2GHz,
            WireSpacing::Double,
        );
        let p1 = m.power_mw(Gbps(rate), Millimeters(mm));
        let p2 = m.power_mw(Gbps(rate), Millimeters(2.0 * mm));
        prop_assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ber_is_monotone_in_rate(r1 in 1.0f64..9.0, dr in 0.05f64..2.0) {
        for m in models() {
            let b1 = m.ber(Gbps(r1));
            let b2 = m.ber(Gbps(r1 + dr));
            prop_assert!(b2 >= b1, "BER must not improve at higher rate");
        }
    }

    #[test]
    fn margin_model_max_rate_respects_target(
        m_inf in 0.08f64..0.5,
        sigma in 0.005f64..0.02,
        cal_rate in 2.0f64..8.0,
    ) {
        prop_assume!(m_inf > 6.2 * sigma); // calibration must be feasible
        let model = MarginModel::calibrated(
            Volts(m_inf),
            Picoseconds(50.0),
            Volts(sigma),
            Gbps(cal_rate),
            1e-9,
        );
        let max = model.max_rate(1e-9);
        prop_assert!((max.0 - cal_rate).abs() < 0.05, "round trip {max} vs {cal_rate}");
        // Below the max rate the link is strictly cleaner.
        prop_assert!(model.ber(Gbps(cal_rate * 0.8)) < 1e-9);
    }

    #[test]
    fn locked_levels_straddle_threshold(r_wire in 50.0f64..1200.0) {
        // Up to ~3 mm of 420 Ω/mm wire — beyond that the lock fails,
        // see `lock_breaks_on_overlong_wire` below.
        let p = VlrParams::default_45nm();
        let (lo, hi) = p.locked_levels(r_wire);
        prop_assert!(lo.0 < p.vth.0);
        prop_assert!(hi.0 > p.vth.0);
        prop_assert!(hi.0 < p.vdd.0, "locked high stays below the rail");
        prop_assert!(lo.0 > 0.0, "locked low stays above ground");
    }

    #[test]
    fn ladder_discretization_conserves_rc(
        len in 0.5f64..12.0,
        sections in 1usize..12,
    ) {
        for spacing in [Spacing::MinPitch, Spacing::Double] {
            let w = WireRc::for_45nm(spacing);
            let lad = w.ladder(Millimeters(len), sections);
            let expect_r = w.r_ohm_per_mm * len;
            let expect_c = w.c_ff_per_mm * len;
            prop_assert!((lad.total_r_ohm() - expect_r).abs() / expect_r < 1e-9);
            prop_assert!((lad.total_c_ff() - expect_c).abs() / expect_c < 1e-9);
        }
    }

    #[test]
    fn bit_time_round_trips(rate in 0.1f64..20.0) {
        let ui = Gbps(rate).bit_time();
        prop_assert!((ui.as_rate().0 - rate).abs() < 1e-9);
    }
}

#[test]
fn lock_breaks_on_overlong_wire() {
    // When the wire between repeaters gets more resistive than the
    // clamp, the TxN–wire–RxP divider pushes `Vlow` past the inverter
    // threshold and the voltage lock stops resolving logic levels —
    // the physical reason the chip embeds "a VLR at every mm along a
    // 10 mm interconnect" instead of repeating less often.
    let p = VlrParams::default_45nm();
    let (lo_ok, _) = p.locked_levels(420.0); // 1 mm pitch: fine
    assert!(lo_ok.0 < p.vth.0);
    let (lo_bad, _) = p.locked_levels(4.5 * 420.0); // ~4.5 mm: broken
    assert!(
        lo_bad.0 >= p.vth.0,
        "the lock must fail on overlong spans ({} vs {})",
        lo_bad,
        p.vth
    );
}

#[test]
fn low_swing_never_loses_on_reach() {
    // At every rate and matched variant/spacing, the VLR's single-cycle
    // reach is at least the full-swing link's (the design's raison
    // d'être).
    for variant in [CircuitVariant::Fabricated, CircuitVariant::Resized2GHz] {
        for spacing in [WireSpacing::MinPitch, WireSpacing::Double] {
            let ls = CalibratedLinkModel::new(LinkStyle::LowSwing, variant, spacing);
            let fs = CalibratedLinkModel::new(LinkStyle::FullSwing, variant, spacing);
            for r in 2..=60 {
                let rate = Gbps(f64::from(r) / 10.0);
                assert!(
                    ls.max_hops_per_cycle(rate) >= fs.max_hops_per_cycle(rate),
                    "{variant:?}/{spacing:?} at {rate}"
                );
            }
        }
    }
}
