//! Regeneration of **Table I**: simulation results of max number of hops
//! per cycle, with energy efficiency, for both link styles and both
//! circuit variants.

use crate::analytic::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};
use crate::units::Gbps;
use std::fmt;

/// One cell of Table I: at `rate`, the link makes `hops` hops per cycle
/// at `energy_fj_per_bit_mm`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Cell {
    /// Data rate of the column.
    pub rate: Gbps,
    /// Maximum hops per cycle.
    pub hops: u32,
    /// Energy efficiency, fJ/b/mm.
    pub energy_fj_per_bit_mm: f64,
}

/// One row of Table I (a link style within a circuit variant).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Swing style of this row.
    pub style: LinkStyle,
    /// Circuit variant (`∗` = resized for 2 GHz, `∗∗` = fabricated).
    pub variant: CircuitVariant,
    /// The three cells of the row.
    pub cells: Vec<Table1Cell>,
}

/// The full table: four rows across six data rates.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows in paper order: FS∗, LS∗, FS∗∗, LS∗∗.
    pub rows: Vec<Table1Row>,
}

/// Data rates of the `∗` (resized, 2 GHz-optimized) half of the table.
pub const RESIZED_RATES: [f64; 3] = [1.0, 2.0, 3.0];
/// Data rates of the `∗∗` (fabricated) half of the table.
pub const FABRICATED_RATES: [f64; 3] = [4.0, 5.0, 5.5];

/// Compute Table I from the calibrated link models (all at 2× wire
/// spacing, per the table's footnotes).
#[must_use]
pub fn table1() -> Table1 {
    let mut rows = Vec::new();
    for (variant, rates) in [
        (CircuitVariant::Resized2GHz, RESIZED_RATES),
        (CircuitVariant::Fabricated, FABRICATED_RATES),
    ] {
        for style in [LinkStyle::FullSwing, LinkStyle::LowSwing] {
            let model = CalibratedLinkModel::new(style, variant, WireSpacing::Double);
            let cells = rates
                .iter()
                .map(|&r| Table1Cell {
                    rate: Gbps(r),
                    hops: model.max_hops_per_cycle(Gbps(r)),
                    energy_fj_per_bit_mm: model.energy_fj_per_bit_mm(Gbps(r)),
                })
                .collect();
            rows.push(Table1Row {
                style,
                variant,
                cells,
            });
        }
    }
    Table1 { rows }
}

/// The values printed in the paper, for comparison in tests and in
/// EXPERIMENTS.md.
#[must_use]
pub fn paper_reference() -> Table1 {
    let cell = |rate: f64, hops: u32, e: f64| Table1Cell {
        rate: Gbps(rate),
        hops,
        energy_fj_per_bit_mm: e,
    };
    Table1 {
        rows: vec![
            Table1Row {
                style: LinkStyle::FullSwing,
                variant: CircuitVariant::Resized2GHz,
                cells: vec![cell(1.0, 13, 103.0), cell(2.0, 6, 95.0), cell(3.0, 4, 84.0)],
            },
            Table1Row {
                style: LinkStyle::LowSwing,
                variant: CircuitVariant::Resized2GHz,
                cells: vec![
                    cell(1.0, 16, 128.0),
                    cell(2.0, 8, 104.0),
                    cell(3.0, 6, 87.0),
                ],
            },
            Table1Row {
                style: LinkStyle::FullSwing,
                variant: CircuitVariant::Fabricated,
                cells: vec![cell(4.0, 4, 98.0), cell(5.0, 3, 89.0), cell(5.5, 3, 85.0)],
            },
            Table1Row {
                style: LinkStyle::LowSwing,
                variant: CircuitVariant::Fabricated,
                cells: vec![cell(4.0, 7, 132.0), cell(5.0, 6, 107.0), cell(5.5, 5, 96.0)],
            },
        ],
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TABLE I: Simulation results of max number of hops per cycle"
        )?;
        for (variant, marker) in [
            (CircuitVariant::Resized2GHz, "*"),
            (CircuitVariant::Fabricated, "**"),
        ] {
            let rows: Vec<&Table1Row> = self.rows.iter().filter(|r| r.variant == variant).collect();
            if rows.is_empty() {
                continue;
            }
            write!(f, "{:<14}", "Data Rate")?;
            for c in &rows[0].cells {
                write!(f, " {:>20}", format!("{} Gb/s", c.rate.0))?;
            }
            writeln!(f)?;
            for row in rows {
                write!(f, "{:<14}", format!("{}{}", row.style.label(), marker))?;
                for c in &row.cells {
                    write!(
                        f,
                        " {:>20}",
                        format!("{} ({:.0} fJ/b/mm)", c.hops, c.energy_fj_per_bit_mm)
                    )?;
                }
                writeln!(f)?;
            }
        }
        writeln!(
            f,
            "*  resized and optimized for low-frequency (2 GHz), 2x wire spacing"
        )?;
        write!(f, "** same circuit as the fabricated chip, 2x wire spacing")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerated_table_matches_paper_exactly() {
        let ours = table1();
        let paper = paper_reference();
        assert_eq!(ours.rows.len(), paper.rows.len());
        for (a, b) in ours.rows.iter().zip(paper.rows.iter()) {
            assert_eq!(a.style, b.style);
            assert_eq!(a.variant, b.variant);
            for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
                assert_eq!(ca.rate, cb.rate);
                assert_eq!(
                    ca.hops, cb.hops,
                    "{:?} {:?} @ {}: hops",
                    a.style, a.variant, ca.rate
                );
                assert!(
                    (ca.energy_fj_per_bit_mm - cb.energy_fj_per_bit_mm).abs() < 0.5,
                    "{:?} {:?} @ {}: energy {} vs {}",
                    a.style,
                    a.variant,
                    ca.rate,
                    ca.energy_fj_per_bit_mm,
                    cb.energy_fj_per_bit_mm
                );
            }
        }
    }

    #[test]
    fn display_renders_all_rows() {
        let s = table1().to_string();
        assert!(s.contains("TABLE I"));
        assert!(s.contains("Full-swing*"));
        assert!(s.contains("Low-swing**"));
        assert!(s.contains("8 (104 fJ/b/mm)"), "headline cell missing:\n{s}");
    }

    #[test]
    fn row_ordering_matches_paper() {
        let t = table1();
        assert_eq!(t.rows[0].style, LinkStyle::FullSwing);
        assert_eq!(t.rows[0].variant, CircuitVariant::Resized2GHz);
        assert_eq!(t.rows[3].style, LinkStyle::LowSwing);
        assert_eq!(t.rows[3].variant, CircuitVariant::Fabricated);
    }
}
