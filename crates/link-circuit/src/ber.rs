//! Bit-error-rate model for repeated links.
//!
//! The paper reports that both links maintain BER below 10⁻⁹ up to their
//! maximum data rates (6.8 Gb/s for the VLR, 5.5 Gb/s for the full-swing
//! chain). We model the received eye margin as a settling process — the
//! shorter the unit interval, the less of the swing develops before the
//! sampling instant — and convert margin to BER through a Gaussian noise
//! model (Q-factor), the standard serial-link abstraction.

use crate::units::{Gbps, Picoseconds, Volts};

/// Q-factor at which the Gaussian tail equals 10⁻⁹ (≈ 5.998).
pub const Q_FOR_1E9: f64 = 5.998;

/// Complementary error function (Abramowitz & Stegun 7.1.26-based,
/// accurate to ~1.5e-7 absolute — ample for BER work).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// BER of a Gaussian-noise sampler with the given Q-factor:
/// `BER = ½·erfc(Q/√2)`.
#[must_use]
pub fn q_to_ber(q: f64) -> f64 {
    0.5 * erfc(q / std::f64::consts::SQRT_2)
}

/// Inverse of [`q_to_ber`] by bisection.
///
/// # Panics
///
/// Panics if `ber` is outside `(0, 0.5)`.
#[must_use]
pub fn ber_to_q(ber: f64) -> f64 {
    assert!(ber > 0.0 && ber < 0.5, "BER must be in (0, 0.5), got {ber}");
    let (mut lo, mut hi) = (0.0_f64, 40.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_to_ber(mid) > ber {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Eye-margin settling model: the available margin at the sampler is
///
/// `margin(R) = m_inf · (1 − exp(−(UI(R) − t_min)/τ))`
///
/// where `m_inf` is the half-swing available with unlimited settling
/// time, `t_min` the dead time (propagation + sampler aperture) and `τ`
/// the settling constant of the repeater chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginModel {
    /// Margin with unlimited settling time (half the steady swing), volts.
    pub m_inf: Volts,
    /// Dead time before margin starts developing, ps.
    pub t_min: Picoseconds,
    /// Settling time constant, ps.
    pub tau: Picoseconds,
    /// RMS Gaussian noise at the sampler, volts.
    pub sigma: Volts,
}

impl MarginModel {
    /// Calibrate `τ` so that the model hits exactly `ber_target` at
    /// `rate_max` — the way the paper's chip numbers pin the model.
    ///
    /// # Panics
    ///
    /// Panics if the requested operating point is unreachable (margin
    /// target exceeds `m_inf`, or the UI at `rate_max` is shorter than
    /// `t_min`).
    #[must_use]
    pub fn calibrated(
        m_inf: Volts,
        t_min: Picoseconds,
        sigma: Volts,
        rate_max: Gbps,
        ber_target: f64,
    ) -> Self {
        let q = ber_to_q(ber_target);
        let need = q * sigma.0;
        assert!(
            need < m_inf.0,
            "required margin {need} V exceeds asymptotic margin {m_inf}"
        );
        let ui = rate_max.bit_time();
        assert!(
            ui.0 > t_min.0,
            "UI {ui} at the calibration rate is shorter than the dead time {t_min}"
        );
        // 1 - exp(-(ui - t_min)/tau) = need/m_inf
        let frac = need / m_inf.0;
        let tau = -(ui.0 - t_min.0) / (1.0 - frac).ln();
        MarginModel {
            m_inf,
            t_min,
            tau: Picoseconds(tau),
            sigma,
        }
    }

    /// Eye margin at `rate` (clamped at zero once the UI dips below the
    /// dead time).
    #[must_use]
    pub fn margin(&self, rate: Gbps) -> Volts {
        let ui = rate.bit_time();
        if ui.0 <= self.t_min.0 {
            return Volts(0.0);
        }
        let frac = 1.0 - (-(ui.0 - self.t_min.0) / self.tau.0).exp();
        Volts(self.m_inf.0 * frac)
    }

    /// BER at `rate`.
    #[must_use]
    pub fn ber(&self, rate: Gbps) -> f64 {
        let m = self.margin(rate);
        if m.0 <= 0.0 {
            return 0.5;
        }
        q_to_ber(m.0 / self.sigma.0)
    }

    /// Highest data rate meeting `ber_target`, by bisection.
    ///
    /// # Panics
    ///
    /// Panics if `ber_target` is outside `(0, 0.5)`.
    #[must_use]
    pub fn max_rate(&self, ber_target: f64) -> Gbps {
        assert!(
            ber_target > 0.0 && ber_target < 0.5,
            "BER target must be in (0, 0.5), got {ber_target}"
        );
        let (mut lo, mut hi) = (0.05_f64, 1000.0 / self.t_min.0.max(1.0));
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.ber(Gbps(mid)) < ber_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Gbps(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn q_for_1e9_is_consistent() {
        let ber = q_to_ber(Q_FOR_1E9);
        assert!(
            (ber / 1e-9 - 1.0).abs() < 0.05,
            "Q=5.998 should give ~1e-9, got {ber:e}"
        );
    }

    #[test]
    fn ber_q_round_trip() {
        for &ber in &[1e-3, 1e-6, 1e-9, 1e-12] {
            let q = ber_to_q(ber);
            assert!((q_to_ber(q) / ber - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn calibration_round_trips_max_rate() {
        // VLR-like: 0.12 V asymptotic margin, calibrated to hit 1e-9 at
        // 6.8 Gb/s.
        let m =
            MarginModel::calibrated(Volts(0.12), Picoseconds(60.0), Volts(0.01), Gbps(6.8), 1e-9);
        let r = m.max_rate(1e-9);
        assert!((r.0 - 6.8).abs() < 0.05, "got {r}");
    }

    #[test]
    fn ber_improves_at_lower_rate() {
        let m =
            MarginModel::calibrated(Volts(0.12), Picoseconds(60.0), Volts(0.01), Gbps(6.8), 1e-9);
        assert!(m.ber(Gbps(5.0)) < m.ber(Gbps(6.8)));
        assert!(m.ber(Gbps(6.8)) < m.ber(Gbps(7.5)));
        assert!(m.ber(Gbps(2.0)) < 1e-12);
    }

    #[test]
    fn margin_zero_below_dead_time() {
        let m =
            MarginModel::calibrated(Volts(0.12), Picoseconds(60.0), Volts(0.01), Gbps(6.8), 1e-9);
        // UI of 50 ps < 60 ps dead time -> no margin, coin-flip BER.
        assert_eq!(m.margin(Gbps(20.0)), Volts(0.0));
        assert_eq!(m.ber(Gbps(20.0)), 0.5);
    }

    #[test]
    #[should_panic(expected = "exceeds asymptotic margin")]
    fn impossible_calibration_panics() {
        let _ =
            MarginModel::calibrated(Volts(0.01), Picoseconds(60.0), Volts(0.01), Gbps(6.8), 1e-9);
    }
}
