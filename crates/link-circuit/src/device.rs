//! Switch-level device parameters for the two repeater families.
//!
//! Fig 2 of the paper shows the voltage-locked repeater (VLR): a tristate
//! transmitter (`TxP`/`TxN`) drives the wire, and the receiver's first
//! inverter (`INV1x`) together with a delayed feedback path *locks* the
//! wire voltage to swing closely around the inverter threshold. The
//! feedback delay cell lets the node overshoot briefly after each
//! transition, which buys propagation speed and noise margin. The price is
//! a static current path (`TxP`–wire–`RxN` for logic high, `TxN`–wire–`RxP`
//! for logic low) flowing through the highly resistive wire.
//!
//! The full-swing repeater is a conventional rail-to-rail inverter pair.
//!
//! These are *behavioural* switch-level models: a driver is a voltage
//! target behind an on-resistance, a receiver is a threshold detector with
//! a gate delay, and the lock is a clamp toward the threshold behind its
//! own on-resistance. That is the minimum structure that reproduces the
//! waveforms of Fig 3 and the delay/energy trends of Table I.

use crate::units::Volts;

/// Nominal supply for the 45 nm SOI design point (Table II: 0.9 V).
pub const VDD_45NM: Volts = Volts(0.9);

/// Parameters of a conventional full-swing repeater stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullSwingParams {
    /// Supply voltage.
    pub vdd: Volts,
    /// Input switching threshold.
    pub vth: Volts,
    /// Output drive resistance, ohms.
    pub r_on_ohm: f64,
    /// Internal gate delay (two inverters), ps.
    pub t_gate_ps: f64,
    /// Input capacitance presented to the wire, fF.
    pub c_in_ff: f64,
}

impl FullSwingParams {
    /// Repeater sizing representative of the paper's equivalent
    /// full-swing link (measured ≈100 ps/mm at min pitch).
    #[must_use]
    pub fn default_45nm() -> Self {
        FullSwingParams {
            vdd: VDD_45NM,
            vth: Volts(0.45),
            r_on_ohm: 420.0,
            t_gate_ps: 16.0,
            c_in_ff: 8.0,
        }
    }
}

/// Parameters of a voltage-locked repeater (VLR) stage, Fig 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VlrParams {
    /// Supply voltage.
    pub vdd: Volts,
    /// Threshold of the receiver inverter `INV1x`; the lock centres the
    /// wire swing on this voltage.
    pub vth: Volts,
    /// Transmitter drive resistance during the transient overdrive phase
    /// (before the feedback loop reasserts the lock), ohms.
    pub r_tx_strong_ohm: f64,
    /// Transmitter drive resistance once locked, ohms. Together with the
    /// wire resistance and the clamp this sets `Vhigh`/`Vlow` (paper
    /// footnote 4).
    pub r_tx_weak_ohm: f64,
    /// Clamp (lock) resistance, ohms. This is the `RxN`/`RxP` contention
    /// path: the receiver pulls the wire toward **ground** while it reads
    /// logic high and toward **Vdd** while it reads logic low, with the
    /// read state delayed by the feedback delay cell. The stale direction
    /// assists an incoming edge (lower propagation delay) and produces
    /// the transient overshoot of Fig 3(b) before the lock reasserts.
    pub r_clamp_ohm: f64,
    /// Receiver gate delay, ps.
    pub t_gate_ps: f64,
    /// Feedback delay-cell time, ps: for this long after a detected
    /// transition the clamp is released, producing the overshoot of
    /// Fig 3(b).
    pub t_feedback_ps: f64,
    /// Input capacitance presented to the wire, fF.
    pub c_in_ff: f64,
    /// Detection hysteresis around `vth`, volts. Small but nonzero to
    /// keep the behavioural model (like the silicon) from oscillating.
    pub hysteresis: Volts,
}

impl VlrParams {
    /// VLR sizing representative of the fabricated chip (measured
    /// ≈60 ps/mm at min pitch, ~0.25 V swing).
    #[must_use]
    pub fn default_45nm() -> Self {
        VlrParams {
            vdd: VDD_45NM,
            vth: Volts(0.45),
            r_tx_strong_ohm: 380.0,
            r_tx_weak_ohm: 1250.0,
            r_clamp_ohm: 2900.0,
            t_gate_ps: 10.0,
            t_feedback_ps: 38.0,
            c_in_ff: 6.0,
            hysteresis: Volts(0.03),
        }
    }

    /// The Table I `∗` sizing: transistors shrunk for the 2 GHz system
    /// design point (footnote 5: "smaller transistor sizes and 2X wider
    /// wire spacing than fabricated design"). Weaker drive trades speed
    /// for energy; with 2× spaced wires this lands near the published
    /// 8 hops per cycle at 2 Gb/s.
    #[must_use]
    pub fn resized_2ghz() -> Self {
        VlrParams {
            r_tx_strong_ohm: 1050.0,
            r_tx_weak_ohm: 2900.0,
            r_clamp_ohm: 5800.0,
            t_gate_ps: 14.0,
            c_in_ff: 3.5,
            ..VlrParams::default_45nm()
        }
    }

    /// Steady-state locked swing levels `(Vlow, Vhigh)` for a wire with
    /// total series resistance `r_wire_ohm`, from the resistive divider of
    /// footnote 4: `Vhigh` is set by the wire resistance, `TxP`'s
    /// on-resistance and `RxN`'s on-resistance (dually for `Vlow`).
    ///
    /// While the wire holds logic high, `TxP` pulls toward `Vdd` through
    /// the weak drive + wire resistance and the receiver's `RxN` clamp
    /// pulls toward ground through `r_clamp_ohm`; the node settles on the
    /// divider (dually for logic low).
    #[must_use]
    pub fn locked_levels(&self, r_wire_ohm: f64) -> (Volts, Volts) {
        let r_ser = self.r_tx_weak_ohm + r_wire_ohm;
        let g_ser = 1.0 / r_ser;
        let g_clamp = 1.0 / self.r_clamp_ohm;
        let v_high = self.vdd.0 * g_ser / (g_ser + g_clamp);
        let v_low = self.vdd.0 * g_clamp / (g_ser + g_clamp);
        (Volts(v_low), Volts(v_high))
    }

    /// Peak-to-peak locked swing for a wire with series resistance
    /// `r_wire_ohm`.
    #[must_use]
    pub fn locked_swing(&self, r_wire_ohm: f64) -> Volts {
        let (lo, hi) = self.locked_levels(r_wire_ohm);
        Volts(hi.0 - lo.0)
    }

    /// Static current (mA) drawn from the supply while locked high across
    /// a wire of series resistance `r_wire_ohm`: the `TxP`–wire–`RxN`
    /// contention path.
    #[must_use]
    pub fn static_current_ma(&self, r_wire_ohm: f64) -> f64 {
        let (_, v_high) = self.locked_levels(r_wire_ohm);
        // Volts / Ohms = A; ×1e3 → mA.
        (self.vdd.0 - v_high.0) / (self.r_tx_weak_ohm + r_wire_ohm) * 1e3
    }
}

/// A repeater stage of either family, as instantiated along a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Repeater {
    /// Conventional rail-to-rail repeater.
    FullSwing(FullSwingParams),
    /// Clockless low-swing voltage-locked repeater.
    VoltageLocked(VlrParams),
}

impl Repeater {
    /// Input capacitance presented to the wire, fF.
    #[must_use]
    pub fn c_in_ff(&self) -> f64 {
        match self {
            Repeater::FullSwing(p) => p.c_in_ff,
            Repeater::VoltageLocked(p) => p.c_in_ff,
        }
    }

    /// Receiver gate delay, ps.
    #[must_use]
    pub fn t_gate_ps(&self) -> f64 {
        match self {
            Repeater::FullSwing(p) => p.t_gate_ps,
            Repeater::VoltageLocked(p) => p.t_gate_ps,
        }
    }

    /// Supply voltage.
    #[must_use]
    pub fn vdd(&self) -> Volts {
        match self {
            Repeater::FullSwing(p) => p.vdd,
            Repeater::VoltageLocked(p) => p.vdd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locked_levels_straddle_threshold_symmetrically() {
        let p = VlrParams::default_45nm();
        let (lo, hi) = p.locked_levels(420.0);
        assert!(lo.0 < p.vth.0 && p.vth.0 < hi.0);
        let up = hi.0 - p.vth.0;
        let down = p.vth.0 - lo.0;
        // Vdd = 2·vth makes the divider symmetric.
        assert!((up - down).abs() < 1e-12, "up={up} down={down}");
    }

    #[test]
    fn locked_swing_is_low_swing() {
        let p = VlrParams::default_45nm();
        let swing = p.locked_swing(420.0);
        // A few hundred mV, well below the 0.9 V rail.
        assert!(
            swing.0 > 0.15 && swing.0 < 0.45,
            "swing should be low, got {swing}"
        );
    }

    #[test]
    fn longer_wire_reduces_swing_and_static_current() {
        let p = VlrParams::default_45nm();
        // Footnote 4: the levels are set partly by the wire resistance, so
        // a more resistive wire divides more aggressively.
        assert!(p.locked_swing(800.0).0 < p.locked_swing(200.0).0);
        assert!(p.static_current_ma(800.0) < p.static_current_ma(200.0));
    }

    #[test]
    fn static_current_is_sub_milliamp() {
        // Paper: "the static energy is much less than a conventional
        // continuous-time comparator since the static current paths
        // include a highly-resistive link wire."
        let p = VlrParams::default_45nm();
        let i = p.static_current_ma(420.0);
        assert!(i > 0.0 && i < 0.5, "got {i} mA");
    }

    #[test]
    fn stronger_overdrive_than_lock() {
        let p = VlrParams::default_45nm();
        assert!(p.r_tx_strong_ohm < p.r_tx_weak_ohm);
    }

    #[test]
    fn repeater_accessors() {
        let fs = Repeater::FullSwing(FullSwingParams::default_45nm());
        let ls = Repeater::VoltageLocked(VlrParams::default_45nm());
        assert!(fs.c_in_ff() > ls.c_in_ff());
        assert_eq!(fs.vdd(), VDD_45NM);
        assert!(ls.t_gate_ps() < fs.t_gate_ps());
    }
}
