//! The Section III test chip as a calibration fixture.
//!
//! The paper fabricated a 10 mm interconnect in 45 nm SOI CMOS with a VLR
//! embedded at every millimetre, alongside an equivalent full-swing
//! repeated link and on-chip test circuits (Fig 4). This module embeds the
//! published measurements and exposes the same experiments
//! (`max data rate`, `power at rate`, `delay per mm`) against our models,
//! so the bench harness can print a paper-vs-model comparison.

use crate::analytic::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};
use crate::units::{Gbps, Millimeters, Picoseconds};

/// Published measurements for one link style on the test chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipMeasurement {
    /// Maximum data rate at BER < 10⁻⁹.
    pub max_rate: Gbps,
    /// Power at the maximum data rate over the full 10 mm link, mW.
    pub power_at_max_mw: f64,
    /// Energy per bit at the maximum rate over 10 mm, fJ/b.
    pub energy_at_max_fj: f64,
    /// Propagation delay per mm.
    pub delay_per_mm: Picoseconds,
}

/// The fabricated 10 mm / 10-repeater test vehicle.
#[derive(Debug, Clone)]
pub struct TestChip {
    length: Millimeters,
    vlr_model: CalibratedLinkModel,
    fs_model: CalibratedLinkModel,
}

impl Default for TestChip {
    fn default() -> Self {
        Self::new()
    }
}

impl TestChip {
    /// The paper's test vehicle: 10 mm, repeaters at every mm, minimum
    /// DRC pitch wiring.
    #[must_use]
    pub fn new() -> Self {
        TestChip {
            length: Millimeters(10.0),
            vlr_model: CalibratedLinkModel::new(
                LinkStyle::LowSwing,
                CircuitVariant::Fabricated,
                WireSpacing::MinPitch,
            ),
            fs_model: CalibratedLinkModel::new(
                LinkStyle::FullSwing,
                CircuitVariant::Fabricated,
                WireSpacing::MinPitch,
            ),
        }
    }

    /// Link length of the test structure.
    #[must_use]
    pub fn length(&self) -> Millimeters {
        self.length
    }

    /// Published measurements for `style` (Section III):
    ///
    /// * VLR: 6.8 Gb/s max, 4.14 mW (608 fJ/b), ~60 ps/mm;
    /// * full-swing: 5.5 Gb/s max, 4.21 mW (765 fJ/b), ~100 ps/mm.
    #[must_use]
    pub fn published(style: LinkStyle) -> ChipMeasurement {
        match style {
            LinkStyle::LowSwing => ChipMeasurement {
                max_rate: Gbps(6.8),
                power_at_max_mw: 4.14,
                energy_at_max_fj: 608.0,
                delay_per_mm: Picoseconds(60.0),
            },
            LinkStyle::FullSwing => ChipMeasurement {
                max_rate: Gbps(5.5),
                power_at_max_mw: 4.21,
                energy_at_max_fj: 765.0,
                delay_per_mm: Picoseconds(100.0),
            },
        }
    }

    /// Published VLR power at the full-swing chain's maximum rate
    /// (5.5 Gb/s): 3.78 mW (687 fJ/b) — the like-for-like energy win.
    #[must_use]
    pub fn published_vlr_at_5p5() -> (f64, f64) {
        (3.78, 687.0)
    }

    /// The calibrated model for `style` at the chip's operating point.
    #[must_use]
    pub fn model(&self, style: LinkStyle) -> &CalibratedLinkModel {
        match style {
            LinkStyle::LowSwing => &self.vlr_model,
            LinkStyle::FullSwing => &self.fs_model,
        }
    }

    /// Model-predicted maximum data rate at BER < 10⁻⁹.
    #[must_use]
    pub fn max_data_rate(&self, style: LinkStyle) -> Gbps {
        self.model(style).max_data_rate(1e-9)
    }

    /// Model-predicted power (mW) for a continuous stream at `rate` over
    /// the full 10 mm.
    #[must_use]
    pub fn power_mw(&self, style: LinkStyle, rate: Gbps) -> f64 {
        self.model(style).power_mw(rate, self.length)
    }

    /// Model-predicted energy per bit (fJ) over the full 10 mm.
    #[must_use]
    pub fn energy_fj_per_bit(&self, style: LinkStyle, rate: Gbps) -> f64 {
        self.model(style).energy_fj_per_bit(rate, self.length)
    }

    /// Model-predicted per-mm delay at `rate`.
    #[must_use]
    pub fn delay_per_mm(&self, style: LinkStyle, rate: Gbps) -> Picoseconds {
        self.model(style).delay_ps_per_mm(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_numbers_are_internally_consistent() {
        // P = E·R must hold for the published triples.
        for style in [LinkStyle::LowSwing, LinkStyle::FullSwing] {
            let m = TestChip::published(style);
            let p = m.energy_at_max_fj * m.max_rate.0 * 1e-3; // fJ·Gb/s = µW → mW via 1e-3
            assert!(
                (p - m.power_at_max_mw).abs() < 0.01,
                "{style:?}: E·R = {p} mW vs published {} mW",
                m.power_at_max_mw
            );
        }
    }

    #[test]
    fn model_max_rates_match_chip() {
        let chip = TestChip::new();
        let vlr = chip.max_data_rate(LinkStyle::LowSwing);
        let fs = chip.max_data_rate(LinkStyle::FullSwing);
        assert!((vlr.0 - 6.8).abs() < 0.1, "VLR max rate {vlr}");
        assert!((fs.0 - 5.5).abs() < 0.1, "full-swing max rate {fs}");
        assert!(vlr.0 > fs.0, "the VLR must be the faster link");
    }

    #[test]
    fn vlr_wins_energy_at_matched_rate() {
        // At 5.5 Gb/s the chip measured VLR 687 fJ/b vs full-swing
        // 765 fJ/b. Our min-pitch models must preserve the ordering.
        let chip = TestChip::new();
        let e_vlr = chip.energy_fj_per_bit(LinkStyle::LowSwing, Gbps(5.5));
        let e_fs = chip.energy_fj_per_bit(LinkStyle::FullSwing, Gbps(5.5));
        assert!(
            e_vlr < e_fs,
            "VLR {e_vlr} fJ/b should undercut full-swing {e_fs} fJ/b"
        );
    }

    #[test]
    fn delays_match_measurements() {
        let chip = TestChip::new();
        let d_vlr = chip.delay_per_mm(LinkStyle::LowSwing, Gbps(5.0)).0;
        let d_fs = chip.delay_per_mm(LinkStyle::FullSwing, Gbps(5.0)).0;
        assert!((45.0..=75.0).contains(&d_vlr), "VLR {d_vlr} vs ~60 ps/mm");
        assert!((85.0..=115.0).contains(&d_fs), "FS {d_fs} vs ~100 ps/mm");
    }

    #[test]
    fn ten_mm_at_max_rate_is_single_digit_milliwatts() {
        let chip = TestChip::new();
        let p = chip.power_mw(LinkStyle::LowSwing, Gbps(6.8));
        assert!(p > 1.0 && p < 10.0, "got {p} mW (chip: 4.14 mW)");
    }
}
