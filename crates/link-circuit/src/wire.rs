//! Distributed-RC on-chip wire model.
//!
//! The paper's links are minimum-DRC-pitch intermediate-layer wires in a
//! 45 nm SOI process (the fabricated chip) or the same wires at 2× spacing
//! (the Table I re-optimized variants; wider spacing roughly halves the
//! coupling-dominated capacitance). This module captures the per-mm R/C of
//! those wires and discretizes a wire run into an RC ladder for the
//! transient solver.

use crate::units::Millimeters;

/// Wire spacing class, which sets the capacitance per mm.
///
/// Table I footnotes: the `∗` rows are "resized and optimized for
/// low-frequency (2 GHz) and wider wire spacing"; the `∗∗` rows are "the
/// same circuit as in the fabricated chip with wider wire spacing"; the
/// chip measurements themselves ("60 ps/mm", "100 ps/mm") assume minimum
/// DRC pitch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Spacing {
    /// Minimum DRC pitch: densest wiring, highest sidewall coupling.
    #[default]
    MinPitch,
    /// Double the minimum spacing: roughly 40% lower total capacitance at
    /// the cost of half the bandwidth density.
    Double,
}

/// Electrical parameters of one millimetre of link wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRc {
    /// Series resistance, ohms per mm.
    pub r_ohm_per_mm: f64,
    /// Total (ground + coupling) capacitance, femtofarads per mm.
    pub c_ff_per_mm: f64,
}

impl WireRc {
    /// 45 nm-class intermediate-layer wire at the given spacing.
    ///
    /// Values are representative of a 45 nm process intermediate metal:
    /// ~420 Ω/mm series resistance at minimum width, ~210 fF/mm total
    /// capacitance at minimum pitch falling to ~125 fF/mm at 2× spacing
    /// (sidewall coupling dominates at these geometries).
    #[must_use]
    pub fn for_45nm(spacing: Spacing) -> Self {
        match spacing {
            Spacing::MinPitch => WireRc {
                r_ohm_per_mm: 420.0,
                c_ff_per_mm: 210.0,
            },
            Spacing::Double => WireRc {
                r_ohm_per_mm: 420.0,
                c_ff_per_mm: 125.0,
            },
        }
    }

    /// Intrinsic distributed-RC time constant of `length` of this wire,
    /// in picoseconds: `0.38 · R · C · L²` (distributed Elmore delay).
    #[must_use]
    pub fn elmore_delay_ps(&self, length: Millimeters) -> f64 {
        // R [Ω/mm] · C [fF/mm] · L² [mm²] = Ω·fF = 1e-15 s = 1e-3 ps.
        0.38 * self.r_ohm_per_mm * self.c_ff_per_mm * length.0 * length.0 * 1e-3
    }

    /// Discretize `length` of this wire into `sections_per_mm` lumped RC
    /// sections for transient simulation.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive or `sections_per_mm` is zero.
    #[must_use]
    pub fn ladder(&self, length: Millimeters, sections_per_mm: usize) -> RcLadder {
        assert!(length.0 > 0.0, "wire length must be positive, got {length}");
        assert!(sections_per_mm > 0, "need at least one section per mm");
        let n = ((length.0 * sections_per_mm as f64).round() as usize).max(1);
        let seg_len = length.0 / n as f64;
        RcLadder {
            r_ohm: self.r_ohm_per_mm * seg_len,
            c_ff: self.c_ff_per_mm * seg_len,
            sections: n,
            length,
        }
    }
}

/// A lumped RC-ladder discretization of a wire run: `sections` identical
/// Γ-sections of series `r_ohm` into shunt `c_ff`.
#[derive(Debug, Clone, PartialEq)]
pub struct RcLadder {
    /// Series resistance of one section, ohms.
    pub r_ohm: f64,
    /// Shunt capacitance of one section, femtofarads.
    pub c_ff: f64,
    /// Number of sections.
    pub sections: usize,
    /// Physical length represented.
    pub length: Millimeters,
}

impl RcLadder {
    /// Total series resistance of the ladder, ohms.
    #[must_use]
    pub fn total_r_ohm(&self) -> f64 {
        self.r_ohm * self.sections as f64
    }

    /// Total shunt capacitance of the ladder, femtofarads.
    #[must_use]
    pub fn total_c_ff(&self) -> f64 {
        self.c_ff * self.sections as f64
    }

    /// Smallest RC time constant in the ladder (ps), which bounds the
    /// stable explicit-integration step.
    #[must_use]
    pub fn min_tau_ps(&self) -> f64 {
        self.r_ohm * self.c_ff * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacing_reduces_capacitance_not_resistance() {
        let tight = WireRc::for_45nm(Spacing::MinPitch);
        let wide = WireRc::for_45nm(Spacing::Double);
        assert!(wide.c_ff_per_mm < tight.c_ff_per_mm);
        assert!((wide.r_ohm_per_mm - tight.r_ohm_per_mm).abs() < f64::EPSILON);
    }

    #[test]
    fn elmore_scales_quadratically() {
        let w = WireRc::for_45nm(Spacing::MinPitch);
        let d1 = w.elmore_delay_ps(Millimeters(1.0));
        let d2 = w.elmore_delay_ps(Millimeters(2.0));
        assert!((d2 / d1 - 4.0).abs() < 1e-9);
        // An unrepeated 1 mm min-pitch wire: 0.38·420·210e-3 ≈ 33.5 ps —
        // far below a 500 ps cycle, the paper's core observation that
        // motivates multi-hop traversal.
        assert!(d1 > 20.0 && d1 < 50.0, "got {d1}");
    }

    #[test]
    fn ladder_conserves_totals() {
        let w = WireRc::for_45nm(Spacing::Double);
        let lad = w.ladder(Millimeters(1.0), 5);
        assert_eq!(lad.sections, 5);
        assert!((lad.total_r_ohm() - w.r_ohm_per_mm).abs() < 1e-9);
        assert!((lad.total_c_ff() - w.c_ff_per_mm).abs() < 1e-9);
    }

    #[test]
    fn ladder_fractional_length_rounds_sections() {
        let w = WireRc::for_45nm(Spacing::MinPitch);
        let lad = w.ladder(Millimeters(0.5), 4);
        assert_eq!(lad.sections, 2);
        assert!((lad.total_c_ff() - 105.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn ladder_rejects_zero_length() {
        let w = WireRc::for_45nm(Spacing::MinPitch);
        let _ = w.ladder(Millimeters(0.0), 5);
    }

    #[test]
    fn min_tau_is_per_section() {
        let w = WireRc::for_45nm(Spacing::MinPitch);
        let lad = w.ladder(Millimeters(1.0), 10);
        // (420/10) Ω · (210/10) fF = 882 Ω·fF = 0.882 ps.
        assert!((lad.min_tau_ps() - 0.882).abs() < 1e-6);
    }
}
