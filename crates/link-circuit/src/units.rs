//! Newtype units used throughout the link models.
//!
//! The circuit model mixes quantities (picoseconds, millimetres, Gb/s,
//! femtojoules, volts) whose accidental interchange would be silent with
//! bare `f64`s. Each unit is a transparent newtype with just enough
//! arithmetic for the models; raw access is always available via `.0`.
//!
//! ```
//! use smart_link::units::{Gbps, Picoseconds};
//!
//! let rate = Gbps(2.0);
//! assert_eq!(rate.bit_time(), Picoseconds(500.0));
//! ```

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

unit!(
    /// A duration in picoseconds.
    Picoseconds,
    "ps"
);
unit!(
    /// A physical length in millimetres. One *hop* in the paper is 1 mm
    /// (the place-and-route footprint of a PowerPC e200z7 core in 45 nm).
    Millimeters,
    "mm"
);
unit!(
    /// A per-wire data rate in gigabits per second. At one bit per clock
    /// cycle per wire, `Gbps(f)` corresponds to a clock of `f` GHz.
    Gbps,
    "Gb/s"
);
unit!(
    /// Energy efficiency in femtojoules per bit per millimetre, the unit
    /// Table I of the paper reports.
    FemtojoulesPerBitMm,
    "fJ/b/mm"
);
unit!(
    /// Energy in femtojoules.
    Femtojoules,
    "fJ"
);
unit!(
    /// A voltage in volts.
    Volts,
    "V"
);
unit!(
    /// Power in milliwatts.
    Milliwatts,
    "mW"
);

impl Gbps {
    /// Time of a single bit (one UI) at this data rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    #[must_use]
    pub fn bit_time(self) -> Picoseconds {
        assert!(self.0 > 0.0, "data rate must be positive, got {self}");
        Picoseconds(1000.0 / self.0)
    }
}

impl Picoseconds {
    /// The data rate whose unit interval equals this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is not strictly positive.
    #[must_use]
    pub fn as_rate(self) -> Gbps {
        assert!(self.0 > 0.0, "bit time must be positive, got {self}");
        Gbps(1000.0 / self.0)
    }
}

/// Energy (fJ) consumed moving one bit across `length` of wire at
/// efficiency `eff`.
#[must_use]
pub fn energy_for(eff: FemtojoulesPerBitMm, length: Millimeters) -> Femtojoules {
    Femtojoules(eff.0 * length.0)
}

/// Average power for a stream of bits at `rate` with per-bit energy
/// `fj_per_bit` (fJ): `P = E · R`.
#[must_use]
pub fn power_mw(fj_per_bit: Femtojoules, rate: Gbps) -> Milliwatts {
    // fJ * Gb/s = 1e-15 J * 1e9 1/s = 1e-6 W = 1e-3 mW.
    Milliwatts(fj_per_bit.0 * rate.0 * 1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_time_round_trips() {
        let r = Gbps(2.0);
        assert_eq!(r.bit_time(), Picoseconds(500.0));
        assert_eq!(r.bit_time().as_rate(), r);
    }

    #[test]
    fn bit_time_of_chip_max_rate() {
        // 6.8 Gb/s -> ~147 ps UI, the VLR's measured maximum.
        let ui = Gbps(6.8).bit_time();
        assert!((ui.0 - 147.058).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        let _ = Gbps(0.0).bit_time();
    }

    #[test]
    fn arithmetic() {
        let a = Picoseconds(30.0);
        let b = Picoseconds(12.0);
        assert_eq!(a + b, Picoseconds(42.0));
        assert_eq!(a - b, Picoseconds(18.0));
        assert_eq!(a * 2.0, Picoseconds(60.0));
        assert_eq!(a / 2.0, Picoseconds(15.0));
        assert!((a / b - 2.5).abs() < 1e-12);
        assert_eq!(-a, Picoseconds(-30.0));
        assert_eq!((-a).abs(), a);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn chip_power_checks_out() {
        // Paper: VLR at 6.8 Gb/s over 10 mm consumes 4.14 mW = 608 fJ/b.
        let p = power_mw(Femtojoules(608.0), Gbps(6.8));
        assert!((p.0 - 4.134).abs() < 0.01, "got {p}");
        // Full-swing: 765 fJ/b at 5.5 Gb/s = 4.21 mW.
        let p = power_mw(Femtojoules(765.0), Gbps(5.5));
        assert!((p.0 - 4.2075).abs() < 0.01, "got {p}");
    }

    #[test]
    fn energy_scales_with_length() {
        let e = energy_for(FemtojoulesPerBitMm(104.0), Millimeters(8.0));
        assert!((e.0 - 832.0).abs() < 1e-9);
    }

    #[test]
    fn display_has_units() {
        assert_eq!(format!("{}", Gbps(2.0)), "2 Gb/s");
        assert_eq!(format!("{:.1}", Picoseconds(59.39)), "59.4 ps");
        assert_eq!(format!("{}", Volts(0.9)), "0.9 V");
    }
}
