//! Switch-level transient simulation of repeated links.
//!
//! A link is a chain of identical repeater stages, each driving 1 mm of
//! distributed-RC wire (one *hop* of the mesh). The solver integrates the
//! wire-node voltages with an explicit fixed-step method; repeater stages
//! are behavioural: a threshold detector with a gate delay drives the next
//! wire through an on-resistance, and (for the VLR) a clamp locks the
//! receiving node near the inverter threshold except for a short
//! feedback-delay window after each transition, which produces the
//! characteristic overshoot of Fig 3(b).
//!
//! This model is deliberately simple — it is not SPICE — but it reproduces
//! the *mechanisms* the paper describes: full-swing links spend time
//! slewing rail-to-rail, low-swing voltage-locked links cross their
//! decision threshold sooner and so propagate faster, and at excessive
//! data rates inter-symbol interference closes the eye.
//!
//! ```
//! use smart_link::device::{Repeater, VlrParams};
//! use smart_link::transient::{ChainSpec, TransientConfig, simulate};
//! use smart_link::units::Gbps;
//! use smart_link::wire::{Spacing, WireRc};
//!
//! let spec = ChainSpec {
//!     repeater: Repeater::VoltageLocked(VlrParams::default_45nm()),
//!     wire: WireRc::for_45nm(Spacing::MinPitch),
//!     hops: 4,
//!     sections_per_mm: 5,
//! };
//! let out = simulate(&spec, &TransientConfig::at_rate(Gbps(2.0)));
//! assert_eq!(out.missed_edges, 0);
//! assert!(out.delay_ps_per_mm > 30.0 && out.delay_ps_per_mm < 90.0);
//! ```

use crate::device::{Repeater, VlrParams};
use crate::units::{Gbps, Millimeters, Picoseconds, Volts};
use crate::wire::WireRc;

/// Bit pattern driven into the link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitPattern {
    /// `1010…` — a transition every bit; worst case for delay
    /// measurement, pessimistic for energy.
    Alternating,
    /// PRBS-7 (x⁷+x⁶+1), ~50% transition density: representative data for
    /// energy measurements.
    Prbs7,
    /// Caller-supplied bits.
    Custom(Vec<bool>),
}

impl BitPattern {
    /// Materialize `n` bits of the pattern.
    #[must_use]
    pub fn bits(&self, n: usize) -> Vec<bool> {
        match self {
            BitPattern::Alternating => (0..n).map(|i| i % 2 == 0).collect(),
            BitPattern::Prbs7 => {
                let mut lfsr: u8 = 0x7F;
                (0..n)
                    .map(|_| {
                        let bit = ((lfsr >> 6) ^ (lfsr >> 5)) & 1;
                        lfsr = ((lfsr << 1) | bit) & 0x7F;
                        bit == 1
                    })
                    .collect()
            }
            BitPattern::Custom(v) => (0..n).map(|i| v[i % v.len()]).collect(),
        }
    }
}

/// Physical description of a repeated link under test.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// The repeater instantiated at the head of every hop.
    pub repeater: Repeater,
    /// Wire parameters (per mm).
    pub wire: WireRc,
    /// Number of 1 mm hops (the paper's test chip: 10).
    pub hops: usize,
    /// RC-ladder discretization density.
    pub sections_per_mm: usize,
}

impl ChainSpec {
    /// Total link length.
    #[must_use]
    pub fn length(&self) -> Millimeters {
        Millimeters(self.hops as f64)
    }
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct TransientConfig {
    /// Data rate (one bit per UI per wire).
    pub rate: Gbps,
    /// Number of bits to simulate after warm-up.
    pub bits: usize,
    /// Bits discarded while the chain reaches steady state.
    pub warmup_bits: usize,
    /// Pattern for the measured window.
    pub pattern: BitPattern,
    /// Integration step; shrunk automatically if the ladder needs it.
    pub dt_ps: f64,
    /// If `Some(stride)`, record waveforms at every wire-end node, one
    /// sample every `stride` steps.
    pub probe_stride: Option<usize>,
}

impl TransientConfig {
    /// Reasonable defaults for measuring a link at `rate`: 48 PRBS bits
    /// after an 8-bit warm-up, 0.25 ps step, no waveform capture.
    #[must_use]
    pub fn at_rate(rate: Gbps) -> Self {
        TransientConfig {
            rate,
            bits: 48,
            warmup_bits: 8,
            pattern: BitPattern::Prbs7,
            dt_ps: 0.25,
            probe_stride: None,
        }
    }

    /// Configuration for waveform capture (Fig 3): an alternating pattern
    /// with probes on, fewer bits.
    #[must_use]
    pub fn waveform(rate: Gbps) -> Self {
        TransientConfig {
            rate,
            bits: 8,
            warmup_bits: 4,
            pattern: BitPattern::Alternating,
            dt_ps: 0.25,
            probe_stride: Some(8),
        }
    }
}

/// A sampled voltage trace at one probe point.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    /// Probe label, e.g. `"hop3.end"`.
    pub label: String,
    /// Time between samples.
    pub dt: Picoseconds,
    /// Sampled node voltages.
    pub samples: Vec<f64>,
}

impl Waveform {
    /// Minimum and maximum sample.
    #[must_use]
    pub fn extent(&self) -> (Volts, Volts) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &s in &self.samples {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        (Volts(lo), Volts(hi))
    }

    /// Render the waveform as a compact ASCII oscillogram with `rows`
    /// vertical resolution, for terminal figures.
    #[must_use]
    pub fn ascii_plot(&self, rows: usize, cols: usize) -> String {
        assert!(rows >= 2 && cols >= 2, "plot needs at least a 2x2 canvas");
        let (lo, hi) = self.extent();
        let span = (hi.0 - lo.0).max(1e-9);
        let mut grid = vec![vec![b' '; cols]; rows];
        let n = self.samples.len().max(2);
        for (c, col) in (0..cols).map(|c| (c, c * (n - 1) / (cols - 1))) {
            let v = self.samples[col];
            let r = ((hi.0 - v) / span * (rows - 1) as f64).round() as usize;
            grid[r.min(rows - 1)][c] = b'*';
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let v = hi.0 - span * i as f64 / (rows - 1) as f64;
            out.push_str(&format!("{v:6.3} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii grid"));
            out.push('\n');
        }
        out
    }
}

/// Everything measured from one transient run.
#[derive(Debug, Clone)]
pub struct TransientOutcome {
    /// Mean per-hop propagation delay, measured detector-to-detector in
    /// the middle of the chain (end effects excluded), in ps/mm.
    pub delay_ps_per_mm: f64,
    /// Source-driver flip to far-end threshold crossing for the same
    /// edge, averaged.
    pub total_delay: Picoseconds,
    /// Supply energy per transmitted bit, fJ (includes static current for
    /// the VLR).
    pub energy_fj_per_bit: f64,
    /// Energy normalized per mm, fJ/b/mm — Table I's unit.
    pub energy_fj_per_bit_mm: f64,
    /// Min/max voltage observed at the far-end node after warm-up.
    pub far_swing: (Volts, Volts),
    /// Worst-case vertical eye opening at the far end (negative = closed).
    pub eye_opening: Volts,
    /// Edges launched but never detected at the far end — nonzero means
    /// the link fails at this rate/length.
    pub missed_edges: usize,
    /// Captured waveforms, if probing was enabled.
    pub waveforms: Vec<Waveform>,
}

/// Per-stage driver/detector state.
#[derive(Debug, Clone)]
struct StageState {
    /// Detected logic at this stage's input.
    detected: bool,
    /// Driven logic at this stage's output (after gate delay).
    driving: bool,
    /// Pending output flip: (time, value).
    pending: Option<(f64, bool)>,
    /// Time of the last output flip (starts the overdrive window).
    t_flip: f64,
    /// Time of the last input detection.
    t_detect: f64,
    /// Direction of the input clamp (VLR only): `true` = the delayed
    /// feedback reads logic high, so `RxN` pulls the wire toward ground.
    clamp_high: bool,
    /// Pending clamp-direction flip: (time, value) — the feedback delay
    /// cell in flight.
    clamp_pending: Option<(f64, bool)>,
    /// Number of input edges detected.
    edges: usize,
}

impl StageState {
    fn new(initial: bool) -> Self {
        StageState {
            detected: initial,
            driving: initial,
            pending: None,
            t_flip: -1e9,
            t_detect: -1e9,
            clamp_high: initial,
            clamp_pending: None,
            edges: 0,
        }
    }
}

/// Run one transient simulation.
///
/// # Panics
///
/// Panics if the spec has zero hops or the configuration has zero bits.
#[must_use]
pub fn simulate(spec: &ChainSpec, cfg: &TransientConfig) -> TransientOutcome {
    assert!(spec.hops > 0, "chain must have at least one hop");
    assert!(cfg.bits > 0, "must simulate at least one bit");

    let ladder = spec.wire.ladder(Millimeters(1.0), spec.sections_per_mm);
    let n_sect = ladder.sections;
    let r_sect = ladder.r_ohm;
    let c_sect_ff = ladder.c_ff;
    let vdd = spec.repeater.vdd().0;

    let (vth, hyst, clamp): (f64, f64, Option<&VlrParams>) = match &spec.repeater {
        Repeater::FullSwing(p) => (p.vth.0, 0.01, None),
        Repeater::VoltageLocked(p) => (p.vth.0, p.hysteresis.0, Some(p)),
    };

    // Stability: dt < 2·C/G_max. The stiffest node is the drive node with
    // the strong on-resistance.
    let g_drive = match &spec.repeater {
        Repeater::FullSwing(p) => 1.0 / p.r_on_ohm,
        Repeater::VoltageLocked(p) => 1.0 / p.r_tx_strong_ohm,
    };
    let g_max = g_drive + 1.0 / r_sect + clamp.map_or(0.0, |p| 1.0 / p.r_clamp_ohm);
    let c_min_f = c_sect_ff * 1e-15;
    let dt_stable = 2.0 * c_min_f / g_max * 1e12; // ps
    let dt = cfg.dt_ps.min(dt_stable * 0.4);

    let ui = cfg.rate.bit_time().0;
    let total_bits = cfg.warmup_bits + cfg.bits;
    let bits = cfg.pattern.bits(total_bits);
    // Allow the last edge to propagate out: tail of 3 UIs or the expected
    // chain delay, whichever is larger.
    let tail = (3.0 * ui).max(150.0 * spec.hops as f64);
    let t_end = total_bits as f64 * ui + tail;
    let steps = (t_end / dt).ceil() as usize;

    // Node voltages: hops × sections, v[h][s]; stage h drives v[h][0];
    // stage h+1 reads v[h][n_sect-1]. Initialize to the idle state for
    // logic low.
    let init_v = clamp.map_or(0.0, |p| p.locked_levels(ladder.total_r_ohm()).0 .0);
    let mut v = vec![vec![init_v; n_sect]; spec.hops];
    // Stage 0 is the source driver; stages 1..hops are repeaters; stage
    // `hops` is the final receiver (detector only).
    let mut stages: Vec<StageState> = (0..=spec.hops).map(|_| StageState::new(false)).collect();

    let mut launch_times: Vec<f64> = Vec::new();
    let mut far_detect_times: Vec<f64> = Vec::new();
    let mut mid_detect: Vec<Vec<f64>> = vec![Vec::new(); spec.hops + 1];
    let mut energy_fj = 0.0_f64;
    let mut energy_fj_measured = 0.0_f64;
    let mut far_lo = f64::INFINITY;
    let mut far_hi = f64::NEG_INFINITY;

    // Eye sampling: value at 0.72 UI into each bit window at the far end,
    // grouped by the bit that *should* be there (aligned later).
    let mut far_samples: Vec<(usize, f64)> = Vec::new();

    let probe_nodes: Vec<(usize, usize, String)> = (0..spec.hops)
        .map(|h| (h, n_sect - 1, format!("hop{}.end", h + 1)))
        .collect();
    let mut probes: Vec<Waveform> = probe_nodes
        .iter()
        .map(|(_, _, label)| Waveform {
            label: label.clone(),
            dt: Picoseconds(dt * cfg.probe_stride.unwrap_or(1) as f64),
            samples: Vec::new(),
        })
        .collect();

    let warmup_t = cfg.warmup_bits as f64 * ui;

    for step in 0..steps {
        let t = step as f64 * dt;

        // --- Source pattern: stage 0 "detects" the ideal input. ---
        let bit_idx = (t / ui) as usize;
        let src_bit = if bit_idx < total_bits {
            bits[bit_idx]
        } else {
            bits[total_bits - 1]
        };
        if src_bit != stages[0].detected {
            stages[0].detected = src_bit;
            stages[0].t_detect = t;
            stages[0].edges += 1;
            let t_gate = spec.repeater.t_gate_ps();
            stages[0].pending = Some((t + t_gate, src_bit));
        }

        // --- Repeater detection at hop boundaries. ---
        for h in 0..spec.hops {
            let vin = v[h][n_sect - 1];
            let s = &mut stages[h + 1];
            let crossed = if s.detected {
                vin < vth - hyst
            } else {
                vin > vth + hyst
            };
            if crossed {
                let new = !s.detected;
                s.detected = new;
                s.t_detect = t;
                s.edges += 1;
                mid_detect[h + 1].push(t);
                if h + 1 == spec.hops && t >= warmup_t {
                    far_detect_times.push(t);
                }
                if h + 1 < spec.hops {
                    let t_gate = spec.repeater.t_gate_ps();
                    s.pending = Some((t + t_gate, new));
                }
                if let Some(p) = clamp {
                    // The feedback delay cell: the clamp direction follows
                    // the detection only after t_feedback.
                    s.clamp_pending = Some((t + p.t_feedback_ps, new));
                }
            }
        }

        // --- Fire pending clamp-direction flips. ---
        if clamp.is_some() {
            for stage in stages.iter_mut() {
                if let Some((t_fire, val)) = stage.clamp_pending {
                    if t >= t_fire {
                        stage.clamp_high = val;
                        stage.clamp_pending = None;
                    }
                }
            }
        }

        // --- Fire pending output flips. ---
        for (h, stage) in stages.iter_mut().enumerate().take(spec.hops) {
            if let Some((t_fire, val)) = stage.pending {
                if t >= t_fire {
                    stage.driving = val;
                    stage.t_flip = t;
                    stage.pending = None;
                    if h == 0 && t >= warmup_t {
                        launch_times.push(t);
                    }
                }
            }
        }

        // --- Integrate wire nodes. ---
        let mut supply_w = 0.0_f64; // instantaneous watts
        for h in 0..spec.hops {
            let stage = &stages[h];
            // Driver of this hop.
            let (v_tgt, r_drv) = match &spec.repeater {
                Repeater::FullSwing(p) => (if stage.driving { vdd } else { 0.0 }, p.r_on_ohm),
                Repeater::VoltageLocked(p) => {
                    let strong = t - stage.t_flip < p.t_feedback_ps;
                    let r = if strong {
                        p.r_tx_strong_ohm
                    } else {
                        p.r_tx_weak_ohm
                    };
                    (if stage.driving { vdd } else { 0.0 }, r)
                }
            };
            let i_drv = (v_tgt - v[h][0]) / r_drv; // amps (V/Ω)
            if v_tgt > 0.0 && i_drv > 0.0 {
                supply_w += vdd * i_drv;
            }

            // Clamp at the receiving end of this hop (input of stage h+1):
            // RxN pulls toward ground while the (delayed) feedback reads
            // high, RxP pulls toward Vdd while it reads low.
            let mut i_clamp = 0.0;
            if let Some(p) = clamp {
                let rx = &stages[h + 1];
                let target = if rx.clamp_high { 0.0 } else { vdd };
                i_clamp = (target - v[h][n_sect - 1]) / p.r_clamp_ohm;
                if target > 0.0 && i_clamp > 0.0 {
                    supply_w += vdd * i_clamp;
                }
            }

            let c_in_last = spec.repeater.c_in_ff();
            for s in 0..n_sect {
                let mut i_node = 0.0;
                if s == 0 {
                    i_node += i_drv;
                } else {
                    i_node += (v[h][s - 1] - v[h][s]) / r_sect;
                }
                if s + 1 < n_sect {
                    i_node += (v[h][s + 1] - v[h][s]) / r_sect;
                }
                let mut c_ff = c_sect_ff;
                if s == n_sect - 1 {
                    i_node += i_clamp;
                    c_ff += c_in_last;
                }
                // dv = i·dt/C : A·ps/fF = V·(1e-12/1e-15)=1e3 — careful:
                // i [A] · dt [ps=1e-12 s] / C [fF=1e-15 F] → ×1e3.
                v[h][s] += i_node * dt / c_ff * 1e3;
            }
        }
        // fJ = W · ps · 1e(−12+15).
        let e_step = supply_w * dt * 1e3;
        energy_fj += e_step;
        if t >= warmup_t {
            energy_fj_measured += e_step;
        }

        // --- Far-end observation. ---
        let vfar = v[spec.hops - 1][n_sect - 1];
        if t >= warmup_t {
            far_lo = far_lo.min(vfar);
            far_hi = far_hi.max(vfar);
            let phase = (t / ui).fract();
            if (phase - 0.72).abs() < dt / ui {
                far_samples.push((bit_idx.min(total_bits - 1), vfar));
            }
        }

        // --- Probes. ---
        if let Some(stride) = cfg.probe_stride {
            if step % stride == 0 {
                for (i, (h, s, _)) in probe_nodes.iter().enumerate() {
                    probes[i].samples.push(v[*h][*s]);
                }
            }
        }
    }
    let _ = energy_fj; // total including warm-up; the per-bit figure uses the measured window

    // --- Delay extraction. ---
    // Per-hop delay: average detector-to-detector spacing for matched
    // edge indices between interior stages.
    let mut hop_delays = Vec::new();
    for h in 1..spec.hops {
        let a = &mid_detect[h];
        let b = &mid_detect[h + 1];
        for (ta, tb) in a.iter().zip(b.iter()) {
            if *tb > *ta {
                hop_delays.push(tb - ta);
            }
        }
    }
    // Single-hop chains: measure source-flip to detector instead.
    if spec.hops == 1 {
        for (tl, tf) in launch_times.iter().zip(far_detect_times.iter()) {
            if tf > tl {
                hop_delays.push(tf - tl);
            }
        }
    }
    let delay_ps_per_mm = mean(&hop_delays);

    let mut total_delays = Vec::new();
    for (tl, tf) in launch_times.iter().zip(far_detect_times.iter()) {
        if tf > tl {
            total_delays.push(tf - tl);
        }
    }
    let total_delay = Picoseconds(mean(&total_delays));

    let launched = stages[0]
        .edges
        .saturating_sub(cfg.warmup_bits.min(stages[0].edges));
    let far_edges = far_detect_times.len();
    let missed_edges = launched.saturating_sub(far_edges + 1);

    // --- Eye: align far samples with the launched bit they carry. The
    // sample at phase 0.72 of window i shows the bit launched at
    // i + 0.72 − delay/UI, so the index shift is ceil(delay/UI − 0.72)
    // clamped at zero. ---
    let shift = if ui > 0.0 {
        (total_delay.0 / ui - 0.72).ceil().max(0.0) as usize
    } else {
        0
    };
    let mut eye_lo_of_high = f64::INFINITY;
    let mut eye_hi_of_low = f64::NEG_INFINITY;
    for (idx, val) in &far_samples {
        if *idx < shift {
            continue;
        }
        let b = bits[(*idx - shift).min(total_bits - 1)];
        if b {
            eye_lo_of_high = eye_lo_of_high.min(*val);
        } else {
            eye_hi_of_low = eye_hi_of_low.max(*val);
        }
    }
    let eye_opening = if eye_lo_of_high.is_finite() && eye_hi_of_low.is_finite() {
        Volts(eye_lo_of_high - eye_hi_of_low)
    } else {
        Volts(far_hi - far_lo)
    };

    let bits_measured = cfg.bits.max(1) as f64;
    let energy_fj_per_bit = energy_fj_measured / bits_measured;

    TransientOutcome {
        delay_ps_per_mm,
        total_delay,
        energy_fj_per_bit,
        energy_fj_per_bit_mm: energy_fj_per_bit / spec.hops as f64,
        far_swing: (Volts(far_lo), Volts(far_hi)),
        eye_opening,
        missed_edges,
        waveforms: probes,
    }
}

/// Longest chain (in hops) that delivers every edge with positive eye and
/// total delay + `setup` within one UI at `rate` — the transient-model
/// counterpart of Table I's "max number of hops per cycle".
#[must_use]
pub fn max_hops_per_cycle(repeater: Repeater, wire: WireRc, rate: Gbps, setup: Picoseconds) -> u32 {
    let ui = rate.bit_time().0;
    let mut best = 0;
    for hops in 1..=24 {
        let spec = ChainSpec {
            repeater,
            wire,
            hops,
            sections_per_mm: 4,
        };
        let mut cfg = TransientConfig::at_rate(rate);
        cfg.bits = 24;
        cfg.warmup_bits = 6;
        let out = simulate(&spec, &cfg);
        let ok =
            out.missed_edges == 0 && out.eye_opening.0 > 0.02 && out.total_delay.0 + setup.0 <= ui;
        if ok {
            best = hops as u32;
        } else if hops as u32 > best + 1 {
            break;
        }
    }
    best
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FullSwingParams;
    use crate::wire::Spacing;

    fn fs_spec(hops: usize) -> ChainSpec {
        ChainSpec {
            repeater: Repeater::FullSwing(FullSwingParams::default_45nm()),
            wire: WireRc::for_45nm(Spacing::MinPitch),
            hops,
            sections_per_mm: 5,
        }
    }

    fn ls_spec(hops: usize) -> ChainSpec {
        ChainSpec {
            repeater: Repeater::VoltageLocked(VlrParams::default_45nm()),
            wire: WireRc::for_45nm(Spacing::MinPitch),
            hops,
            sections_per_mm: 5,
        }
    }

    #[test]
    fn patterns_have_requested_length() {
        assert_eq!(BitPattern::Alternating.bits(7).len(), 7);
        assert_eq!(BitPattern::Prbs7.bits(130).len(), 130);
        let c = BitPattern::Custom(vec![true, false, false]);
        assert_eq!(c.bits(5), vec![true, false, false, true, false]);
    }

    #[test]
    fn prbs7_is_balanced_and_aperiodic_short() {
        let bits = BitPattern::Prbs7.bits(127);
        let ones = bits.iter().filter(|b| **b).count();
        // PRBS-7 has 64 ones in 127 bits.
        assert_eq!(ones, 64);
    }

    #[test]
    fn full_swing_delay_near_100ps_per_mm() {
        // Paper: "the delay of a link with full-swing repeaters is around
        // 100 ps/mm" (min pitch).
        let out = simulate(&fs_spec(6), &TransientConfig::at_rate(Gbps(1.0)));
        assert_eq!(out.missed_edges, 0, "link must deliver all edges");
        assert!(
            out.delay_ps_per_mm > 80.0 && out.delay_ps_per_mm < 120.0,
            "full-swing delay {} ps/mm outside the paper's ~100 ps/mm",
            out.delay_ps_per_mm
        );
    }

    #[test]
    fn vlr_delay_near_60ps_per_mm_and_faster_than_full_swing() {
        // Paper: "the delay of a link with VLRs is around 60 ps/mm".
        let ls = simulate(&ls_spec(6), &TransientConfig::at_rate(Gbps(1.0)));
        let fs = simulate(&fs_spec(6), &TransientConfig::at_rate(Gbps(1.0)));
        assert_eq!(ls.missed_edges, 0);
        assert!(
            ls.delay_ps_per_mm > 45.0 && ls.delay_ps_per_mm < 78.0,
            "VLR delay {} ps/mm outside the paper's ~60 ps/mm",
            ls.delay_ps_per_mm
        );
        assert!(ls.delay_ps_per_mm < fs.delay_ps_per_mm);
    }

    #[test]
    fn vlr_swing_is_locked_low() {
        let out = simulate(&ls_spec(4), &TransientConfig::at_rate(Gbps(2.0)));
        let (lo, hi) = out.far_swing;
        let swing = hi.0 - lo.0;
        // Even counting the feedback overshoot spikes, the node never
        // swings rail-to-rail.
        assert!(
            swing < 0.75,
            "VLR far-end swing {swing} V should stay below the rail"
        );
        // And it straddles the threshold.
        assert!(lo.0 < 0.45 && hi.0 > 0.45);
    }

    #[test]
    fn full_swing_reaches_the_rails() {
        let out = simulate(&fs_spec(3), &TransientConfig::at_rate(Gbps(1.0)));
        let (lo, hi) = out.far_swing;
        assert!(hi.0 > 0.85, "high level {hi} should approach 0.9 V");
        assert!(lo.0 < 0.05, "low level {lo} should approach 0 V");
    }

    #[test]
    fn energy_accounting_is_positive_and_scales_with_length() {
        let short = simulate(&ls_spec(2), &TransientConfig::at_rate(Gbps(2.0)));
        let long = simulate(&ls_spec(8), &TransientConfig::at_rate(Gbps(2.0)));
        assert!(short.energy_fj_per_bit > 0.0);
        assert!(long.energy_fj_per_bit > short.energy_fj_per_bit * 2.0);
    }

    #[test]
    fn vlr_static_energy_grows_at_low_rate() {
        // Static current amortizes over fewer bits at lower rates, so
        // fJ/b/mm must rise as the rate falls (Table I trend).
        let slow = simulate(&ls_spec(4), &TransientConfig::at_rate(Gbps(1.0)));
        let fast = simulate(&ls_spec(4), &TransientConfig::at_rate(Gbps(3.0)));
        assert!(
            slow.energy_fj_per_bit_mm > fast.energy_fj_per_bit_mm,
            "slow {} <= fast {}",
            slow.energy_fj_per_bit_mm,
            fast.energy_fj_per_bit_mm
        );
    }

    #[test]
    fn eye_closes_at_absurd_rate() {
        let out = simulate(&fs_spec(8), &TransientConfig::at_rate(Gbps(12.0)));
        assert!(
            out.missed_edges > 0 || out.eye_opening.0 < 0.05,
            "8 mm of full-swing wire cannot run at 12 Gb/s"
        );
    }

    #[test]
    fn max_hops_vlr_exceeds_full_swing() {
        let wire = WireRc::for_45nm(Spacing::Double);
        let ls = max_hops_per_cycle(
            Repeater::VoltageLocked(VlrParams::default_45nm()),
            wire,
            Gbps(2.0),
            Picoseconds(20.0),
        );
        let fs = max_hops_per_cycle(
            Repeater::FullSwing(FullSwingParams::default_45nm()),
            wire,
            Gbps(2.0),
            Picoseconds(20.0),
        );
        assert!(ls > fs, "VLR {ls} hops should beat full-swing {fs} hops");
    }

    #[test]
    fn resized_vlr_hits_table1_hop_count() {
        // Table I `∗` row: the 2 GHz-resized low-swing circuit makes
        // 8 hops per cycle at 2 Gb/s with 2× wire spacing.
        let wire = WireRc::for_45nm(Spacing::Double);
        let ls = max_hops_per_cycle(
            Repeater::VoltageLocked(VlrParams::resized_2ghz()),
            wire,
            Gbps(2.0),
            Picoseconds(20.0),
        );
        assert!(
            (7..=9).contains(&ls),
            "resized VLR should land on Table I's 8 hops, got {ls}"
        );
    }

    #[test]
    fn waveform_probes_capture_all_hops() {
        let out = simulate(&ls_spec(3), &TransientConfig::waveform(Gbps(2.0)));
        assert_eq!(out.waveforms.len(), 3);
        assert!(out.waveforms.iter().all(|w| !w.samples.is_empty()));
        let plot = out.waveforms[2].ascii_plot(8, 60);
        assert!(plot.lines().count() == 8);
        assert!(plot.contains('*'));
    }

    #[test]
    fn overshoot_visible_in_vlr_waveform() {
        // The feedback delay cell produces transient overshoot past the
        // locked level (Fig 3b): the peak must exceed the steady Vhigh.
        let out = simulate(&ls_spec(2), &TransientConfig::waveform(Gbps(2.0)));
        let p = VlrParams::default_45nm();
        let wire = WireRc::for_45nm(Spacing::MinPitch);
        let (_, vhigh) = p.locked_levels(wire.r_ohm_per_mm);
        let (_, peak) = out.waveforms[0].extent();
        assert!(
            peak.0 > vhigh.0 + 0.02,
            "peak {peak} should overshoot locked Vhigh {vhigh}"
        );
    }
}
