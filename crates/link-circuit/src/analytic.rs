//! Calibrated analytic link model — the model the rest of the workspace
//! consumes.
//!
//! Table I of the paper reports, for each circuit variant and swing style,
//! the **maximum number of 1 mm hops a signal can traverse in one cycle**
//! and the **energy per bit per mm** at data rates from 1 to 5.5 Gb/s.
//! Those numbers come from the authors' extracted (post-layout) SPICE
//! simulations, which we cannot re-run; instead this module inverts the
//! published table into per-variant *segment delay* and *energy* curves:
//!
//! * segment delay `t(R)` is anchored so that
//!   `floor((UI − t_setup)/t(R))` reproduces the published hop counts
//!   exactly, with piecewise-linear interpolation between anchors;
//! * energy `e(R) = c0 + c1·R + c2/R` is fitted exactly through the
//!   published points — the `c2/R` term captures static-current
//!   amortization (dominant for the VLR at low rates) and `c1` the mild
//!   swing-vs-rate dependence;
//! * a [`MarginModel`] calibrated on the chip's
//!   maximum data rates provides BER and `max_data_rate` queries.
//!
//!
//! [`MarginModel`]: crate::ber::MarginModel
//! The independent switch-level model in [`crate::transient`] cross-checks
//! the trends (see this crate's integration tests).

use crate::ber::MarginModel;
use crate::units::{FemtojoulesPerBitMm, Gbps, Millimeters, Picoseconds, Volts};

pub use crate::wire::Spacing as WireSpacing;

/// Swing style of the repeated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkStyle {
    /// Conventional rail-to-rail repeaters.
    FullSwing,
    /// Clockless low-swing voltage-locked repeaters (the SMART link).
    LowSwing,
}

impl LinkStyle {
    /// Short label used in tables ("Full-swing" / "Low-swing").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LinkStyle::FullSwing => "Full-swing",
            LinkStyle::LowSwing => "Low-swing",
        }
    }
}

/// Circuit sizing variant (Table I footnotes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitVariant {
    /// The circuit as fabricated on the 45 nm SOI test chip (optimized for
    /// maximum data rate). Table I's `∗∗` rows use this sizing with 2×
    /// wire spacing; the Section III chip measurements use it at minimum
    /// DRC pitch.
    Fabricated,
    /// Transistors resized (smaller) and wires spaced 2× for a 2 GHz
    /// system clock — the SMART NoC design point. Table I's `∗` rows.
    Resized2GHz,
}

/// One published calibration point: at `rate`, the link makes `hops` hops
/// per cycle at `energy` fJ/b/mm.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Anchor {
    rate: Gbps,
    hops: u32,
    energy: FemtojoulesPerBitMm,
}

/// Flip-flop setup + clock-q margin charged against each cycle before
/// link propagation, ps.
const T_SETUP_PS: f64 = 20.0;

/// Measured min-pitch to 2×-spacing delay ratio (the chip measured
/// 60 ps/mm low-swing and 100 ps/mm full-swing at min pitch; the same
/// circuits at 2× spacing anchor near 30/51 ps/mm).
const MIN_PITCH_DELAY_FACTOR: f64 = 2.0;
/// Capacitance-driven energy scale from 2× spacing to min pitch
/// (210 fF/mm vs 125 fF/mm, tempered by the rate-independent share).
const MIN_PITCH_ENERGY_FACTOR: f64 = 1.6;

/// Calibrated delay/energy/BER model for one (style, variant, spacing)
/// combination.
///
/// ```
/// use smart_link::{CalibratedLinkModel, CircuitVariant, Gbps, LinkStyle, WireSpacing};
///
/// let m = CalibratedLinkModel::new(
///     LinkStyle::LowSwing,
///     CircuitVariant::Resized2GHz,
///     WireSpacing::Double,
/// );
/// // Table I, 2 Gb/s column.
/// assert_eq!(m.max_hops_per_cycle(Gbps(2.0)), 8);
/// ```
#[derive(Debug, Clone)]
pub struct CalibratedLinkModel {
    style: LinkStyle,
    variant: CircuitVariant,
    spacing: WireSpacing,
    /// (rate, segment delay) anchors, ascending by rate.
    delay_anchors: Vec<(Gbps, Picoseconds)>,
    /// Energy fit e(R) = c0 + c1·R + c2/R.
    energy_coeffs: [f64; 3],
    margin: MarginModel,
}

impl CalibratedLinkModel {
    /// Build the model for a (style, variant, spacing) combination.
    ///
    /// All twelve Table I cells are reproduced exactly
    /// (`Double` spacing). `Fabricated`+`MinPitch` is calibrated directly
    /// to the Section III chip measurements (60/100 ps/mm; 608 fJ/b at
    /// 6.8 Gb/s, 687/765 fJ/b at 5.5 Gb/s over 10 mm) — note the paper's
    /// chip energies are *lower* than its wide-spacing Table I
    /// simulations, so no capacitance scaling could connect the two; we
    /// honour the measurements. `Resized2GHz`+`MinPitch` is a documented
    /// extrapolation (delay ×2, energy ×1.6 from the 2×-spacing anchors,
    /// the ratios the chip itself exhibits for delay).
    #[must_use]
    pub fn new(style: LinkStyle, variant: CircuitVariant, spacing: WireSpacing) -> Self {
        let margin = margin_model(style);
        if variant == CircuitVariant::Fabricated && spacing == WireSpacing::MinPitch {
            let (delay, energy_anchors): (f64, Vec<(f64, f64)>) = match style {
                // Chip: ~60 ps/mm; 687 fJ/b @ 5.5 and 608 fJ/b @ 6.8 over 10 mm.
                LinkStyle::LowSwing => (60.0, vec![(5.5, 68.7), (6.8, 60.8)]),
                // Chip: ~100 ps/mm; 765 fJ/b @ 5.5 over 10 mm.
                LinkStyle::FullSwing => (100.0, vec![(5.5, 76.5)]),
            };
            let energy_coeffs = fit_energy_points(&energy_anchors);
            return CalibratedLinkModel {
                style,
                variant,
                spacing,
                delay_anchors: vec![(Gbps(5.0), Picoseconds(delay))],
                energy_coeffs,
                margin,
            };
        }
        let anchors = published_anchors(style, variant);
        let (delay_scale, energy_scale) = match spacing {
            WireSpacing::Double => (1.0, 1.0),
            WireSpacing::MinPitch => (MIN_PITCH_DELAY_FACTOR, MIN_PITCH_ENERGY_FACTOR),
        };
        let delay_anchors: Vec<(Gbps, Picoseconds)> = anchors
            .iter()
            .map(|a| {
                let ui = a.rate.bit_time().0;
                // Mid-band inversion: the delay that puts the published hop
                // count in the middle of its floor() bucket.
                let t = (ui - T_SETUP_PS) / (a.hops as f64 + 0.5);
                (a.rate, Picoseconds(t * delay_scale))
            })
            .collect();
        let energy_coeffs = fit_energy(&anchors, energy_scale);
        CalibratedLinkModel {
            style,
            variant,
            spacing,
            delay_anchors,
            energy_coeffs,
            margin,
        }
    }

    /// The swing style this model was built for.
    #[must_use]
    pub fn style(&self) -> LinkStyle {
        self.style
    }

    /// The circuit variant this model was built for.
    #[must_use]
    pub fn variant(&self) -> CircuitVariant {
        self.variant
    }

    /// The wire spacing this model was built for.
    #[must_use]
    pub fn spacing(&self) -> WireSpacing {
        self.spacing
    }

    /// Per-hop (per-mm) propagation delay at `rate`, interpolated from
    /// the calibration anchors.
    #[must_use]
    pub fn delay_ps_per_mm(&self, rate: Gbps) -> Picoseconds {
        let pts = &self.delay_anchors;
        if rate.0 <= pts[0].0 .0 {
            return pts[0].1;
        }
        if rate.0 >= pts[pts.len() - 1].0 .0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let (r0, t0) = w[0];
            let (r1, t1) = w[1];
            if rate.0 >= r0.0 && rate.0 <= r1.0 {
                let f = (rate.0 - r0.0) / (r1.0 - r0.0);
                return Picoseconds(t0.0 + f * (t1.0 - t0.0));
            }
        }
        unreachable!("anchors are sorted and cover the clamped range")
    }

    /// Maximum number of 1 mm hops traversable in a single cycle at
    /// `rate` (one bit per wire per cycle, so the clock period is the
    /// unit interval). This is Table I's headline quantity and the
    /// NoC-level `HPC_max`.
    #[must_use]
    pub fn max_hops_per_cycle(&self, rate: Gbps) -> u32 {
        let ui = rate.bit_time().0;
        let t = self.delay_ps_per_mm(rate).0;
        let budget = ui - T_SETUP_PS;
        if budget <= 0.0 {
            return 0;
        }
        (budget / t).floor() as u32
    }

    /// Furthest distance reachable in a single cycle of a `clock_ghz`
    /// system clock.
    #[must_use]
    pub fn single_cycle_range(&self, clock_ghz: f64) -> Millimeters {
        Millimeters(f64::from(self.max_hops_per_cycle(Gbps(clock_ghz))))
    }

    /// Energy per bit per mm at `rate` (Table I's parenthesized figure).
    #[must_use]
    pub fn energy_fj_per_bit_mm(&self, rate: Gbps) -> f64 {
        let [c0, c1, c2] = self.energy_coeffs;
        c0 + c1 * rate.0 + c2 / rate.0
    }

    /// Energy for one bit over `length`, fJ.
    #[must_use]
    pub fn energy_fj_per_bit(&self, rate: Gbps, length: Millimeters) -> f64 {
        self.energy_fj_per_bit_mm(rate) * length.0
    }

    /// Average power (mW) for a continuous bit stream at `rate` over
    /// `length` of link.
    #[must_use]
    pub fn power_mw(&self, rate: Gbps, length: Millimeters) -> f64 {
        // fJ/bit × Gbit/s = µW; /1000 → mW.
        self.energy_fj_per_bit(rate, length) * rate.0 * 1e-3
    }

    /// Bit error rate at `rate`.
    #[must_use]
    pub fn ber(&self, rate: Gbps) -> f64 {
        self.margin.ber(rate)
    }

    /// Highest data rate sustaining `ber_target`.
    #[must_use]
    pub fn max_data_rate(&self, ber_target: f64) -> Gbps {
        self.margin.max_rate(ber_target)
    }
}

/// Published Table I / Section III anchors for each (style, variant), at
/// the spacing the paper reports them (2× for Table I, min pitch for the
/// chip-measurement-derived `Fabricated` low-rate extension).
fn published_anchors(style: LinkStyle, variant: CircuitVariant) -> Vec<Anchor> {
    let a = |rate: f64, hops: u32, energy: f64| Anchor {
        rate: Gbps(rate),
        hops,
        energy: FemtojoulesPerBitMm(energy),
    };
    match (style, variant) {
        // Table I `∗` rows: resized + 2× spacing, 1–3 Gb/s.
        (LinkStyle::FullSwing, CircuitVariant::Resized2GHz) => {
            vec![a(1.0, 13, 103.0), a(2.0, 6, 95.0), a(3.0, 4, 84.0)]
        }
        (LinkStyle::LowSwing, CircuitVariant::Resized2GHz) => {
            vec![a(1.0, 16, 128.0), a(2.0, 8, 104.0), a(3.0, 6, 87.0)]
        }
        // Table I `∗∗` rows: fabricated sizing + 2× spacing, 4–5.5 Gb/s.
        (LinkStyle::FullSwing, CircuitVariant::Fabricated) => {
            vec![a(4.0, 4, 98.0), a(5.0, 3, 89.0), a(5.5, 3, 85.0)]
        }
        (LinkStyle::LowSwing, CircuitVariant::Fabricated) => {
            vec![a(4.0, 7, 132.0), a(5.0, 6, 107.0), a(5.5, 5, 96.0)]
        }
    }
}

/// Exact fit of `e(R) = c0 + c1·R + c2/R` through up to three anchors
/// (fewer anchors zero the higher terms), then scaled by `energy_scale`.
fn fit_energy(anchors: &[Anchor], energy_scale: f64) -> [f64; 3] {
    let pts: Vec<(f64, f64)> = anchors
        .iter()
        .map(|a| (a.rate.0, a.energy.0 * energy_scale))
        .collect();
    fit_energy_points(&pts)
}

/// Exact fit of `e(R) = c0 + c1·R + c2/R` through raw `(rate, energy)`
/// points.
fn fit_energy_points(pts: &[(f64, f64)]) -> [f64; 3] {
    match pts.len() {
        0 => [0.0; 3],
        1 => [pts[0].1, 0.0, 0.0],
        2 => {
            // c0 + c2/R through two points.
            let (r0, e0) = pts[0];
            let (r1, e1) = pts[1];
            let c2 = (e0 - e1) / (1.0 / r0 - 1.0 / r1);
            let c0 = e0 - c2 / r0;
            [c0, 0.0, c2]
        }
        _ => {
            // Solve the 3×3 system for (c0, c1, c2).
            let mut m = [[0.0_f64; 4]; 3];
            for (i, (r, e)) in pts.iter().take(3).enumerate() {
                m[i] = [1.0, *r, 1.0 / *r, *e];
            }
            gauss3(&mut m)
        }
    }
}

/// Gaussian elimination on a 3×4 augmented matrix.
fn gauss3(m: &mut [[f64; 4]; 3]) -> [f64; 3] {
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&a, &b| {
                m[a][col]
                    .abs()
                    .partial_cmp(&m[b][col].abs())
                    .expect("matrix entries are finite")
            })
            .expect("non-empty range");
        m.swap(col, pivot);
        assert!(
            m[col][col].abs() > 1e-12,
            "singular calibration system (duplicate anchor rates?)"
        );
        for row in 0..3 {
            if row != col {
                let f = m[row][col] / m[col][col];
                let pivot_row = m[col];
                for (k, cell) in m[row].iter_mut().enumerate().skip(col) {
                    *cell -= f * pivot_row[k];
                }
            }
        }
    }
    [m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]]
}

/// Margin models calibrated on the Section III chip maxima: the VLR runs
/// to 6.8 Gb/s and the full-swing chain to 5.5 Gb/s, both at BER < 10⁻⁹.
fn margin_model(style: LinkStyle) -> MarginModel {
    match style {
        LinkStyle::LowSwing => MarginModel::calibrated(
            Volts(0.125),
            Picoseconds(60.0),
            Volts(0.012),
            Gbps(6.8),
            1e-9,
        ),
        LinkStyle::FullSwing => MarginModel::calibrated(
            Volts(0.45),
            Picoseconds(110.0),
            Volts(0.012),
            Gbps(5.5),
            1e-9,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(style: LinkStyle, variant: CircuitVariant) -> CalibratedLinkModel {
        CalibratedLinkModel::new(style, variant, WireSpacing::Double)
    }

    #[test]
    fn table1_hops_reproduced_exactly() {
        let cases = [
            (
                LinkStyle::FullSwing,
                CircuitVariant::Resized2GHz,
                vec![(1.0, 13), (2.0, 6), (3.0, 4)],
            ),
            (
                LinkStyle::LowSwing,
                CircuitVariant::Resized2GHz,
                vec![(1.0, 16), (2.0, 8), (3.0, 6)],
            ),
            (
                LinkStyle::FullSwing,
                CircuitVariant::Fabricated,
                vec![(4.0, 4), (5.0, 3), (5.5, 3)],
            ),
            (
                LinkStyle::LowSwing,
                CircuitVariant::Fabricated,
                vec![(4.0, 7), (5.0, 6), (5.5, 5)],
            ),
        ];
        for (style, variant, expect) in cases {
            let m = model(style, variant);
            for (rate, hops) in expect {
                assert_eq!(
                    m.max_hops_per_cycle(Gbps(rate)),
                    hops,
                    "{style:?} {variant:?} at {rate} Gb/s"
                );
            }
        }
    }

    #[test]
    fn table1_energy_reproduced_exactly() {
        let cases = [
            (
                LinkStyle::FullSwing,
                CircuitVariant::Resized2GHz,
                vec![(1.0, 103.0), (2.0, 95.0), (3.0, 84.0)],
            ),
            (
                LinkStyle::LowSwing,
                CircuitVariant::Resized2GHz,
                vec![(1.0, 128.0), (2.0, 104.0), (3.0, 87.0)],
            ),
            (
                LinkStyle::FullSwing,
                CircuitVariant::Fabricated,
                vec![(4.0, 98.0), (5.0, 89.0), (5.5, 85.0)],
            ),
            (
                LinkStyle::LowSwing,
                CircuitVariant::Fabricated,
                vec![(4.0, 132.0), (5.0, 107.0), (5.5, 96.0)],
            ),
        ];
        for (style, variant, expect) in cases {
            let m = model(style, variant);
            for (rate, energy) in expect {
                let got = m.energy_fj_per_bit_mm(Gbps(rate));
                assert!(
                    (got - energy).abs() < 1e-6,
                    "{style:?} {variant:?} at {rate} Gb/s: {got} vs {energy}"
                );
            }
        }
    }

    #[test]
    fn the_headline_number() {
        // "At 2 GHz, 8-hop (8 mm) link can be traversed in a cycle at
        // 104 fJ/b/mm."
        let m = model(LinkStyle::LowSwing, CircuitVariant::Resized2GHz);
        assert_eq!(m.max_hops_per_cycle(Gbps(2.0)), 8);
        assert_eq!(m.single_cycle_range(2.0), Millimeters(8.0));
        assert!((m.energy_fj_per_bit_mm(Gbps(2.0)) - 104.0).abs() < 1e-6);
    }

    #[test]
    fn low_swing_beats_full_swing_everywhere() {
        for &(variant, rates) in &[
            (CircuitVariant::Resized2GHz, [1.0, 1.5, 2.0, 2.5, 3.0]),
            (CircuitVariant::Fabricated, [4.0, 4.5, 5.0, 5.25, 5.5]),
        ] {
            let ls = model(LinkStyle::LowSwing, variant);
            let fs = model(LinkStyle::FullSwing, variant);
            for &r in &rates {
                assert!(
                    ls.max_hops_per_cycle(Gbps(r)) >= fs.max_hops_per_cycle(Gbps(r)),
                    "at {r} Gb/s"
                );
                assert!(ls.delay_ps_per_mm(Gbps(r)) < fs.delay_ps_per_mm(Gbps(r)));
            }
        }
    }

    #[test]
    fn hops_decrease_with_rate() {
        let m = model(LinkStyle::LowSwing, CircuitVariant::Resized2GHz);
        let mut prev = u32::MAX;
        for r in [1.0, 1.5, 2.0, 2.5, 3.0] {
            let h = m.max_hops_per_cycle(Gbps(r));
            assert!(h <= prev, "hops must not increase with rate");
            prev = h;
        }
    }

    #[test]
    fn min_pitch_is_slower_and_hungrier() {
        // The Resized2GHz min-pitch model is the documented ×2 delay /
        // ×1.6 energy extrapolation of the 2×-spacing anchors.
        let wide = CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Resized2GHz,
            WireSpacing::Double,
        );
        let tight = CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Resized2GHz,
            WireSpacing::MinPitch,
        );
        let r = Gbps(2.0);
        assert!(tight.delay_ps_per_mm(r) > wide.delay_ps_per_mm(r));
        assert!(tight.energy_fj_per_bit_mm(r) > wide.energy_fj_per_bit_mm(r));
        assert!(tight.max_hops_per_cycle(r) < wide.max_hops_per_cycle(r));
    }

    #[test]
    fn fabricated_min_pitch_honours_chip_energy() {
        // 687 fJ/b over 10 mm at 5.5 Gb/s and 608 fJ/b at 6.8 Gb/s.
        let m = CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Fabricated,
            WireSpacing::MinPitch,
        );
        let e55 = m.energy_fj_per_bit(Gbps(5.5), Millimeters(10.0));
        let e68 = m.energy_fj_per_bit(Gbps(6.8), Millimeters(10.0));
        assert!((e55 - 687.0).abs() < 1.0, "got {e55}");
        assert!((e68 - 608.0).abs() < 1.0, "got {e68}");
    }

    #[test]
    fn min_pitch_delay_matches_chip_measurements() {
        // The chip measured ~60 ps/mm (VLR) and ~100 ps/mm (full-swing)
        // at min DRC pitch.
        let ls = CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Fabricated,
            WireSpacing::MinPitch,
        );
        let fs = CalibratedLinkModel::new(
            LinkStyle::FullSwing,
            CircuitVariant::Fabricated,
            WireSpacing::MinPitch,
        );
        let dls = ls.delay_ps_per_mm(Gbps(5.0)).0;
        let dfs = fs.delay_ps_per_mm(Gbps(5.0)).0;
        assert!((45.0..=75.0).contains(&dls), "VLR {dls} ps/mm vs ~60");
        assert!((85.0..=115.0).contains(&dfs), "FS {dfs} ps/mm vs ~100");
    }

    #[test]
    fn max_data_rate_matches_chip() {
        let ls = model(LinkStyle::LowSwing, CircuitVariant::Fabricated);
        let fs = model(LinkStyle::FullSwing, CircuitVariant::Fabricated);
        assert!((ls.max_data_rate(1e-9).0 - 6.8).abs() < 0.1);
        assert!((fs.max_data_rate(1e-9).0 - 5.5).abs() < 0.1);
    }

    #[test]
    fn ber_threshold_behaviour() {
        let m = model(LinkStyle::LowSwing, CircuitVariant::Fabricated);
        assert!(m.ber(Gbps(6.0)) < 1e-9, "below max rate the link is clean");
        assert!(m.ber(Gbps(7.5)) > 1e-9, "above max rate errors appear");
    }

    #[test]
    fn power_matches_energy_times_rate() {
        let m = model(LinkStyle::LowSwing, CircuitVariant::Resized2GHz);
        let p = m.power_mw(Gbps(2.0), Millimeters(8.0));
        // 104 fJ/b/mm × 8 mm × 2 Gb/s = 1.664 mW.
        assert!((p - 1.664).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn interpolation_is_monotone_between_anchors() {
        let m = model(LinkStyle::LowSwing, CircuitVariant::Resized2GHz);
        let d1 = m.delay_ps_per_mm(Gbps(1.0)).0;
        let d15 = m.delay_ps_per_mm(Gbps(1.5)).0;
        let d2 = m.delay_ps_per_mm(Gbps(2.0)).0;
        assert!((d1 >= d15 && d15 >= d2) || (d1 <= d15 && d15 <= d2));
    }

    #[test]
    fn extrapolation_clamps() {
        let m = model(LinkStyle::LowSwing, CircuitVariant::Resized2GHz);
        assert_eq!(m.delay_ps_per_mm(Gbps(0.5)), m.delay_ps_per_mm(Gbps(1.0)));
        assert_eq!(m.delay_ps_per_mm(Gbps(9.0)), m.delay_ps_per_mm(Gbps(3.0)));
    }
}
