//! Circuit-level models of the SMART link: the clockless low-swing
//! **voltage-locked repeater** (VLR) and the equivalent full-swing repeated
//! link from *SMART: A Single-Cycle Reconfigurable NoC for SoC Applications*
//! (DATE 2013), Section III.
//!
//! The paper characterizes the links with a fabricated 45 nm SOI test chip
//! and extracted simulations. Silicon is unavailable here, so this crate
//! substitutes two complementary models:
//!
//! * [`analytic::CalibratedLinkModel`] — a closed-form delay/energy/BER
//!   model anchored to the paper's measured and simulated data points
//!   (Table I and the Section III chip measurements). This is the model the
//!   rest of the workspace consumes: it answers *"how many 1 mm hops fit in
//!   one clock cycle?"* ([`analytic::CalibratedLinkModel::max_hops_per_cycle`])
//!   and *"how many fJ does a bit-mm cost?"*
//!   ([`analytic::CalibratedLinkModel::energy_fj_per_bit_mm`]).
//! * [`transient::simulate`] — a switch-level transient simulator of an
//!   actual repeater chain driving distributed-RC wire ladders. It
//!   regenerates the waveform shapes of Fig 3 (full-swing rail-to-rail
//!   edges vs. the low-swing voltage-locked waveform with its feedback
//!   overshoot) and provides an independent cross-check of the calibrated
//!   model's delay and swing trends.
//!
//! # Quick example
//!
//! ```
//! use smart_link::analytic::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};
//! use smart_link::units::Gbps;
//!
//! // The paper's headline: at 2 GHz (2 Gb/s per wire), a low-swing SMART
//! // link traverses 8 mm in a single cycle at 104 fJ/b/mm.
//! let model = CalibratedLinkModel::new(
//!     LinkStyle::LowSwing,
//!     CircuitVariant::Resized2GHz,
//!     WireSpacing::Double,
//! );
//! assert_eq!(model.max_hops_per_cycle(Gbps(2.0)), 8);
//! let e = model.energy_fj_per_bit_mm(Gbps(2.0));
//! assert!((e - 104.0).abs() < 1.0);
//! ```

pub mod analytic;
pub mod ber;
pub mod chip;
pub mod device;
pub mod table1;
pub mod transient;
pub mod units;
pub mod wire;

pub use analytic::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};
pub use chip::TestChip;
pub use table1::{table1, Table1, Table1Cell};
pub use units::{FemtojoulesPerBitMm, Gbps, Millimeters, Picoseconds, Volts};
