//! # smart-harness — the one-experiment API
//!
//! The paper's whole evaluation (Sections IV–VI) is one repeated shape:
//! **configure** a design point, **map** an application or synthetic
//! load onto the mesh, **build** one of the evaluated designs, **drive**
//! it with traffic for a warm-up/measure/drain schedule, and **measure**
//! latency, throughput and energy. This crate makes that shape a
//! first-class value instead of per-binary glue:
//!
//! * [`Workload`] — every traffic family behind one enum: the Fig 7
//!   walk-through, the eight Section VI task-graph applications,
//!   uniform-random Bernoulli loads, `smart-traffic` synthetic
//!   patterns with temporal burst models, and pre-routed custom flow
//!   sets.
//! * [`Drive`] — how the flows are offered: Bernoulli (honoring the
//!   workload's [`TemporalModel`]), scripted events, an explicit
//!   temporal model, [`TraceFile`] replay, or any custom boxed source
//!   via a [`TrafficFactory`].
//! * [`RunPlan`] — the warm-up / measure / drain schedule plus the
//!   traffic seed (deterministic by construction).
//! * [`Experiment`] — one (config, design, workload, plan) cell;
//!   [`Experiment::run`] returns an [`ExperimentReport`] bundling sim
//!   stats, activity counters, compile metrics and an optional power
//!   breakdown.
//! * [`ExperimentMatrix`] — fan-out over designs × workloads with a
//!   scoped-thread runner: cells execute in parallel, results come back
//!   in deterministic matrix order.
//! * [`AppSchedule`] / [`MultiAppExperiment`] — the Fig 1 / Section V
//!   multi-application regime: ordered phases run back-to-back on one
//!   NoC, paying the drain + preset-store reconfiguration cost at every
//!   transition; each phase carries its own [`Drive`]
//!   ([`AppSchedule::then_driven`]); [`ScheduleMatrix`] fans one
//!   schedule out across the four [`ScheduleDesign`]s on the same
//!   deterministic cell runner.
//!
//! ```
//! use smart_core::config::NocConfig;
//! use smart_core::noc::DesignKind;
//! use smart_harness::{Experiment, RunPlan, Workload};
//!
//! let report = Experiment::new(NocConfig::paper_4x4())
//!     .design(DesignKind::Smart)
//!     .workload(Workload::fig7())
//!     .plan(RunPlan::smoke())
//!     .run();
//! assert_eq!(report.packets_delivered, report.packets_injected);
//! assert!(report.drained);
//! ```
#![warn(missing_docs)]

pub mod compiled;
pub mod experiment;
pub mod matrix;
pub mod runner;
pub mod schedule;
pub mod workload;

pub use compiled::{config_encoding, config_key, stable_hash64, workload_key, CompiledDesign};
pub use experiment::{
    CompileMetrics, Drive, Experiment, ExperimentReport, RunPlan, TrafficContext, TrafficFactory,
};
pub use matrix::{ExperimentMatrix, MatrixOutcome};
pub use runner::{run_cells, run_cells_observed};
pub use schedule::{
    AppPhase, AppSchedule, MultiAppExperiment, PhaseTransition, ScheduleDesign, ScheduleError,
    ScheduleMatrix, ScheduleOutcome, ScheduleReport,
};
pub use workload::{RoutedWorkload, Workload};

// The telemetry types threaded through [`Experiment::with_telemetry`],
// re-exported so downstream users (bench, server, examples) need no
// direct smart-sim dependency to configure or consume a series.
pub use smart_sim::{TelemetryConfig, TelemetrySeries};

// The traffic subsystem the drives are built from, re-exported so
// downstream users (bench, examples) need no extra dependency.
pub use smart_traffic::{
    FlowDelta, ModulatedTraffic, PhaseOutcome, SpatialPattern, TemporalModel, TraceDiffReport,
    TraceFile, TraceRecorder, TraceTraffic,
};
