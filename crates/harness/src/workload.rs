//! The workload axis: every traffic family the paper evaluates, behind
//! one enum, plus the routed form every design can consume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smart_core::config::NocConfig;
use smart_core::scenarios::fig7_flows;
use smart_mapping::MappedApp;
use smart_sim::{FlowId, NodeId, SourceRoute};
use smart_taskgraph::{apps, TaskGraph};
use smart_traffic::{SpatialPattern, TemporalModel};

/// Injection rate per Fig 7 flow: gentle, so bypass behaviour dominates.
const FIG7_RATE: f64 = 0.02;

/// A workload before routing: what to offer the network, independent of
/// any particular mesh. [`Workload::materialize`] turns it into a
/// [`RoutedWorkload`] for a concrete [`NocConfig`].
#[derive(Debug, Clone)]
pub enum Workload {
    /// The Fig 7 "SMART NoC in action" four-flow walk-through.
    Fig7,
    /// One of the paper's eight SoC applications by name (`"VOPD"`,
    /// `"H264"`, …), NMAP-placed and contention-aware routed.
    App(String),
    /// An arbitrary task graph, NMAP-placed and routed.
    Graph(TaskGraph),
    /// `flows` uniform-random (src, dst) pairs routed XY, each injected
    /// at `rate` packets/cycle; pair choice is a pure function of `seed`.
    Uniform {
        /// Number of random flows.
        flows: usize,
        /// Packets-per-cycle injection rate per flow.
        rate: f64,
        /// RNG seed for the pair choice.
        seed: u64,
    },
    /// A synthetic [`SpatialPattern`] routed XY and injected at
    /// `rate × weight` packets/cycle per flow through `temporal` — the
    /// classic pattern battery (transpose, tornado, hotspot, …) with
    /// optional burstiness.
    Patterned {
        /// The spatial structure of the flow set.
        pattern: SpatialPattern,
        /// The injection process layered on the rates.
        temporal: TemporalModel,
        /// Nominal packets-per-cycle rate per unit-weight flow.
        rate: f64,
    },
    /// Pre-routed flows with explicit rates (e.g. a custom placement or
    /// a hand-built `TrafficSource` scenario).
    Routed(RoutedWorkload),
}

impl Workload {
    /// The Fig 7 walk-through.
    #[must_use]
    pub fn fig7() -> Self {
        Workload::Fig7
    }

    /// One of the eight applications by name.
    #[must_use]
    pub fn app(name: &str) -> Self {
        Workload::App(name.to_owned())
    }

    /// Uniform-random Bernoulli load.
    #[must_use]
    pub fn uniform(flows: usize, rate: f64, seed: u64) -> Self {
        Workload::Uniform { flows, rate, seed }
    }

    /// A steady synthetic pattern at `rate` packets/cycle per flow.
    #[must_use]
    pub fn patterned(pattern: SpatialPattern, rate: f64) -> Self {
        Workload::Patterned {
            pattern,
            temporal: TemporalModel::Steady,
            rate,
        }
    }

    /// A synthetic pattern driven through a temporal model (bursty or
    /// ramped injection).
    #[must_use]
    pub fn patterned_with(pattern: SpatialPattern, temporal: TemporalModel, rate: f64) -> Self {
        Workload::Patterned {
            pattern,
            temporal,
            rate,
        }
    }

    /// The paper's preset battery: Fig 7, the eight applications (in
    /// [`apps::all`] order, the single source of truth for the suite),
    /// and two uniform-random Bernoulli loads (light and moderate).
    #[must_use]
    pub fn presets() -> Vec<Workload> {
        let mut v = vec![Workload::Fig7];
        v.extend(apps::all().into_iter().map(Workload::Graph));
        v.push(Workload::uniform(6, 0.01, 0x5EED));
        v.push(Workload::uniform(10, 0.03, 0xFEED));
        v
    }

    /// Route this workload onto `cfg`'s mesh.
    ///
    /// # Panics
    ///
    /// Panics if an [`Workload::App`] name is unknown or a
    /// [`Workload::Uniform`] has zero flows.
    #[must_use]
    pub fn materialize(&self, cfg: &NocConfig) -> RoutedWorkload {
        match self {
            Workload::Fig7 => RoutedWorkload::fig7(cfg),
            Workload::App(name) => RoutedWorkload::app(cfg, name),
            Workload::Graph(graph) => {
                RoutedWorkload::from_mapped(&MappedApp::from_graph(cfg, graph))
            }
            Workload::Uniform { flows, rate, seed } => {
                RoutedWorkload::uniform(cfg, *flows, *rate, *seed)
            }
            Workload::Patterned {
                pattern,
                temporal,
                rate,
            } => RoutedWorkload::patterned(cfg, pattern, *temporal, *rate),
            Workload::Routed(routed) => routed.clone(),
        }
    }
}

impl From<RoutedWorkload> for Workload {
    fn from(routed: RoutedWorkload) -> Self {
        Workload::Routed(routed)
    }
}

impl From<&MappedApp> for Workload {
    fn from(mapped: &MappedApp) -> Self {
        Workload::Routed(RoutedWorkload::from_mapped(mapped))
    }
}

/// A workload routed onto a concrete mesh: named flows plus per-flow
/// injection rates and the temporal model spreading them over time,
/// ready to drive any design.
#[derive(Debug, Clone)]
pub struct RoutedWorkload {
    /// Preset name (`fig7`, an application name, `uniform<n>@<rate>`).
    pub name: String,
    /// Routed flows.
    pub routes: Vec<(FlowId, SourceRoute)>,
    /// Packets-per-cycle injection rate per flow.
    pub rates: Vec<(FlowId, f64)>,
    /// Injection process layered on the rates by rate-driven drives
    /// ([`TemporalModel::Steady`] reproduces the historical Bernoulli
    /// stream bit-exactly).
    pub temporal: TemporalModel,
}

impl RoutedWorkload {
    /// The Fig 7 "SMART NoC in action" four-flow walk-through, injected
    /// gently so bypass behaviour dominates.
    #[must_use]
    pub fn fig7(cfg: &NocConfig) -> Self {
        let routes: Vec<(FlowId, SourceRoute)> = fig7_flows(cfg.topology)
            .into_iter()
            .map(|(f, r, _)| (f, r))
            .collect();
        let rates = routes.iter().map(|(f, _)| (*f, FIG7_RATE)).collect();
        RoutedWorkload {
            name: "fig7".to_owned(),
            routes,
            rates,
            temporal: TemporalModel::Steady,
        }
    }

    /// One of the paper's eight SoC applications, NMAP-placed and
    /// routed with the paper's bandwidth-derived injection rates.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the eight applications.
    #[must_use]
    pub fn app(cfg: &NocConfig, name: &str) -> Self {
        let graph = apps::by_name(name).unwrap_or_else(|| panic!("unknown application {name:?}"));
        RoutedWorkload::from_mapped(&MappedApp::from_graph(cfg, &graph))
    }

    /// `flows` uniform-random (src, dst) pairs routed XY, each injected
    /// at `rate` packets/cycle. Pair choice is a pure function of
    /// `seed`, so the workload is reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero.
    #[must_use]
    pub fn uniform(cfg: &NocConfig, flows: usize, rate: f64, seed: u64) -> Self {
        assert!(flows > 0, "need at least one flow");
        let n = cfg.topology.len() as u16;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut routes = Vec::with_capacity(flows);
        for i in 0..flows {
            let src = NodeId(rng.gen_range(0..n));
            let dst = loop {
                let d = NodeId(rng.gen_range(0..n));
                if d != src {
                    break d;
                }
            };
            routes.push((
                FlowId(i as u32),
                SourceRoute::xy(cfg.topology, src, dst)
                    .expect("the rejection loop above never draws src == dst"),
            ));
        }
        let rates = routes.iter().map(|(f, _)| (*f, rate)).collect();
        RoutedWorkload {
            name: format!("uniform{flows}@{rate}"),
            routes,
            rates,
            temporal: TemporalModel::Steady,
        }
    }

    /// A synthetic [`SpatialPattern`] routed XY at `rate × weight`
    /// packets/cycle per flow, driven through `temporal`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern induces no flows on the mesh or one of its
    /// structural requirements fails (square mesh, power-of-two nodes).
    #[must_use]
    pub fn patterned(
        cfg: &NocConfig,
        pattern: &SpatialPattern,
        temporal: TemporalModel,
        rate: f64,
    ) -> Self {
        let (routes, rates) = pattern.routed(cfg.topology, rate);
        RoutedWorkload {
            name: format!("{}@{rate}{}", pattern.label(), temporal.suffix()),
            routes,
            rates,
            temporal,
        }
    }

    /// The same routed flows driven through a different temporal model.
    /// Any previous temporal suffix in the name (they start with `+`)
    /// is replaced by the new model's, so reports stay truthful about
    /// the injection process.
    #[must_use]
    pub fn with_temporal(mut self, temporal: TemporalModel) -> Self {
        if let Some(base) = self.name.find('+') {
            self.name.truncate(base);
        }
        self.name.push_str(&temporal.suffix());
        self.temporal = temporal;
        self
    }

    /// Adopt a mapped application's name, routes and rates.
    #[must_use]
    pub fn from_mapped(mapped: &MappedApp) -> Self {
        RoutedWorkload {
            name: mapped.name.clone(),
            routes: mapped.routes.clone(),
            rates: mapped.rates.clone(),
            temporal: TemporalModel::Steady,
        }
    }

    /// The full preset battery routed onto `cfg`: Fig 7, the eight
    /// applications, and two uniform-random Bernoulli loads.
    #[must_use]
    pub fn presets(cfg: &NocConfig) -> Vec<RoutedWorkload> {
        Workload::presets()
            .iter()
            .map(|w| w.materialize(cfg))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_battery_covers_the_paper() {
        let cfg = NocConfig::paper_4x4();
        let all = RoutedWorkload::presets(&cfg);
        assert_eq!(all.len(), 11, "fig7 + 8 apps + 2 uniform");
        assert!(all.iter().all(|s| !s.routes.is_empty()));
        assert!(all.iter().all(|s| s.routes.len() == s.rates.len()));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let cfg = NocConfig::paper_4x4();
        let a = RoutedWorkload::uniform(&cfg, 8, 0.02, 42);
        let b = Workload::uniform(8, 0.02, 42).materialize(&cfg);
        let c = RoutedWorkload::uniform(&cfg, 8, 0.02, 43);
        assert_eq!(a.routes, b.routes);
        assert_ne!(a.routes, c.routes);
    }

    #[test]
    fn uniform_never_self_loops() {
        let cfg = NocConfig::paper_4x4();
        for seed in 0..20 {
            let s = RoutedWorkload::uniform(&cfg, 12, 0.01, seed);
            for (_, r) in &s.routes {
                assert_ne!(r.source(), r.destination(cfg.topology));
            }
        }
    }

    #[test]
    fn with_temporal_rewrites_the_name_suffix() {
        let cfg = NocConfig::paper_4x4();
        let bursty = TemporalModel::on_off(0.01, 0.01);
        let w = RoutedWorkload::patterned(&cfg, &SpatialPattern::Transpose, bursty, 0.02);
        assert_eq!(w.name, "transpose@0.02+onoff(0.01,0.01)");
        let steady = w.with_temporal(TemporalModel::Steady);
        assert_eq!(steady.name, "transpose@0.02");
        assert_eq!(steady.temporal, TemporalModel::Steady);
        let ramped = steady.with_temporal(TemporalModel::ramp(0.0, 1.0, 100));
        assert_eq!(ramped.name, "transpose@0.02+ramp(0..1/100)");
    }

    #[test]
    fn graph_and_app_variants_agree() {
        let cfg = NocConfig::paper_4x4();
        let by_name = Workload::app("VOPD").materialize(&cfg);
        let by_graph = Workload::Graph(apps::vopd()).materialize(&cfg);
        assert_eq!(by_name.name, by_graph.name);
        assert_eq!(by_name.routes, by_graph.routes);
    }
}
