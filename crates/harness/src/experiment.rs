//! One experiment cell: configure → map → build → drive → measure.

use crate::workload::{RoutedWorkload, Workload};
use smart_core::compile::CompiledApp;
use smart_core::config::NocConfig;
use smart_core::noc::{Design, DesignKind};
use smart_power::{breakdown, EnergyModel, GatingPolicy, PowerBreakdown};
use smart_sim::counters::ActivityCounters;
use smart_sim::stats::SimStats;
use smart_sim::traffic::TrafficSource;
use smart_sim::{
    BernoulliTraffic, FlowId, FlowTable, NodeId, ScriptedTraffic, TelemetryConfig, TelemetrySeries,
    Topology,
};
use smart_traffic::{
    ModulatedTraffic, PhaseOutcome, TemporalModel, TraceFile, TraceRecorder, TraceTraffic,
};
use std::fmt;
use std::sync::Arc;

/// Simulation schedule for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPlan {
    /// Warm-up cycles (excluded from stats and counters).
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Drain budget after measurement (delivers in-flight packets).
    pub drain: u64,
    /// Traffic seed.
    pub seed: u64,
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan {
            warmup: 20_000,
            measure: 120_000,
            drain: 20_000,
            seed: 0xC0FFEE,
        }
    }
}

impl RunPlan {
    /// A fast plan for smoke tests.
    #[must_use]
    pub fn quick() -> Self {
        RunPlan {
            warmup: 2_000,
            measure: 20_000,
            drain: 5_000,
            seed: 0xC0FFEE,
        }
    }

    /// A minimal plan for doctests and unit tests — just enough cycles
    /// for a handful of packets at the paper's task-graph loads.
    #[must_use]
    pub fn smoke() -> Self {
        RunPlan {
            warmup: 0,
            measure: 2_000,
            drain: 2_000,
            seed: 0xC0FFEE,
        }
    }

    /// A plain measure-then-drain schedule with no warm-up, as used by
    /// the conformance harness: stats and counters cover the whole run.
    #[must_use]
    pub fn measure_all(measure: u64, drain: u64, seed: u64) -> Self {
        RunPlan {
            warmup: 0,
            measure,
            drain,
            seed,
        }
    }
}

/// Everything a [`Drive`] needs to build a concrete traffic source for
/// one run: the routed workload's rates and temporal model, the flow
/// table resolving endpoints, and the plan's packet sizing and seed.
pub struct TrafficContext<'a> {
    /// Per-flow nominal injection rates, packets per cycle.
    pub rates: &'a [(FlowId, f64)],
    /// Flow table resolving each flow's endpoints.
    pub flows: &'a FlowTable,
    /// The topology being driven.
    pub topology: Topology,
    /// Flits per packet.
    pub flits_per_packet: u8,
    /// Traffic RNG seed (from the [`RunPlan`]).
    pub seed: u64,
    /// The workload's temporal model (honored by [`Drive::Bernoulli`]).
    pub temporal: TemporalModel,
}

/// Builds a boxed [`TrafficSource`] for a run — the extension point
/// behind [`Drive::Custom`], letting experiments and schedule phases
/// inject *any* source through the same plumbing as the built-ins.
pub trait TrafficFactory: Send + Sync {
    /// Construct the source for one run. Must be a pure function of
    /// `ctx` so matrix cells stay deterministic.
    fn build(&self, ctx: &TrafficContext<'_>) -> Box<dyn TrafficSource>;
}

impl<F> TrafficFactory for F
where
    F: Fn(&TrafficContext<'_>) -> Box<dyn TrafficSource> + Send + Sync,
{
    fn build(&self, ctx: &TrafficContext<'_>) -> Box<dyn TrafficSource> {
        self(ctx)
    }
}

/// How the workload's flows are offered to the network.
#[derive(Clone)]
pub enum Drive {
    /// Rate-driven injection at the workload's rates through the
    /// workload's [`TemporalModel`] — for steady workloads this is the
    /// paper's "uniform random injection rate to meet the specified
    /// bandwidth for each flow", bit-exact with the historical
    /// [`BernoulliTraffic`] path.
    Bernoulli,
    /// Deterministic `(cycle, flow)` events — the Fig 7 walk-through
    /// and zero-load probes. The workload's rates are ignored.
    Scripted(Vec<(u64, FlowId)>),
    /// Rate-driven injection through an explicit temporal model,
    /// overriding the workload's own.
    Temporal(TemporalModel),
    /// Deterministic replay of a recorded [`TraceFile`]. The workload's
    /// rates are ignored.
    Trace(TraceFile),
    /// Any boxed source, built per run by a shared [`TrafficFactory`].
    Custom(Arc<dyn TrafficFactory>),
}

impl fmt::Debug for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drive::Bernoulli => write!(f, "Bernoulli"),
            Drive::Scripted(events) => f.debug_tuple("Scripted").field(events).finish(),
            Drive::Temporal(model) => f.debug_tuple("Temporal").field(model).finish(),
            Drive::Trace(trace) => f
                .debug_struct("Trace")
                .field("events", &trace.events.len())
                .finish(),
            Drive::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl Drive {
    /// A [`Drive::Custom`] from any factory closure or value.
    #[must_use]
    pub fn custom(factory: impl TrafficFactory + 'static) -> Self {
        Drive::Custom(Arc::new(factory))
    }

    /// Build the concrete traffic source for one run. The
    /// [`Drive::Bernoulli`] + [`TemporalModel::Steady`] combination
    /// constructs exactly the historical [`BernoulliTraffic`], keeping
    /// every pre-existing workload's packet stream byte-identical.
    #[must_use]
    pub fn build(&self, ctx: &TrafficContext<'_>) -> Box<dyn TrafficSource> {
        let modulated = |model: TemporalModel| -> Box<dyn TrafficSource> {
            Box::new(ModulatedTraffic::new(
                model,
                ctx.rates,
                ctx.flows,
                ctx.topology,
                ctx.flits_per_packet,
                ctx.seed,
            ))
        };
        match self {
            Drive::Bernoulli => match ctx.temporal {
                TemporalModel::Steady => Box::new(BernoulliTraffic::new(
                    ctx.rates,
                    ctx.flows,
                    ctx.topology,
                    ctx.flits_per_packet,
                    ctx.seed,
                )),
                model => modulated(model),
            },
            Drive::Temporal(model) => modulated(*model),
            Drive::Scripted(events) => Box::new(ScriptedTraffic::new(
                events.clone(),
                ctx.flits_per_packet,
                ctx.flows,
                ctx.topology,
            )),
            Drive::Trace(trace) => Box::new(TraceTraffic::new(trace, ctx.flows, ctx.topology)),
            Drive::Custom(factory) => factory.build(ctx),
        }
    }
}

/// Preset-compilation metrics (SMART designs only).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileMetrics {
    /// Mean stops per flow (zero-load latency is `1 + 3·stops`).
    pub avg_stops: f64,
    /// Fraction of (flow, router) visits bypassed in a single cycle.
    pub bypass_fraction: f64,
    /// Stop routers per flow, in travel order.
    pub stops: Vec<(FlowId, Vec<NodeId>)>,
    /// Analytical zero-load latency per flow, cycles.
    pub zero_load_latency: Vec<(FlowId, u64)>,
    /// Store instructions needed to install the presets — one per
    /// router (Section V reconfiguration cost).
    pub preset_stores: usize,
}

impl CompileMetrics {
    /// Metrics of a compiled application serving `routed` — the single
    /// extraction path shared by [`Experiment`] and the multi-app
    /// schedule runner.
    pub(crate) fn from_compiled(
        app: &CompiledApp,
        routed: &RoutedWorkload,
        topo: Topology,
    ) -> Self {
        CompileMetrics {
            avg_stops: app.avg_stops(),
            bypass_fraction: app.bypass_fraction(topo),
            stops: app.stops.iter().map(|(f, s)| (*f, s.clone())).collect(),
            zero_load_latency: routed
                .routes
                .iter()
                .map(|(f, _)| (*f, app.flows.plan(*f).zero_load_latency()))
                .collect(),
            // The count is independent of the base address.
            preset_stores: app.presets.store_sequence(0).len(),
        }
    }
}

/// Everything measured by one [`Experiment`] run. Deterministic: the
/// same experiment produces a byte-identical report.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Which design ran.
    pub design: DesignKind,
    /// Workload name (`fig7`, an application, `uniform<n>@<rate>`, …).
    pub workload: String,
    /// Grid dimensions of the design point.
    pub mesh: (u16, u16),
    /// Fabric shape label (`"mesh"` or `"torus"`).
    pub topology: String,
    /// `true` if the network went quiescent within the drain budget.
    pub drained: bool,
    /// Total cycles the simulated network had advanced when the report
    /// was taken (warm-up + measurement + actual drain) — the
    /// denominator of the `perf_scorecard` cycles/sec metric.
    pub total_cycles: u64,
    /// Packets offered after warm-up (activity counters).
    pub packets_injected: u64,
    /// Packets delivered after warm-up.
    pub packets_delivered: u64,
    /// Flits delivered after warm-up.
    pub flits_delivered: u64,
    /// Packets in the latency statistics (generated at/after warm-up).
    pub measured_packets: u64,
    /// Average head-flit network latency, cycles (Fig 10a's metric).
    pub avg_network_latency: f64,
    /// Average full-packet (tail) latency, cycles.
    pub avg_packet_latency: f64,
    /// Average source-queueing delay, cycles.
    pub avg_source_queue: f64,
    /// Per-flow average head-flit latency, flows in id order (flows
    /// that delivered no packet are absent).
    pub flow_latencies: Vec<(FlowId, f64)>,
    /// Activity counters over the measured window.
    pub counters: ActivityCounters,
    /// Preset-compiler metrics (SMART designs only).
    pub compile: Option<CompileMetrics>,
    /// Fig 10b power breakdown (when requested via
    /// [`Experiment::measure_power`]).
    pub power: Option<PowerBreakdown>,
    /// Windowed telemetry over the measured cycles (when requested via
    /// [`Experiment::with_telemetry`]; always `None` for the Dedicated
    /// yardstick, which has no routers or SSRs to observe).
    pub telemetry: Option<TelemetrySeries>,
}

/// Raw measurements of one finished run, before report assembly.
pub(crate) struct RawMeasurements<'a> {
    /// `true` if the network went quiescent within the drain budget.
    pub drained: bool,
    /// Total cycles the network had advanced when measured.
    pub total_cycles: u64,
    /// Activity counters over the measured window.
    pub counters: ActivityCounters,
    /// Latency statistics over the measured window.
    pub stats: &'a SimStats,
}

impl ExperimentReport {
    /// Assemble a report from a finished run's raw measurements — the
    /// single construction path shared by [`Experiment::run_routed`]
    /// and the multi-app schedule runner, so both agree on derived
    /// fields and the optional power breakdown.
    pub(crate) fn assemble(
        design: DesignKind,
        cfg: &NocConfig,
        workload: &str,
        raw: &RawMeasurements<'_>,
        compile: Option<CompileMetrics>,
        measure_power: bool,
    ) -> Self {
        let RawMeasurements {
            drained,
            total_cycles,
            counters,
            stats,
        } = *raw;
        let power = measure_power.then(|| {
            breakdown(
                &EnergyModel::calibrated_45nm(cfg),
                &counters,
                cfg.clock_ghz,
                GatingPolicy::for_design(design),
            )
        });
        ExperimentReport {
            design,
            workload: workload.to_owned(),
            mesh: (cfg.topology.width(), cfg.topology.height()),
            topology: cfg.topology.label().to_owned(),
            drained,
            total_cycles,
            packets_injected: counters.packets_injected,
            packets_delivered: counters.packets_delivered,
            flits_delivered: counters.flits_delivered,
            measured_packets: stats.packets(),
            avg_network_latency: stats.avg_network_latency(),
            avg_packet_latency: stats.avg_packet_latency(),
            avg_source_queue: stats.avg_source_queue(),
            flow_latencies: stats
                .flows()
                .iter()
                .map(|(f, s)| (*f, s.avg_head_latency()))
                .collect(),
            counters,
            compile,
            power,
            telemetry: None,
        }
    }

    /// This report as a design-agnostic [`PhaseOutcome`] snapshot — the
    /// input shape of [`smart_traffic::TraceDiffReport`], so one
    /// recorded trace replayed on two designs can be diffed
    /// structurally (delivered-packet and per-flow latency deltas).
    #[must_use]
    pub fn to_phase_outcome(&self) -> PhaseOutcome {
        PhaseOutcome {
            label: self.design.label().to_owned(),
            packets_delivered: self.packets_delivered,
            flits_delivered: self.flits_delivered,
            avg_network_latency: self.avg_network_latency,
            flow_latencies: self.flow_latencies.clone(),
        }
    }

    /// Average head-flit latency of one flow, if it delivered packets.
    #[must_use]
    pub fn flow_latency(&self, flow: FlowId) -> Option<f64> {
        self.flow_latencies
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, l)| *l)
    }

    /// One stable line per report, full float precision — the golden
    /// snapshot format future perf PRs diff against.
    #[must_use]
    pub fn snapshot_line(&self) -> String {
        format!(
            "{}/{} injected={} delivered={} flits={} latency={} measured={}",
            self.design.label(),
            self.workload,
            self.packets_injected,
            self.packets_delivered,
            self.flits_delivered,
            self.avg_network_latency,
            self.measured_packets,
        )
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} ({}x{} {}){}",
            self.workload,
            self.design.label(),
            self.mesh.0,
            self.mesh.1,
            self.topology,
            if self.drained { "" } else { "  [NOT DRAINED]" }
        )?;
        writeln!(
            f,
            "  packets {} in / {} out, {} flits",
            self.packets_injected, self.packets_delivered, self.flits_delivered
        )?;
        write!(
            f,
            "  latency {:.2} net / {:.2} packet / {:.2} queue over {} packets",
            self.avg_network_latency,
            self.avg_packet_latency,
            self.avg_source_queue,
            self.measured_packets
        )?;
        if let Some(c) = &self.compile {
            write!(
                f,
                "\n  presets: {:.0}% bypassed, {:.2} stops/flow",
                c.bypass_fraction * 100.0,
                c.avg_stops
            )?;
        }
        if let Some(p) = &self.power {
            write!(f, "\n  power: {p}")?;
        }
        Ok(())
    }
}

/// One experiment: a [`NocConfig`] design point, a [`DesignKind`], a
/// [`Workload`] and a [`RunPlan`], composed with a builder and executed
/// with [`Experiment::run`].
#[derive(Debug, Clone)]
pub struct Experiment {
    cfg: NocConfig,
    design: DesignKind,
    workload: Workload,
    plan: RunPlan,
    drive: Drive,
    power: bool,
    telemetry: Option<TelemetryConfig>,
}

impl Experiment {
    /// Start from a design point; defaults: SMART design, Fig 7
    /// workload, default plan, Bernoulli drive, no power model.
    #[must_use]
    pub fn new(cfg: NocConfig) -> Self {
        Experiment {
            cfg,
            design: DesignKind::Smart,
            workload: Workload::Fig7,
            plan: RunPlan::default(),
            drive: Drive::Bernoulli,
            power: false,
            telemetry: None,
        }
    }

    /// Which design to build.
    #[must_use]
    pub fn design(mut self, design: DesignKind) -> Self {
        self.design = design;
        self
    }

    /// What traffic to offer.
    #[must_use]
    pub fn workload(mut self, workload: impl Into<Workload>) -> Self {
        self.workload = workload.into();
        self
    }

    /// The warm-up / measure / drain schedule.
    #[must_use]
    pub fn plan(mut self, plan: RunPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replace Bernoulli injection with deterministic `(cycle, flow)`
    /// events.
    #[must_use]
    pub fn scripted(mut self, events: Vec<(u64, FlowId)>) -> Self {
        self.drive = Drive::Scripted(events);
        self
    }

    /// How to offer the workload's flows (any [`Drive`]: Bernoulli,
    /// scripted events, a temporal burst model, trace replay, or a
    /// custom boxed source).
    #[must_use]
    pub fn drive(mut self, drive: Drive) -> Self {
        self.drive = drive;
        self
    }

    /// Attach the calibrated 45 nm energy model and report the Fig 10b
    /// power breakdown (gating policy follows the design).
    #[must_use]
    pub fn measure_power(mut self) -> Self {
        self.power = true;
        self
    }

    /// Collect windowed telemetry over the measured cycles and attach
    /// the series to [`ExperimentReport::telemetry`]. The collector
    /// attaches after warm-up (alongside the counter reset), so the
    /// series covers exactly the measured + drain cycles. Telemetry is
    /// observation only: latency statistics, counters and goldens are
    /// bit-identical with or without it, on both the serial and the
    /// sharded engine.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Run the cycle engine split across `n` row-band shards (threads).
    /// Purely an execution strategy: reports are bit-identical to the
    /// serial engine, and compiled-design cache entries are shared with
    /// serial runs of the same design point.
    #[must_use]
    pub fn sharded(mut self, n: usize) -> Self {
        self.cfg.shards = n;
        self
    }

    /// The design point this experiment runs at.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Which design this experiment builds.
    #[must_use]
    pub fn design_kind(&self) -> DesignKind {
        self.design
    }

    /// The workload this experiment offers.
    #[must_use]
    pub fn workload_ref(&self) -> &Workload {
        &self.workload
    }

    /// Map, build, drive and measure.
    ///
    /// # Panics
    ///
    /// Panics if the workload cannot be materialized (unknown app name)
    /// or the flow set is inconsistent with the design point.
    #[must_use]
    pub fn run(&self) -> ExperimentReport {
        let routed = self.workload.materialize(&self.cfg);
        self.run_routed(&routed)
    }

    /// Run against an already-routed workload (lets matrix runs
    /// materialize each workload once across designs).
    #[must_use]
    pub fn run_routed(&self, routed: &RoutedWorkload) -> ExperimentReport {
        let table = FlowTable::mesh_baseline(self.cfg.topology, &routed.routes);
        let mut traffic = self.drive.build(&self.traffic_ctx(routed, &table));
        let mut design = Design::build(self.design, &self.cfg, &routed.routes);
        self.execute(&mut design, routed, traffic.as_mut())
    }

    /// Run against a pre-compiled design handle, skipping workload
    /// materialization, flow-table construction and preset compilation
    /// entirely — bit-identical to [`Experiment::run_routed`] on the
    /// same inputs (the `smart-server` cache's fast path).
    ///
    /// # Panics
    ///
    /// Panics if the handle was compiled for a different design kind or
    /// mesh than this experiment's.
    #[must_use]
    pub fn run_compiled(&self, compiled: &crate::compiled::CompiledDesign) -> ExperimentReport {
        assert_eq!(
            compiled.kind(),
            self.design,
            "compiled handle serves a different design"
        );
        assert_eq!(
            compiled.config().topology,
            self.cfg.topology,
            "compiled handle serves a different topology"
        );
        let routed = compiled.routed();
        let mut traffic = self
            .drive
            .build(&self.traffic_ctx(routed, compiled.flow_table()));
        let mut design = compiled.instantiate_sharded(self.cfg.shards);
        self.execute(&mut design, routed, traffic.as_mut())
    }

    /// Run like [`Experiment::run`], additionally recording every
    /// `(cycle, flow)` injection into a replayable [`TraceFile`] —
    /// re-driving the same experiment with [`Drive::Trace`] reproduces
    /// this run's measurements bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Experiment::run`].
    #[must_use]
    pub fn run_recorded(&self) -> (ExperimentReport, TraceFile) {
        let routed = self.workload.materialize(&self.cfg);
        let table = FlowTable::mesh_baseline(self.cfg.topology, &routed.routes);
        let inner = self.drive.build(&self.traffic_ctx(&routed, &table));
        let mut recorder = TraceRecorder::new(inner, self.cfg.flits_per_packet());
        let mut design = Design::build(self.design, &self.cfg, &routed.routes);
        let report = self.execute(&mut design, &routed, &mut recorder);
        (report, recorder.into_trace())
    }

    /// The traffic build context of one run against `routed`.
    fn traffic_ctx<'a>(
        &self,
        routed: &'a RoutedWorkload,
        table: &'a FlowTable,
    ) -> TrafficContext<'a> {
        TrafficContext {
            rates: &routed.rates,
            flows: table,
            topology: self.cfg.topology,
            flits_per_packet: self.cfg.flits_per_packet(),
            seed: self.plan.seed,
            temporal: routed.temporal,
        }
    }

    /// Drive an already-built design with `traffic` through the plan
    /// and assemble the report — the shared tail of every run flavor
    /// (cold [`Design::build`] and cached
    /// [`crate::compiled::CompiledDesign::instantiate`] alike).
    fn execute(
        &self,
        design: &mut Design,
        routed: &RoutedWorkload,
        traffic: &mut dyn TrafficSource,
    ) -> ExperimentReport {
        let cfg = &self.cfg;
        design.set_stats_from(self.plan.warmup);
        design.run_with(traffic, self.plan.warmup);
        design.reset_counters();
        if let Some(tc) = self.telemetry {
            design.set_telemetry(tc);
        }
        design.run_with(traffic, self.plan.measure);
        let drained = design.drain(self.plan.drain);

        let compile = match &*design {
            Design::Smart(smart) => Some(CompileMetrics::from_compiled(
                smart.compiled(),
                routed,
                cfg.topology,
            )),
            _ => None,
        };
        let mut report = ExperimentReport::assemble(
            self.design,
            cfg,
            &routed.name,
            &RawMeasurements {
                drained,
                total_cycles: design.cycle(),
                counters: *design.counters(),
                stats: design.stats(),
            },
            compile,
            self.power,
        );
        report.telemetry = design.take_telemetry();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_fig7_delivers_and_reports() {
        let r = Experiment::new(NocConfig::paper_4x4())
            .plan(RunPlan::smoke())
            .run();
        assert!(r.drained);
        assert_eq!(r.packets_delivered, r.packets_injected);
        assert_eq!(
            r.flits_delivered,
            r.packets_delivered * u64::from(NocConfig::paper_4x4().flits_per_packet())
        );
        let c = r.compile.expect("SMART reports compile metrics");
        assert_eq!(c.stops.len(), 4);
        // Fig 7: green/purple fly (latency 1), red/blue stop twice (7).
        let zl: Vec<u64> = c.zero_load_latency.iter().map(|(_, l)| *l).collect();
        assert_eq!(zl, vec![1, 1, 7, 7]);
    }

    #[test]
    fn mesh_reports_no_compile_metrics() {
        let r = Experiment::new(NocConfig::paper_4x4())
            .design(DesignKind::Mesh)
            .plan(RunPlan::smoke())
            .run();
        assert!(r.compile.is_none());
        assert!(r.power.is_none());
    }

    #[test]
    fn power_breakdown_is_attached_on_request() {
        let r = Experiment::new(NocConfig::paper_4x4())
            .workload(Workload::app("PIP"))
            .plan(RunPlan::smoke())
            .measure_power()
            .run();
        let p = r.power.expect("requested");
        assert!(p.total_w() > 0.0 && p.total_w() < 1.0);
    }

    #[test]
    fn scripted_drive_is_exact() {
        // A lone fig7 green packet takes exactly 1 cycle on SMART.
        let r = Experiment::new(NocConfig::paper_4x4())
            .scripted(vec![(0, FlowId(0))])
            .plan(RunPlan::measure_all(8, 1_000, 0))
            .run();
        assert!(r.drained);
        assert_eq!(r.packets_delivered, 1);
        assert_eq!(r.avg_network_latency, 1.0);
        assert_eq!(r.flow_latency(FlowId(0)), Some(1.0));
    }

    #[test]
    fn reports_are_deterministic() {
        let exp = Experiment::new(NocConfig::paper_4x4())
            .workload(Workload::uniform(6, 0.02, 7))
            .plan(RunPlan::smoke());
        let (a, b) = (exp.run(), exp.run());
        assert_eq!(a.snapshot_line(), b.snapshot_line());
        assert_eq!(a.flow_latencies, b.flow_latencies);
    }

    #[test]
    fn telemetry_series_covers_the_measured_window() {
        let base = Experiment::new(NocConfig::paper_4x4()).plan(RunPlan::smoke());
        let plain = base.run();
        let r = base.with_telemetry(TelemetryConfig::windowed(500)).run();
        let t = r.telemetry.as_ref().expect("requested");
        // smoke measures 2000 cycles: at least four 500-cycle windows.
        assert!(t.windows.len() >= 4, "{} windows", t.windows.len());
        // Fig 7's red/blue flows stop twice, so SSRs were granted.
        assert!(t.ssr_grants() > 0);
        // Cumulative packet counts in the final window agree with the
        // report's counters (both cover measure + drain).
        let last = t.windows.last().expect("windows");
        assert_eq!(last.delivered, r.packets_delivered);
        assert_eq!(last.injected, r.packets_injected);
        // Telemetry is observation only: the measurements agree with a
        // run that never attached a collector.
        assert_eq!(plain.snapshot_line(), r.snapshot_line());
        assert_eq!(plain.flow_latencies, r.flow_latencies);
    }

    #[test]
    fn telemetry_absent_unless_requested_and_none_for_dedicated() {
        let r = Experiment::new(NocConfig::paper_4x4())
            .plan(RunPlan::smoke())
            .run();
        assert!(r.telemetry.is_none());
        let d = Experiment::new(NocConfig::paper_4x4())
            .design(DesignKind::Dedicated)
            .plan(RunPlan::smoke())
            .with_telemetry(TelemetryConfig::default())
            .run();
        assert!(d.telemetry.is_none(), "no routers to observe");
    }
}
