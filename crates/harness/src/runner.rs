//! The shared scoped-thread cell runner behind every fan-out in the
//! workspace: [`crate::ExperimentMatrix`], the schedule matrix, and the
//! `smart-server` worker pool all pull cells from one atomic counter on
//! scoped worker threads. Each cell must be a pure function of its
//! index, so a parallel run is bit-identical to a serial one — the
//! determinism guarantee every consumer advertises.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run cells `0..n` on up to `threads` scoped worker threads, returning
/// results in index order plus the number of workers that executed at
/// least one cell. With one worker the cells run serially on the
/// caller's thread.
///
/// # Panics
///
/// Panics if any cell panics (the panic is propagated when its worker
/// is joined).
pub fn run_cells<T, F>(n: usize, threads: usize, cell: F) -> (Vec<T>, usize)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (slots, workers) = run_cells_observed(n, threads, None, cell, |_, _| {});
    let results = slots
        .into_iter()
        .map(|r| r.expect("no cancel flag, so every cell ran"))
        .collect();
    (results, workers)
}

/// The full-control runner: like [`run_cells`], but `observe(i, &r)`
/// fires on the worker thread the moment cell `i` finishes (cells
/// finish in any order — observers that stream results must carry the
/// index), and a shared `cancel` flag stops workers from *starting*
/// further cells (in-flight cells complete). Cells skipped after
/// cancellation come back as `None`.
///
/// Observation order is nondeterministic under threads; the returned
/// slot vector is always in index order and — absent cancellation —
/// bit-identical to a serial run.
pub fn run_cells_observed<T, F, O>(
    n: usize,
    threads: usize,
    cancel: Option<&AtomicBool>,
    cell: F,
    observe: O,
) -> (Vec<Option<T>>, usize)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(usize, &T) + Sync,
{
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
    let workers = threads.min(n).max(1);
    if workers == 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if cancelled() {
                out.push(None);
                continue;
            }
            let result = cell(i);
            observe(i, &result);
            out.push(Some(result));
        }
        return (out, 1);
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let participants = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut ran_one = false;
                loop {
                    if cancelled() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = cell(i);
                    observe(i, &result);
                    slots.lock().expect("no poisoned slot")[i] = Some(result);
                    ran_one = true;
                }
                if ran_one {
                    participants.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let results = slots.into_inner().expect("no poisoned slot");
    (results, participants.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let (serial, w1) = run_cells(16, 1, |i| i * i);
        let (parallel, wn) = run_cells(16, 4, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(w1, 1);
        assert!(wn >= 1);
    }

    #[test]
    fn empty_input_runs_no_cells() {
        let (out, workers) = run_cells(0, 8, |i| i);
        assert!(out.is_empty());
        assert_eq!(workers, 1);
    }

    #[test]
    fn observer_sees_every_cell_exactly_once() {
        let seen = Mutex::new(vec![0u32; 12]);
        let (out, _) = run_cells_observed(
            12,
            3,
            None,
            |i| i + 1,
            |i, r| {
                assert_eq!(*r, i + 1);
                seen.lock().expect("unpoisoned")[i] += 1;
            },
        );
        assert!(out.iter().all(Option::is_some));
        assert!(seen
            .into_inner()
            .expect("unpoisoned")
            .iter()
            .all(|c| *c == 1));
    }

    #[test]
    fn cancellation_skips_remaining_cells() {
        let cancel = AtomicBool::new(false);
        let (out, _) = run_cells_observed(
            64,
            1,
            Some(&cancel),
            |i| i,
            |i, _| {
                if i == 4 {
                    cancel.store(true, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(out.iter().filter(|r| r.is_some()).count(), 5);
        assert!(out[5..].iter().all(Option::is_none));
    }

    #[test]
    fn pre_cancelled_run_does_nothing() {
        let cancel = AtomicBool::new(true);
        let (out, _) = run_cells_observed(8, 4, Some(&cancel), |i| i, |_, _| {});
        assert!(out.iter().all(Option::is_none));
    }
}
