//! Multi-application schedules (Fig 1, Section V): run an ordered
//! sequence of applications on one NoC, paying the drain + preset-store
//! reconfiguration cost between phases.
//!
//! The paper's Fig 1 shows one physical mesh serving WLAN, then H.264,
//! then VOPD: "before each application runs, these registers need to be
//! set properly … the network needs to be emptied while setting the
//! registers", at a cost of one memory-mapped store per router — 16
//! instructions on the 4×4 mesh. ArSMART (arXiv:2011.09261) evaluates
//! exactly this multi-app regime with per-application reconfiguration
//! cost. [`AppSchedule`] captures the scenario class — ordered phases,
//! each a [`Workload`] under its own [`RunPlan`], plus a shared drain
//! budget between phases — and [`MultiAppExperiment`] drives one of the
//! four [`ScheduleDesign`]s through it, returning a [`ScheduleReport`]:
//! one [`ExperimentReport`] per phase, one [`PhaseTransition`] per
//! switch, and cross-phase aggregates. [`ScheduleMatrix`] fans one
//! schedule out across designs on the same scoped-thread cell runner as
//! [`crate::ExperimentMatrix`], with the same per-cell determinism.

use crate::experiment::{
    CompileMetrics, Drive, Experiment, ExperimentReport, RawMeasurements, RunPlan, TrafficContext,
};
use crate::runner::run_cells;
use crate::workload::{RoutedWorkload, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::{DesignKind, SmartNoc};
use smart_core::reconfig::{ReconfigError, ReconfigurableNoc};
use smart_sim::{TelemetryConfig, TelemetrySeries};
use smart_taskgraph::apps;
use std::fmt;

/// Default drain budget for the transition between two phases.
const DEFAULT_DRAIN_BUDGET: u64 = 50_000;

/// The phase-transition marker carried in a phase's telemetry-series
/// label (and thus its metrics-v1 JSONL header).
fn phase_label(index: usize, app: &str) -> String {
    format!("phase{index}:{app}")
}

/// Default base address of the memory-mapped preset registers
/// (Section V; the value itself is arbitrary).
const DEFAULT_BASE_ADDR: u64 = 0x4000_0000;

/// The design axis of a multi-app schedule: the paper's three evaluated
/// designs plus the live-reconfigured SMART of Fig 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScheduleDesign {
    /// Baseline mesh, rebuilt per phase: no preset registers, so
    /// switching applications costs no store instructions.
    Mesh,
    /// SMART, rebuilt per phase (offline reconfiguration): each
    /// application's presets cost one store per router, but no live
    /// traffic needs draining.
    Smart,
    /// Ideal per-flow dedicated links, rewired per phase — a yardstick
    /// that real silicon could not retarget at runtime at all.
    Dedicated,
    /// SMART behind one live [`ReconfigurableNoc`]: every transition
    /// drains in-flight traffic and replays the store sequence, exactly
    /// the Fig 1 runtime story.
    Reconfigurable,
}

impl ScheduleDesign {
    /// All four designs, in presentation order.
    pub const ALL: [ScheduleDesign; 4] = [
        ScheduleDesign::Mesh,
        ScheduleDesign::Smart,
        ScheduleDesign::Dedicated,
        ScheduleDesign::Reconfigurable,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ScheduleDesign::Mesh => "Mesh",
            ScheduleDesign::Smart => "SMART",
            ScheduleDesign::Dedicated => "Dedicated",
            ScheduleDesign::Reconfigurable => "Reconfigurable",
        }
    }

    /// The underlying simulated design.
    #[must_use]
    pub fn kind(self) -> DesignKind {
        match self {
            ScheduleDesign::Mesh => DesignKind::Mesh,
            ScheduleDesign::Smart | ScheduleDesign::Reconfigurable => DesignKind::Smart,
            ScheduleDesign::Dedicated => DesignKind::Dedicated,
        }
    }
}

/// One phase of a schedule: a workload driven under its own plan by its
/// own [`Drive`] (Bernoulli by default — any drive the single-cell
/// [`Experiment`] accepts works per phase, closing the roadmap's
/// "custom `TrafficSource`s threaded deeper into `Workload` for
/// schedules" item).
#[derive(Debug, Clone)]
pub struct AppPhase {
    /// What traffic this phase offers.
    pub workload: Workload,
    /// The warm-up / measure / drain schedule for this phase.
    pub plan: RunPlan,
    /// How the phase's flows are offered to the network.
    pub drive: Drive,
}

/// An ordered multi-application schedule plus the reconfiguration
/// parameters shared by every transition.
#[derive(Debug, Clone)]
pub struct AppSchedule {
    /// The phases, in execution order.
    pub phases: Vec<AppPhase>,
    drain_budget: u64,
    base_addr: u64,
}

impl Default for AppSchedule {
    fn default() -> Self {
        AppSchedule::new()
    }
}

impl AppSchedule {
    /// An empty schedule with the default drain budget and preset base
    /// address.
    #[must_use]
    pub fn new() -> Self {
        AppSchedule {
            phases: Vec::new(),
            drain_budget: DEFAULT_DRAIN_BUDGET,
            base_addr: DEFAULT_BASE_ADDR,
        }
    }

    /// The paper's eight task-graph applications back-to-back (in
    /// [`apps::all`] order), every phase under the same plan — the
    /// Fig 1 rotation at suite scale.
    #[must_use]
    pub fn apps(plan: RunPlan) -> Self {
        apps::all()
            .into_iter()
            .fold(AppSchedule::new(), |s, graph| {
                s.then(Workload::Graph(graph), plan)
            })
    }

    /// Append a Bernoulli-driven phase.
    #[must_use]
    pub fn then(self, workload: impl Into<Workload>, plan: RunPlan) -> Self {
        self.then_driven(workload, plan, Drive::Bernoulli)
    }

    /// Append a phase with an explicit [`Drive`] (bursty, trace replay,
    /// scripted, or custom).
    #[must_use]
    pub fn then_driven(
        mut self,
        workload: impl Into<Workload>,
        plan: RunPlan,
        drive: Drive,
    ) -> Self {
        self.phases.push(AppPhase {
            workload: workload.into(),
            plan,
            drive,
        });
        self
    }

    /// Cycles each transition may spend draining the previous phase's
    /// in-flight traffic before the swap is refused.
    #[must_use]
    pub fn drain_budget(mut self, cycles: u64) -> Self {
        self.drain_budget = cycles;
        self
    }

    /// Base address of the memory-mapped preset registers.
    #[must_use]
    pub fn base_addr(mut self, addr: u64) -> Self {
        self.base_addr = addr;
        self
    }

    /// Number of phases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` if the schedule has no phases.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

/// What one application switch cost (Section V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTransition {
    /// Application being replaced (`None` for the first phase).
    pub from: Option<String>,
    /// Application being loaded.
    pub to: String,
    /// Cycles spent draining the previous phase's in-flight traffic.
    pub drain_cycles: u64,
    /// Memory-mapped store instructions executed to install the
    /// presets — one per router (16 on the 4×4 mesh), 0 for designs
    /// without preset registers.
    pub store_count: usize,
}

/// A schedule could not advance past one of its phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// Index of the phase that could not be loaded.
    pub phase: usize,
    /// The underlying reconfiguration failure.
    pub source: ReconfigError,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule phase {}: {}", self.phase, self.source)
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Everything measured across one schedule run. Deterministic: the same
/// (config, design, schedule) triple produces a byte-identical report.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Which design ran the schedule.
    pub design: ScheduleDesign,
    /// Mesh dimensions of the design point.
    pub mesh: (u16, u16),
    /// One experiment report per phase, in schedule order.
    pub phases: Vec<ExperimentReport>,
    /// One transition per phase; `transitions[i]` is the switch that
    /// loaded `phases[i]` (the first has `from == None`).
    pub transitions: Vec<PhaseTransition>,
}

impl ScheduleReport {
    /// Total cycles spent draining in-flight traffic at transitions.
    #[must_use]
    pub fn total_drain_cycles(&self) -> u64 {
        self.transitions.iter().map(|t| t.drain_cycles).sum()
    }

    /// Total store instructions executed across all transitions.
    #[must_use]
    pub fn total_store_instructions(&self) -> usize {
        self.transitions.iter().map(|t| t.store_count).sum()
    }

    /// Packets delivered across all phases.
    #[must_use]
    pub fn packets_delivered(&self) -> u64 {
        self.phases.iter().map(|p| p.packets_delivered).sum()
    }

    /// Per-phase telemetry series in schedule order (empty unless the
    /// run requested [`MultiAppExperiment::with_telemetry`]). Each
    /// series carries its `phase<i>:<app>` label, so rendering the
    /// sequence shows the fabric's behavior across application
    /// switches with explicit transition markers.
    #[must_use]
    pub fn phase_telemetry(&self) -> Vec<&TelemetrySeries> {
        self.phases
            .iter()
            .filter_map(|p| p.telemetry.as_ref())
            .collect()
    }

    /// Packet-weighted average head-flit network latency across the
    /// whole schedule (`NaN` if no phase measured a packet).
    #[must_use]
    pub fn avg_network_latency(&self) -> f64 {
        let measured: u64 = self.phases.iter().map(|p| p.measured_packets).sum();
        if measured == 0 {
            return f64::NAN;
        }
        let weighted: f64 = self
            .phases
            .iter()
            .filter(|p| p.measured_packets > 0)
            .map(|p| p.avg_network_latency * p.measured_packets as f64)
            .sum();
        weighted / measured as f64
    }

    /// Section V amortization: reconfiguration store instructions per
    /// delivered packet across the whole schedule (`NaN` if nothing
    /// was delivered).
    #[must_use]
    pub fn amortized_instruction_overhead(&self) -> f64 {
        let delivered = self.packets_delivered();
        if delivered == 0 {
            return f64::NAN;
        }
        self.total_store_instructions() as f64 / delivered as f64
    }

    /// One stable multi-line snapshot, full float precision — the
    /// format determinism tests compare bit-exactly.
    #[must_use]
    pub fn snapshot(&self) -> String {
        let mut lines = vec![format!(
            "schedule {} {}x{} phases={} stores={} drain={}",
            self.design.label(),
            self.mesh.0,
            self.mesh.1,
            self.phases.len(),
            self.total_store_instructions(),
            self.total_drain_cycles(),
        )];
        for (t, p) in self.transitions.iter().zip(&self.phases) {
            lines.push(format!(
                "  -> {} from={} drain={} stores={}",
                t.to,
                t.from.as_deref().unwrap_or("(boot)"),
                t.drain_cycles,
                t.store_count,
            ));
            lines.push(format!("  {}", p.snapshot_line()));
        }
        lines.join("\n")
    }
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "multi-app schedule on {} ({}x{} mesh), {} phases",
            self.design.label(),
            self.mesh.0,
            self.mesh.1,
            self.phases.len()
        )?;
        for (t, p) in self.transitions.iter().zip(&self.phases) {
            writeln!(
                f,
                "  {:>10} -> {:<10} drain {:>6} cyc, {:>3} stores | {:>8.2} cyc avg over {} packets",
                t.from.as_deref().unwrap_or("(boot)"),
                t.to,
                t.drain_cycles,
                t.store_count,
                p.avg_network_latency,
                p.measured_packets
            )?;
        }
        write!(
            f,
            "  total: {} packets, {} store instructions, {} drain cycles, {:.6} instr/packet",
            self.packets_delivered(),
            self.total_store_instructions(),
            self.total_drain_cycles(),
            self.amortized_instruction_overhead()
        )
    }
}

/// One multi-app experiment: a [`NocConfig`] design point, a
/// [`ScheduleDesign`] and an [`AppSchedule`], executed with
/// [`MultiAppExperiment::run`].
#[derive(Debug, Clone)]
pub struct MultiAppExperiment {
    cfg: NocConfig,
    design: ScheduleDesign,
    schedule: AppSchedule,
    power: bool,
    telemetry: Option<TelemetryConfig>,
}

impl MultiAppExperiment {
    /// Start from a design point and schedule; defaults: the live
    /// [`ScheduleDesign::Reconfigurable`] design, no power model.
    #[must_use]
    pub fn new(cfg: NocConfig, schedule: AppSchedule) -> Self {
        MultiAppExperiment {
            cfg,
            design: ScheduleDesign::Reconfigurable,
            schedule,
            power: false,
            telemetry: None,
        }
    }

    /// Which schedule design to run.
    #[must_use]
    pub fn design(mut self, design: ScheduleDesign) -> Self {
        self.design = design;
        self
    }

    /// Attach the calibrated 45 nm energy model to every phase.
    #[must_use]
    pub fn measure_power(mut self) -> Self {
        self.power = true;
        self
    }

    /// Collect windowed telemetry for every phase. Each phase's series
    /// lands in its [`ExperimentReport::telemetry`], labeled
    /// `phase<i>:<app>` — the label is the phase-transition marker in
    /// the metrics-v1 header, so concatenated per-phase JSONL documents
    /// show exactly where one application hands the fabric to the next.
    /// On the live [`ScheduleDesign::Reconfigurable`] design a phase's
    /// series also covers the transition drain that empties its
    /// in-flight traffic, mirroring how its counters are credited.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The design point this schedule runs at.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Run every phase in order, reconfiguring between them.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if a transition's drain budget is
    /// exhausted before the previous phase's traffic empties (only the
    /// live [`ScheduleDesign::Reconfigurable`] design drains a shared
    /// network; the rebuilt designs cannot fail).
    pub fn run(&self) -> Result<ScheduleReport, ScheduleError> {
        let routed: Vec<RoutedWorkload> = self
            .schedule
            .phases
            .iter()
            .map(|p| p.workload.materialize(&self.cfg))
            .collect();
        self.run_routed(&routed)
    }

    /// Run against already-routed phase workloads (lets the schedule
    /// matrix materialize each phase once across designs).
    pub(crate) fn run_routed(
        &self,
        routed: &[RoutedWorkload],
    ) -> Result<ScheduleReport, ScheduleError> {
        match self.design {
            ScheduleDesign::Reconfigurable => self.run_live(routed),
            _ => Ok(self.run_rebuilt(routed)),
        }
    }

    /// The Fig 1 runtime story: one live [`ReconfigurableNoc`], each
    /// transition draining in-flight traffic and replaying the store
    /// sequence before the next phase runs. The harness performs the
    /// transition drain itself (before `load_app`, whose own drain then
    /// finds a quiescent network) so packets delivered while emptying
    /// the network are credited to the phase that injected them — each
    /// phase's report is assembled only after its transition drain.
    fn run_live(&self, routed: &[RoutedWorkload]) -> Result<ScheduleReport, ScheduleError> {
        let cfg = &self.cfg;
        let mut rnoc = ReconfigurableNoc::new(cfg.clone(), self.schedule.base_addr);
        let mut phases = Vec::with_capacity(routed.len());
        let mut transitions = Vec::with_capacity(routed.len());
        // The phase currently live on the network, its report pending
        // until the next transition's drain completes.
        let mut pending: Option<(&RoutedWorkload, bool)> = None;
        for (i, (phase, r)) in self.schedule.phases.iter().zip(routed).enumerate() {
            let from = rnoc.current_app().map(str::to_owned);
            let mut drain_cycles = 0;
            if let Some((prev_r, prev_drained)) = pending.take() {
                let noc = rnoc.noc_mut().expect("previous phase loaded");
                let before = noc.network().cycle();
                let emptied = noc.network_mut().drain(self.schedule.drain_budget);
                drain_cycles = noc.network().cycle() - before;
                let idx = phases.len();
                phases.push(self.live_phase_report(noc, prev_r, prev_drained, idx));
                if !emptied {
                    return Err(ScheduleError {
                        phase: i,
                        source: ReconfigError {
                            current_app: from.unwrap_or_default(),
                            next_app: r.name.clone(),
                            max_drain_cycles: self.schedule.drain_budget,
                        },
                    });
                }
            }
            let reconfig = rnoc
                .load_app(&r.name, &r.routes, self.schedule.drain_budget)
                .map_err(|source| ScheduleError { phase: i, source })?;
            transitions.push(PhaseTransition {
                from,
                to: r.name.clone(),
                drain_cycles,
                store_count: reconfig.cost_instructions,
            });

            let noc = rnoc.noc_mut().expect("app just loaded");
            let plan = phase.plan;
            // Per-phase drive plumbing: Bernoulli phases construct the
            // exact historical BernoulliTraffic (schedule goldens stay
            // byte-identical); any other drive rides the same path.
            let mut traffic = phase.drive.build(&TrafficContext {
                rates: &r.rates,
                flows: noc.network().flows(),
                topology: cfg.topology,
                flits_per_packet: cfg.flits_per_packet(),
                seed: plan.seed,
                temporal: r.temporal,
            });
            let net = noc.network_mut();
            net.set_stats_from(plan.warmup);
            net.run_with(traffic.as_mut(), plan.warmup);
            net.reset_counters();
            if let Some(tc) = self.telemetry {
                net.set_telemetry(tc);
            }
            net.run_with(traffic.as_mut(), plan.measure);
            // The phase's own drain window; a zero budget deliberately
            // leaves traffic in flight for the next transition, Fig 1
            // style (`drained` records this phase-plan outcome).
            let drained = net.drain(plan.drain);
            pending = Some((r, drained));
        }
        if let Some((last_r, last_drained)) = pending.take() {
            let noc = rnoc.noc_mut().expect("last phase loaded");
            let idx = phases.len();
            phases.push(self.live_phase_report(noc, last_r, last_drained, idx));
        }
        Ok(ScheduleReport {
            design: self.design,
            mesh: (cfg.topology.width(), cfg.topology.height()),
            phases,
            transitions,
        })
    }

    /// Snapshot the live network into the phase's report (`drained`
    /// records whether the phase's *own* plan window emptied the
    /// network; a later transition drain still counts toward the
    /// phase's counters and stats).
    fn live_phase_report(
        &self,
        noc: &mut SmartNoc,
        r: &RoutedWorkload,
        drained: bool,
        phase_index: usize,
    ) -> ExperimentReport {
        let cfg = &self.cfg;
        let mut report = ExperimentReport::assemble(
            DesignKind::Smart,
            cfg,
            &r.name,
            &RawMeasurements {
                drained,
                total_cycles: noc.network().cycle(),
                counters: *noc.network().counters(),
                stats: noc.network().stats(),
            },
            Some(CompileMetrics::from_compiled(
                noc.compiled(),
                r,
                cfg.topology,
            )),
            self.power,
        );
        report.telemetry = noc.network_mut().take_telemetry().map(|mut s| {
            s.label = Some(phase_label(phase_index, &r.name));
            s
        });
        report
    }

    /// Offline reconfiguration: every phase gets a freshly built
    /// design, so transitions never drain; only the SMART design pays
    /// preset stores, counted from the built design's actual store
    /// sequence (one per router on today's hardware model).
    fn run_rebuilt(&self, routed: &[RoutedWorkload]) -> ScheduleReport {
        let kind = self.design.kind();
        let mut phases = Vec::with_capacity(routed.len());
        let mut transitions = Vec::with_capacity(routed.len());
        let mut prev: Option<String> = None;
        for (i, (phase, r)) in self.schedule.phases.iter().zip(routed).enumerate() {
            let mut e = Experiment::new(self.cfg.clone())
                .design(kind)
                .plan(phase.plan)
                .drive(phase.drive.clone());
            if self.power {
                e = e.measure_power();
            }
            if let Some(tc) = self.telemetry {
                e = e.with_telemetry(tc);
            }
            let mut report = e.run_routed(r);
            if let Some(s) = report.telemetry.as_mut() {
                s.label = Some(phase_label(i, &r.name));
            }
            let store_count = report.compile.as_ref().map_or(0, |c| c.preset_stores);
            transitions.push(PhaseTransition {
                from: prev.replace(r.name.clone()),
                to: r.name.clone(),
                drain_cycles: 0,
                store_count,
            });
            phases.push(report);
        }
        ScheduleReport {
            design: self.design,
            mesh: (self.cfg.topology.width(), self.cfg.topology.height()),
            phases,
            transitions,
        }
    }
}

/// Fan one [`AppSchedule`] out across schedule designs on the same
/// scoped-thread cell runner as [`crate::ExperimentMatrix`]: cells
/// execute in parallel, results come back in design order, and each
/// cell is a pure function of its design — parallel results are
/// bit-identical to a serial run.
#[derive(Debug, Clone)]
pub struct ScheduleMatrix {
    cfg: NocConfig,
    designs: Vec<ScheduleDesign>,
    schedule: AppSchedule,
    threads: usize,
    power: bool,
}

/// The result of a schedule-matrix run, plus how it was executed.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// One result per design, in the matrix's design order.
    pub reports: Vec<Result<ScheduleReport, ScheduleError>>,
    /// Distinct worker threads that executed at least one cell.
    pub worker_threads: usize,
}

impl ScheduleMatrix {
    /// Start from a design point and schedule; defaults: all four
    /// schedule designs, one thread per available core.
    #[must_use]
    pub fn new(cfg: NocConfig, schedule: AppSchedule) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ScheduleMatrix {
            cfg,
            designs: ScheduleDesign::ALL.to_vec(),
            schedule,
            threads,
            power: false,
        }
    }

    /// Which designs form the matrix's design axis.
    #[must_use]
    pub fn designs(mut self, designs: &[ScheduleDesign]) -> Self {
        self.designs = designs.to_vec();
        self
    }

    /// Worker-thread cap (1 = serial; the default is one per core).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attach the power model to every phase of every cell.
    #[must_use]
    pub fn measure_power(mut self) -> Self {
        self.power = true;
        self
    }

    /// Number of cells (one full schedule per design).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.designs.len()
    }

    /// Run the schedule on every design.
    ///
    /// # Errors
    ///
    /// Returns the first design's [`ScheduleError`] (in design order)
    /// if any cell's transition fails to drain.
    pub fn run(&self) -> Result<Vec<ScheduleReport>, ScheduleError> {
        self.run_instrumented().reports.into_iter().collect()
    }

    /// Run every cell and also report how many worker threads took
    /// part, keeping per-design errors separate.
    #[must_use]
    pub fn run_instrumented(&self) -> ScheduleOutcome {
        // Materialize each phase once, serially — NMAP placement is
        // deterministic, and every design cell shares the routed form.
        let routed: Vec<RoutedWorkload> = self
            .schedule
            .phases
            .iter()
            .map(|p| p.workload.materialize(&self.cfg))
            .collect();
        let (reports, worker_threads) = run_cells(self.designs.len(), self.threads, |i| {
            let mut e = MultiAppExperiment::new(self.cfg.clone(), self.schedule.clone())
                .design(self.designs[i]);
            if self.power {
                e = e.measure_power();
            }
            e.run_routed(&routed)
        });
        ScheduleOutcome {
            reports,
            worker_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_apps(plan: RunPlan) -> AppSchedule {
        AppSchedule::new()
            .then(Workload::app("WLAN"), plan)
            .then(Workload::app("H264"), plan)
    }

    #[test]
    fn apps_schedule_covers_the_suite() {
        let s = AppSchedule::apps(RunPlan::smoke());
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert!(AppSchedule::new().is_empty());
    }

    #[test]
    fn live_transitions_chain_application_names() {
        let r = MultiAppExperiment::new(NocConfig::paper_4x4(), two_apps(RunPlan::smoke()))
            .run()
            .expect("smoke phases drain");
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.transitions[0].from, None);
        assert_eq!(r.transitions[0].store_count, 16);
        assert_eq!(r.transitions[1].from.as_deref(), Some("WLAN"));
        assert_eq!(r.transitions[1].to, "H264");
        assert_eq!(r.total_store_instructions(), 32);
    }

    #[test]
    fn rebuilt_designs_pay_no_drain_and_mesh_pays_no_stores() {
        for (design, stores) in [
            (ScheduleDesign::Mesh, 0),
            (ScheduleDesign::Smart, 16),
            (ScheduleDesign::Dedicated, 0),
        ] {
            let r = MultiAppExperiment::new(NocConfig::paper_4x4(), two_apps(RunPlan::smoke()))
                .design(design)
                .run()
                .expect("rebuilt designs cannot fail");
            assert!(r.transitions.iter().all(|t| t.drain_cycles == 0));
            assert!(
                r.transitions.iter().all(|t| t.store_count == stores),
                "{design:?}"
            );
            assert!(r.packets_delivered() > 0, "{design:?}");
        }
    }

    #[test]
    fn smart_and_reconfigurable_phases_measure_identically() {
        // The live design's per-phase runs start from a fresh network
        // with the same seed, so they must agree bit-exactly with the
        // rebuilt SMART design; only the transition costs differ.
        let schedule = two_apps(RunPlan::smoke());
        let live = MultiAppExperiment::new(NocConfig::paper_4x4(), schedule.clone())
            .run()
            .expect("drains");
        let rebuilt = MultiAppExperiment::new(NocConfig::paper_4x4(), schedule)
            .design(ScheduleDesign::Smart)
            .run()
            .expect("cannot fail");
        let lines = |r: &ScheduleReport| {
            r.phases
                .iter()
                .map(ExperimentReport::snapshot_line)
                .collect::<Vec<_>>()
        };
        assert_eq!(lines(&live), lines(&rebuilt));
    }

    #[test]
    fn schedule_telemetry_labels_each_phase() {
        use smart_sim::TelemetryConfig;
        for design in [ScheduleDesign::Reconfigurable, ScheduleDesign::Smart] {
            let r = MultiAppExperiment::new(NocConfig::paper_4x4(), two_apps(RunPlan::smoke()))
                .design(design)
                .with_telemetry(TelemetryConfig::windowed(500))
                .run()
                .expect("smoke phases drain");
            let series = r.phase_telemetry();
            assert_eq!(series.len(), 2, "{design:?}");
            assert_eq!(series[0].label.as_deref(), Some("phase0:WLAN"));
            assert_eq!(series[1].label.as_deref(), Some("phase1:H264"));
            // The transition markers survive the JSONL round trip.
            for s in &series {
                let parsed = smart_sim::TelemetrySeries::parse(&s.to_jsonl()).expect("round trip");
                assert_eq!(parsed.label, s.label);
            }
        }
    }

    #[test]
    fn schedule_matrix_matches_serial_and_counts_cells() {
        let m = ScheduleMatrix::new(NocConfig::paper_4x4(), two_apps(RunPlan::smoke()));
        assert_eq!(m.cells(), 4);
        let parallel = m.clone().threads(4).run().expect("all designs drain");
        let serial = m.threads(1).run().expect("all designs drain");
        let snaps =
            |rs: &[ScheduleReport]| rs.iter().map(ScheduleReport::snapshot).collect::<Vec<_>>();
        assert_eq!(snaps(&parallel), snaps(&serial));
    }
}
