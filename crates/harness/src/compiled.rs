//! Compiled-design artifacts behind one reusable handle.
//!
//! Every [`Experiment`] run pays three construction costs before the
//! first simulated cycle: the workload is **materialized** (NMAP
//! placement + contention-aware routing), the baseline [`FlowTable`]
//! (and its dense `LegLut`) is built, and — for SMART designs — the
//! preset compiler runs to fixpoint. All three are pure functions of
//! `(config, design, workload)`, so a [`CompiledDesign`] freezes them
//! once and [`Experiment::run_compiled`] replays them for free: the
//! `smart-server` cache keys handles by [`config_key`] and serves
//! repeat requests without recompiling anything, bit-identical to a
//! cold run.

use crate::experiment::Experiment;
use crate::workload::{RoutedWorkload, Workload};
use smart_core::compile::{compile, CompiledApp};
use smart_core::config::NocConfig;
use smart_core::noc::{Design, DesignKind, MeshNoc, SmartNoc};
use smart_core::{DedicatedFlow, DedicatedNoc};
use smart_sim::FlowTable;

/// The per-design compiled artifact a [`CompiledDesign`] carries on top
/// of the routed workload and baseline flow table.
#[derive(Debug, Clone)]
enum DesignArtifact {
    /// The baseline mesh needs only the flow table.
    Mesh,
    /// SMART: the preset compiler's output (stops, presets, flow plans).
    Smart(CompiledApp),
    /// Dedicated: the endpoint wiring list.
    Dedicated(Vec<DedicatedFlow>),
}

/// Everything [`Experiment`] constructs before simulating, frozen for
/// reuse: the routed workload, the baseline flow table, and the
/// design-specific compiled artifact. Instantiating a network from a
/// handle is bit-identical to building it from scratch — the cache
/// trades memory for compilation, never accuracy.
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    cfg: NocConfig,
    kind: DesignKind,
    routed: RoutedWorkload,
    table: FlowTable,
    artifact: DesignArtifact,
}

impl CompiledDesign {
    /// Materialize `workload` onto `cfg`'s mesh and compile it for
    /// `kind` — the full cold-start cost, paid once.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Workload::materialize`].
    #[must_use]
    pub fn compile(cfg: &NocConfig, kind: DesignKind, workload: &Workload) -> Self {
        CompiledDesign::from_routed(cfg, kind, workload.materialize(cfg))
    }

    /// Compile an already-routed workload for `kind` (lets callers that
    /// share one routed form across designs skip re-materialization).
    #[must_use]
    pub fn from_routed(cfg: &NocConfig, kind: DesignKind, routed: RoutedWorkload) -> Self {
        let table = FlowTable::mesh_baseline(cfg.topology, &routed.routes);
        let artifact = match kind {
            DesignKind::Mesh => DesignArtifact::Mesh,
            DesignKind::Smart => {
                DesignArtifact::Smart(compile(cfg.topology, cfg.hpc_max, &routed.routes))
            }
            DesignKind::Dedicated => DesignArtifact::Dedicated(
                routed
                    .routes
                    .iter()
                    .map(|(f, r)| DedicatedFlow {
                        flow: *f,
                        src: r.source(),
                        dst: r.destination(cfg.topology),
                    })
                    .collect(),
            ),
        };
        CompiledDesign {
            cfg: cfg.clone(),
            kind,
            routed,
            table,
            artifact,
        }
    }

    /// Bring up a fresh network from the cached artifacts — no routing,
    /// no preset compilation, no flow-table construction. The result is
    /// indistinguishable from [`Design::build`] on the same inputs.
    #[must_use]
    pub fn instantiate(&self) -> Design {
        self.instantiate_sharded(self.cfg.shards)
    }

    /// Like [`CompiledDesign::instantiate`], but with the cycle engine
    /// split across `shards` row bands. The compiled artifact is
    /// shard-agnostic (serial and sharded runs share cache entries), so
    /// the shard count of the *requesting* run — not of whichever run
    /// compiled the handle first — picks the engine.
    #[must_use]
    pub fn instantiate_sharded(&self, shards: usize) -> Design {
        let mut cfg = self.cfg.clone();
        cfg.shards = shards;
        match &self.artifact {
            DesignArtifact::Mesh => Design::Mesh(MeshNoc::from_table(&cfg, self.table.clone())),
            DesignArtifact::Smart(app) => Design::Smart(SmartNoc::from_compiled(&cfg, app.clone())),
            DesignArtifact::Dedicated(flows) => Design::Dedicated(DedicatedNoc::new(&cfg, flows)),
        }
    }

    /// The design point this handle was compiled at.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Which design the artifact serves.
    #[must_use]
    pub fn kind(&self) -> DesignKind {
        self.kind
    }

    /// The routed workload (rates, routes, temporal model).
    #[must_use]
    pub fn routed(&self) -> &RoutedWorkload {
        &self.routed
    }

    /// The baseline flow table traffic sources resolve endpoints
    /// against.
    #[must_use]
    pub fn flow_table(&self) -> &FlowTable {
        &self.table
    }

    /// The compiled SMART application, for designs that have one.
    #[must_use]
    pub fn compiled_app(&self) -> Option<&CompiledApp> {
        match &self.artifact {
            DesignArtifact::Smart(app) => Some(app),
            _ => None,
        }
    }
}

impl Experiment {
    /// Freeze this experiment's construction work (materialization,
    /// flow table, preset compilation) into a reusable handle —
    /// [`Experiment::run_compiled`] then replays runs without paying it
    /// again.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Workload::materialize`].
    #[must_use]
    pub fn compile_design(&self) -> CompiledDesign {
        CompiledDesign::compile(self.config(), self.design_kind(), self.workload_ref())
    }
}

/// FNV-1a over `bytes` — a small, dependency-free, endian-stable hash.
/// Collision resistance is not a goal (cache keys index a same-process
/// `HashMap`); stability under equal input is.
#[must_use]
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical encoding [`config_key`] hashes: every [`NocConfig`]
/// field (via the derived `Debug`, which prints them all, floats in
/// shortest-round-trip form), the design kind, and the full workload
/// spec — except `shards`, which is normalized to 1 first: sharding is
/// an execution strategy with bit-identical results, so serial and
/// sharded runs of one design point share a cache entry (the compiled
/// artifact is shard-agnostic). Two inputs encode equal iff every
/// design-relevant field is equal.
#[must_use]
pub fn config_encoding(cfg: &NocConfig, kind: DesignKind, workload: &Workload) -> String {
    let mut cfg = cfg.clone();
    cfg.shards = 1;
    format!("{cfg:?}|{kind:?}|{workload:?}")
}

/// The stable cache key of one `(config, design, workload)` triple —
/// the `smart-server` compiled-artifact cache's index. Equal triples
/// key equal; perturbing any config field, the design, or the workload
/// changes the encoding and (modulo FNV collisions) the key.
#[must_use]
pub fn config_key(cfg: &NocConfig, kind: DesignKind, workload: &Workload) -> u64 {
    stable_hash64(config_encoding(cfg, kind, workload).as_bytes())
}

/// The design-independent part of [`config_key`]: keys the routed form
/// of a workload on a design point, letting caches share one
/// materialization across the design axis (exactly what
/// [`crate::ExperimentMatrix`] does serially).
#[must_use]
pub fn workload_key(cfg: &NocConfig, workload: &Workload) -> u64 {
    let mut cfg = cfg.clone();
    cfg.shards = 1;
    stable_hash64(format!("{cfg:?}|{workload:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentReport, RunPlan};

    #[test]
    fn compiled_run_matches_cold_run_bit_exactly() {
        let cfg = NocConfig::paper_4x4();
        for kind in DesignKind::ALL {
            for workload in [
                Workload::fig7(),
                Workload::app("VOPD"),
                Workload::uniform(6, 0.02, 9),
            ] {
                let exp = Experiment::new(cfg.clone())
                    .design(kind)
                    .workload(workload.clone())
                    .plan(RunPlan::smoke());
                let cold = exp.run();
                let handle = exp.compile_design();
                let warm = exp.run_compiled(&handle);
                let again = exp.run_compiled(&handle);
                assert_eq!(cold.snapshot_line(), warm.snapshot_line(), "{kind:?}");
                assert_eq!(cold.flow_latencies, warm.flow_latencies, "{kind:?}");
                assert_eq!(warm.snapshot_line(), again.snapshot_line(), "reusable");
            }
        }
    }

    #[test]
    fn compiled_smart_exposes_the_app() {
        let cfg = NocConfig::paper_4x4();
        let smart = CompiledDesign::compile(&cfg, DesignKind::Smart, &Workload::fig7());
        assert!(smart.compiled_app().is_some());
        assert_eq!(smart.kind(), DesignKind::Smart);
        assert_eq!(smart.routed().name, "fig7");
        let mesh = CompiledDesign::compile(&cfg, DesignKind::Mesh, &Workload::fig7());
        assert!(mesh.compiled_app().is_none());
    }

    #[test]
    fn equal_triples_key_equal() {
        let cfg = NocConfig::paper_4x4();
        let w = Workload::uniform(8, 0.02, 42);
        assert_eq!(
            config_key(&cfg, DesignKind::Smart, &w),
            config_key(
                &NocConfig::paper_4x4(),
                DesignKind::Smart,
                &Workload::uniform(8, 0.02, 42)
            ),
        );
    }

    #[test]
    fn perturbations_change_the_key() {
        let cfg = NocConfig::paper_4x4();
        let w = Workload::uniform(8, 0.02, 42);
        let base = config_key(&cfg, DesignKind::Smart, &w);
        let mut hpc = cfg.clone();
        hpc.hpc_max = 4;
        assert_ne!(base, config_key(&hpc, DesignKind::Smart, &w));
        assert_ne!(base, config_key(&cfg, DesignKind::Mesh, &w));
        assert_ne!(
            base,
            config_key(&cfg, DesignKind::Smart, &Workload::uniform(8, 0.02, 43))
        );
        assert_ne!(
            base,
            config_key(&NocConfig::scaled(8), DesignKind::Smart, &w)
        );
        // Same dimensions, different topology: a 4x4 torus must never
        // share a cache entry with the 4x4 mesh.
        let torus = NocConfig::scaled_torus(4);
        let mesh = NocConfig::scaled(4);
        assert_ne!(
            config_key(&torus, DesignKind::Smart, &w),
            config_key(&mesh, DesignKind::Smart, &w)
        );
    }

    #[test]
    fn report_fields_survive_the_compiled_path() {
        // Not just the snapshot line: compile metrics and power agree too.
        let cfg = NocConfig::paper_4x4();
        let exp = Experiment::new(cfg)
            .workload(Workload::app("PIP"))
            .plan(RunPlan::smoke())
            .measure_power();
        let cold = exp.run();
        let warm = exp.run_compiled(&exp.compile_design());
        let stops = |r: &ExperimentReport| r.compile.as_ref().map(|c| c.stops.clone());
        assert_eq!(stops(&cold), stops(&warm));
        assert_eq!(cold.power, warm.power);
    }
}
