//! Fan-out over designs × workloads on the shared scoped-thread
//! [`crate::runner`].

use crate::experiment::{Experiment, ExperimentReport, RunPlan};
use crate::runner::run_cells;
use crate::workload::{RoutedWorkload, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;

/// A design × workload matrix: every cell is one [`Experiment`], cells
/// run in parallel on scoped threads, and reports come back in
/// deterministic matrix order (workload-major, design-minor) regardless
/// of the thread count — each cell's traffic RNG is seeded
/// independently, so per-cell results are bit-identical to a serial
/// run. This is the first step toward the roadmap's sharded-simulation
/// goal: one process already saturates its cores on independent cells.
#[derive(Debug, Clone)]
pub struct ExperimentMatrix {
    cfg: NocConfig,
    designs: Vec<DesignKind>,
    workloads: Vec<Workload>,
    plan: RunPlan,
    threads: usize,
    power: bool,
}

/// The result of a matrix run, plus how it was executed.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// One report per cell, workload-major then design-minor — the
    /// order `designs × workloads` would produce serially.
    pub reports: Vec<ExperimentReport>,
    /// Distinct worker threads that executed at least one cell.
    pub worker_threads: usize,
}

impl ExperimentMatrix {
    /// Start from a design point; defaults: all three designs, the
    /// preset workload battery, the default plan, one thread per
    /// available core.
    #[must_use]
    pub fn new(cfg: NocConfig) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ExperimentMatrix {
            cfg,
            designs: DesignKind::ALL.to_vec(),
            workloads: Workload::presets(),
            plan: RunPlan::default(),
            threads,
            power: false,
        }
    }

    /// Which designs form the matrix's design axis.
    #[must_use]
    pub fn designs(mut self, designs: &[DesignKind]) -> Self {
        self.designs = designs.to_vec();
        self
    }

    /// Which workloads form the matrix's workload axis.
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// The schedule every cell runs.
    #[must_use]
    pub fn plan(mut self, plan: RunPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Worker-thread cap (1 = serial; the default is one per core).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attach the power model to every cell.
    #[must_use]
    pub fn measure_power(mut self) -> Self {
        self.power = true;
        self
    }

    /// Number of cells the matrix will run.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.designs.len() * self.workloads.len()
    }

    /// Run every cell; reports in workload-major, design-minor order.
    #[must_use]
    pub fn run(&self) -> Vec<ExperimentReport> {
        self.run_instrumented().reports
    }

    /// Run every cell and also report how many worker threads took part.
    ///
    /// # Panics
    ///
    /// Panics if any cell's experiment panics (the panic is propagated
    /// when its worker is joined).
    #[must_use]
    pub fn run_instrumented(&self) -> MatrixOutcome {
        // Materialize each workload once, serially — NMAP placement is
        // deterministic, and every design cell shares the routed form.
        let routed: Vec<RoutedWorkload> = self
            .workloads
            .iter()
            .map(|w| w.materialize(&self.cfg))
            .collect();
        let cells: Vec<(usize, DesignKind)> = routed
            .iter()
            .enumerate()
            .flat_map(|(wi, _)| self.designs.iter().map(move |d| (wi, *d)))
            .collect();

        let experiment_for = |design: DesignKind| {
            let mut e = Experiment::new(self.cfg.clone())
                .design(design)
                .plan(self.plan);
            if self.power {
                e = e.measure_power();
            }
            e
        };

        let (reports, worker_threads) = run_cells(cells.len(), self.threads, |i| {
            let (wi, design) = cells[i];
            experiment_for(design).run_routed(&routed[wi])
        });
        MatrixOutcome {
            reports,
            worker_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix() -> ExperimentMatrix {
        ExperimentMatrix::new(NocConfig::paper_4x4())
            .designs(&[DesignKind::Mesh, DesignKind::Smart])
            .workloads(vec![
                Workload::fig7(),
                Workload::app("PIP"),
                Workload::uniform(4, 0.01, 3),
            ])
            .plan(RunPlan::smoke())
    }

    #[test]
    fn matrix_order_is_workload_major() {
        let reports = small_matrix().threads(1).run();
        assert_eq!(reports.len(), 6);
        assert_eq!(reports[0].workload, "fig7");
        assert_eq!(reports[0].design, DesignKind::Mesh);
        assert_eq!(reports[1].workload, "fig7");
        assert_eq!(reports[1].design, DesignKind::Smart);
        assert_eq!(reports[2].workload, "PIP");
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let m = small_matrix();
        let serial = m.clone().threads(1).run();
        let parallel = m.threads(4).run_instrumented();
        assert!(parallel.worker_threads >= 1);
        let lines: Vec<String> = serial.iter().map(ExperimentReport::snapshot_line).collect();
        let plines: Vec<String> = parallel
            .reports
            .iter()
            .map(ExperimentReport::snapshot_line)
            .collect();
        assert_eq!(lines, plines);
    }

    #[test]
    fn cells_counts_the_product() {
        assert_eq!(small_matrix().cells(), 6);
    }
}
