//! Pattern-algebra properties: on any square power-of-two mesh the
//! transpose / bit-complement / bit-reverse patterns are self-inverse
//! bijections, shuffle is a bijection, hotspot weights normalize per
//! source, and a recorded traffic stream replays bit-exactly.

use proptest::prelude::*;
use smart_sim::forward::FlowTable;
use smart_sim::route::SourceRoute;
use smart_sim::topology::{Mesh, NodeId};
use smart_sim::{FlowId, TrafficSource};
use smart_traffic::{
    ModulatedTraffic, SpatialPattern, TemporalModel, TraceFile, TraceRecorder, TraceTraffic,
};

/// The square power-of-two meshes the bit patterns are defined on.
fn pow2_meshes() -> Vec<Mesh> {
    vec![
        Mesh::new(2, 2),
        Mesh::new(4, 4),
        Mesh::new(8, 8),
        Mesh::new(16, 16),
    ]
}

fn self_inverse_patterns() -> Vec<SpatialPattern> {
    vec![
        SpatialPattern::Transpose,
        SpatialPattern::BitComplement,
        SpatialPattern::BitReverse,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn named_patterns_are_self_inverse_bijections(
        mesh in prop::sample::select(pow2_meshes()),
        pattern in prop::sample::select(self_inverse_patterns()),
    ) {
        let mut seen = vec![false; mesh.len()];
        for src in mesh.nodes() {
            let dst = pattern.destination(mesh, src).expect("permutation");
            prop_assert!((dst.0 as usize) < mesh.len(), "{dst} off the mesh");
            prop_assert!(!seen[dst.0 as usize], "{dst} hit twice: not injective");
            seen[dst.0 as usize] = true;
            // Self-inverse: applying the map twice is the identity.
            prop_assert_eq!(pattern.destination(mesh, dst), Some(src));
        }
        prop_assert!(seen.iter().all(|s| *s), "not surjective");
    }

    #[test]
    fn shuffle_is_a_bijection(mesh in prop::sample::select(pow2_meshes())) {
        let mut seen = vec![false; mesh.len()];
        for src in mesh.nodes() {
            let dst = SpatialPattern::Shuffle.destination(mesh, src).expect("permutation");
            prop_assert!(!seen[dst.0 as usize]);
            seen[dst.0 as usize] = true;
        }
        prop_assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn hotspot_weights_normalize_per_source(
        mesh in prop::sample::select(pow2_meshes()),
        weight in 0.0f64..1.0,
        ntargets in 1usize..4,
    ) {
        prop_assume!(mesh.len() > 4);
        let targets: Vec<NodeId> = (0..ntargets as u16).map(NodeId).collect();
        let flows = SpatialPattern::hotspot(targets.clone(), weight).flows(mesh);
        for src in mesh.nodes() {
            let total: f64 = flows.iter().filter(|f| f.src == src).map(|f| f.weight).sum();
            // A target source spends no budget on itself; its hotspot
            // share shrinks accordingly. Non-target sources hit 1.
            if targets.contains(&src) {
                prop_assert!(total <= 1.0 + 1e-9, "{src}: {total}");
            } else {
                prop_assert!((total - 1.0).abs() < 1e-9, "{src}: {total}");
            }
        }
    }

    #[test]
    fn sampled_hotspot_normalizes_and_stays_linear(
        mesh in prop::sample::select(pow2_meshes()),
        weight in 0.0f64..1.0,
        ntargets in 1usize..4,
        background in 1usize..9,
        seed in 0u64..1_000,
    ) {
        prop_assume!(mesh.len() > 4);
        let targets: Vec<NodeId> = (0..ntargets as u16).map(NodeId).collect();
        let flows = SpatialPattern::hotspot_sampled(targets.clone(), weight, background, seed)
            .flows(mesh);
        // Flow count is linear in the mesh, not quadratic.
        prop_assert!(flows.len() <= mesh.len() * (ntargets + background));
        for src in mesh.nodes() {
            let mine: Vec<_> = flows.iter().filter(|f| f.src == src).collect();
            let total: f64 = mine.iter().map(|f| f.weight).sum();
            if targets.contains(&src) {
                prop_assert!(total <= 1.0 + 1e-9, "{}: {}", src, total);
            } else {
                // The source's whole budget survives sampling.
                prop_assert!((total - 1.0).abs() < 1e-9, "{}: {}", src, total);
            }
            // No self-flows; background picks are distinct.
            let mut seen = vec![false; mesh.len()];
            for f in &mine {
                prop_assert!(f.dst != src, "{} sends to itself", src);
                if !targets.contains(&f.dst) {
                    prop_assert!(!seen[f.dst.0 as usize], "{} sampled {} twice", src, f.dst);
                    seen[f.dst.0 as usize] = true;
                }
            }
        }
    }

    #[test]
    fn routed_flow_ids_are_dense_and_rates_scaled(
        mesh in prop::sample::select(pow2_meshes()),
        rate in 0.001f64..0.2,
    ) {
        // On 2x2 the tornado rotation degenerates to the identity and
        // drops every pair; the battery is meaningful from 4x4 up.
        prop_assume!(mesh.len() > 4);
        for pattern in SpatialPattern::battery(mesh) {
            let (routes, rates) = pattern.routed(mesh, rate);
            prop_assert_eq!(routes.len(), rates.len());
            for (i, ((rf, route), (tf, r))) in routes.iter().zip(&rates).enumerate() {
                prop_assert_eq!(*rf, FlowId(i as u32));
                prop_assert_eq!(*tf, FlowId(i as u32));
                prop_assert!(*r <= rate + 1e-12);
                prop_assert!(route.source() != route.destination(mesh));
            }
        }
    }

    #[test]
    fn trace_record_replay_round_trips_bit_exactly(
        seed in 0u64..1_000,
        rate in 0.01f64..0.5,
        burst in prop::sample::select(vec![
            TemporalModel::Steady,
            TemporalModel::OnOff { on_to_off: 0.05, off_to_on: 0.05 },
            TemporalModel::Ramp { from: 0.0, to: 1.0, cycles: 500 },
        ]),
    ) {
        let mesh = Mesh::paper_4x4();
        let (routes, rates) = SpatialPattern::Transpose.routed(mesh, rate);
        let flows = FlowTable::mesh_baseline(mesh, &routes);
        let inner = ModulatedTraffic::new(burst, &rates, &flows, mesh, 8, seed);
        let mut rec = TraceRecorder::new(Box::new(inner), 8);
        let mut live = Vec::new();
        for c in 0..1_000 {
            live.extend(rec.generate(c));
        }
        // Freeze through the JSONL text form, then replay.
        let trace = TraceFile::parse(&rec.into_trace().to_jsonl()).expect("round trip");
        let mut replay = TraceTraffic::new(&trace, &flows, mesh);
        let mut replayed = Vec::new();
        for c in 0..1_000 {
            replayed.extend(replay.generate(c));
        }
        prop_assert!(replay.exhausted());
        prop_assert_eq!(live.len(), replayed.len());
        for (a, b) in live.iter().zip(&replayed) {
            prop_assert_eq!(
                (a.gen_cycle, a.flow, a.src, a.dst, a.num_flits),
                (b.gen_cycle, b.flow, b.src, b.dst, b.num_flits)
            );
        }
    }
}

/// Non-property anchor: the permutation patterns agree with the legacy
/// `smart_sim::Pattern` pairs where both are defined.
#[test]
fn agrees_with_legacy_sim_patterns() {
    let mesh = Mesh::paper_4x4();
    let legacy: Vec<(NodeId, NodeId)> = smart_sim::Pattern::Transpose.pairs(mesh);
    let new: Vec<(NodeId, NodeId)> = SpatialPattern::Transpose
        .flows(mesh)
        .into_iter()
        .map(|f| (f.src, f.dst))
        .collect();
    assert_eq!(legacy, new);
    let legacy: Vec<(NodeId, NodeId)> = smart_sim::Pattern::BitComplement.pairs(mesh);
    let new: Vec<(NodeId, NodeId)> = SpatialPattern::BitComplement
        .flows(mesh)
        .into_iter()
        .map(|f| (f.src, f.dst))
        .collect();
    assert_eq!(legacy, new);
}

/// XY source-routing anchor used by every pattern: routes exist for
/// every induced flow on a 16x16 mesh under the densest battery entry.
#[test]
fn battery_routes_on_large_meshes() {
    let mesh = Mesh::new(16, 16);
    for pattern in SpatialPattern::battery(mesh) {
        let (routes, _) = pattern.routed(mesh, 0.01);
        assert!(!routes.is_empty(), "{}", pattern.label());
        for (f, r) in &routes {
            let _ = (
                f,
                SourceRoute::xy(mesh, r.source(), r.destination(mesh)).unwrap(),
            );
        }
    }
}
