//! Trace record/replay: freeze any stochastic traffic scenario into a
//! versioned, reproducible artifact.
//!
//! A [`TraceFile`] is the `(cycle, flow)` injection schedule of one run
//! in a line-oriented JSONL format (`smart-traffic/trace-v1`): a header
//! object followed by one event object per line. [`TraceRecorder`]
//! captures the schedule from **any** live [`TrafficSource`] as it
//! generates; [`TraceTraffic`] replays a trace deterministically through
//! the existing [`ScriptedTraffic`] machinery — so a bursty or random
//! run can be re-driven bit-exactly, diffed, or shipped as a benchmark
//! input.

use smart_sim::forward::FlowTable;
use smart_sim::topology::Topology;
use smart_sim::{FlowId, Packet, ScriptedTraffic, TrafficSource};
use std::fmt;

/// The schema tag written in (and required of) every trace header.
pub const TRACE_SCHEMA: &str = "smart-traffic/trace-v1";

/// A recorded injection schedule: which flow generated a packet at
/// which cycle, plus the packet sizing needed to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// Flits per packet of the recorded run.
    pub flits_per_packet: u8,
    /// `(cycle, flow)` injection events, in recording order.
    pub events: Vec<(u64, FlowId)>,
}

/// A malformed trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line of the offending text (0 for a missing header).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl TraceFile {
    /// Render as the versioned JSONL document. Hand-rolled: every field
    /// is numeric or a fixed identifier, so no escaping is needed.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(32 * (self.events.len() + 1));
        s.push_str(&format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"flits_per_packet\":{},\"events\":{}}}\n",
            self.flits_per_packet,
            self.events.len()
        ));
        for (cycle, flow) in &self.events {
            s.push_str(&format!("{{\"cycle\":{cycle},\"flow\":{}}}\n", flow.0));
        }
        s
    }

    /// Parse a JSONL trace document.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] on a missing or wrong-schema
    /// header, a malformed line, or an event-count mismatch.
    pub fn parse(text: &str) -> Result<TraceFile, TraceParseError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or_else(|| TraceParseError {
            line: 0,
            message: "empty document (missing header)".to_owned(),
        })?;
        let schema = json_str_field(header, "schema").ok_or_else(|| TraceParseError {
            line: 1,
            message: "header has no \"schema\" field".to_owned(),
        })?;
        if schema != TRACE_SCHEMA {
            return Err(TraceParseError {
                line: 1,
                message: format!("unsupported schema {schema:?}, expected {TRACE_SCHEMA:?}"),
            });
        }
        let fpp = json_u64_field(header, "flits_per_packet").ok_or_else(|| TraceParseError {
            line: 1,
            message: "header has no \"flits_per_packet\" field".to_owned(),
        })?;
        let declared = json_u64_field(header, "events").ok_or_else(|| TraceParseError {
            line: 1,
            message: "header has no \"events\" field".to_owned(),
        })?;
        let fpp = u8::try_from(fpp).map_err(|_| TraceParseError {
            line: 1,
            message: format!("flits_per_packet {fpp} does not fit a u8"),
        })?;
        let mut events = Vec::with_capacity(declared as usize);
        for (i, line) in lines {
            let cycle = json_u64_field(line, "cycle").ok_or_else(|| TraceParseError {
                line: i + 1,
                message: format!("event has no \"cycle\" field: {line}"),
            })?;
            let flow = json_u64_field(line, "flow").ok_or_else(|| TraceParseError {
                line: i + 1,
                message: format!("event has no \"flow\" field: {line}"),
            })?;
            let flow = u32::try_from(flow).map_err(|_| TraceParseError {
                line: i + 1,
                message: format!("flow id {flow} does not fit a u32"),
            })?;
            events.push((cycle, FlowId(flow)));
        }
        if events.len() as u64 != declared {
            return Err(TraceParseError {
                line: 1,
                message: format!("header declares {declared} events, found {}", events.len()),
            });
        }
        Ok(TraceFile {
            flits_per_packet: fpp,
            events,
        })
    }

    /// Write the JSONL document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Read and parse a JSONL trace from `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error, or the parse error mapped into
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn read_from(path: impl AsRef<std::path::Path>) -> std::io::Result<TraceFile> {
        let text = std::fs::read_to_string(path)?;
        TraceFile::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The cycle of the last recorded event (`None` when empty).
    #[must_use]
    pub fn last_cycle(&self) -> Option<u64> {
        self.events.iter().map(|(c, _)| *c).max()
    }
}

/// Extract a `"key":"value"` string field from a flat JSON object line.
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let rest = &line[line.find(&needle)? + needle.len()..];
    rest.split('"').next()
}

/// Extract a `"key":123` numeric field from a flat JSON object line.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// A pass-through [`TrafficSource`] that records the `(cycle, flow)` of
/// every packet its inner source generates — attach to any live run,
/// then freeze the schedule with [`TraceRecorder::into_trace`].
pub struct TraceRecorder {
    inner: Box<dyn TrafficSource>,
    flits_per_packet: u8,
    events: Vec<(u64, FlowId)>,
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("flits_per_packet", &self.flits_per_packet)
            .field("events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl TraceRecorder {
    /// Wrap `inner`, recording packets of `flits_per_packet` flits.
    #[must_use]
    pub fn new(inner: Box<dyn TrafficSource>, flits_per_packet: u8) -> Self {
        TraceRecorder {
            inner,
            flits_per_packet,
            events: Vec::new(),
        }
    }

    /// Events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[(u64, FlowId)] {
        &self.events
    }

    /// Freeze the recording into a replayable [`TraceFile`].
    #[must_use]
    pub fn into_trace(self) -> TraceFile {
        TraceFile {
            flits_per_packet: self.flits_per_packet,
            events: self.events,
        }
    }
}

impl TrafficSource for TraceRecorder {
    fn generate(&mut self, cycle: u64) -> Vec<Packet> {
        let packets = self.inner.generate(cycle);
        self.events
            .extend(packets.iter().map(|p| (p.gen_cycle, p.flow)));
        packets
    }
}

/// Deterministic replay of a [`TraceFile`] through the existing
/// [`ScriptedTraffic`] machinery: same cycles, same flows, same
/// per-cycle ordering (queue order at a shared source NIC matters),
/// same packet sizing — and therefore the same simulation, bit-exactly.
#[derive(Debug, Clone)]
pub struct TraceTraffic {
    inner: ScriptedTraffic,
}

impl TraceTraffic {
    /// Build a replay source for `trace` against `flows` on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the trace references a flow the table does not know.
    #[must_use]
    pub fn new(trace: &TraceFile, flows: &FlowTable, topo: impl Into<Topology>) -> Self {
        TraceTraffic {
            inner: ScriptedTraffic::new(trace.events.clone(), trace.flits_per_packet, flows, topo),
        }
    }

    /// `true` once every traced event has been replayed.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.inner.exhausted()
    }
}

impl TrafficSource for TraceTraffic {
    fn generate(&mut self, cycle: u64) -> Vec<Packet> {
        self.inner.generate(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::{ModulatedTraffic, TemporalModel};
    use smart_sim::route::SourceRoute;
    use smart_sim::topology::NodeId;

    fn table() -> (FlowTable, smart_sim::Mesh) {
        let mesh = smart_sim::Mesh::paper_4x4();
        let routes = vec![
            (
                FlowId(0),
                SourceRoute::xy(mesh, NodeId(0), NodeId(3)).unwrap(),
            ),
            (
                FlowId(1),
                SourceRoute::xy(mesh, NodeId(12), NodeId(15)).unwrap(),
            ),
        ];
        (FlowTable::mesh_baseline(mesh, &routes), mesh)
    }

    fn sample_trace() -> TraceFile {
        TraceFile {
            flits_per_packet: 8,
            events: vec![(0, FlowId(0)), (3, FlowId(1)), (3, FlowId(0))],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let t = sample_trace();
        let text = t.to_jsonl();
        assert!(text.starts_with(
            "{\"schema\":\"smart-traffic/trace-v1\",\"flits_per_packet\":8,\"events\":3}"
        ));
        assert_eq!(TraceFile::parse(&text), Ok(t));
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = "{\"schema\":\"smart-traffic/trace-v9\",\"flits_per_packet\":8,\"events\":0}\n";
        let err = TraceFile::parse(text).expect_err("future schema");
        assert!(err.message.contains("unsupported schema"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn truncated_document_is_rejected() {
        let mut text = sample_trace().to_jsonl();
        text.truncate(text.rfind("{\"cycle\"").expect("has events"));
        let err = TraceFile::parse(&text).expect_err("event count mismatch");
        assert!(err.message.contains("declares 3 events, found 2"));
    }

    #[test]
    fn garbage_line_is_rejected_with_position() {
        let text = "{\"schema\":\"smart-traffic/trace-v1\",\"flits_per_packet\":8,\"events\":1}\nnot json\n";
        let err = TraceFile::parse(text).expect_err("garbage");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn recorder_captures_the_generated_schedule() {
        let (flows, mesh) = table();
        let rates = [(FlowId(0), 0.3), (FlowId(1), 0.2)];
        let inner = ModulatedTraffic::new(TemporalModel::Steady, &rates, &flows, mesh, 8, 5);
        let mut rec = TraceRecorder::new(Box::new(inner), 8);
        let mut direct = ModulatedTraffic::new(TemporalModel::Steady, &rates, &flows, mesh, 8, 5);
        let mut expected = Vec::new();
        for c in 0..500 {
            let via = rec.generate(c);
            let raw = direct.generate(c);
            assert_eq!(via, raw, "recorder must be a pass-through");
            expected.extend(raw.iter().map(|p| (p.gen_cycle, p.flow)));
        }
        assert_eq!(rec.events(), &expected[..]);
        let trace = rec.into_trace();
        assert_eq!(trace.events, expected);
        assert_eq!(trace.flits_per_packet, 8);
    }

    #[test]
    fn replay_reproduces_the_recorded_stream() {
        let (flows, mesh) = table();
        let rates = [(FlowId(0), 0.25), (FlowId(1), 0.1)];
        let model = TemporalModel::on_off(0.05, 0.05);
        let inner = ModulatedTraffic::new(model, &rates, &flows, mesh, 8, 77);
        let mut rec = TraceRecorder::new(Box::new(inner), 8);
        let mut live: Vec<Packet> = Vec::new();
        for c in 0..2_000 {
            live.extend(rec.generate(c));
        }
        let trace = rec.into_trace();
        let mut replay = TraceTraffic::new(&trace, &flows, mesh);
        let mut replayed: Vec<Packet> = Vec::new();
        for c in 0..2_000 {
            replayed.extend(replay.generate(c));
        }
        assert!(replay.exhausted());
        assert_eq!(live.len(), replayed.len());
        for (a, b) in live.iter().zip(&replayed) {
            // PacketIds are re-assigned by the replayer; everything the
            // network observes is identical.
            assert_eq!(
                (a.gen_cycle, a.flow, a.src, a.dst),
                (b.gen_cycle, b.flow, b.src, b.dst)
            );
            assert_eq!(a.num_flits, b.num_flits);
        }
    }

    #[test]
    fn replay_preserves_same_cycle_order_for_unsorted_rates() {
        // Two flows sharing one source NIC, rates listed in descending
        // flow-id order: the recorded per-cycle order (1 before 0)
        // dictates NIC queue order, and replay must preserve it.
        let mesh = smart_sim::Mesh::paper_4x4();
        let routes = vec![
            (
                FlowId(0),
                SourceRoute::xy(mesh, NodeId(0), NodeId(3)).unwrap(),
            ),
            (
                FlowId(1),
                SourceRoute::xy(mesh, NodeId(0), NodeId(12)).unwrap(),
            ),
        ];
        let flows = FlowTable::mesh_baseline(mesh, &routes);
        let rates = [(FlowId(1), 0.5), (FlowId(0), 0.5)];
        let inner = ModulatedTraffic::new(TemporalModel::Steady, &rates, &flows, mesh, 8, 21);
        let mut rec = TraceRecorder::new(Box::new(inner), 8);
        let mut live = Vec::new();
        for c in 0..200 {
            live.extend(rec.generate(c));
        }
        let trace = rec.into_trace();
        assert!(
            trace
                .events
                .iter()
                .any(|w| trace.events.iter().any(|v| v.0 == w.0 && v.1 != w.1)),
            "seed must produce at least one shared cycle"
        );
        let mut replay = TraceTraffic::new(&trace, &flows, mesh);
        let mut replayed = Vec::new();
        for c in 0..200 {
            replayed.extend(replay.generate(c));
        }
        let key = |ps: &[Packet]| ps.iter().map(|p| (p.gen_cycle, p.flow)).collect::<Vec<_>>();
        assert_eq!(key(&live), key(&replayed));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("smart-traffic-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("trace.jsonl");
        let t = sample_trace();
        t.write_to(&path).expect("write");
        assert_eq!(TraceFile::read_from(&path).expect("read"), t);
        assert_eq!(t.last_cycle(), Some(3));
        std::fs::remove_file(&path).ok();
    }
}
