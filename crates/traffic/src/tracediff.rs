//! Cross-engine trace diffing: replay one recorded injection schedule
//! against two designs and compare what the network actually did.
//!
//! Record/replay ([`crate::TraceFile`]) makes the *offered* traffic of
//! two runs identical by construction, so any difference in the
//! *measured* outcome — delivered packets, per-flow head latencies —
//! is attributable to the design under test alone. [`TraceDiffReport`]
//! is that comparison as a structured artifact: per-flow latency
//! deltas, delivered-packet deltas, and a stable text rendering for
//! goldens and server streaming. The inputs are plain
//! [`PhaseOutcome`] snapshots, so any layer that can name a design and
//! count packets can produce one (`smart-harness` converts its
//! `ExperimentReport` directly).

use smart_sim::FlowId;
use std::fmt;

/// What one design did with a replayed phase: the design-agnostic
/// measurement snapshot a diff consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOutcome {
    /// Which design (or engine build) produced this outcome.
    pub label: String,
    /// Packets delivered over the phase.
    pub packets_delivered: u64,
    /// Flits delivered over the phase.
    pub flits_delivered: u64,
    /// Average head-flit network latency, cycles (`NaN` if nothing was
    /// measured).
    pub avg_network_latency: f64,
    /// Per-flow average head-flit latency, flows in id order (flows
    /// that delivered nothing are absent).
    pub flow_latencies: Vec<(FlowId, f64)>,
}

impl PhaseOutcome {
    /// The latency of one flow, if it delivered packets.
    #[must_use]
    pub fn flow_latency(&self, flow: FlowId) -> Option<f64> {
        self.flow_latencies
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, l)| *l)
    }
}

/// One flow's latency under the baseline and the candidate design.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDelta {
    /// The flow.
    pub flow: FlowId,
    /// Baseline average head latency (`None` if the flow delivered no
    /// packet there).
    pub baseline: Option<f64>,
    /// Candidate average head latency.
    pub candidate: Option<f64>,
}

impl FlowDelta {
    /// `candidate − baseline`, when both sides measured the flow.
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        Some(self.candidate? - self.baseline?)
    }
}

/// The structured diff of one trace replayed on two designs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiffReport {
    /// Baseline design label.
    pub baseline: String,
    /// Candidate design label.
    pub candidate: String,
    /// `candidate − baseline` delivered packets.
    pub delivered_delta: i64,
    /// `candidate − baseline` delivered flits.
    pub flit_delta: i64,
    /// `candidate − baseline` average head-flit network latency
    /// (`NaN` if either side measured nothing).
    pub latency_delta: f64,
    /// Per-flow latency comparison, union of both sides' flows in id
    /// order.
    pub flows: Vec<FlowDelta>,
}

impl TraceDiffReport {
    /// Diff `candidate` against `baseline`. Both outcomes should come
    /// from replaying the *same* trace — the function cannot check
    /// that, but under it the deltas isolate the design change.
    #[must_use]
    pub fn between(baseline: &PhaseOutcome, candidate: &PhaseOutcome) -> Self {
        let mut ids: Vec<FlowId> = baseline
            .flow_latencies
            .iter()
            .chain(&candidate.flow_latencies)
            .map(|(f, _)| *f)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let flows = ids
            .into_iter()
            .map(|flow| FlowDelta {
                flow,
                baseline: baseline.flow_latency(flow),
                candidate: candidate.flow_latency(flow),
            })
            .collect();
        TraceDiffReport {
            baseline: baseline.label.clone(),
            candidate: candidate.label.clone(),
            delivered_delta: candidate.packets_delivered as i64 - baseline.packets_delivered as i64,
            flit_delta: candidate.flits_delivered as i64 - baseline.flits_delivered as i64,
            latency_delta: candidate.avg_network_latency - baseline.avg_network_latency,
            flows,
        }
    }

    /// Flows the candidate slowed down by more than `threshold` cycles.
    #[must_use]
    pub fn regressed_flows(&self, threshold: f64) -> Vec<&FlowDelta> {
        self.flows
            .iter()
            .filter(|d| d.delta().is_some_and(|x| x > threshold))
            .collect()
    }

    /// Flows the candidate sped up by more than `threshold` cycles.
    #[must_use]
    pub fn improved_flows(&self, threshold: f64) -> Vec<&FlowDelta> {
        self.flows
            .iter()
            .filter(|d| d.delta().is_some_and(|x| x < -threshold))
            .collect()
    }

    /// `true` when both designs delivered the same packet and flit
    /// counts (the traffic-conservation sanity bar for a replay).
    #[must_use]
    pub fn delivery_matches(&self) -> bool {
        self.delivered_delta == 0 && self.flit_delta == 0
    }
}

impl fmt::Display for TraceDiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace diff {} -> {}: {:+} packets, {:+} flits, {:+.2} cyc avg latency",
            self.baseline,
            self.candidate,
            self.delivered_delta,
            self.flit_delta,
            self.latency_delta
        )?;
        for d in &self.flows {
            let fmt_side = |s: Option<f64>| match s {
                Some(l) => format!("{l:.2}"),
                None => "-".to_owned(),
            };
            let delta = match d.delta() {
                Some(x) => format!("{x:+.2}"),
                None => "n/a".to_owned(),
            };
            writeln!(
                f,
                "  flow {:>4}: {:>8} -> {:>8}  ({delta})",
                d.flow.0,
                fmt_side(d.baseline),
                fmt_side(d.candidate),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str, lat: &[(u32, f64)]) -> PhaseOutcome {
        PhaseOutcome {
            label: label.to_owned(),
            packets_delivered: lat.len() as u64 * 10,
            flits_delivered: lat.len() as u64 * 80,
            avg_network_latency: lat.iter().map(|(_, l)| *l).sum::<f64>() / lat.len() as f64,
            flow_latencies: lat.iter().map(|(f, l)| (FlowId(*f), *l)).collect(),
        }
    }

    #[test]
    fn identical_outcomes_diff_to_zero() {
        let a = outcome("Mesh", &[(0, 16.0), (1, 20.0)]);
        let d = TraceDiffReport::between(&a, &a);
        assert!(d.delivery_matches());
        assert_eq!(d.latency_delta, 0.0);
        assert!(d.regressed_flows(0.0).is_empty());
        assert!(d.improved_flows(0.0).is_empty());
    }

    #[test]
    fn per_flow_deltas_take_the_flow_union() {
        let base = outcome("Mesh", &[(0, 16.0), (2, 24.0)]);
        let cand = outcome("SMART", &[(0, 1.0), (3, 7.0)]);
        let d = TraceDiffReport::between(&base, &cand);
        let ids: Vec<u32> = d.flows.iter().map(|x| x.flow.0).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        assert_eq!(d.flows[0].delta(), Some(-15.0));
        assert_eq!(d.flows[1].candidate, None);
        assert_eq!(d.flows[2].baseline, None);
        assert_eq!(d.improved_flows(1.0).len(), 1);
    }

    #[test]
    fn delivery_mismatch_is_flagged() {
        let mut cand = outcome("SMART", &[(0, 1.0)]);
        cand.packets_delivered += 1;
        let base = outcome("Mesh", &[(0, 16.0)]);
        let d = TraceDiffReport::between(&base, &cand);
        assert!(!d.delivery_matches());
        assert_eq!(d.delivered_delta, 1);
    }

    #[test]
    fn display_renders_missing_sides() {
        let base = outcome("Mesh", &[(0, 16.0)]);
        let cand = outcome("SMART", &[(1, 1.0)]);
        let text = TraceDiffReport::between(&base, &cand).to_string();
        assert!(text.contains("flow    0"), "{text}");
        assert!(text.contains("n/a"), "{text}");
    }
}
