//! Temporal injection models: how a flow's nominal rate is spread over
//! time.
//!
//! The paper's evaluation injects "uniform random" (Bernoulli) traffic;
//! real SoC producers are bursty. [`TemporalModel`] layers an injection
//! process on top of any spatial pattern's per-flow rates:
//!
//! * [`TemporalModel::Steady`] — plain Bernoulli. [`ModulatedTraffic`]
//!   draws exactly one uniform per flow per cycle, so the generated
//!   packet stream is **bit-exact** with
//!   [`smart_sim::BernoulliTraffic`] under the same seed.
//! * [`TemporalModel::OnOff`] — per-flow two-state Markov (on/off)
//!   bursts. The on-state rate is boosted by the reciprocal of the
//!   stationary on-probability, so the long-run offered load still
//!   matches the nominal rate (capped at one packet per cycle).
//! * [`TemporalModel::Ramp`] — a deterministic rate sweep: the rate
//!   multiplier moves linearly from `from` to `to` over `cycles`, then
//!   holds — latency–throughput sweeps in one run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smart_sim::forward::FlowTable;
use smart_sim::topology::{NodeId, Topology};
use smart_sim::{FlowId, Packet, PacketId, TrafficSource};

/// An injection-process modulator layered on per-flow Bernoulli rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemporalModel {
    /// Plain Bernoulli at the nominal rate — today's behavior.
    Steady,
    /// Two-state Markov bursts: each flow flips on→off with probability
    /// `on_to_off` and off→on with probability `off_to_on` per cycle;
    /// while on it injects at `rate / P(on)` (capped at 1), while off
    /// it is silent. Flows start on.
    OnOff {
        /// Per-cycle probability of leaving the on state, in `(0, 1]`.
        on_to_off: f64,
        /// Per-cycle probability of leaving the off state, in `(0, 1]`.
        off_to_on: f64,
    },
    /// Deterministic rate sweep: the rate multiplier moves linearly
    /// from `from` to `to` over `cycles` cycles, then holds at `to`.
    Ramp {
        /// Multiplier at cycle 0.
        from: f64,
        /// Multiplier from `cycles` on.
        to: f64,
        /// Sweep duration in cycles (> 0).
        cycles: u64,
    },
}

impl TemporalModel {
    /// The canonical burst model: mean on-period `1/on_to_off` cycles,
    /// stationary on-probability `off_to_on / (on_to_off + off_to_on)`.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `(0, 1]`.
    #[must_use]
    pub fn on_off(on_to_off: f64, off_to_on: f64) -> Self {
        let m = TemporalModel::OnOff {
            on_to_off,
            off_to_on,
        };
        m.validate();
        m
    }

    /// A linear rate sweep from `from`× to `to`× the nominal rate over
    /// `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if a multiplier is negative or `cycles` is zero.
    #[must_use]
    pub fn ramp(from: f64, to: f64, cycles: u64) -> Self {
        let m = TemporalModel::Ramp { from, to, cycles };
        m.validate();
        m
    }

    /// Check parameter domains.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is outside its documented domain.
    pub fn validate(&self) {
        match self {
            TemporalModel::Steady => {}
            TemporalModel::OnOff {
                on_to_off,
                off_to_on,
            } => {
                assert!(
                    *on_to_off > 0.0 && *on_to_off <= 1.0,
                    "on_to_off {on_to_off} outside (0,1]"
                );
                assert!(
                    *off_to_on > 0.0 && *off_to_on <= 1.0,
                    "off_to_on {off_to_on} outside (0,1]"
                );
            }
            TemporalModel::Ramp { from, to, cycles } => {
                assert!(
                    *from >= 0.0 && *to >= 0.0,
                    "ramp multipliers must be non-negative, got {from}..{to}"
                );
                assert!(*cycles > 0, "ramp needs a nonzero sweep window");
            }
        }
    }

    /// Report-label suffix (empty for [`TemporalModel::Steady`]).
    #[must_use]
    pub fn suffix(&self) -> String {
        match self {
            TemporalModel::Steady => String::new(),
            TemporalModel::OnOff {
                on_to_off,
                off_to_on,
            } => format!("+onoff({on_to_off},{off_to_on})"),
            TemporalModel::Ramp { from, to, cycles } => format!("+ramp({from}..{to}/{cycles})"),
        }
    }

    /// Stationary fraction of cycles a flow spends injecting (1 for
    /// the deterministic models).
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        match self {
            TemporalModel::Steady | TemporalModel::Ramp { .. } => 1.0,
            TemporalModel::OnOff {
                on_to_off,
                off_to_on,
            } => off_to_on / (on_to_off + off_to_on),
        }
    }
}

/// Per-flow state and rate for [`ModulatedTraffic`].
#[derive(Debug, Clone)]
struct FlowState {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    rate: f64,
    on: bool,
}

/// A [`TrafficSource`] driving per-flow Bernoulli injection through a
/// [`TemporalModel`]. With [`TemporalModel::Steady`] the packet stream
/// is bit-exact with [`smart_sim::BernoulliTraffic`] under the same
/// seed (one uniform draw per flow per cycle, flows in rate order).
#[derive(Debug, Clone)]
pub struct ModulatedTraffic {
    model: TemporalModel,
    flows: Vec<FlowState>,
    flits_per_packet: u8,
    rng: StdRng,
    next_id: u64,
}

impl ModulatedTraffic {
    /// Build from `(flow, packets_per_cycle)` nominal rates; sources
    /// and destinations are read from the flow table's routes.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`, any flow is unknown, or
    /// a model parameter is outside its domain.
    #[must_use]
    pub fn new(
        model: TemporalModel,
        rates: &[(FlowId, f64)],
        flows: &FlowTable,
        topo: impl Into<Topology>,
        flits_per_packet: u8,
        seed: u64,
    ) -> Self {
        model.validate();
        let topo = topo.into();
        let specs = rates
            .iter()
            .map(|(flow, rate)| {
                assert!(
                    (0.0..=1.0).contains(rate),
                    "{flow}: injection rate {rate} outside [0,1]"
                );
                let plan = flows.plan(*flow);
                FlowState {
                    flow: *flow,
                    src: plan.route.source(),
                    dst: plan.route.destination(topo),
                    rate: *rate,
                    on: true,
                }
            })
            .collect();
        ModulatedTraffic {
            model,
            flows: specs,
            flits_per_packet,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Long-run offered load in flits per cycle across all flows,
    /// accounting for the one-packet-per-cycle cap: an on/off flow can
    /// deliver at most its duty cycle (the boosted on-rate clips at 1),
    /// and a ramp holds at `min(rate × to, 1)` once the sweep ends.
    #[must_use]
    pub fn offered_flits_per_cycle(&self) -> f64 {
        let effective = |rate: f64| match self.model {
            TemporalModel::Steady => rate,
            TemporalModel::OnOff { .. } => rate.min(self.model.duty_cycle()),
            TemporalModel::Ramp { to, .. } => (rate * to).min(1.0),
        };
        self.flows
            .iter()
            .map(|f| effective(f.rate) * f64::from(self.flits_per_packet))
            .sum()
    }
}

impl TrafficSource for ModulatedTraffic {
    fn generate(&mut self, cycle: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        for f in &mut self.flows {
            let rate = match self.model {
                TemporalModel::Steady => f.rate,
                TemporalModel::OnOff {
                    on_to_off,
                    off_to_on,
                } => {
                    // One transition draw per flow per cycle keeps the
                    // stream deterministic regardless of outcomes.
                    let u = self.rng.gen::<f64>();
                    if f.on {
                        if u < on_to_off {
                            f.on = false;
                        }
                    } else if u < off_to_on {
                        f.on = true;
                    }
                    if f.on {
                        let duty = off_to_on / (on_to_off + off_to_on);
                        (f.rate / duty).min(1.0)
                    } else {
                        0.0
                    }
                }
                TemporalModel::Ramp { from, to, cycles } => {
                    let t = (cycle.min(cycles)) as f64 / cycles as f64;
                    (f.rate * (from + (to - from) * t)).min(1.0)
                }
            };
            if self.rng.gen::<f64>() < rate {
                out.push(Packet {
                    id: PacketId(self.next_id),
                    flow: f.flow,
                    src: f.src,
                    dst: f.dst,
                    gen_cycle: cycle,
                    num_flits: self.flits_per_packet,
                });
                self.next_id += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_sim::route::SourceRoute;
    use smart_sim::BernoulliTraffic;

    fn table() -> (FlowTable, smart_sim::Mesh) {
        let mesh = smart_sim::Mesh::paper_4x4();
        let routes = vec![
            (
                FlowId(0),
                SourceRoute::xy(mesh, NodeId(0), NodeId(3)).unwrap(),
            ),
            (
                FlowId(1),
                SourceRoute::xy(mesh, NodeId(12), NodeId(15)).unwrap(),
            ),
        ];
        (FlowTable::mesh_baseline(mesh, &routes), mesh)
    }

    #[test]
    fn steady_is_bit_exact_with_bernoulli() {
        let (flows, mesh) = table();
        let rates = [(FlowId(0), 0.3), (FlowId(1), 0.1)];
        let mut a = ModulatedTraffic::new(TemporalModel::Steady, &rates, &flows, mesh, 8, 7);
        let mut b = BernoulliTraffic::new(&rates, &flows, mesh, 8, 7);
        for c in 0..5_000 {
            assert_eq!(a.generate(c), b.generate(c), "cycle {c}");
        }
    }

    #[test]
    fn on_off_meets_the_nominal_rate_in_the_long_run() {
        let (flows, mesh) = table();
        let model = TemporalModel::on_off(0.02, 0.05);
        let mut t = ModulatedTraffic::new(model, &[(FlowId(0), 0.1)], &flows, mesh, 8, 42);
        let mut count = 0usize;
        let n = 200_000;
        for c in 0..n {
            count += t.generate(c).len();
        }
        let rate = count as f64 / n as f64;
        assert!(
            (rate - 0.1).abs() < 0.01,
            "long-run rate {rate}, expected ~0.1"
        );
    }

    #[test]
    fn on_off_actually_bursts() {
        let (flows, mesh) = table();
        // Long on/off periods: ~500 cycles each.
        let model = TemporalModel::on_off(0.002, 0.002);
        let mut t = ModulatedTraffic::new(model, &[(FlowId(0), 0.2)], &flows, mesh, 8, 3);
        // Count injections per 1 000-cycle window; bursty traffic has
        // near-empty and near-double windows.
        let mut windows = Vec::new();
        for w in 0..40 {
            let mut k = 0;
            for c in 0..1_000 {
                k += t.generate(w * 1_000 + c).len();
            }
            windows.push(k);
        }
        let min = *windows.iter().min().expect("nonempty");
        let max = *windows.iter().max().expect("nonempty");
        assert!(
            min < 100 && max > 300,
            "windows should swing around the 200 mean: min {min}, max {max}"
        );
    }

    #[test]
    fn ramp_sweeps_the_rate() {
        let (flows, mesh) = table();
        let model = TemporalModel::ramp(0.0, 1.0, 50_000);
        let mut t = ModulatedTraffic::new(model, &[(FlowId(0), 0.2)], &flows, mesh, 8, 9);
        let mut early = 0usize;
        let mut late = 0usize;
        for c in 0..10_000 {
            early += t.generate(c).len();
        }
        for c in 40_000..50_000 {
            late += t.generate(c).len();
        }
        // First tenth averages 0.1x nominal, last tenth 0.9x.
        assert!(late > 5 * early, "ramp should grow: {early} -> {late}");
    }

    #[test]
    fn duty_cycle_matches_stationary_distribution() {
        assert!((TemporalModel::Steady.duty_cycle() - 1.0).abs() < 1e-12);
        let m = TemporalModel::on_off(0.02, 0.06);
        assert!((m.duty_cycle() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn offered_load_honors_the_on_rate_cap() {
        // duty 0.1: a 0.3 nominal rate clips at one packet per on-cycle,
        // so the real long-run offer is 0.1 packets = 0.8 flits/cycle.
        let (flows, mesh) = table();
        let model = TemporalModel::on_off(0.09, 0.01);
        let t = ModulatedTraffic::new(model, &[(FlowId(0), 0.3)], &flows, mesh, 8, 0);
        assert!((t.offered_flits_per_cycle() - 0.8).abs() < 1e-12);
        // Uncapped flows still offer their nominal rate.
        let t = ModulatedTraffic::new(model, &[(FlowId(0), 0.05)], &flows, mesh, 8, 0);
        assert!((t.offered_flits_per_cycle() - 0.4).abs() < 1e-12);
        // A ramp holding at 2x a 0.6 rate clips at 1 packet/cycle.
        let ramp = TemporalModel::ramp(0.0, 2.0, 100);
        let t = ModulatedTraffic::new(ramp, &[(FlowId(0), 0.6)], &flows, mesh, 8, 0);
        assert!((t.offered_flits_per_cycle() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let (flows, mesh) = table();
        let model = TemporalModel::on_off(0.1, 0.1);
        let rates = [(FlowId(0), 0.2), (FlowId(1), 0.05)];
        let mut a = ModulatedTraffic::new(model, &rates, &flows, mesh, 8, 11);
        let mut b = ModulatedTraffic::new(model, &rates, &flows, mesh, 8, 11);
        for c in 0..2_000 {
            assert_eq!(a.generate(c), b.generate(c));
        }
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn silly_transition_probability_rejected() {
        let _ = TemporalModel::on_off(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "nonzero sweep")]
    fn zero_ramp_window_rejected() {
        let _ = TemporalModel::ramp(0.0, 1.0, 0);
    }
}
