//! Spatial traffic patterns: flow sets over a mesh.
//!
//! The classic synthetic patterns (Dally & Towles, the paper's baseline
//! reference \[11\]) stress different aspects of a topology: permutation
//! patterns like transpose and bit-complement maximize path diversity
//! pressure, tornado defeats minimal adaptive routing, neighbor rewards
//! locality, and hotspot models shared-resource convergecast. SMART's
//! wins depend on exactly this spatial structure — long straight flows
//! bypass whole stretches in one cycle, while convergecast flows stop —
//! so every pattern here emits the `(FlowId, SourceRoute)` + per-flow
//! weight wiring the Experiment API consumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smart_sim::route::SourceRoute;
use smart_sim::topology::{Coord, NodeId, Topology};
use smart_sim::FlowId;

/// A pattern routed onto a mesh: XY `(FlowId, SourceRoute)` routes plus
/// per-flow `(FlowId, rate)` injection rates, both in flow-id order —
/// exactly the pair the Experiment API consumes.
pub type RoutedPattern = (Vec<(FlowId, SourceRoute)>, Vec<(FlowId, f64)>);

/// One pattern-induced flow: a source/destination pair plus the share
/// of the source's injection budget it carries (permutation patterns
/// use weight 1; hotspot splits each source's budget across targets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternFlow {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Fraction of the source's injection rate carried by this flow.
    pub weight: f64,
}

/// A synthetic communication pattern over the mesh nodes.
///
/// Permutation patterns map every node to at most one destination (the
/// [`SpatialPattern::destination`] function); [`SpatialPattern::Uniform`]
/// and [`SpatialPattern::Hotspot`] induce richer flow sets. Self-pairs
/// are always dropped.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialPattern {
    /// `flows` uniform-random (src, dst) pairs; pair choice is a pure
    /// function of `seed`.
    Uniform {
        /// Number of random flows.
        flows: usize,
        /// RNG seed for the pair choice.
        seed: u64,
    },
    /// `(x, y)` sends to `(y, x)` (square meshes only) — self-inverse.
    Transpose,
    /// Node `i` sends to `!i` over the index bits (`N-1-i`) —
    /// self-inverse on any power-of-two node count.
    BitComplement,
    /// Node `i` sends to the bit-reversal of `i` — self-inverse on any
    /// power-of-two node count.
    BitReverse,
    /// Perfect shuffle: node `i` sends to `rotl1(i)` over the index
    /// bits — a bijection on any power-of-two node count.
    Shuffle,
    /// `(x, y)` sends to `((x + ⌈W/2⌉ - 1) mod W, y)` — the adversarial
    /// half-ring rotation.
    Tornado,
    /// `(x, y)` sends to `((x + 1) mod W, y)` — nearest-neighbor
    /// locality.
    Neighbor,
    /// Every other node sends to every target; each source spends
    /// `weight` of its injection budget on the hotspots (split evenly)
    /// and the remaining `1 - weight` uniformly over the rest of the
    /// mesh.
    Hotspot {
        /// The congested destinations.
        targets: Vec<NodeId>,
        /// Fraction of each source's budget aimed at the targets,
        /// in `[0, 1]`.
        weight: f64,
    },
    /// Like [`SpatialPattern::Hotspot`], but each source's background
    /// budget lands on `background` seeded-sampled destinations instead
    /// of every other node: the flow set is `O(N · (targets +
    /// background))` where the full hotspot's is `O(N²)`, which keeps
    /// large-mesh sweeps tractable while preserving the per-source
    /// budget exactly.
    HotspotSampled {
        /// The congested destinations.
        targets: Vec<NodeId>,
        /// Fraction of each source's budget aimed at the targets,
        /// in `[0, 1]`.
        weight: f64,
        /// Distinct background destinations sampled per source; clamped
        /// to the available non-target, non-self nodes.
        background: usize,
        /// RNG seed: the sampled flow set is a pure function of
        /// `(mesh, targets, weight, background, seed)`.
        seed: u64,
    },
}

impl SpatialPattern {
    /// A hotspot pattern converging on `targets` with `weight` of every
    /// source's budget.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `weight` is outside `[0, 1]`.
    #[must_use]
    pub fn hotspot(targets: Vec<NodeId>, weight: f64) -> Self {
        assert!(!targets.is_empty(), "hotspot needs at least one target");
        assert!(
            (0.0..=1.0).contains(&weight),
            "hotspot weight {weight} outside [0,1]"
        );
        SpatialPattern::Hotspot { targets, weight }
    }

    /// A sampled-background hotspot: `weight` of every source's budget
    /// converges on `targets`, the rest spreads over `background`
    /// seeded-sampled destinations per source.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `weight` is outside `[0, 1]`.
    #[must_use]
    pub fn hotspot_sampled(
        targets: Vec<NodeId>,
        weight: f64,
        background: usize,
        seed: u64,
    ) -> Self {
        assert!(!targets.is_empty(), "hotspot needs at least one target");
        assert!(
            (0.0..=1.0).contains(&weight),
            "hotspot weight {weight} outside [0,1]"
        );
        SpatialPattern::HotspotSampled {
            targets,
            weight,
            background,
            seed,
        }
    }

    /// The canonical pattern battery for matrix sweeps: the six
    /// structured patterns plus a single-target center hotspot — every
    /// entry valid on any square power-of-two mesh.
    #[must_use]
    pub fn battery(topo: impl Into<Topology>) -> Vec<SpatialPattern> {
        let mesh = topo.into();
        let center = mesh.node_at(Coord {
            x: mesh.width() / 2,
            y: mesh.height() / 2,
        });
        vec![
            SpatialPattern::Transpose,
            SpatialPattern::BitComplement,
            SpatialPattern::BitReverse,
            SpatialPattern::Shuffle,
            SpatialPattern::Tornado,
            SpatialPattern::Neighbor,
            SpatialPattern::hotspot(vec![center], 0.8),
        ]
    }

    /// Short name for reports (`transpose`, `hotspot1@0.8`, …).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SpatialPattern::Uniform { flows, .. } => format!("uniform{flows}"),
            SpatialPattern::Transpose => "transpose".to_owned(),
            SpatialPattern::BitComplement => "bit-complement".to_owned(),
            SpatialPattern::BitReverse => "bit-reverse".to_owned(),
            SpatialPattern::Shuffle => "shuffle".to_owned(),
            SpatialPattern::Tornado => "tornado".to_owned(),
            SpatialPattern::Neighbor => "neighbor".to_owned(),
            SpatialPattern::Hotspot { targets, weight } => {
                format!("hotspot{}@{weight}", targets.len())
            }
            SpatialPattern::HotspotSampled {
                targets,
                weight,
                background,
                ..
            } => format!("hotspot{}@{weight}~{background}", targets.len()),
        }
    }

    /// The destination a permutation pattern maps `node` to (before
    /// self-pair dropping), or `None` for the non-permutation patterns
    /// ([`SpatialPattern::Uniform`], [`SpatialPattern::Hotspot`]).
    ///
    /// # Panics
    ///
    /// Panics if the pattern's structural requirement fails: transpose
    /// needs a square mesh; the bit patterns need a power-of-two node
    /// count.
    #[must_use]
    pub fn destination(&self, topo: impl Into<Topology>, node: NodeId) -> Option<NodeId> {
        let mesh = topo.into();
        let c = mesh.coord(node);
        match self {
            SpatialPattern::Uniform { .. }
            | SpatialPattern::Hotspot { .. }
            | SpatialPattern::HotspotSampled { .. } => None,
            SpatialPattern::Transpose => {
                assert_eq!(
                    mesh.width(),
                    mesh.height(),
                    "transpose needs a square mesh, got {}x{}",
                    mesh.width(),
                    mesh.height()
                );
                Some(mesh.node_at(Coord { x: c.y, y: c.x }))
            }
            SpatialPattern::BitComplement => {
                // Structural check only: N-1-i is the bit complement
                // exactly when N is a power of two.
                let _ = index_bits(mesh);
                Some(NodeId(mesh.len() as u16 - 1 - node.0))
            }
            SpatialPattern::BitReverse => {
                let b = index_bits(mesh);
                let mut x = u32::from(node.0);
                let mut r = 0u32;
                for _ in 0..b {
                    r = (r << 1) | (x & 1);
                    x >>= 1;
                }
                Some(NodeId(r as u16))
            }
            SpatialPattern::Shuffle => {
                let b = index_bits(mesh);
                let n = mesh.len() as u32;
                let i = u32::from(node.0);
                Some(NodeId(((i << 1 | i >> (b - 1)) & (n - 1)) as u16))
            }
            SpatialPattern::Tornado => {
                let w = mesh.width();
                let shift = w.div_ceil(2) - 1;
                Some(mesh.node_at(Coord {
                    x: (c.x + shift) % w,
                    y: c.y,
                }))
            }
            SpatialPattern::Neighbor => Some(mesh.node_at(Coord {
                x: (c.x + 1) % mesh.width(),
                y: c.y,
            })),
        }
    }

    /// The flow set this pattern induces on `mesh` (self-pairs are
    /// dropped; weights of one source's surviving flows sum to at most
    /// 1, exactly 1 when no pair was dropped).
    ///
    /// # Panics
    ///
    /// Panics if the pattern's structural requirement fails (see
    /// [`SpatialPattern::destination`]) or a hotspot target is off-mesh.
    #[must_use]
    pub fn flows(&self, topo: impl Into<Topology>) -> Vec<PatternFlow> {
        let mesh = topo.into();
        let mut out = Vec::new();
        match self {
            SpatialPattern::Uniform { flows, seed } => {
                let n = mesh.len() as u16;
                assert!(n > 1, "uniform needs at least two nodes");
                let mut rng = StdRng::seed_from_u64(*seed);
                for _ in 0..*flows {
                    let src = NodeId(rng.gen_range(0..n));
                    let dst = loop {
                        let d = NodeId(rng.gen_range(0..n));
                        if d != src {
                            break d;
                        }
                    };
                    out.push(PatternFlow {
                        src,
                        dst,
                        weight: 1.0,
                    });
                }
            }
            SpatialPattern::Hotspot { targets, weight } => {
                assert!(!targets.is_empty(), "hotspot needs at least one target");
                assert!(
                    (0.0..=1.0).contains(weight),
                    "hotspot weight {weight} outside [0,1]"
                );
                for t in targets {
                    assert!(
                        (t.0 as usize) < mesh.len(),
                        "hotspot target {t} outside the mesh"
                    );
                }
                let background: Vec<NodeId> =
                    mesh.nodes().filter(|n| !targets.contains(n)).collect();
                for src in mesh.nodes() {
                    let others: Vec<NodeId> =
                        background.iter().copied().filter(|d| *d != src).collect();
                    // With no background destination left (every other
                    // node is a target), the hotspot flows absorb the
                    // whole budget instead of silently dropping it.
                    let hot_share = if others.is_empty() { 1.0 } else { *weight };
                    let per_target = hot_share / targets.len() as f64;
                    if per_target > 0.0 {
                        for t in targets {
                            if src != *t {
                                out.push(PatternFlow {
                                    src,
                                    dst: *t,
                                    weight: per_target,
                                });
                            }
                        }
                    }
                    if *weight < 1.0 && !others.is_empty() {
                        let per_other = (1.0 - weight) / others.len() as f64;
                        for d in others {
                            out.push(PatternFlow {
                                src,
                                dst: d,
                                weight: per_other,
                            });
                        }
                    }
                }
            }
            SpatialPattern::HotspotSampled {
                targets,
                weight,
                background,
                seed,
            } => {
                assert!(!targets.is_empty(), "hotspot needs at least one target");
                assert!(
                    (0.0..=1.0).contains(weight),
                    "hotspot weight {weight} outside [0,1]"
                );
                for t in targets {
                    assert!(
                        (t.0 as usize) < mesh.len(),
                        "hotspot target {t} outside the mesh"
                    );
                }
                // Candidate background destinations, shared by every
                // source (each source additionally excludes itself when
                // drawing).
                let pool: Vec<NodeId> = mesh.nodes().filter(|n| !targets.contains(n)).collect();
                for src in mesh.nodes() {
                    // Each source draws from its own stream keyed on
                    // (seed, src): its picks are a pure function of the
                    // pair, never of how many draws earlier sources
                    // consumed (rejection sampling makes that count
                    // data-dependent).
                    let mut rng = StdRng::seed_from_u64(per_source_seed(*seed, src));
                    let avail = pool.len() - usize::from(!targets.contains(&src));
                    let k = (*background).min(avail);
                    // With no background destination drawable, the
                    // hotspot flows absorb the whole budget instead of
                    // silently dropping it (same rule as `Hotspot`).
                    let hot_share = if k == 0 { 1.0 } else { *weight };
                    let per_target = hot_share / targets.len() as f64;
                    if per_target > 0.0 {
                        for t in targets {
                            if src != *t {
                                out.push(PatternFlow {
                                    src,
                                    dst: *t,
                                    weight: per_target,
                                });
                            }
                        }
                    }
                    if *weight < 1.0 && k > 0 {
                        let per_dst = (1.0 - weight) / k as f64;
                        // Rejection-sample k distinct non-self pool
                        // nodes; k is small by construction, so the
                        // linear dedup scan stays cheap.
                        let mut picked: Vec<NodeId> = Vec::with_capacity(k);
                        while picked.len() < k {
                            let d = pool[rng.gen_range(0..pool.len())];
                            if d != src && !picked.contains(&d) {
                                out.push(PatternFlow {
                                    src,
                                    dst: d,
                                    weight: per_dst,
                                });
                                picked.push(d);
                            }
                        }
                    }
                }
            }
            _ => {
                for src in mesh.nodes() {
                    let dst = self
                        .destination(mesh, src)
                        .expect("permutation patterns map every node");
                    if src != dst {
                        out.push(PatternFlow {
                            src,
                            dst,
                            weight: 1.0,
                        });
                    }
                }
            }
        }
        out
    }

    /// Route the pattern's flows onto `mesh` with XY source routing:
    /// flow `i` (in [`SpatialPattern::flows`] order) becomes
    /// `FlowId(i)`, injected at `rate * weight` packets per cycle —
    /// exactly the `(routes, rates)` pair the Experiment API consumes.
    ///
    /// # Panics
    ///
    /// Panics if the pattern induces no flows on `mesh` or a structural
    /// requirement fails.
    #[must_use]
    pub fn routed(&self, topo: impl Into<Topology>, rate: f64) -> RoutedPattern {
        let mesh = topo.into();
        let flows = self.flows(mesh);
        assert!(
            !flows.is_empty(),
            "pattern {} induces no flows on a {}x{} mesh",
            self.label(),
            mesh.width(),
            mesh.height()
        );
        let routes: Vec<(FlowId, SourceRoute)> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let route = SourceRoute::xy(mesh, f.src, f.dst).unwrap_or_else(|e| {
                    panic!("pattern {} produced a self-flow: {e}", self.label())
                });
                (FlowId(i as u32), route)
            })
            .collect();
        let rates = flows
            .iter()
            .enumerate()
            .map(|(i, f)| (FlowId(i as u32), rate * f.weight))
            .collect();
        (routes, rates)
    }
}

/// The RNG seed of one source's background draw: a SplitMix64-style mix
/// of the pattern seed and the node index. Keying the stream on the
/// pair makes every source's sample independent of iteration order and
/// of every other source's draw count.
fn per_source_seed(seed: u64, src: NodeId) -> u64 {
    let mut z = seed ^ u64::from(src.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of index bits of a power-of-two mesh.
///
/// # Panics
///
/// Panics if the node count is not a power of two.
fn index_bits(mesh: Topology) -> u32 {
    let n = mesh.len();
    assert!(
        n.is_power_of_two() && n > 1,
        "bit patterns need a power-of-two node count, got {n}"
    );
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_sim::Mesh;

    fn mesh() -> smart_sim::Mesh {
        smart_sim::Mesh::paper_4x4()
    }

    #[test]
    fn transpose_swaps_coordinates() {
        // Node 1 = (1,0) -> (0,1) = node 4.
        assert_eq!(
            SpatialPattern::Transpose.destination(mesh(), NodeId(1)),
            Some(NodeId(4))
        );
        // Diagonal nodes map to themselves and drop out of the flow set.
        assert_eq!(SpatialPattern::Transpose.flows(mesh()).len(), 12);
    }

    #[test]
    fn bit_patterns_match_hand_calculation() {
        // 16 nodes, 4 bits: 0b0001 -> complement 0b1110 = 14,
        // reverse 0b1000 = 8, shuffle 0b0010 = 2.
        assert_eq!(
            SpatialPattern::BitComplement.destination(mesh(), NodeId(1)),
            Some(NodeId(14))
        );
        assert_eq!(
            SpatialPattern::BitReverse.destination(mesh(), NodeId(1)),
            Some(NodeId(8))
        );
        assert_eq!(
            SpatialPattern::Shuffle.destination(mesh(), NodeId(1)),
            Some(NodeId(2))
        );
        // Shuffle wraps the top bit: 0b1000 -> 0b0001.
        assert_eq!(
            SpatialPattern::Shuffle.destination(mesh(), NodeId(8)),
            Some(NodeId(1))
        );
    }

    #[test]
    fn tornado_rotates_half_the_row() {
        // W=4: shift ceil(4/2)-1 = 1.
        assert_eq!(
            SpatialPattern::Tornado.destination(mesh(), NodeId(3)),
            Some(NodeId(0))
        );
        // W=8: shift 3.
        let m8 = Mesh::new(8, 8);
        assert_eq!(
            SpatialPattern::Tornado.destination(m8, NodeId(0)),
            Some(NodeId(3))
        );
        // Every node participates (no self-pairs when shift > 0).
        assert_eq!(SpatialPattern::Tornado.flows(mesh()).len(), 16);
    }

    #[test]
    fn neighbor_stays_in_row() {
        let flows = SpatialPattern::Neighbor.flows(mesh());
        assert_eq!(flows.len(), 16);
        for f in flows {
            assert_eq!(mesh().coord(f.src).y, mesh().coord(f.dst).y);
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn hotspot_splits_the_budget() {
        let p = SpatialPattern::hotspot(vec![NodeId(5), NodeId(10)], 0.6);
        let flows = p.flows(mesh());
        // Source 0: 2 hotspot flows at 0.3 each + 13 background flows
        // sharing 0.4.
        let from0: Vec<&PatternFlow> = flows.iter().filter(|f| f.src == NodeId(0)).collect();
        assert_eq!(from0.len(), 15);
        let total: f64 = from0.iter().map(|f| f.weight).sum();
        assert!((total - 1.0).abs() < 1e-12, "weights sum to {total}");
        let hot: f64 = from0
            .iter()
            .filter(|f| f.dst == NodeId(5) || f.dst == NodeId(10))
            .map(|f| f.weight)
            .sum();
        assert!((hot - 0.6).abs() < 1e-12);
    }

    #[test]
    fn hotspot_without_background_keeps_the_full_budget() {
        // 2x2 mesh, 3 of 4 nodes are targets: the lone background node
        // has no background destination, so its whole budget goes to
        // the hotspots instead of being silently dropped.
        let m = Mesh::new(2, 2);
        let p = SpatialPattern::hotspot(vec![NodeId(0), NodeId(1), NodeId(2)], 0.5);
        let flows = p.flows(m);
        let from3: f64 = flows
            .iter()
            .filter(|f| f.src == NodeId(3))
            .map(|f| f.weight)
            .sum();
        assert!((from3 - 1.0).abs() < 1e-12, "budget lost: {from3}");
        assert!(flows.iter().all(|f| f.weight.is_finite()));
    }

    #[test]
    fn pure_hotspot_has_only_target_flows() {
        let p = SpatialPattern::hotspot(vec![NodeId(0)], 1.0);
        let flows = p.flows(mesh());
        assert_eq!(flows.len(), 15);
        assert!(flows.iter().all(|f| f.dst == NodeId(0)));
    }

    #[test]
    fn sampled_hotspot_keeps_the_budget_with_few_flows() {
        // 32x32: the full hotspot would emit ~1M background flows; the
        // sampled variant stays linear in the mesh size.
        let m = Mesh::new(32, 32);
        let targets = vec![NodeId(100), NodeId(200)];
        let p = SpatialPattern::hotspot_sampled(targets.clone(), 0.6, 8, 7);
        let flows = p.flows(m);
        assert!(flows.len() <= m.len() * (targets.len() + 8));
        for src in m.nodes() {
            let mine: Vec<&PatternFlow> = flows.iter().filter(|f| f.src == src).collect();
            let total: f64 = mine.iter().map(|f| f.weight).sum();
            if targets.contains(&src) {
                assert!(total <= 1.0 + 1e-9, "{src}: {total}");
            } else {
                assert!((total - 1.0).abs() < 1e-9, "{src}: {total}");
            }
            // Background picks are distinct, non-self, non-target.
            let bg: Vec<NodeId> = mine
                .iter()
                .filter(|f| !targets.contains(&f.dst))
                .map(|f| f.dst)
                .collect();
            assert_eq!(bg.len(), 8);
            for (i, d) in bg.iter().enumerate() {
                assert_ne!(*d, src);
                assert!(!bg[..i].contains(d), "{src} sampled {d} twice");
            }
        }
    }

    #[test]
    fn sampled_hotspot_is_deterministic_per_seed() {
        let m = Mesh::new(8, 8);
        let p = |seed| SpatialPattern::hotspot_sampled(vec![NodeId(0)], 0.5, 4, seed);
        assert_eq!(p(1).flows(m), p(1).flows(m));
        assert_ne!(p(1).flows(m), p(2).flows(m));
    }

    #[test]
    fn sampled_hotspot_background_depends_only_on_seed_and_source() {
        // Regression lock: each source's background picks are a pure
        // function of (seed, source). The sampler once threaded one RNG
        // through every source, so a source's picks shifted with how
        // many rejection draws its predecessors consumed; this pins the
        // per-source flow set of a 4x4 / 1-target / k=2 / seed=9 draw.
        let flows = SpatialPattern::hotspot_sampled(vec![NodeId(5)], 0.5, 2, 9).flows(mesh());
        let expected: [(u16, [u16; 2]); 16] = [
            (0, [1, 15]),
            (1, [7, 15]),
            (2, [12, 1]),
            (3, [9, 14]),
            (4, [3, 11]),
            (5, [6, 10]),
            (6, [14, 4]),
            (7, [4, 0]),
            (8, [0, 14]),
            (9, [6, 0]),
            (10, [3, 0]),
            (11, [13, 14]),
            (12, [2, 15]),
            (13, [6, 0]),
            (14, [6, 4]),
            (15, [9, 3]),
        ];
        for (src, picks) in expected {
            let bg: Vec<u16> = flows
                .iter()
                .filter(|f| f.src == NodeId(src) && f.dst != NodeId(5))
                .map(|f| f.dst.0)
                .collect();
            assert_eq!(bg, picks, "source {src}");
        }
        // The mechanism: a late source's picks replay from its own
        // stream, untouched by every draw that came before it.
        let mut rng = StdRng::seed_from_u64(per_source_seed(9, NodeId(15)));
        let pool: Vec<NodeId> = mesh().nodes().filter(|n| *n != NodeId(5)).collect();
        let mut standalone = Vec::new();
        while standalone.len() < 2 {
            let d = pool[rng.gen_range(0..pool.len())];
            if d != NodeId(15) && !standalone.contains(&d.0) {
                standalone.push(d.0);
            }
        }
        assert_eq!(standalone, vec![9, 3]);
    }

    #[test]
    fn sampled_hotspot_clamps_to_available_background() {
        // 2x2 with one target: each source has at most 2 background
        // candidates (3 non-target nodes minus itself).
        let m = Mesh::new(2, 2);
        let p = SpatialPattern::hotspot_sampled(vec![NodeId(0)], 0.5, 10, 3);
        let flows = p.flows(m);
        for src in m.nodes() {
            let total: f64 = flows
                .iter()
                .filter(|f| f.src == src)
                .map(|f| f.weight)
                .sum();
            if src == NodeId(0) {
                assert!(total <= 1.0 + 1e-12);
            } else {
                assert!((total - 1.0).abs() < 1e-12, "{src}: {total}");
            }
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = SpatialPattern::Uniform { flows: 8, seed: 1 }.flows(mesh());
        let b = SpatialPattern::Uniform { flows: 8, seed: 1 }.flows(mesh());
        let c = SpatialPattern::Uniform { flows: 8, seed: 2 }.flows(mesh());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn routed_weights_scale_the_rate() {
        let p = SpatialPattern::hotspot(vec![NodeId(5)], 1.0);
        let (routes, rates) = p.routed(mesh(), 0.04);
        assert_eq!(routes.len(), rates.len());
        assert!(rates.iter().all(|(_, r)| (*r - 0.04).abs() < 1e-12));
        let (routes, rates) = SpatialPattern::Transpose.routed(mesh(), 0.02);
        assert_eq!(routes.len(), 12);
        assert!(rates.iter().all(|(_, r)| (*r - 0.02).abs() < 1e-12));
    }

    #[test]
    fn battery_is_at_least_six_patterns() {
        let b = SpatialPattern::battery(mesh());
        assert!(b.len() >= 6);
        for p in &b {
            assert!(!p.flows(mesh()).is_empty(), "{}", p.label());
        }
    }

    #[test]
    #[should_panic(expected = "square mesh")]
    fn transpose_rejects_rectangles() {
        let _ = SpatialPattern::Transpose.destination(Mesh::new(4, 2), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bit_reverse_rejects_non_power_of_two() {
        let _ = SpatialPattern::BitReverse.destination(Mesh::new(3, 3), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn silly_hotspot_weight_rejected() {
        let _ = SpatialPattern::hotspot(vec![NodeId(0)], 1.5);
    }
}
