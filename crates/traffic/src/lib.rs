//! # smart-traffic — pluggable traffic generation
//!
//! The paper evaluates SMART under task-graph loads with uniform-random
//! (Bernoulli) injection; reconfigurable-NoC wins, however, depend on
//! the *spatial structure* of the traffic (long straight flows bypass,
//! convergecast flows stop) and on its *temporal shape* (bursts stress
//! the preset buffers). This crate factors traffic generation into
//! three orthogonal, composable layers:
//!
//! * **Spatial** — [`SpatialPattern`]: flow sets over any mesh
//!   (uniform, transpose, bit-complement, bit-reverse, shuffle,
//!   tornado, neighbor, hotspot), each emitting the
//!   `(FlowId, SourceRoute)` routes and per-flow rates the Experiment
//!   API consumes.
//! * **Temporal** — [`TemporalModel`] + [`ModulatedTraffic`]: steady
//!   Bernoulli (bit-exact with `smart_sim::BernoulliTraffic`), on/off
//!   Markov bursts, and deterministic rate ramps, all behind the
//!   engine's `TrafficSource` trait.
//! * **Record/replay** — [`TraceFile`] (versioned JSONL),
//!   [`TraceRecorder`] (capture `(cycle, flow)` injections from any
//!   live source) and [`TraceTraffic`] (deterministic replay through
//!   `ScriptedTraffic`), so any stochastic scenario can be frozen into
//!   a reproducible artifact — and [`TraceDiffReport`] compares one
//!   frozen schedule replayed on two designs (delivered-packet and
//!   per-flow latency deltas isolate the design change).
//!
//! ```
//! use smart_sim::forward::FlowTable;
//! use smart_sim::{Mesh, TrafficSource};
//! use smart_traffic::{ModulatedTraffic, SpatialPattern, TemporalModel};
//!
//! // Transpose pattern, bursty injection, on the paper's 4x4 mesh.
//! let mesh = Mesh::paper_4x4();
//! let (routes, rates) = SpatialPattern::Transpose.routed(mesh, 0.02);
//! let flows = FlowTable::mesh_baseline(mesh, &routes);
//! let mut source = ModulatedTraffic::new(
//!     TemporalModel::on_off(0.01, 0.01),
//!     &rates,
//!     &flows,
//!     mesh,
//!     8,
//!     0xC0FFEE,
//! );
//! let packets: usize = (0..1_000).map(|c| source.generate(c).len()).sum();
//! assert!(packets > 0);
//! ```
#![warn(missing_docs)]

pub mod spatial;
pub mod temporal;
pub mod tracediff;
pub mod tracefile;

pub use spatial::{PatternFlow, SpatialPattern};
pub use temporal::{ModulatedTraffic, TemporalModel};
pub use tracediff::{FlowDelta, PhaseOutcome, TraceDiffReport};
pub use tracefile::{TraceFile, TraceParseError, TraceRecorder, TraceTraffic, TRACE_SCHEMA};
