//! Criterion benchmarks: simulation throughput of the three designs and
//! the cost of the tool-flow stages (mapping, preset compilation, RTL
//! generation, link-model evaluation).
//!
//! These measure the *reproduction's* performance, complementing the
//! `src/bin/` binaries that regenerate the paper's tables and figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smart_bench::{Experiment, RunPlan, Workload};
use smart_core::compile::compile;
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_link::transient::{simulate, ChainSpec, TransientConfig};
use smart_link::units::Gbps;
use smart_link::wire::{Spacing, WireRc};
use smart_link::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};
use smart_mapping::MappedApp;

/// Cycles simulated per iteration in the design benches.
const CYCLES: u64 = 5_000;

fn bench_designs(c: &mut Criterion) {
    let cfg = NocConfig::paper_4x4();
    let graph = smart_taskgraph::apps::vopd();
    let mapped = MappedApp::from_graph(&cfg, &graph);
    let mut group = c.benchmark_group("simulate_vopd");
    group.throughput(Throughput::Elements(CYCLES));
    for kind in DesignKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let experiment = Experiment::new(cfg.clone())
                    .design(kind)
                    .workload(Workload::from(&mapped))
                    .plan(RunPlan {
                        warmup: 0,
                        measure: CYCLES,
                        drain: 0,
                        seed: 1,
                    });
                b.iter(|| experiment.run().measured_packets);
            },
        );
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let cfg = NocConfig::paper_4x4();
    let mut group = c.benchmark_group("toolflow");
    group.bench_function("nmap_place_and_route_vopd", |b| {
        let graph = smart_taskgraph::apps::vopd();
        b.iter(|| MappedApp::from_graph(&cfg, &graph).routes.len());
    });
    group.bench_function("preset_compile_suite", |b| {
        let mapped: Vec<_> = smart_taskgraph::apps::all()
            .iter()
            .map(|g| MappedApp::from_graph(&cfg, g))
            .collect();
        b.iter(|| {
            mapped
                .iter()
                .map(|m| compile(cfg.topology, cfg.hpc_max, &m.routes).avg_stops())
                .sum::<f64>()
        });
    });
    group.bench_function("rtl_generate_4x4", |b| {
        let p = smart_rtlgen::GenParams::paper_4x4();
        b.iter(|| {
            smart_rtlgen::generate_all(&p)
                .iter()
                .map(|m| m.source.len())
                .sum::<usize>()
        });
    });
    group.finish();
}

fn bench_link_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_models");
    group.bench_function("calibrated_sweep", |b| {
        let m = CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Resized2GHz,
            WireSpacing::Double,
        );
        b.iter(|| {
            let mut acc = 0.0;
            for r in 1..=30 {
                let rate = Gbps(r as f64 / 10.0 + 0.5);
                acc += m.energy_fj_per_bit_mm(rate)
                    + f64::from(m.max_hops_per_cycle(rate))
                    + m.ber(rate);
            }
            acc
        });
    });
    group.bench_function("transient_4mm_2gbps", |b| {
        let spec = ChainSpec {
            repeater: smart_link::device::Repeater::VoltageLocked(
                smart_link::device::VlrParams::default_45nm(),
            ),
            wire: WireRc::for_45nm(Spacing::MinPitch),
            hops: 4,
            sections_per_mm: 4,
        };
        let mut cfg = TransientConfig::at_rate(Gbps(2.0));
        cfg.bits = 16;
        cfg.warmup_bits = 4;
        b.iter(|| simulate(&spec, &cfg).delay_ps_per_mm);
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_designs, bench_mapping, bench_link_models
}
criterion_main!(benches);
