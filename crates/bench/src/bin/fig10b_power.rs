//! Regenerates **Fig 10b**: post-layout dynamic power breakdown (Buffer
//! / Allocator / Xbar(flit+credit)+Pipeline / Link) for the eight
//! applications on Mesh, SMART and Dedicated.
//!
//! ```text
//! cargo run --release -p smart-bench --bin fig10b_power
//! ```
//!
//! Pass `--quick` for a shorter run.

use smart_bench::{run_suite, RunPlan};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_power::PowerBreakdown;
use std::collections::BTreeMap;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let plan = if quick {
        RunPlan::quick()
    } else {
        RunPlan::default()
    };
    let cfg = NocConfig::paper_4x4();
    let results = run_suite(&cfg, &plan);

    println!("Fig 10b: power breakdown (W)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "app", "design", "Buffer", "Allocator", "Xbar+Pipe", "Link", "Total"
    );
    let mut totals: BTreeMap<(String, DesignKind), PowerBreakdown> = BTreeMap::new();
    for r in &results {
        let p = r.power.expect("run_suite attaches the power model");
        println!(
            "{:<10} {:>10} {:>10.2e} {:>10.2e} {:>12.2e} {:>10.2e} {:>10.2e}",
            r.workload,
            r.design.label(),
            p.buffer_w,
            p.allocator_w,
            p.xbar_pipeline_w,
            p.link_w,
            p.total_w()
        );
        totals.insert((r.workload.clone(), r.design), p);
    }

    // Headline ratios.
    let apps: Vec<String> = totals
        .keys()
        .map(|(a, _)| a.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut ratios = Vec::new();
    let mut link_dev = Vec::new();
    for app in &apps {
        let mesh = totals[&(app.clone(), DesignKind::Mesh)];
        let smart = totals[&(app.clone(), DesignKind::Smart)];
        let ded = totals[&(app.clone(), DesignKind::Dedicated)];
        ratios.push(mesh.total_w() / smart.total_w());
        link_dev.push((mesh.link_w - ded.link_w).abs() / mesh.link_w);
    }
    let mean_ratio: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max_link_dev = link_dev.iter().cloned().fold(0.0f64, f64::max);
    println!();
    println!("Headline comparisons (paper in parentheses):");
    println!("  Mesh / SMART power ratio (mean) : {mean_ratio:.2}x  (2.2x)");
    println!(
        "  Link power across designs        : within {:.1}% per app  (\"similar link power\")",
        max_link_dev * 100.0
    );
    println!("  Dedicated                        : link power only, as plotted in the paper");
}
