//! Prints **Table II**: the 4×4 NoC configuration.
//!
//! ```text
//! cargo run -p smart-bench --bin table2
//! ```

use smart_core::config::NocConfig;

fn main() {
    let c = NocConfig::paper_4x4();
    let h = c.header_layout();
    println!("TABLE II: 4x4 NoC Configuration");
    println!("{:<16} 45nm", "Technology");
    println!("{:<16} {} V, {} GHz", "Vdd, Freq", c.vdd, c.clock_ghz);
    println!(
        "{:<16} {}x{} mesh",
        "Topology",
        c.topology.width(),
        c.topology.height()
    );
    println!("{:<16} {} bits", "Channel width", c.channel_bits);
    println!("{:<16} {} bits", "Credit width", c.credit_bits);
    println!("{:<16} {}", "Router ports", c.router_ports);
    println!(
        "{:<16} {}, {}-flit deep",
        "VCs per port", c.vcs_per_port, c.vc_depth
    );
    println!("{:<16} {} bits", "Packet size", c.packet_bits);
    println!("{:<16} {} bits", "Flit size", c.flit_bits);
    println!(
        "{:<16} {} bits (Head), {} bits (Body, Tail)",
        "Header width",
        h.head_bits(),
        h.body_bits()
    );
    println!();
    println!(
        "Derived: {} flits/packet, HPC_max = {} hops/cycle ({} mm at {} GHz)",
        c.flits_per_packet(),
        c.hpc_max,
        c.hpc_max,
        c.clock_ghz
    );
}
