//! Ablation: how does the single-cycle reach `HPC_max` affect SMART's
//! latency? (The paper's Table I sets HPC_max = 8 at 2 GHz; this sweep
//! shows the design-choice sensitivity on the 4×4 evaluation mesh and
//! on a larger 8×8 mesh where longer routes exercise the limit.)
//!
//! ```text
//! cargo run --release -p smart-bench --bin ablation_hpc
//! ```

use smart_bench::{geomean, Experiment, RunPlan, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_mapping::{place_random, MappedApp};

/// How tasks land on cores for a sweep scenario.
#[derive(Clone, Copy)]
enum PlacementMode {
    /// The paper's modified NMAP (locality-chasing).
    Nmap,
    /// Seeded random placement — the paper's heterogeneous-SoC remark:
    /// "certain tasks are tied to specific cores. This will result in
    /// longer paths, magnifying the benefits of SMART."
    Random(u64),
}

fn main() {
    let plan = RunPlan::quick();

    for (k, mode, label) in [
        (4u16, PlacementMode::Nmap, "4x4 mesh, NMAP placement"),
        (8, PlacementMode::Nmap, "8x8 mesh, NMAP placement"),
        (
            8,
            PlacementMode::Random(42),
            "8x8 mesh, fixed random placement (heterogeneous SoC)",
        ),
    ] {
        let base = NocConfig::scaled(k);
        println!("--- {label} ---");
        println!(
            "{:>7} {:>12} {:>12} {:>12}",
            "HPC", "avg stops", "latency", "vs HPC=8"
        );
        let mut rows = Vec::new();
        for hpc in [1usize, 2, 3, 4, 6, 8] {
            let cfg = NocConfig {
                hpc_max: hpc,
                ..base.clone()
            };
            let mut lats = Vec::new();
            let mut stops = Vec::new();
            for graph in smart_taskgraph::apps::all() {
                let mapped = match mode {
                    PlacementMode::Nmap => MappedApp::from_graph(&cfg, &graph),
                    PlacementMode::Random(seed) => MappedApp::with_placement(
                        &cfg,
                        &graph,
                        place_random(cfg.topology, &graph, seed),
                    ),
                };
                let r = Experiment::new(cfg.clone())
                    .design(DesignKind::Smart)
                    .workload(Workload::from(&mapped))
                    .plan(plan)
                    .run();
                stops.push(r.compile.expect("SMART compile metrics").avg_stops);
                lats.push(r.avg_network_latency);
            }
            let lat = geomean(&lats);
            let st = stops.iter().sum::<f64>() / stops.len() as f64;
            rows.push((hpc, st, lat));
        }
        let lat8 = rows
            .iter()
            .find(|(h, _, _)| *h == 8)
            .map(|(_, _, l)| *l)
            .expect("HPC=8 is in the sweep");
        for (hpc, st, lat) in rows {
            println!("{hpc:>7} {st:>12.2} {lat:>12.2} {:>11.2}x", lat / lat8);
        }
        println!();
    }
    println!(
        "Expected shape: latency falls as HPC_max grows and saturates once\n\
         HPC_max covers the longest contention-free segment (~diameter).\n\
         On the 4x4 mesh the knee is early; the 8x8 mesh keeps benefiting\n\
         further — the paper's motivation for the 8 mm single-cycle reach."
    );
}
