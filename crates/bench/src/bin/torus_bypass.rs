//! SMART bypass on wrap links: run the same workload on a `k × k`
//! mesh and the `k × k` torus and compare average route hop count and
//! packet latency per design. Tornado traffic (each node sends half
//! the ring width East) is the canonical wrap workload: on the mesh
//! every route marches across the middle, on the torus the same pairs
//! ride the seam — so the delta isolates what the wraparound links
//! (and SMART's ability to bypass through them) buy.
//!
//! ```text
//! cargo run --release -p smart-bench --bin torus_bypass [edge] [rate]
//! ```
//!
//! Defaults: edge 8, rate 0.005 packets/cycle/flow (below tornado
//! saturation on both fabrics, so the latency columns compare like
//! with like). The README's
//! torus-vs-mesh results table is this bin's output at the defaults.

use smart_bench::{Experiment, RunPlan, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_harness::SpatialPattern;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let edge: u16 = args.first().map_or(8, |e| {
        e.parse().unwrap_or_else(|err| panic!("edge {e:?}: {err}"))
    });
    let rate: f64 = args.get(1).map_or(0.005, |r| {
        r.parse().unwrap_or_else(|err| panic!("rate {r:?}: {err}"))
    });

    let workload = Workload::patterned(SpatialPattern::Tornado, rate);
    let plan = RunPlan::measure_all(40_000, 10_000, 0xC0FFEE);

    println!("SMART bypass on wrap links — tornado@{rate}, {edge}x{edge}, 40k cycles");
    println!(
        "{:>6} {:>10} {:>9} {:>10} {:>10} {:>12}",
        "fabric", "design", "avg_hops", "delivered", "latency", "wrap_links"
    );
    for cfg in [NocConfig::scaled(edge), NocConfig::scaled_torus(edge)] {
        let routed = workload.materialize(&cfg);
        let hops: usize = routed.routes.iter().map(|(_, r)| r.num_hops()).sum();
        let avg_hops = hops as f64 / routed.routes.len() as f64;
        let wraps = routed
            .routes
            .iter()
            .flat_map(|(_, r)| r.links(cfg.topology))
            .filter(|l| cfg.topology.is_wrap_link(*l))
            .count();
        for design in [DesignKind::Mesh, DesignKind::Smart] {
            let r = Experiment::new(cfg.clone())
                .design(design)
                .workload(workload.clone())
                .plan(plan)
                .run();
            println!(
                "{:>6} {:>10} {:>9.3} {:>10} {:>10.3} {:>12}",
                cfg.topology.label(),
                design.label(),
                avg_hops,
                r.packets_delivered,
                r.avg_network_latency,
                wraps
            );
        }
    }
}
