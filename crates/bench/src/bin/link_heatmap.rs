//! Per-link utilization heatmap for one application on the SMART mesh:
//! which physical wires the virtual topology actually exercises, as a
//! mesh-shaped ASCII figure plus a ranked table.
//!
//! ```text
//! cargo run --release -p smart-bench --bin link_heatmap [APP]
//! ```

use smart_core::config::NocConfig;
use smart_core::noc::SmartNoc;
use smart_mapping::MappedApp;
use smart_sim::{BernoulliTraffic, Coord, Direction, LinkId};

/// Intensity glyph for a utilization in [0, 1] of the hottest link.
fn glyph(frac: f64) -> char {
    match frac {
        f if f <= 0.0 => '.',
        f if f < 0.25 => '░',
        f if f < 0.5 => '▒',
        f if f < 0.75 => '▓',
        _ => '█',
    }
}

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "VOPD".into());
    let Some(graph) = smart_taskgraph::apps::by_name(&want) else {
        eprintln!("unknown app {want}");
        std::process::exit(2);
    };
    let cfg = NocConfig::paper_4x4();
    let mapped = MappedApp::from_graph(&cfg, &graph);
    let mut noc = SmartNoc::new(&cfg, &mapped.routes);
    let mut traffic = BernoulliTraffic::new(
        &mapped.rates,
        noc.network().flows(),
        cfg.topology,
        cfg.flits_per_packet(),
        31,
    );
    let cycles = 60_000;
    noc.network_mut().run_with(&mut traffic, cycles);
    noc.network_mut().drain(5_000);

    // The engine exposes counts as a borrowing iterator (no per-sample
    // allocation); collect once here for random access.
    let counts: std::collections::HashMap<LinkId, u64> = noc.network().link_flit_counts().collect();
    let max = counts.values().copied().max().unwrap_or(1) as f64;
    let mesh = cfg.topology;
    let get = |from: Coord, dir: Direction| -> f64 {
        let n = mesh.node_at(from);
        let fwd = counts.get(&LinkId { from: n, dir }).copied().unwrap_or(0);
        let back = mesh
            .neighbor(n, dir)
            .and_then(|m| {
                counts
                    .get(&LinkId {
                        from: m,
                        dir: dir.opposite(),
                    })
                    .copied()
            })
            .unwrap_or(0);
        (fwd + back) as f64 / max
    };

    println!(
        "{} on SMART: link heatmap over {cycles} cycles (█ = hottest)",
        graph.name()
    );
    for y in (0..mesh.height()).rev() {
        for x in 0..mesh.width() {
            print!("({x},{y})");
            if x + 1 < mesh.width() {
                let f = get(Coord { x, y }, Direction::East);
                print!("─{}{}{}─", glyph(f), glyph(f), glyph(f));
            }
        }
        println!();
        if y > 0 {
            for x in 0..mesh.width() {
                let f = get(Coord { x, y }, Direction::South);
                print!("  {}   ", glyph(f));
                if x + 1 < mesh.width() {
                    print!("   ");
                }
            }
            println!();
        }
    }

    let mut ranked: Vec<(LinkId, u64)> = counts.into_iter().collect();
    ranked.sort_by_key(|(l, c)| (std::cmp::Reverse(*c), *l));
    println!("\nhottest directed links (flits / {cycles} cycles):");
    for (link, c) in ranked.iter().take(8) {
        println!(
            "  {:<8} {:>8}  ({:.4} flits/cycle)",
            link.to_string(),
            c,
            *c as f64 / cycles as f64
        );
    }
}
