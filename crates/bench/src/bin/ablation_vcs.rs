//! Ablation over the flow-control resources of Table II: virtual
//! channels per port and buffer depth. The paper fixes 2 VCs × 10
//! flits; this sweep shows how sensitive each design's latency is to
//! that choice (VCT requires depth ≥ packet, so depth sweeps start
//! at 8).
//!
//! ```text
//! cargo run --release -p smart-bench --bin ablation_vcs
//! ```

use smart_bench::{geomean, ExperimentMatrix, RunPlan, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;

fn suite_latency(cfg: &NocConfig, kind: DesignKind, plan: &RunPlan) -> f64 {
    let lats: Vec<f64> = ExperimentMatrix::new(cfg.clone())
        .designs(&[kind])
        .workloads(
            smart_taskgraph::apps::all()
                .into_iter()
                .map(Workload::Graph)
                .collect(),
        )
        .plan(*plan)
        .run()
        .iter()
        .map(|r| r.avg_network_latency)
        .collect();
    geomean(&lats)
}

fn main() {
    let plan = RunPlan::quick();
    let base = NocConfig::paper_4x4();

    println!("VC-count sweep (10-flit buffers), geomean latency over the suite:");
    println!("{:>6} {:>10} {:>10}", "VCs", "Mesh", "SMART");
    for vcs in [1usize, 2, 3, 4] {
        let cfg = NocConfig {
            vcs_per_port: vcs,
            ..base.clone()
        };
        let mesh = suite_latency(&cfg, DesignKind::Mesh, &plan);
        let smart = suite_latency(&cfg, DesignKind::Smart, &plan);
        let marker = if vcs == 2 { "  <- Table II" } else { "" };
        println!("{vcs:>6} {mesh:>10.2} {smart:>10.2}{marker}");
    }

    println!();
    println!("Buffer-depth sweep (2 VCs), geomean latency over the suite:");
    println!("{:>6} {:>10} {:>10}", "depth", "Mesh", "SMART");
    for depth in [8usize, 10, 12, 16] {
        let cfg = NocConfig {
            vc_depth: depth,
            ..base.clone()
        };
        let mesh = suite_latency(&cfg, DesignKind::Mesh, &plan);
        let smart = suite_latency(&cfg, DesignKind::Smart, &plan);
        let marker = if depth == 10 { "  <- Table II" } else { "" };
        println!("{depth:>6} {mesh:>10.2} {smart:>10.2}{marker}");
    }

    println!(
        "\nExpected shape: at the paper's low task-graph loads, latency is\n\
         dominated by pipeline stops, so both sweeps are nearly flat — the\n\
         2 VC x 10 flit point buys correctness (VCT packet fit + deadlock\n\
         headroom), not speed. VC starvation only bites at 1 VC, where a\n\
         single in-flight packet per endpoint serializes trains."
    );
}
