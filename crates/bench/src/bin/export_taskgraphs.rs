//! Export the application suite as Graphviz DOT files (plus a summary
//! table), for documentation and visual inspection of the task graphs
//! driving the evaluation.
//!
//! ```text
//! cargo run -p smart-bench --bin export_taskgraphs [OUT_DIR]
//! ```

use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/generated/taskgraphs".into())
        .into();
    fs::create_dir_all(&out)?;
    println!(
        "{:<10} {:>6} {:>6} {:>12} {:>8} {:>8}",
        "app", "tasks", "flows", "total MB/s", "max f-in", "max f-out"
    );
    for g in smart_taskgraph::apps::all() {
        let path = out.join(format!("{}.dot", g.name().to_lowercase()));
        fs::write(&path, g.to_dot())?;
        let (_, fi) = g.max_fan_in().expect("nonempty");
        let (_, fo) = g.max_fan_out().expect("nonempty");
        println!(
            "{:<10} {:>6} {:>6} {:>12.1} {:>8} {:>8}",
            g.name(),
            g.num_tasks(),
            g.flows().len(),
            g.total_bandwidth(),
            fi,
            fo
        );
    }
    println!("\nwrote DOT files to {}", out.display());
    Ok(())
}
