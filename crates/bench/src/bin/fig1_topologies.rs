//! Regenerates **Fig 1**: "Mesh reconfiguration for three applications.
//! All links in bold take one-cycle." The same physical 4x4 mesh, with
//! WLAN, H264 and VOPD presets rendered as virtual topologies (bold =
//! configured single-cycle path, brackets = stop routers).
//!
//! ```text
//! cargo run -p smart-bench --bin fig1_topologies
//! ```

use smart_core::compile::compile;
use smart_core::config::NocConfig;
use smart_core::viz::{render_topology, topology_summary};
use smart_mapping::MappedApp;

fn main() {
    let cfg = NocConfig::paper_4x4();
    for graph in [
        smart_taskgraph::apps::wlan(),
        smart_taskgraph::apps::h264(),
        smart_taskgraph::apps::vopd(),
    ] {
        let mapped = MappedApp::from_graph(&cfg, &graph);
        let app = compile(cfg.topology, cfg.hpc_max, &mapped.routes);
        println!("== {} ==", graph.name());
        println!("{}", render_topology(cfg.topology, &app));
        println!("{}\n", topology_summary(cfg.topology, &app));
    }
    println!(
        "One physical mesh, three virtual topologies — switching between\n\
         them costs {} store instructions (see `reconfig_cost`).",
        cfg.topology.len()
    );
}
