//! The reproduction scorecard: every headline claim of the paper,
//! checked in one run, with pass/fail against the tolerance bands
//! recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p smart-bench --bin scorecard [--quick]
//! ```

use smart_bench::{run_suite, Experiment, RunPlan, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_core::scenarios::fig7_flows;
use smart_link::table1::{paper_reference, table1};
use smart_link::units::Gbps;
use smart_link::{LinkStyle, TestChip};
use std::collections::BTreeMap;

struct Scorecard {
    rows: Vec<(String, String, String, bool)>,
}

impl Scorecard {
    fn check(&mut self, claim: &str, ours: String, paper: &str, ok: bool) {
        self.rows
            .push((claim.to_owned(), ours, paper.to_owned(), ok));
    }

    fn print(&self) -> bool {
        println!(
            "{:<46} {:>14} {:>14} {:>6}",
            "claim", "reproduction", "paper", "check"
        );
        let mut all = true;
        for (claim, ours, paper, ok) in &self.rows {
            all &= ok;
            println!(
                "{claim:<46} {ours:>14} {paper:>14} {:>6}",
                if *ok { "✓" } else { "✗" }
            );
        }
        all
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let plan = if quick {
        RunPlan::quick()
    } else {
        RunPlan::default()
    };
    let cfg = NocConfig::paper_4x4();
    let mut card = Scorecard { rows: Vec::new() };

    // --- Link level. ---
    let ours_t1 = table1();
    let paper_t1 = paper_reference();
    let t1_ok = ours_t1.rows.iter().zip(paper_t1.rows.iter()).all(|(a, b)| {
        a.cells.iter().zip(b.cells.iter()).all(|(x, y)| {
            x.hops == y.hops && (x.energy_fj_per_bit_mm - y.energy_fj_per_bit_mm).abs() < 0.5
        })
    });
    card.check(
        "Table I: all 12 (hops, energy) cells",
        "12/12 exact".into(),
        "exact",
        t1_ok,
    );
    card.check(
        "8 hops in one cycle at 2 GHz",
        format!("{}", cfg.hpc_max),
        "8",
        cfg.hpc_max == 8,
    );
    let chip = TestChip::new();
    let vlr_rate = chip.max_data_rate(LinkStyle::LowSwing).0;
    let fs_rate = chip.max_data_rate(LinkStyle::FullSwing).0;
    card.check(
        "chip: VLR max data rate (Gb/s)",
        format!("{vlr_rate:.2}"),
        "6.8",
        (vlr_rate - 6.8).abs() < 0.1,
    );
    card.check(
        "chip: full-swing max data rate (Gb/s)",
        format!("{fs_rate:.2}"),
        "5.5",
        (fs_rate - 5.5).abs() < 0.1,
    );
    let d_vlr = chip.delay_per_mm(LinkStyle::LowSwing, Gbps(5.0)).0;
    card.check(
        "chip: VLR delay (ps/mm)",
        format!("{d_vlr:.0}"),
        "~60",
        (45.0..=75.0).contains(&d_vlr),
    );

    // --- Fig 7 (through the experiment API's compile metrics; the
    // zero-cycle scripted plan builds the design without simulating —
    // traversal times are a pure function of the compiled presets). ---
    let fig7 = Experiment::new(cfg.clone())
        .workload(Workload::fig7())
        .scripted(Vec::new())
        .plan(RunPlan::measure_all(0, 0, 0))
        .run();
    let metrics = fig7.compile.expect("SMART reports compile metrics");
    let fig7_ok = fig7_flows(cfg.topology).iter().all(|(f, _, exp)| {
        metrics
            .zero_load_latency
            .iter()
            .any(|(mf, l)| mf == f && l == exp)
    });
    card.check(
        "Fig 7: traversal times 1/1/7/7",
        if fig7_ok { "exact" } else { "mismatch" }.to_string(),
        "1/1/7/7",
        fig7_ok,
    );

    // --- Section V. ---
    card.check(
        "reconfiguration cost (stores)",
        format!("{}", cfg.topology.len()),
        "16",
        cfg.topology.len() == 16,
    );

    // --- Fig 10. ---
    let results = run_suite(&cfg, &plan);
    let mut lat: BTreeMap<DesignKind, f64> = BTreeMap::new();
    for r in &results {
        *lat.entry(r.design).or_insert(0.0) += r.avg_network_latency / 8.0;
    }
    let reduction = (1.0 - lat[&DesignKind::Smart] / lat[&DesignKind::Mesh]) * 100.0;
    card.check(
        "Fig 10a: SMART latency cut vs Mesh (%)",
        format!("{reduction:.1}"),
        "60.1",
        (50.0..=75.0).contains(&reduction),
    );
    card.check(
        "Fig 10a: SMART average latency (cycles)",
        format!("{:.2}", lat[&DesignKind::Smart]),
        "3.8",
        (2.0..=5.0).contains(&lat[&DesignKind::Smart]),
    );
    let gap = lat[&DesignKind::Smart] - lat[&DesignKind::Dedicated];
    card.check(
        "Fig 10a: SMART above Dedicated (cycles)",
        format!("{gap:.2}"),
        "1.5",
        (0.5..=2.5).contains(&gap),
    );
    let mut totals: BTreeMap<(String, DesignKind), f64> = BTreeMap::new();
    for r in &results {
        let p = r.power.expect("run_suite attaches the power model");
        totals.insert((r.workload.clone(), r.design), p.total_w());
    }
    let apps: Vec<String> = results.iter().map(|r| r.workload.clone()).collect();
    let mut ratio = 0.0;
    let mut n = 0.0;
    for app in apps.iter().collect::<std::collections::BTreeSet<_>>() {
        ratio += totals[&((*app).clone(), DesignKind::Mesh)]
            / totals[&((*app).clone(), DesignKind::Smart)];
        n += 1.0;
    }
    let ratio = ratio / n;
    card.check(
        "Fig 10b: Mesh/SMART power ratio",
        format!("{ratio:.2}x"),
        "2.2x",
        (1.6..=3.2).contains(&ratio),
    );

    println!();
    let all = card.print();
    println!();
    if all {
        println!("ALL CHECKS PASS — the reproduction holds every headline claim.");
    } else {
        println!("SOME CHECKS FAILED — see EXPERIMENTS.md for tolerance discussion.");
        std::process::exit(1);
    }
}
