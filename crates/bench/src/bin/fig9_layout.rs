//! Regenerates **Fig 9**: the generated 4×4 NoC layout report (tiled
//! routers at 1 mm pitch, black regions reserved for cores) and the
//! generated RTL module inventory.
//!
//! ```text
//! cargo run -p smart-bench --bin fig9_layout
//! ```

use smart_rtlgen::{generate_all, Floorplan, GenParams};

fn main() {
    let p = GenParams::paper_4x4();
    let plan = Floorplan::generate(&p);
    println!("{}", plan.report());

    println!("Generated RTL modules:");
    for m in generate_all(&p) {
        println!(
            "  {:<22} {:>5} lines, {} always blocks",
            m.name,
            m.source.lines().count(),
            m.always_blocks()
        );
    }
}
