//! Time the canonical Experiment/Schedule cells and emit a
//! machine-readable `BENCH_<label>.json` perf snapshot.
//!
//! ```text
//! cargo run --release -p smart-bench --bin perf_scorecard -- \
//!     [--quick] [--label <name>] [--out <dir>] [--baseline <BENCH.json>] \
//!     [--gate <BENCH.json>] [--gate-tolerance <frac>]
//! ```
//!
//! `--quick` shrinks every cell's cycle budget 10× (the CI setting);
//! `--label` names the output file (default `latest`); `--out` picks
//! the output directory (default `benchmarks/`); `--baseline` compares
//! this run's cycles/sec against a previously committed `BENCH_*.json`
//! (e.g. `benchmarks/BENCH_pre_refactor.json`) and prints per-cell
//! speedups. `--gate` is the CI regression gate: exit nonzero if any
//! cell's cycles/sec fell more than `--gate-tolerance` (default 0.2 =
//! 20%) below the given snapshot. Committed before/after snapshots for
//! each perf PR live in `benchmarks/` — see the README's "Performance"
//! section.

use smart_bench::perf::{cycles_per_sec_of, gate_failures, run_scorecard, to_json};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let label = flag("--label").unwrap_or_else(|| "latest".to_owned());
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "benchmarks".to_owned()));
    let baseline = flag("--baseline")
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));
    let gate = flag("--gate")
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read gate {p}: {e}")));
    let tolerance = flag("--gate-tolerance").map_or(0.2, |t| {
        t.parse()
            .unwrap_or_else(|e| panic!("--gate-tolerance {t}: {e}"))
    });
    let scale = if quick { 0.1 } else { 1.0 };

    println!("perf scorecard (scale {scale}, label {label})");
    let results = run_scorecard(scale);
    println!(
        "{:<16} {:>12} {:>10} {:>14} {:>10} {:>12}{}",
        "cell",
        "cycles",
        "wall s",
        "cycles/sec",
        "packets",
        "peak RSS kB",
        if baseline.is_some() {
            "  vs baseline"
        } else {
            ""
        }
    );
    for r in &results {
        let speedup = baseline
            .as_deref()
            .and_then(|b| cycles_per_sec_of(b, &r.name))
            .map_or(String::new(), |base| {
                format!("  {:>10.2}x", r.cycles_per_sec / base)
            });
        println!(
            "{:<16} {:>12} {:>10.3} {:>14.0} {:>10} {:>12}{speedup}",
            r.name, r.cycles, r.wall_seconds, r.cycles_per_sec, r.packets_delivered, r.peak_rss_kb
        );
    }

    let json = to_json(&label, scale, &results);
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join(format!("BENCH_{label}.json"));
    std::fs::write(&path, json).expect("write BENCH json");
    println!("\nwrote {}", path.display());

    if let Some(gate) = gate {
        let failures = gate_failures(&gate, &results, tolerance);
        if failures.is_empty() {
            println!(
                "perf gate: all cells within {:.0}% of baseline",
                tolerance * 100.0
            );
        } else {
            eprintln!("perf gate FAILED ({} cells):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
