//! Ablation from the paper's future work (§VI): "SMART can also enable
//! non-minimal routes for higher path diversity without any delay
//! penalty." On SMART, a detour that avoids link sharing costs extra
//! millimetres but **zero extra cycles** — the longer path is still one
//! single-cycle bypass segment (as long as it fits HPC_max) — whereas
//! on the baseline mesh every extra hop costs 4 cycles.
//!
//! ```text
//! cargo run --release -p smart-bench --bin ablation_nonminimal
//! ```

use smart_bench::{Experiment, RunPlan, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_mapping::{
    place_random, routable_flows, select_routes, select_routes_with, MappedApp, RouteOptions,
};
use smart_sim::{FlowId, SourceRoute};

fn scenario(
    cfg: &NocConfig,
    plan: &RunPlan,
    label: &str,
    routes_of: impl Fn(&smart_taskgraph::TaskGraph, RouteOptions) -> MappedApp,
) {
    println!("--- {label} ---");
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "app", "SMART minimal", "SMART detour", "gain", "stops min", "stops det"
    );
    let mut gains = Vec::new();
    for graph in smart_taskgraph::apps::all() {
        let minimal = routes_of(&graph, RouteOptions::default());
        let detoured = routes_of(&graph, RouteOptions::with_detours());
        let run = |mapped: &MappedApp| {
            Experiment::new(cfg.clone())
                .design(DesignKind::Smart)
                .workload(Workload::from(mapped))
                .plan(*plan)
                .run()
        };
        let (min_r, det_r) = (run(&minimal), run(&detoured));
        let stops_min = min_r.compile.as_ref().expect("SMART metrics").avg_stops;
        let stops_det = det_r.compile.as_ref().expect("SMART metrics").avg_stops;
        let lat_min = min_r.avg_network_latency;
        let lat_det = det_r.avg_network_latency;
        gains.push(lat_min - lat_det);
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>12.2} {:>12.2} {:>12.2}",
            graph.name(),
            lat_min,
            lat_det,
            lat_min - lat_det,
            stops_min,
            stops_det
        );
    }
    let avg: f64 = gains.iter().sum::<f64>() / gains.len() as f64;
    println!("average latency gain: {avg:.2} cycles\n");
}

fn main() {
    let plan = RunPlan::quick();
    let cfg = NocConfig::paper_4x4();

    // NMAP placement: link sharing is already mapped away, so detours
    // have nothing to fix — the residual stops are hub (endpoint) stops.
    scenario(&cfg, &plan, "NMAP placement", |graph, opts| {
        MappedApp::from_graph_with_routing(&cfg, graph, opts)
    });

    // Heterogeneous (fixed random) placement: routes are long and
    // overlap; this is where path diversity pays.
    scenario(
        &cfg,
        &plan,
        "fixed random placement (heterogeneous SoC)",
        |graph, opts| {
            let placement = place_random(cfg.topology, graph, 1234);
            let flows = routable_flows(graph, &placement);
            let routes: Vec<(FlowId, SourceRoute)> = if opts.allow_detours {
                select_routes_with(cfg.topology, &flows, opts)
            } else {
                select_routes(cfg.topology, &flows)
            };
            let mut app = MappedApp::with_placement(&cfg, graph, placement);
            app.routes = routes;
            app
        },
    );

    println!(
        "Expected shape: under NMAP the gain is ~0 (remaining stops are hub\n\
         fan-in/fan-out, which no route can bypass). Under fixed placement,\n\
         detours convert shared-link stops into longer-but-free bypass\n\
         segments — latency drops at zero cycle cost, the paper's §VI claim."
    );
}
