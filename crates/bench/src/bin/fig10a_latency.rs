//! Regenerates **Fig 10a**: average network latency of the eight SoC
//! applications on Mesh, SMART and Dedicated.
//!
//! ```text
//! cargo run --release -p smart-bench --bin fig10a_latency
//! ```
//!
//! Pass `--quick` for a shorter run.

use smart_bench::{run_suite, RunPlan};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use std::collections::BTreeMap;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let plan = if quick {
        RunPlan::quick()
    } else {
        RunPlan::default()
    };
    let cfg = NocConfig::paper_4x4();
    let results = run_suite(&cfg, &plan);

    let mut table: BTreeMap<String, [f64; 3]> = BTreeMap::new();
    for r in &results {
        let slot = match r.design {
            DesignKind::Mesh => 0,
            DesignKind::Smart => 1,
            DesignKind::Dedicated => 2,
        };
        table.entry(r.workload.clone()).or_insert([f64::NAN; 3])[slot] = r.avg_network_latency;
    }

    println!("Fig 10a: average network latency (cycles)");
    println!(
        "{:<10} {:>8} {:>8} {:>10}",
        "app", "Mesh", "SMART", "Dedicated"
    );
    let mut sums = [0.0f64; 3];
    for (app, lat) in &table {
        println!("{app:<10} {:>8.2} {:>8.2} {:>10.2}", lat[0], lat[1], lat[2]);
        for i in 0..3 {
            sums[i] += lat[i];
        }
    }
    let n = table.len() as f64;
    let (mesh, smart, ded) = (sums[0] / n, sums[1] / n, sums[2] / n);
    println!("{:<10} {mesh:>8.2} {smart:>8.2} {ded:>10.2}", "average");
    println!();
    println!("Headline comparisons (paper in parentheses):");
    println!(
        "  SMART latency reduction vs Mesh : {:.1}%  (60.1%)",
        (1.0 - smart / mesh) * 100.0
    );
    println!("  SMART average latency           : {smart:.2} cycles  (3.8)");
    println!(
        "  SMART above Dedicated           : {:.2} cycles  (1.5)",
        smart - ded
    );
    println!();
    println!("Per-app SMART-vs-Dedicated gaps (paper: PIP/VOPD/WLAN almost");
    println!("identical; H264 & MMS_MP3 2-4 cycles apart from hub contention):");
    for (app, lat) in &table {
        println!("  {app:<10} {:+.2} cycles", lat[1] - lat[2]);
    }
}
