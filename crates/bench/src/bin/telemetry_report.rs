//! Dynamic-behavior report from the telemetry layer: drive a saturated
//! uniform-random load on the 8×8 SMART mesh with metrics collection
//! enabled and render the achieved-bypass-length histogram and the
//! link-utilization heatmap over time.
//!
//! ```text
//! cargo run --release -p smart-bench --bin telemetry_report -- [--quick]
//! ```
//!
//! The histogram is the paper's central dynamic claim made visible: how
//! far short of `HPC_max` real traffic stops once contention bites. The
//! heatmap shows *where* and *when* that contention concentrates. The
//! bin self-checks the invariants the series must satisfy — no achieved
//! bypass exceeds `HPC_max`, and a saturated fabric records premature
//! stops — and exits nonzero if either fails, so CI can run it as a
//! telemetry smoke test.

use smart_bench::{Experiment, RunPlan, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_core::viz;
use smart_sim::TelemetryConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = NocConfig::scaled(8);
    // Well past uniform-random saturation on an 8×8 mesh: enough offered
    // load that SSR denials (premature stops) are guaranteed.
    let workload = Workload::uniform(128, 0.02, 0xBEEF);
    let (measure, window) = if quick {
        (20_000, 2_000)
    } else {
        (120_000, 8_000)
    };
    let plan = RunPlan::measure_all(measure, 10_000, 0xC0FFEE);

    println!(
        "telemetry report — uniform@saturation, 8x8 SMART, {measure} cycles, {window}-cycle windows"
    );
    let report = Experiment::new(cfg.clone())
        .design(DesignKind::Smart)
        .workload(workload)
        .plan(plan)
        .with_telemetry(TelemetryConfig::windowed(window))
        .run();
    let series = report.telemetry.as_ref().expect("telemetry enabled");

    println!("\n{}", viz::bypass_histogram(series, cfg.hpc_max));
    println!("{}", viz::link_heatmap_over_time(series, cfg.topology));
    println!("{}", report.snapshot_line());

    // Self-check: the series must respect the physical ceiling, and a
    // saturated fabric must record contention.
    let max = series.max_bypass().unwrap_or(0);
    if max > cfg.hpc_max {
        eprintln!(
            "FAIL: achieved bypass {max} exceeds HPC_max {}",
            cfg.hpc_max
        );
        std::process::exit(1);
    }
    if series.premature_stops() == 0 {
        eprintln!("FAIL: saturated run recorded no premature stops");
        std::process::exit(1);
    }
    println!(
        "ok: max achieved bypass {max} <= HPC_max {}, {} premature stops",
        cfg.hpc_max,
        series.premature_stops()
    );
}
