//! Regenerates **Fig 8**: the 32-bit Tx block layout assembled from
//! 1-bit VLR cells, plus its `.lib`/`.lef` views.
//!
//! ```text
//! cargo run -p smart-bench --bin fig8_tx_block
//! ```

use smart_link::units::Gbps;
use smart_link::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};
use smart_rtlgen::{lef, liberty, MacroBlock};

fn main() {
    let block = MacroBlock::fig8_tx32();
    println!("Fig 8: 32-bit Tx block layout");
    println!("{block}");
    println!(
        "pitch {} um; bit 0 pin at x = {:.2} um, bit 31 at x = {:.2} um",
        block.pitch_um,
        block.pin_x_um(0),
        block.pin_x_um(31)
    );

    let link = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::Double,
    );
    println!("\n--- .lib view (first 25 lines) ---");
    for line in liberty(&block, &link, Gbps(2.0)).lines().take(25) {
        println!("{line}");
    }
    println!("  ...");
    println!("\n--- .lef view (first 20 lines) ---");
    for line in lef(&block).lines().take(20) {
        println!("{line}");
    }
    println!("  ...");
}
