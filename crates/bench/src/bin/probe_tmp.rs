use smart_link::device::{Repeater, VlrParams};
use smart_link::transient::max_hops_per_cycle;
use smart_link::units::{Gbps, Picoseconds};
use smart_link::wire::{Spacing, WireRc};
fn main() {
    let wire = WireRc::for_45nm(Spacing::Double);
    for (n, p) in [("fab", VlrParams::default_45nm()), ("resized", VlrParams::resized_2ghz())] {
        let h = max_hops_per_cycle(Repeater::VoltageLocked(p), wire, Gbps(2.0), Picoseconds(20.0));
        println!("{n}: {h} hops at 2 Gb/s double spacing");
    }
}
