//! Regenerates the **Section III chip measurements**: maximum data
//! rates, power/energy at those rates, and per-mm delays of the 10 mm
//! test vehicle — model vs published silicon.
//!
//! ```text
//! cargo run -p smart-bench --bin chip_measurements
//! ```

use smart_link::units::Gbps;
use smart_link::{LinkStyle, TestChip};

fn main() {
    let chip = TestChip::new();
    println!(
        "45nm SOI test chip: {} link, VLR every mm (Section III)",
        chip.length()
    );
    println!();
    println!(
        "{:<34} {:>12} {:>12} {:>10}",
        "quantity", "model", "published", "Δ%"
    );
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    for style in [LinkStyle::LowSwing, LinkStyle::FullSwing] {
        let pubd = TestChip::published(style);
        let max = chip.max_data_rate(style);
        rows.push((
            format!("{} max data rate (Gb/s)", style.label()),
            max.0,
            pubd.max_rate.0,
        ));
        rows.push((
            format!("{} power @ max (mW)", style.label()),
            chip.power_mw(style, pubd.max_rate),
            pubd.power_at_max_mw,
        ));
        rows.push((
            format!("{} energy @ max (fJ/b)", style.label()),
            chip.energy_fj_per_bit(style, pubd.max_rate),
            pubd.energy_at_max_fj,
        ));
        rows.push((
            format!("{} delay (ps/mm)", style.label()),
            chip.delay_per_mm(style, pubd.max_rate).0,
            pubd.delay_per_mm.0,
        ));
    }
    // The like-for-like comparison at 5.5 Gb/s.
    let (p_mw, e_fj) = TestChip::published_vlr_at_5p5();
    rows.push((
        "Low-swing power @ 5.5 Gb/s (mW)".into(),
        chip.power_mw(LinkStyle::LowSwing, Gbps(5.5)),
        p_mw,
    ));
    rows.push((
        "Low-swing energy @ 5.5 Gb/s (fJ/b)".into(),
        chip.energy_fj_per_bit(LinkStyle::LowSwing, Gbps(5.5)),
        e_fj,
    ));

    for (name, model, published) in &rows {
        let delta = (model - published) / published * 100.0;
        println!("{name:<34} {model:>12.2} {published:>12.2} {delta:>9.1}%");
    }

    println!();
    println!("BER at the published maximum rates (target < 1e-9):");
    for style in [LinkStyle::LowSwing, LinkStyle::FullSwing] {
        let max = TestChip::published(style).max_rate;
        let at_max = chip.model(style).ber(max);
        let above = chip.model(style).ber(Gbps(max.0 * 1.1));
        println!(
            "  {:<12} BER({max}) = {at_max:.2e}   BER({:.2} Gb/s) = {above:.2e}",
            style.label(),
            max.0 * 1.1
        );
    }
}
