//! Latency–throughput characterization: sweep the injection rate of a
//! synthetic pattern and trace each design's latency curve up to
//! saturation — the classic interconnection-network figure (Dally &
//! Towles reference \[11\]) complementing the paper's task-graph evaluation.
//!
//! ```text
//! cargo run --release -p smart-bench --bin ablation_load [pattern]
//! ```
//!
//! `pattern` ∈ {transpose, mirror, hotspot} (default transpose).

use smart_bench::{Experiment, RoutedWorkload, RunPlan};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_sim::{FlowId, NodeId, Pattern, SourceRoute};

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "transpose".into());
    let pattern = match arg.as_str() {
        "transpose" => Pattern::Transpose,
        "mirror" => Pattern::RowMirror,
        "hotspot" => Pattern::Hotspot(NodeId(5)),
        other => {
            eprintln!("unknown pattern {other}; use transpose|mirror|hotspot");
            std::process::exit(2);
        }
    };
    let cfg = NocConfig::paper_4x4();
    let pairs = pattern.pairs(cfg.topology);
    let routes: Vec<(FlowId, SourceRoute)> = pairs
        .iter()
        .enumerate()
        .map(|(i, (s, d))| {
            (
                FlowId(i as u32),
                SourceRoute::xy(cfg.topology, *s, *d).unwrap(),
            )
        })
        .collect();

    println!(
        "latency vs offered load — pattern {} ({} flows)",
        pattern.label(),
        routes.len()
    );
    println!(
        "{:>22} {:>10} {:>10} {:>12}",
        "flits/node/cycle", "Mesh", "SMART", "Dedicated"
    );

    // Sweep per-node injection in flits/cycle.
    for load_pct in [1usize, 2, 4, 6, 8, 12, 16, 20, 28, 36] {
        let per_node_flits = load_pct as f64 / 100.0;
        // Rate per flow: nodes inject on all their outgoing flows evenly.
        let flows_per_node = routes.len() as f64 / f64::from(cfg.topology.len() as u32);
        let rate = per_node_flits / f64::from(cfg.flits_per_packet()) / flows_per_node;
        let rates: Vec<(FlowId, f64)> = routes.iter().map(|(f, _)| (*f, rate)).collect();
        let workload = RoutedWorkload {
            name: format!("{}@{per_node_flits}", pattern.label()),
            routes: routes.clone(),
            rates,
            temporal: smart_harness::TemporalModel::Steady,
        };

        print!("{per_node_flits:>22.2}");
        for kind in DesignKind::ALL {
            let r = Experiment::new(cfg.clone())
                .design(kind)
                .workload(workload.clone())
                .plan(RunPlan {
                    warmup: 2_000,
                    measure: 20_000,
                    drain: 3_000,
                    seed: 11,
                })
                .run();
            if r.avg_source_queue > 500.0 {
                print!("{:>10}", "sat");
            } else {
                print!("{:>10.2}", r.avg_network_latency);
            }
        }
        println!();
    }
    println!(
        "\nExpected shape: SMART tracks Dedicated at low load (bypass), both\n\
         far below Mesh; as load rises SMART's shared links saturate first\n\
         toward Mesh-like behaviour (\"in the worst case, if all flows\n\
         contend, SMART and Mesh will have the same network latency\")."
    );
}
