//! Regenerates **Table I**: simulation results of max number of hops per
//! cycle (and energy efficiency) for full-swing and low-swing links.
//!
//! ```text
//! cargo run -p smart-bench --bin table1
//! ```

use smart_link::table1::{paper_reference, table1};

fn main() {
    let ours = table1();
    println!("{ours}");
    println!();
    println!("Paper reference:");
    println!("{}", paper_reference());

    // Cell-by-cell comparison.
    let paper = paper_reference();
    let mut mismatches = 0;
    for (a, b) in ours.rows.iter().zip(paper.rows.iter()) {
        for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
            if ca.hops != cb.hops || (ca.energy_fj_per_bit_mm - cb.energy_fj_per_bit_mm).abs() > 0.5
            {
                mismatches += 1;
                println!(
                    "MISMATCH {:?} {:?} @ {}: {} ({:.0}) vs paper {} ({:.0})",
                    a.style,
                    a.variant,
                    ca.rate,
                    ca.hops,
                    ca.energy_fj_per_bit_mm,
                    cb.hops,
                    cb.energy_fj_per_bit_mm
                );
            }
        }
    }
    println!();
    if mismatches == 0 {
        println!("All 12 cells match the paper (hops exact, energy within 0.5 fJ/b/mm).");
    } else {
        println!("{mismatches} cells mismatch the paper.");
    }
}
