//! Ablation from the paper's future-work discussion (Section VI):
//! splitting the 32-bit SMART channel into two 16-bit channels clocked
//! at twice the rate — "leveraging the high frequency of SMART links to
//! mitigate conflicts" on the sink/source-hub applications (H264,
//! MMS_MP3) where Dedicated beats SMART.
//!
//! Model: each 16-bit sub-channel runs at 4 GHz (the low-swing link
//! sustains 4 Gb/s with HPC_max = 7, Table I); packets are 16 sub-flits
//! and each flow's traffic splits evenly across the two channels.
//! Latencies are reported in 2 GHz cycles (sub-channel cycles ÷ 2).
//!
//! ```text
//! cargo run --release -p smart-bench --bin ablation_split
//! ```

use smart_bench::{Experiment, RunPlan, Workload};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_link::{CalibratedLinkModel, CircuitVariant, Gbps, LinkStyle, WireSpacing};
use smart_mapping::MappedApp;

fn latency(cfg: &NocConfig, mapped: &MappedApp, kind: DesignKind, plan: &RunPlan) -> f64 {
    Experiment::new(cfg.clone())
        .design(kind)
        .workload(Workload::from(mapped))
        .plan(*plan)
        .run()
        .avg_network_latency
}

fn main() {
    let plan = RunPlan::quick();
    let cfg32 = NocConfig::paper_4x4();

    // The split design point: 16-bit flits at 4 GHz. HPC_max drops per
    // Table I (7 hops at 4 Gb/s on the fabricated sizing).
    let link = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Fabricated,
        WireSpacing::Double,
    );
    let cfg16 = NocConfig {
        channel_bits: 16,
        flit_bits: 16,
        clock_ghz: 4.0,
        hpc_max: link.max_hops_per_cycle(Gbps(4.0)) as usize,
        // Same buffer storage per VC: 10 x 32 b = 20 x 16 b.
        vc_depth: 20,
        ..cfg32
    };
    println!(
        "split design: 2 x {}b channels at {} GHz, HPC_max = {}",
        cfg16.channel_bits, cfg16.clock_ghz, cfg16.hpc_max
    );
    println!();
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>16}",
        "app", "SMART 32b", "SMART 2x16b", "Dedicated", "gap closed"
    );

    for graph in smart_taskgraph::apps::all() {
        let mapped32 = MappedApp::from_graph(&cfg32, &graph);
        let base = latency(&cfg32, &mapped32, DesignKind::Smart, &plan);
        let ded = latency(&cfg32, &mapped32, DesignKind::Dedicated, &plan);

        // Each channel sees half of each flow's packet rate; rates are
        // recomputed at the 4 GHz clock, 32-byte packets.
        let mapped16 = MappedApp::from_graph(&cfg16, &graph);
        let mut half = mapped16.clone();
        for (_, r) in &mut half.rates {
            *r /= 2.0;
        }
        let sub = latency(&cfg16, &half, DesignKind::Smart, &plan);
        // Convert 4 GHz sub-channel cycles into 2 GHz cycles.
        let split_lat = sub / 2.0;

        let gap = base - ded;
        let closed = if gap > 1e-9 {
            (base - split_lat) / gap * 100.0
        } else {
            0.0
        };
        println!(
            "{:<10} {:>12.2} {:>14.2} {:>12.2} {:>15.0}%",
            graph.name(),
            base,
            split_lat,
            ded,
            closed
        );
    }
    println!();
    println!(
        "Expected shape: the split channels halve the SMART-vs-Dedicated\n\
         gap most on the hub-contention applications (H264, MMS_MP3) by\n\
         multiplexing sink traffic across two physical channels."
    );
}
