//! Regenerates **Fig 3**: simulated waveforms at 6.8 Gb/s for (a) the
//! full-swing repeated link and (b) the low-swing voltage-locked link.
//!
//! ```text
//! cargo run -p smart-bench --bin fig3_waveforms
//! ```

use smart_link::device::{FullSwingParams, Repeater, VlrParams};
use smart_link::transient::{simulate, ChainSpec, TransientConfig};
use smart_link::units::Gbps;
use smart_link::wire::{Spacing, WireRc};

fn main() {
    let rate = Gbps(6.8);
    println!("Fig 3: simulated waveforms at {rate} (probe: end of hop 2 of 4)");
    for (label, repeater) in [
        (
            "(a) full-swing",
            Repeater::FullSwing(FullSwingParams::default_45nm()),
        ),
        (
            "(b) low-swing (VLR)",
            Repeater::VoltageLocked(VlrParams::default_45nm()),
        ),
    ] {
        let spec = ChainSpec {
            repeater,
            wire: WireRc::for_45nm(Spacing::MinPitch),
            hops: 4,
            sections_per_mm: 5,
        };
        let out = simulate(&spec, &TransientConfig::waveform(rate));
        let wave = &out.waveforms[1];
        println!("\n{label}:");
        print!("{}", wave.ascii_plot(12, 76));
        let (lo, hi) = out.far_swing;
        println!(
            "swing at far end: {lo:.3} .. {hi:.3}  |  delay {:.0} ps/mm  |  {:.0} fJ/b/mm",
            out.delay_ps_per_mm, out.energy_fj_per_bit_mm
        );
    }
    println!(
        "\nPaper shape: (a) swings rail-to-rail with slow edges; (b) is locked\n\
         near the inverter threshold with transient overshoots and faster\n\
         effective propagation (60 vs 100 ps/mm measured on the chip)."
    );
}
