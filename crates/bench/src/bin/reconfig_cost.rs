//! Reconfiguration cost study (Section V / Fig 1): store-instruction
//! counts and drain times when retargeting the SMART NoC across the
//! eight applications back-to-back.
//!
//! ```text
//! cargo run -p smart-bench --bin reconfig_cost
//! ```

use smart_core::config::NocConfig;
use smart_core::reconfig::ReconfigurableNoc;
use smart_mapping::MappedApp;
use smart_sim::BernoulliTraffic;

fn main() {
    let cfg = NocConfig::paper_4x4();
    let mut noc = ReconfigurableNoc::new(cfg.clone(), 0x4000_0000);
    println!("Reconfiguration across the application suite (Section V):");
    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>12}",
        "app", "stores", "drain (cyc)", "preset ports", "avg stops"
    );
    for graph in smart_taskgraph::apps::all() {
        let mapped = MappedApp::from_graph(&cfg, &graph);
        let report = noc
            .load_app(&mapped.name, &mapped.routes, 10_000)
            .expect("traffic drains within the budget");
        let live = noc.noc_mut().expect("app loaded");
        let ports = live.presets().enabled_ports();
        let stops = live.compiled().avg_stops();
        // Run some traffic, then leave a burst queued so the next
        // reconfiguration actually has to drain in-flight packets.
        let mut traffic = BernoulliTraffic::new(
            &mapped.rates,
            live.network().flows(),
            cfg.topology,
            cfg.flits_per_packet(),
            7,
        );
        live.network_mut().run_with(&mut traffic, 3_000);
        for p in traffic.generate_burst(live.network().cycle(), 3) {
            live.network_mut().offer(p);
        }
        println!(
            "{:<10} {:>8} {:>12} {:>14} {:>12.2}",
            report.app_name, report.cost_instructions, report.drain_cycles, ports, stops
        );
    }
    println!();
    println!(
        "Every reconfiguration costs exactly {} store instructions (one\n\
         double-word register per router), matching the paper's \"16 registers\n\
         ... correspond to 16 instructions\" for the 16-node mesh. The network\n\
         is drained before each register write, as the paper requires.",
        cfg.topology.len()
    );
}
