//! Fig 1 at suite scale: the eight applications run back-to-back on
//! all four schedule designs, with per-transition drain cycles and
//! store-instruction costs (Section V) next to each phase's measured
//! latency.
//!
//! ```text
//! cargo run --release -p smart-bench --bin reconfig_schedule [--quick]
//! ```

use smart_bench::{AppSchedule, RunPlan, ScheduleMatrix};
use smart_core::config::NocConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let plan = if quick {
        RunPlan::quick()
    } else {
        RunPlan::default()
    };
    let cfg = NocConfig::paper_4x4();
    let outcome = ScheduleMatrix::new(cfg.clone(), AppSchedule::apps(plan)).run_instrumented();

    println!(
        "Multi-application schedules (Fig 1 / Section V), {} worker threads:",
        outcome.worker_threads
    );
    for result in outcome.reports {
        let report = result.expect("every transition drains within the budget");
        println!();
        println!("{report}");
    }
    println!();
    println!(
        "Only the SMART designs pay the Section V reconfiguration cost — one\n\
         store per router ({} on this mesh) per application switch; the live\n\
         Reconfigurable design additionally drains in-flight traffic before\n\
         each switch, as the paper requires.",
        cfg.topology.len()
    );
}
