//! Static per-flow report for one application: zero-load latencies,
//! per-flow SMART-vs-Mesh speedups and the hottest links — what the
//! tool flow would print before committing presets.
//!
//! ```text
//! cargo run -p smart-bench --bin flow_report [APP]
//! ```
//!
//! `APP` is one of H264, MMS_DEC, MMS_ENC, MMS_MP3, MWD, VOPD, WLAN,
//! PIP (default VOPD).

use smart_core::analysis::analyze;
use smart_core::compile::compile;
use smart_core::config::NocConfig;
use smart_mapping::MappedApp;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "VOPD".into());
    let Some(graph) = smart_taskgraph::apps::by_name(&want) else {
        eprintln!("unknown app {want}");
        std::process::exit(2);
    };
    let cfg = NocConfig::paper_4x4();
    let mapped = MappedApp::from_graph(&cfg, &graph);
    let app = compile(cfg.topology, cfg.hpc_max, &mapped.routes);
    let report = analyze(cfg.topology, &app, &mapped.rates, cfg.flits_per_packet());

    println!(
        "{} on the {}x{} SMART mesh (HPC_max {}):\n",
        graph.name(),
        cfg.topology.width(),
        cfg.topology.height(),
        cfg.hpc_max
    );
    for (i, f) in graph.flows().iter().enumerate() {
        println!(
            "  f{i}: {} -> {} ({} MB/s)",
            graph.task_name(f.src),
            graph.task_name(f.dst),
            f.bandwidth_mbs
        );
    }
    println!();
    print!("{report}");
    println!();
    println!(
        "zero-load averages: SMART {:.2} cycles; bypass fraction {:.0}%",
        report.avg_zero_load_latency(),
        app.bypass_fraction(cfg.topology) * 100.0
    );
    if report.oversubscribed().is_empty() {
        println!("bandwidth check: all links under 1 flit/cycle — feasible.");
    } else {
        println!(
            "bandwidth check: {} oversubscribed links!",
            report.oversubscribed().len()
        );
    }
}
