//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artifact (Table I, Fig 3,
//! Fig 10a, Fig 10b, …). This library holds the common experiment
//! runner: map an application, build each design, run warm-up +
//! measurement, and collect latency statistics and activity counters.

use smart_core::config::NocConfig;
use smart_core::noc::{Design, DesignKind};
use smart_mapping::MappedApp;
use smart_sim::counters::ActivityCounters;
use smart_sim::BernoulliTraffic;
use smart_taskgraph::TaskGraph;

/// Simulation schedule for one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunPlan {
    /// Warm-up cycles (excluded from stats and counters).
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Drain budget after measurement (delivers in-flight packets).
    pub drain: u64,
    /// Traffic seed.
    pub seed: u64,
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan {
            warmup: 20_000,
            measure: 120_000,
            drain: 20_000,
            seed: 0xC0FFEE,
        }
    }
}

impl RunPlan {
    /// A fast plan for smoke tests.
    #[must_use]
    pub fn quick() -> Self {
        RunPlan {
            warmup: 2_000,
            measure: 20_000,
            drain: 5_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Measured outcome of one (application, design) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Application name.
    pub app: String,
    /// Which design.
    pub design: DesignKind,
    /// Average head-flit network latency (Fig 10a's metric).
    pub avg_latency: f64,
    /// Average full-packet latency.
    pub avg_packet_latency: f64,
    /// Average source-queueing delay.
    pub avg_source_queue: f64,
    /// Packets measured.
    pub packets: u64,
    /// Activity counters over the measured window.
    pub counters: ActivityCounters,
}

/// Map `graph`, build `kind`, run the plan, return the measurements.
#[must_use]
pub fn run_app(cfg: &NocConfig, graph: &TaskGraph, kind: DesignKind, plan: &RunPlan) -> RunResult {
    let mapped = MappedApp::from_graph(cfg, graph);
    run_mapped(cfg, &mapped, kind, plan)
}

/// Run an already-mapped application on `kind`.
#[must_use]
pub fn run_mapped(
    cfg: &NocConfig,
    mapped: &MappedApp,
    kind: DesignKind,
    plan: &RunPlan,
) -> RunResult {
    let mut design = Design::build(kind, cfg, &mapped.routes);
    let mut traffic = match &design {
        Design::Mesh(m) => BernoulliTraffic::new(
            &mapped.rates,
            m.network().flows(),
            cfg.mesh,
            cfg.flits_per_packet(),
            plan.seed,
        ),
        Design::Smart(s) => BernoulliTraffic::new(
            &mapped.rates,
            s.network().flows(),
            cfg.mesh,
            cfg.flits_per_packet(),
            plan.seed,
        ),
        Design::Dedicated(_) => {
            // The dedicated model has no FlowTable; build one from the
            // routes just for src/dst lookup.
            let table = smart_sim::FlowTable::mesh_baseline(cfg.mesh, &mapped.routes);
            BernoulliTraffic::new(
                &mapped.rates,
                &table,
                cfg.mesh,
                cfg.flits_per_packet(),
                plan.seed,
            )
        }
    };
    design.set_stats_from(plan.warmup);
    design.run_with(&mut traffic, plan.warmup);
    design.reset_counters();
    design.run_with(&mut traffic, plan.measure);
    design.drain(plan.drain);
    let stats = design.stats();
    RunResult {
        app: mapped.name.clone(),
        design: kind,
        avg_latency: stats.avg_network_latency(),
        avg_packet_latency: stats.avg_packet_latency(),
        avg_source_queue: stats.avg_source_queue(),
        packets: stats.packets(),
        counters: *design.counters(),
    }
}

/// Run all three designs for every application in the paper's suite.
#[must_use]
pub fn run_suite(cfg: &NocConfig, plan: &RunPlan) -> Vec<RunResult> {
    let mut out = Vec::new();
    for graph in smart_taskgraph::apps::all() {
        let mapped = MappedApp::from_graph(cfg, &graph);
        for kind in DesignKind::ALL {
            out.push(run_mapped(cfg, &mapped, kind, plan));
        }
    }
    out
}

/// Geometric-mean helper for ratio summaries.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    let log_sum: f64 = xs
        .iter()
        .map(|x| {
            assert!(*x > 0.0, "geomean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_taskgraph::apps;

    #[test]
    fn quick_run_produces_sane_latencies() {
        let cfg = NocConfig::paper_4x4();
        let plan = RunPlan::quick();
        let g = apps::pip();
        let smart = run_app(&cfg, &g, DesignKind::Smart, &plan);
        let mesh = run_app(&cfg, &g, DesignKind::Mesh, &plan);
        let ded = run_app(&cfg, &g, DesignKind::Dedicated, &plan);
        assert!(smart.packets > 50, "enough samples: {}", smart.packets);
        assert!(smart.avg_latency >= 1.0);
        assert!(ded.avg_latency >= 1.0);
        assert!(
            mesh.avg_latency > smart.avg_latency,
            "Mesh {} must exceed SMART {}",
            mesh.avg_latency,
            smart.avg_latency
        );
        assert!(
            smart.avg_latency >= ded.avg_latency - 1e-9,
            "SMART {} cannot beat Dedicated {}",
            smart.avg_latency,
            ded.avg_latency
        );
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
