//! Shared helpers for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artifact (Table I, Fig 3,
//! Fig 10a, Fig 10b, …). The experiment runner itself — configure, map,
//! build, drive, measure — is the `smart-harness` crate's [`Experiment`]
//! API, re-exported here; this crate adds the paper-suite fan-out
//! ([`run_suite`]) and small numeric helpers.

pub mod perf;

pub use smart_harness::{
    AppPhase, AppSchedule, CompileMetrics, Drive, Experiment, ExperimentMatrix, ExperimentReport,
    MatrixOutcome, MultiAppExperiment, PhaseTransition, RoutedWorkload, RunPlan, ScheduleDesign,
    ScheduleError, ScheduleMatrix, ScheduleOutcome, ScheduleReport, Workload,
};

use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;

/// Run all three designs for every application in the paper's suite,
/// power breakdown attached. Reports come back application-major in
/// `apps::all()` order, design-minor in [`DesignKind::ALL`] order; the
/// matrix fans cells out across every available core.
#[must_use]
pub fn run_suite(cfg: &NocConfig, plan: &RunPlan) -> Vec<ExperimentReport> {
    ExperimentMatrix::new(cfg.clone())
        .designs(&DesignKind::ALL)
        .workloads(
            smart_taskgraph::apps::all()
                .into_iter()
                .map(Workload::Graph)
                .collect(),
        )
        .plan(*plan)
        .measure_power()
        .run()
}

/// Geometric-mean helper for ratio summaries.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    let log_sum: f64 = xs
        .iter()
        .map(|x| {
            assert!(*x > 0.0, "geomean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_sane_latencies() {
        let cfg = NocConfig::paper_4x4();
        let plan = RunPlan::quick();
        let run = |kind| {
            Experiment::new(cfg.clone())
                .design(kind)
                .workload(Workload::app("PIP"))
                .plan(plan)
                .run()
        };
        let smart = run(DesignKind::Smart);
        let mesh = run(DesignKind::Mesh);
        let ded = run(DesignKind::Dedicated);
        assert!(
            smart.measured_packets > 50,
            "enough samples: {}",
            smart.measured_packets
        );
        assert!(smart.avg_network_latency >= 1.0);
        assert!(ded.avg_network_latency >= 1.0);
        assert!(
            mesh.avg_network_latency > smart.avg_network_latency,
            "Mesh {} must exceed SMART {}",
            mesh.avg_network_latency,
            smart.avg_network_latency
        );
        assert!(
            smart.avg_network_latency >= ded.avg_network_latency - 1e-9,
            "SMART {} cannot beat Dedicated {}",
            smart.avg_network_latency,
            ded.avg_network_latency
        );
    }

    #[test]
    fn suite_covers_apps_by_designs_with_power() {
        let plan = RunPlan {
            warmup: 200,
            measure: 3_000,
            drain: 2_000,
            seed: 0xC0FFEE,
        };
        let results = run_suite(&NocConfig::paper_4x4(), &plan);
        assert_eq!(results.len(), 24, "8 apps x 3 designs");
        assert!(results.iter().all(|r| r.power.is_some()));
        // Application-major, design-minor ordering.
        assert_eq!(results[0].design, DesignKind::Mesh);
        assert_eq!(results[1].design, DesignKind::Smart);
        assert_eq!(results[2].design, DesignKind::Dedicated);
        assert_eq!(results[0].workload, results[2].workload);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
