//! The performance scorecard: wall-clock timing of canonical
//! [`Experiment`]/[`AppSchedule`] cells, emitted as machine-readable
//! `BENCH_<label>.json` so the simulator's perf trajectory is a tracked
//! artifact (committed before/after snapshots live in `benchmarks/`,
//! and CI uploads a fresh JSON on every run).
//!
//! The metric is **simulated cycles per wall-clock second**: every cell
//! drives a full configure→map→build→drive→measure run through the
//! public harness API, so the number reflects what users of
//! [`Experiment`] actually pay per cycle.

use crate::{
    AppSchedule, Experiment, ExperimentReport, MultiAppExperiment, RunPlan, ScheduleDesign,
    Workload,
};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_harness::{SpatialPattern, TemporalModel};
use std::fmt::Write as _;
use std::time::Instant;

/// One timed cell of the perf scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfResult {
    /// Cell name (`fig7_4x4`, `uniform_8x8`, `bursty_8x8`,
    /// `hpc_16x16`, `reconfig_8apps`).
    pub name: String,
    /// Simulated cycles the cell advanced the network.
    pub cycles: u64,
    /// Wall-clock seconds the cell took.
    pub wall_seconds: f64,
    /// `cycles / wall_seconds` — the headline metric.
    pub cycles_per_sec: f64,
    /// Packets delivered over the run (a sanity anchor: a "faster"
    /// engine that delivers different traffic is a broken engine).
    pub packets_delivered: u64,
    /// Peak resident set size of the process so far, in kB (monotonic
    /// across cells; 0 where the platform offers no reading).
    pub peak_rss_kb: u64,
}

/// Time `run`, which must return `(cycles_advanced, packets_delivered)`.
fn time_cell(name: &str, run: impl FnOnce() -> (u64, u64)) -> PerfResult {
    let start = Instant::now();
    let (cycles, packets_delivered) = run();
    let wall_seconds = start.elapsed().as_secs_f64();
    PerfResult {
        name: name.to_owned(),
        cycles,
        wall_seconds,
        cycles_per_sec: cycles as f64 / wall_seconds.max(1e-12),
        packets_delivered,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// `(cycles, packets)` of a finished experiment report.
fn measures(r: &ExperimentReport) -> (u64, u64) {
    (r.total_cycles, r.packets_delivered)
}

/// The canonical cells, in presentation order. `scale` multiplies every
/// cell's measurement window (CI uses `--quick` = 0.1; committed
/// snapshots use 1.0).
#[must_use]
pub fn run_scorecard(scale: f64) -> Vec<PerfResult> {
    let cycles = |base: u64| ((base as f64 * scale) as u64).max(1_000);
    let mut out = Vec::new();

    // Fig 7 walk-through at paper scale: light traffic, mostly-idle
    // routers — measures the engine's per-cycle fixed cost.
    out.push(time_cell("fig7_4x4", || {
        let r = Experiment::new(NocConfig::paper_4x4())
            .workload(Workload::fig7())
            .plan(RunPlan::measure_all(cycles(400_000), 5_000, 0xC0FFEE))
            .run();
        measures(&r)
    }));

    // 8×8 uniform random on the baseline mesh: every router stops every
    // flit, so this is the router-pipeline (BW/SA/ST) hot path — the
    // cell the 1.3× acceptance bar is measured on.
    out.push(time_cell("uniform_8x8", || {
        let r = Experiment::new(NocConfig::scaled(8))
            .design(DesignKind::Mesh)
            .workload(Workload::uniform(64, 0.02, 0x5EED))
            .plan(RunPlan::measure_all(cycles(120_000), 10_000, 0xC0FFEE))
            .run();
        measures(&r)
    }));

    // 8×8 transpose pattern under on/off Markov bursts on SMART: the
    // burst model's extra RNG draw per flow-cycle plus idle/active NIC
    // phases — the cell that tracks the traffic subsystem's cost.
    out.push(time_cell("bursty_8x8", || {
        let r = Experiment::new(NocConfig::scaled(8))
            .workload(Workload::patterned_with(
                SpatialPattern::Transpose,
                TemporalModel::on_off(0.005, 0.005),
                0.03,
            ))
            .plan(RunPlan::measure_all(cycles(120_000), 10_000, 0xC0FFEE))
            .run();
        measures(&r)
    }));

    // 16×16 SMART with HPC_max segmentation: long multi-hop legs,
    // stressing the launch/arrival machinery over a large mesh.
    out.push(time_cell("hpc_16x16", || {
        let r = Experiment::new(NocConfig::scaled(16))
            .design(DesignKind::Smart)
            .workload(Workload::uniform(96, 0.01, 0xFEED))
            .plan(RunPlan::measure_all(cycles(40_000), 10_000, 0xC0FFEE))
            .run();
        measures(&r)
    }));

    // 8×8 torus under tornado traffic on SMART: every route crosses a
    // wrap seam, so this cell regression-gates the wrap-link bypass
    // path the mesh cells never touch.
    out.push(time_cell("torus_8x8", || {
        let r = Experiment::new(NocConfig::scaled_torus(8))
            .design(DesignKind::Smart)
            .workload(Workload::patterned(SpatialPattern::Tornado, 0.02))
            .plan(RunPlan::measure_all(cycles(120_000), 10_000, 0xC0FFEE))
            .run();
        measures(&r)
    }));

    // 32×32 uniform on the baseline mesh: the big-fabric serial
    // reference the sharded conformance battery locks, timed here so
    // large-mesh per-cycle cost is regression-gated on its own.
    out.push(time_cell("uniform_32x32", || {
        let r = Experiment::new(NocConfig::scaled(32))
            .design(DesignKind::Mesh)
            .workload(Workload::uniform(128, 0.02, 0x5EED))
            .plan(RunPlan::measure_all(cycles(40_000), 10_000, 0xC0FFEE))
            .run();
        measures(&r)
    }));

    // 64×64 uniform, the same cell on the serial engine and on the
    // 4-shard engine: the pair that tracks what row-band sharding buys
    // (or costs) on this host. Results are bit-identical by
    // construction — compare the delivered counts — so the only
    // difference is wall clock.
    let big_64x64 = || {
        Experiment::new(NocConfig::scaled(64))
            .design(DesignKind::Mesh)
            .workload(Workload::uniform(256, 0.02, 0x5EED))
            .plan(RunPlan::measure_all(cycles(20_000), 10_000, 0xC0FFEE))
    };
    out.push(time_cell("uniform_64x64", || measures(&big_64x64().run())));
    out.push(time_cell("sharded_64x64", || {
        measures(&big_64x64().sharded(4).run())
    }));

    // The 8-application reconfiguration schedule on the live design:
    // repeated build/drain/store-replay transitions (Fig 1, Section V).
    out.push(time_cell("reconfig_8apps", || {
        let plan = RunPlan::measure_all(cycles(20_000), 5_000, 0xC0FFEE);
        let r = MultiAppExperiment::new(NocConfig::paper_4x4(), AppSchedule::apps(plan))
            .design(ScheduleDesign::Reconfigurable)
            .run()
            .expect("schedule drains");
        // Each phase runs on the freshly reconfigured network (its
        // cycle counter restarts at load), so the schedule's total is
        // the per-phase sum.
        let cycles = r.phases.iter().map(|p| p.total_cycles).sum();
        (cycles, r.packets_delivered())
    }));

    out
}

/// Peak resident set size in kB (`VmHWM` from `/proc/self/status`);
/// 0 on platforms without procfs.
#[must_use]
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Render the scorecard as the `BENCH_*.json` document (schema
/// `smart-bench/perf-v1`). Hand-rolled: cell names are identifiers and
/// every value is numeric, so no escaping is needed.
#[must_use]
pub fn to_json(label: &str, scale: f64, results: &[PerfResult]) -> String {
    assert!(
        label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
        "label must be a file-name-safe identifier, got {label:?}"
    );
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"smart-bench/perf-v1\",");
    let _ = writeln!(s, "  \"label\": \"{label}\",");
    let _ = writeln!(s, "  \"scale\": {scale},");
    s.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {");
        let _ = write!(
            s,
            "\"name\": \"{}\", \"cycles\": {}, \"wall_seconds\": {:.6}, \
             \"cycles_per_sec\": {:.1}, \"packets_delivered\": {}, \"peak_rss_kb\": {}",
            r.name, r.cycles, r.wall_seconds, r.cycles_per_sec, r.packets_delivered, r.peak_rss_kb
        );
        s.push_str(if i + 1 < results.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse the `cycles_per_sec` of one named cell back out of a
/// `BENCH_*.json` document — enough of a reader for
/// `perf_scorecard --baseline` speedup comparisons without a JSON
/// dependency.
#[must_use]
pub fn cycles_per_sec_of(json: &str, cell: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{cell}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let field = line.split("\"cycles_per_sec\": ").nth(1)?;
    field.split([',', '}']).next()?.trim().parse::<f64>().ok()
}

/// Cells timed for less wall-clock than this are excluded from the
/// regression gate: a few milliseconds of wall time puts run-to-run
/// variance at ±30% or worse (observed on `fig7_4x4` and
/// `reconfig_8apps` at `--quick` scale), which no sane tolerance can
/// separate from a real regression.
pub const GATE_MIN_WALL_SECONDS: f64 = 0.05;

/// Regression-gate comparison against a committed `BENCH_*.json`
/// baseline: one failure line per cell whose `cycles_per_sec` fell more
/// than `tolerance` (a fraction, e.g. `0.2` = 20%) below the baseline's.
/// Cells absent from the baseline are skipped — new cells cannot
/// regress — as are cells timed for under [`GATE_MIN_WALL_SECONDS`],
/// whose readings are measurement noise. The baseline must come from
/// the same `--quick`/full scale as `results`; the two scales have
/// different per-cycle cost profiles (warmup and reconfiguration
/// overheads amortize over fewer cycles at `--quick`). An empty return
/// means the gate passes.
///
/// # Panics
///
/// Panics if `tolerance` is outside `[0, 1)`.
#[must_use]
pub fn gate_failures(baseline_json: &str, results: &[PerfResult], tolerance: f64) -> Vec<String> {
    assert!(
        (0.0..1.0).contains(&tolerance),
        "gate tolerance {tolerance} outside [0, 1)"
    );
    let mut out = Vec::new();
    for r in results {
        let Some(base) = cycles_per_sec_of(baseline_json, &r.name) else {
            continue;
        };
        if base <= 0.0 || r.wall_seconds < GATE_MIN_WALL_SECONDS {
            continue;
        }
        let floor = base * (1.0 - tolerance);
        if r.cycles_per_sec < floor {
            out.push(format!(
                "{}: {:.0} cycles/sec is {:.1}% below baseline {:.0} (floor {:.0})",
                r.name,
                r.cycles_per_sec,
                (1.0 - r.cycles_per_sec / base) * 100.0,
                base,
                floor
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(name: &str, cps: f64) -> PerfResult {
        PerfResult {
            name: name.into(),
            cycles: 1_000,
            wall_seconds: 1.0,
            cycles_per_sec: cps,
            packets_delivered: 1,
            peak_rss_kb: 0,
        }
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let baseline = to_json("base", 1.0, &[cell("a", 100_000.0), cell("b", 50_000.0)]);
        // 19% down on one cell, 5% up on the other: inside a 20% gate.
        let now = [cell("a", 81_000.0), cell("b", 52_500.0)];
        assert!(gate_failures(&baseline, &now, 0.2).is_empty());
    }

    #[test]
    fn gate_names_regressed_cells() {
        let baseline = to_json("base", 1.0, &[cell("a", 100_000.0), cell("b", 50_000.0)]);
        let now = [cell("a", 70_000.0), cell("b", 49_000.0)];
        let failures = gate_failures(&baseline, &now, 0.2);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("a:"), "{}", failures[0]);
        // A cell the baseline never measured cannot regress.
        let fresh = [cell("new_cell", 1.0)];
        assert!(gate_failures(&baseline, &fresh, 0.2).is_empty());
    }

    #[test]
    fn gate_skips_noise_dominated_cells() {
        let baseline = to_json("base", 1.0, &[cell("a", 100_000.0)]);
        // A 90% drop — but timed for 2ms, under the noise floor.
        let mut noisy = cell("a", 10_000.0);
        noisy.wall_seconds = 0.002;
        assert!(gate_failures(&baseline, &[noisy], 0.2).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn silly_gate_tolerance_rejected() {
        let _ = gate_failures("{}", &[], 1.0);
    }

    #[test]
    fn json_round_trips_cycles_per_sec() {
        let results = vec![
            PerfResult {
                name: "uniform_8x8".into(),
                cycles: 130_000,
                wall_seconds: 0.5,
                cycles_per_sec: 260_000.0,
                packets_delivered: 42,
                peak_rss_kb: 1234,
            },
            PerfResult {
                name: "fig7_4x4".into(),
                cycles: 10,
                wall_seconds: 0.001,
                cycles_per_sec: 10_000.0,
                packets_delivered: 1,
                peak_rss_kb: 0,
            },
        ];
        let json = to_json("unit", 1.0, &results);
        assert_eq!(cycles_per_sec_of(&json, "uniform_8x8"), Some(260_000.0));
        assert_eq!(cycles_per_sec_of(&json, "fig7_4x4"), Some(10_000.0));
        assert_eq!(cycles_per_sec_of(&json, "missing"), None);
    }

    #[test]
    #[should_panic(expected = "file-name-safe")]
    fn hostile_label_rejected() {
        let _ = to_json("../evil", 1.0, &[]);
    }

    #[test]
    fn rss_reading_is_sane() {
        // On Linux a live process has a nonzero high-water mark.
        #[cfg(target_os = "linux")]
        assert!(peak_rss_kb() > 0);
    }

    #[test]
    fn timed_cell_computes_rate() {
        let r = time_cell("t", || (1_000, 7));
        assert_eq!(r.cycles, 1_000);
        assert_eq!(r.packets_delivered, 7);
        assert!(r.cycles_per_sec > 0.0);
    }
}
