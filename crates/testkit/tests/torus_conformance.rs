//! Torus axis of the conformance matrix: the same invariant battery
//! the mesh matrix runs (delivery, structural link exclusivity,
//! zero-load latency, reconfiguration contract), on an 8×8 torus whose
//! routes cross wrap links. Cell values are locked by their own golden
//! snapshot (`golden/torus_8x8.txt`) so wrap-link behavior cannot
//! drift silently; the mesh matrix golden stays byte-identical.

use smart_core::config::NocConfig;
use smart_harness::{SpatialPattern, Workload};
use smart_testkit::{CaseReport, Conformance, DesignUnderTest, Scenario};
use std::sync::OnceLock;

fn torus_conformance() -> Conformance {
    Conformance {
        cfg: NocConfig::scaled_torus(8),
        ..Conformance::quick()
    }
}

/// Tornado traffic is the wrap-link workout: every mesh route is long
/// and every torus route crosses a seam. Uniform adds irregular pairs.
fn scenarios(cfg: &NocConfig) -> Vec<Scenario> {
    vec![
        Workload::patterned(SpatialPattern::Tornado, 0.005).materialize(cfg),
        Scenario::uniform(cfg, 8, 0.01, 0xD1CE),
    ]
}

fn battery() -> &'static Vec<CaseReport> {
    static MATRIX: OnceLock<Vec<CaseReport>> = OnceLock::new();
    MATRIX.get_or_init(|| {
        let conf = torus_conformance();
        let scenarios = scenarios(&conf.cfg);
        conf.run_matrix(&DesignUnderTest::ALL, &scenarios)
    })
}

#[test]
fn torus_8x8_cell_passes_all_designs() {
    let reports = battery();
    // 4 designs × 2 scenarios, every cell loaded and checked.
    assert_eq!(reports.len(), 8);
    for r in reports.iter() {
        assert!(
            r.packets_injected > 0,
            "{}/{} generated no packets",
            r.design,
            r.scenario
        );
        assert_eq!(
            r.packets_delivered, r.packets_injected,
            "{}/{} dropped packets",
            r.design, r.scenario
        );
        assert!(r.zero_load_flows_checked > 0, "{}/{}", r.design, r.scenario);
    }
    // SMART's bypass must not lose to Mesh on wrap links either.
    for scenario in ["tornado@0.005", "uniform8@0.01"] {
        let latency_of = |design: DesignUnderTest| {
            reports
                .iter()
                .find(|r| r.scenario == scenario && r.design == design.label())
                .map(|r| r.avg_network_latency)
                .unwrap_or_else(|| panic!("missing cell {}/{scenario}", design.label()))
        };
        let mesh = latency_of(DesignUnderTest::Mesh);
        let smart = latency_of(DesignUnderTest::Smart);
        assert!(
            smart <= mesh + 1e-9,
            "{scenario}: SMART {smart} vs Mesh {mesh}"
        );
    }
}

#[test]
fn torus_matrix_matches_golden_snapshot() {
    let reports = battery();
    let got: String = reports
        .iter()
        .map(CaseReport::golden_line)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let expected = include_str!("golden/torus_8x8.txt");
    if got != expected && std::env::var_os("SMART_UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/torus_8x8.txt");
        std::fs::write(path, &got).expect("rewrite golden fixture");
        panic!("golden fixture updated at {path}; rerun without SMART_UPDATE_GOLDEN");
    }
    assert_eq!(
        got, expected,
        "torus conformance cells drifted from the golden snapshot; if the \
         change is intentional, regenerate with SMART_UPDATE_GOLDEN=1"
    );
}

#[test]
fn torus_routes_actually_cross_wrap_links() {
    // Guard against the scenario silently degenerating into mesh-only
    // routes: tornado on an 8×8 torus must use wraparound hops.
    let cfg = NocConfig::scaled_torus(8);
    let scenario = &scenarios(&cfg)[0];
    let wraps = scenario
        .routes
        .iter()
        .flat_map(|(_, r)| r.links(cfg.topology))
        .filter(|l| cfg.topology.is_wrap_link(*l))
        .count();
    assert!(wraps > 0, "no wrap link used by {}", scenario.name);
}
