//! The full conformance matrix: every design under test × every
//! scenario preset, under one fixed seed. This is the differential
//! safety net future scale/perf PRs run against — any change to the
//! engine, compiler or mapping that breaks delivery, link exclusivity
//! or zero-load latency fails here with the (design, scenario) cell
//! named in the panic.

use smart_core::config::NocConfig;
use smart_testkit::{CaseReport, Conformance, DesignUnderTest, Scenario};

fn battery() -> (Conformance, Vec<Scenario>) {
    let conf = Conformance::default();
    let scenarios = Scenario::presets(&conf.cfg);
    (conf, scenarios)
}

#[test]
fn full_matrix_holds_all_invariants() {
    let (conf, scenarios) = battery();
    let reports = conf.run_matrix(&DesignUnderTest::ALL, &scenarios);
    // 4 designs × 11 scenarios — well past the 12-combination floor.
    assert_eq!(reports.len(), 44);
    // Every loaded run actually carried traffic.
    for r in &reports {
        assert!(
            r.packets_injected > 0,
            "{}/{} generated no packets",
            r.design,
            r.scenario
        );
        assert!(r.zero_load_flows_checked > 0, "{}/{}", r.design, r.scenario);
    }
    // The paper's headline ordering, differentially on the same matrix
    // (same seed, same traffic): SMART never loses to Mesh.
    for s in &scenarios {
        let latency_of = |design: DesignUnderTest| {
            reports
                .iter()
                .find(|r| r.scenario == s.name && r.design == design.label())
                .map(|r| r.avg_network_latency)
                .unwrap_or_else(|| panic!("missing cell {}/{}", design.label(), s.name))
        };
        let mesh = latency_of(DesignUnderTest::Mesh);
        let smart = latency_of(DesignUnderTest::Smart);
        assert!(
            smart <= mesh + 1e-9,
            "{}: SMART {smart} vs Mesh {mesh}",
            s.name
        );
    }
}

#[test]
fn matrix_is_deterministic_across_runs() {
    let (conf, scenarios) = battery();
    let subset = [DesignUnderTest::Mesh, DesignUnderTest::Smart];
    let first: Vec<CaseReport> = conf.run_matrix(&subset, &scenarios[..3]);
    let second: Vec<CaseReport> = conf.run_matrix(&subset, &scenarios[..3]);
    assert_eq!(
        first, second,
        "same seed must reproduce byte-identical reports"
    );
}

#[test]
fn scaled_mesh_also_conforms() {
    // The harness is not 4×4-specific: an 8×8 SMART instance passes the
    // same invariants on uniform traffic.
    let cfg = NocConfig::scaled(8);
    let conf = Conformance {
        cfg: cfg.clone(),
        ..Conformance::quick()
    };
    let s = Scenario::uniform(&cfg, 8, 0.01, 0xD1CE);
    for d in [DesignUnderTest::Mesh, DesignUnderTest::Smart] {
        let r = conf.run_case(d, &s);
        assert_eq!(r.packets_delivered, r.packets_injected);
    }
}
