//! The full conformance matrix: every design under test × every
//! scenario preset, under one fixed seed. This is the differential
//! safety net future scale/perf PRs run against — any change to the
//! engine, compiler or mapping that breaks delivery, link exclusivity
//! or zero-load latency fails here with the (design, scenario) cell
//! named in the panic, and the exact cell values are locked by the
//! checked-in golden snapshot (`golden/conformance_matrix.txt`).

use smart_core::config::NocConfig;
use smart_testkit::{CaseReport, Conformance, DesignUnderTest, Scenario};
use std::sync::OnceLock;

/// The 44-cell matrix is expensive; run it once and share it between
/// the invariant, ordering and golden-snapshot tests.
fn battery() -> &'static (Conformance, Vec<Scenario>, Vec<CaseReport>) {
    static MATRIX: OnceLock<(Conformance, Vec<Scenario>, Vec<CaseReport>)> = OnceLock::new();
    MATRIX.get_or_init(|| {
        let conf = Conformance::default();
        let scenarios = Scenario::presets(&conf.cfg);
        let reports = conf.run_matrix(&DesignUnderTest::ALL, &scenarios);
        (conf, scenarios, reports)
    })
}

#[test]
fn full_matrix_holds_all_invariants() {
    let (_, scenarios, reports) = battery();
    // 4 designs × 11 scenarios — well past the 12-combination floor.
    assert_eq!(reports.len(), 44);
    // Every loaded run actually carried traffic.
    for r in reports {
        assert!(
            r.packets_injected > 0,
            "{}/{} generated no packets",
            r.design,
            r.scenario
        );
        assert!(r.zero_load_flows_checked > 0, "{}/{}", r.design, r.scenario);
    }
    // The paper's headline ordering, differentially on the same matrix
    // (same seed, same traffic): SMART never loses to Mesh.
    for s in scenarios {
        let latency_of = |design: DesignUnderTest| {
            reports
                .iter()
                .find(|r| r.scenario == s.name && r.design == design.label())
                .map(|r| r.avg_network_latency)
                .unwrap_or_else(|| panic!("missing cell {}/{}", design.label(), s.name))
        };
        let mesh = latency_of(DesignUnderTest::Mesh);
        let smart = latency_of(DesignUnderTest::Smart);
        assert!(
            smart <= mesh + 1e-9,
            "{}: SMART {smart} vs Mesh {mesh}",
            s.name
        );
    }
}

#[test]
fn matrix_matches_golden_snapshot() {
    // Bit-exact behavioral baseline: deliveries, flit counts and
    // full-precision latencies of all 44 cells. Perf PRs that change
    // any observable cell value must consciously regenerate the
    // fixture (SMART_UPDATE_GOLDEN=1 cargo test -p smart-testkit).
    let (_, _, reports) = battery();
    let got: String = reports
        .iter()
        .map(CaseReport::golden_line)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let expected = include_str!("golden/conformance_matrix.txt");
    if got != expected && std::env::var_os("SMART_UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/conformance_matrix.txt"
        );
        std::fs::write(path, &got).expect("rewrite golden fixture");
        panic!("golden fixture updated at {path}; rerun without SMART_UPDATE_GOLDEN");
    }
    assert_eq!(
        got, expected,
        "conformance matrix drifted from the golden snapshot; if the \
         change is intentional, regenerate with SMART_UPDATE_GOLDEN=1"
    );
}

#[test]
fn matrix_is_deterministic_across_runs() {
    let (conf, scenarios, reports) = battery();
    let subset = [DesignUnderTest::Mesh, DesignUnderTest::Smart];
    let again: Vec<CaseReport> = conf.run_matrix(&subset, &scenarios[..3]);
    let first: Vec<&CaseReport> = reports
        .iter()
        .filter(|r| {
            scenarios[..3].iter().any(|s| s.name == r.scenario)
                && subset.iter().any(|d| d.label() == r.design)
        })
        .collect();
    assert_eq!(first.len(), again.len());
    for (a, b) in first.iter().zip(again.iter()) {
        assert_eq!(*a, b, "same seed must reproduce byte-identical reports");
    }
}

#[test]
fn scaled_mesh_also_conforms() {
    // The harness is not 4×4-specific: an 8×8 SMART instance passes the
    // same invariants on uniform traffic.
    let cfg = NocConfig::scaled(8);
    let conf = Conformance {
        cfg: cfg.clone(),
        ..Conformance::quick()
    };
    let s = Scenario::uniform(&cfg, 8, 0.01, 0xD1CE);
    for d in [DesignUnderTest::Mesh, DesignUnderTest::Smart] {
        let r = conf.run_case(d, &s);
        assert_eq!(r.packets_delivered, r.packets_injected);
    }
}
