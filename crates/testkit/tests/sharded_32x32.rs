//! Sharded-engine axis of the conformance matrix: the full invariant
//! battery (delivery, structural link exclusivity, zero-load latency,
//! reconfiguration contract) on a 32×32 mesh, run once on the serial
//! engine and once with the cycle engine sharded across 4 row bands.
//! The serial cells are locked by their own golden snapshot
//! (`golden/sharded_32x32.txt`) and the sharded cells must reproduce
//! them *byte-identically* — sharding is an execution strategy, never
//! an observable one.
//!
//! The hotspot scenario converges traffic from every band onto two
//! targets in different bands, so cross-shard handoff sits on the
//! critical path of the delivery invariant.

use smart_core::config::NocConfig;
use smart_harness::{SpatialPattern, Workload};
use smart_sim::NodeId;
use smart_testkit::{CaseReport, Conformance, DesignUnderTest, Scenario};
use std::sync::OnceLock;

/// Row-band shards in the sharded battery (32 rows ⇒ 8-row bands).
const SHARDS: usize = 4;

fn conformance(shards: usize) -> Conformance {
    Conformance {
        cfg: NocConfig::scaled(32).sharded(shards),
        run_cycles: 600,
        drain_budget: 10_000,
        zero_load_flow_cap: 2,
        ..Conformance::default()
    }
}

/// Uniform random pairs plus a sampled-background hotspot whose two
/// targets sit in different row bands (rows 8 and 24): every source
/// spends half its budget converging across band boundaries. The
/// hotspot rate is low because 1023 sources share two 8-flit sinks.
fn scenarios(cfg: &NocConfig) -> Vec<Scenario> {
    let hotspot = SpatialPattern::hotspot_sampled(
        vec![NodeId(32 * 8 + 16), NodeId(32 * 24 + 16)],
        0.5,
        3,
        0xC0DE,
    );
    vec![
        Scenario::uniform(cfg, 40, 0.02, 0xD1CE),
        Workload::patterned(hotspot, 0.0004).materialize(cfg),
    ]
}

fn battery(shards: usize) -> Vec<CaseReport> {
    let conf = conformance(shards);
    let scenarios = scenarios(&conf.cfg);
    conf.run_matrix(&DesignUnderTest::ALL, &scenarios)
}

fn serial_battery() -> &'static Vec<CaseReport> {
    static MATRIX: OnceLock<Vec<CaseReport>> = OnceLock::new();
    MATRIX.get_or_init(|| battery(1))
}

fn golden_lines(reports: &[CaseReport]) -> String {
    reports
        .iter()
        .map(CaseReport::golden_line)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn sharded_32x32_cells_pass_all_designs() {
    let reports = serial_battery();
    // 4 designs × 2 scenarios, every cell loaded and checked
    // (`run_case` already asserts delivery and zero-load latency).
    assert_eq!(reports.len(), 8);
    for r in reports.iter() {
        assert!(
            r.packets_injected > 0,
            "{}/{} generated no packets",
            r.design,
            r.scenario
        );
        assert_eq!(
            r.packets_delivered, r.packets_injected,
            "{}/{} dropped packets",
            r.design, r.scenario
        );
    }
}

#[test]
fn sharded_battery_is_byte_identical_to_serial() {
    // The entire battery — Bernoulli load, drain, zero-load probes,
    // the reconfiguration contract — rerun on the 4-shard engine must
    // reproduce the serial snapshot lines byte-for-byte.
    let serial = golden_lines(serial_battery());
    let sharded = golden_lines(&battery(SHARDS));
    assert_eq!(
        serial, sharded,
        "sharded engine diverged from serial on the 32x32 battery"
    );
}

#[test]
fn sharded_32x32_matrix_matches_golden_snapshot() {
    let got = golden_lines(serial_battery());
    let expected = include_str!("golden/sharded_32x32.txt");
    if got != expected && std::env::var_os("SMART_UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/sharded_32x32.txt"
        );
        std::fs::write(path, &got).expect("rewrite golden fixture");
        panic!("golden fixture updated at {path}; rerun without SMART_UPDATE_GOLDEN");
    }
    assert_eq!(
        got, expected,
        "32x32 conformance cells drifted from the golden snapshot; if the \
         change is intentional, regenerate with SMART_UPDATE_GOLDEN=1"
    );
}

#[test]
fn hotspot_routes_cross_band_boundaries() {
    // Guard against the scenario degenerating into intra-band traffic:
    // with 8-row bands, a route crosses a boundary iff its endpoints'
    // rows land in different bands.
    let cfg = conformance(SHARDS).cfg;
    let band = |n: NodeId| cfg.topology.coord(n).y / 8;
    let scenario = &scenarios(&cfg)[1];
    let crossing = scenario
        .routes
        .iter()
        .filter(|(_, r)| band(r.source()) != band(r.destination(cfg.topology)))
        .count();
    assert!(
        crossing > scenario.routes.len() / 2,
        "only {crossing} of {} hotspot routes cross a band boundary",
        scenario.routes.len()
    );
}
