//! Golden-locked saturation cell: 8×8 uniform random at 2.5× the rate
//! of the perf scorecard's `uniform_8x8` cell — deep past the baseline
//! mesh's saturation point, where the engine lives in the
//! full-buffers/credit-stall regime the flit-diet refactor reshaped
//! most. The exact deliveries, flit counts and full-precision latencies
//! of both the mesh and the SMART design are locked byte-for-byte; any
//! engine change that perturbs saturated event ordering fails here.
//!
//! Regenerate intentionally with
//! `SMART_UPDATE_GOLDEN=1 cargo test -p smart-testkit`.

use smart_core::config::NocConfig;
use smart_testkit::{CaseReport, Conformance, DesignUnderTest, Scenario};

#[test]
fn saturated_8x8_matches_golden_snapshot() {
    let cfg = NocConfig::scaled(8);
    let conf = Conformance {
        cfg: cfg.clone(),
        run_cycles: 2_000,
        // Saturated source queues take a long tail to empty; the drain
        // budget is sized for full delivery, which run_case asserts.
        drain_budget: 60_000,
        zero_load_flow_cap: 2,
        ..Conformance::default()
    };
    let scenario = Scenario::uniform(&cfg, 64, 0.05, 0x5EED);
    let got: String = [DesignUnderTest::Mesh, DesignUnderTest::Smart]
        .into_iter()
        .map(|d| conf.run_case(d, &scenario))
        .map(|r| CaseReport::golden_line(&r))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let expected = include_str!("golden/saturation_8x8.txt");
    if got != expected && std::env::var_os("SMART_UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/saturation_8x8.txt"
        );
        std::fs::write(path, &got).expect("rewrite golden fixture");
        panic!("golden fixture updated at {path}; rerun without SMART_UPDATE_GOLDEN");
    }
    assert_eq!(
        got, expected,
        "saturated 8x8 cell drifted from the golden snapshot; if the \
         change is intentional, regenerate with SMART_UPDATE_GOLDEN=1"
    );
}
