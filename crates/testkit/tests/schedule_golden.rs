//! Schedule-level golden snapshot: the 8-application schedule fanned
//! across all four [`ScheduleDesign`]s, locked bit-exactly next to the
//! conformance matrix golden. Any engine/compiler change that shifts a
//! delivery count, latency, drain cycle or store count in the multi-app
//! regime fails here; conscious changes regenerate the fixture with
//! `SMART_UPDATE_GOLDEN=1 cargo test -p smart-testkit`.

use smart_core::config::NocConfig;
use smart_harness::RunPlan;
use smart_testkit::{AppSchedule, ScheduleDesign, ScheduleMatrix, ScheduleReport};
use std::sync::OnceLock;

/// Run the 8-app × 4-design matrix once, shared between the golden and
/// determinism tests.
fn matrix() -> &'static Vec<ScheduleReport> {
    static MATRIX: OnceLock<Vec<ScheduleReport>> = OnceLock::new();
    MATRIX.get_or_init(|| {
        ScheduleMatrix::new(NocConfig::paper_4x4(), AppSchedule::apps(RunPlan::smoke()))
            .designs(&ScheduleDesign::ALL)
            .run()
            .expect("smoke phases drain within the default budget")
    })
}

fn snapshot(reports: &[ScheduleReport]) -> String {
    reports
        .iter()
        .map(ScheduleReport::snapshot)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn schedule_matrix_matches_golden_snapshot() {
    let got = snapshot(matrix());
    let expected = include_str!("golden/schedule_matrix.txt");
    if got != expected && std::env::var_os("SMART_UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/schedule_matrix.txt"
        );
        std::fs::write(path, &got).expect("rewrite golden fixture");
        panic!("golden fixture updated at {path}; rerun without SMART_UPDATE_GOLDEN");
    }
    assert_eq!(
        got, expected,
        "schedule matrix drifted from the golden snapshot; if the \
         change is intentional, regenerate with SMART_UPDATE_GOLDEN=1"
    );
}

#[test]
fn schedule_matrix_shape_is_8_apps_by_4_designs() {
    let reports = matrix();
    assert_eq!(reports.len(), 4, "one report per schedule design");
    for (r, d) in reports.iter().zip(ScheduleDesign::ALL) {
        assert_eq!(r.design, d);
        assert_eq!(r.phases.len(), 8, "{}: eight applications", d.label());
        assert_eq!(r.transitions.len(), 8);
        assert!(r.packets_delivered() > 0, "{}", d.label());
    }
}

#[test]
fn schedule_matrix_is_deterministic_across_runs() {
    let first = matrix();
    let again = ScheduleMatrix::new(NocConfig::paper_4x4(), AppSchedule::apps(RunPlan::smoke()))
        .designs(&[ScheduleDesign::Reconfigurable])
        .run()
        .expect("drains");
    assert_eq!(first[3].snapshot(), again[0].snapshot());
}
