//! Design-space-search golden: an exhaustive sweep of a small, fixed
//! 4 × 4 space — {fig7, app:PIP} × {Mesh, SMART} mapping/design pairs
//! against segmentations HPC_max ∈ {1, 2, 4, 8} — locked bit-exactly
//! next to the other goldens. Every candidate line carries the energy,
//! area and cycle figures the Smapper score is built from, so any drift
//! in the simulator, the compiler, or the area/energy models fails
//! here. Conscious changes regenerate the fixture with
//! `SMART_UPDATE_GOLDEN=1 cargo test -p smart-testkit`.

use smart_core::noc::DesignKind;
use smart_server::{
    DesignCache, PlanSpec, SearchOutcome, SearchSpace, SearchStrategy, TopologySpec, WorkloadSpec,
};
use std::sync::OnceLock;

fn space() -> SearchSpace {
    SearchSpace {
        mesh: 4,
        topology: TopologySpec::Mesh,
        designs: vec![DesignKind::Mesh, DesignKind::Smart],
        workloads: vec![WorkloadSpec::Fig7, WorkloadSpec::App("PIP".to_owned())],
        hpc: vec![1, 2, 4, 8],
        plan: PlanSpec {
            warmup: 0,
            measure: 2_000,
            drain: 2_000,
            seed: 0xC0FFEE,
        },
    }
}

/// Run the sweep once, shared between the golden and shape tests.
fn outcome() -> &'static SearchOutcome {
    static OUTCOME: OnceLock<SearchOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| {
        let space = space();
        let cache = DesignCache::new(space.len());
        smart_server::search::run(&space, SearchStrategy::Exhaustive, 2, &cache, &|_| {})
            .expect("non-empty space searches")
    })
}

#[test]
fn search_matches_golden_snapshot() {
    let got = outcome().render();
    let expected = include_str!("golden/search_4x4.txt");
    if got != expected && std::env::var_os("SMART_UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/search_4x4.txt");
        std::fs::write(path, &got).expect("rewrite golden fixture");
        panic!("golden fixture updated at {path}; rerun without SMART_UPDATE_GOLDEN");
    }
    assert_eq!(
        got, expected,
        "search sweep drifted from the golden snapshot; if the change \
         is intentional, regenerate with SMART_UPDATE_GOLDEN=1"
    );
}

#[test]
fn search_covers_the_full_space_and_crowns_the_argmax() {
    let out = outcome();
    assert_eq!(out.candidates.len(), 16, "4 mapping/design pairs x 4 hpc");
    for candidate in &out.candidates {
        assert!(candidate.energy_pj > 0.0, "{candidate:?}");
        assert!(candidate.area_mm2 > 0.0, "{candidate:?}");
        assert!(candidate.cycles > 0.0, "{candidate:?}");
        assert!(candidate.score.is_finite(), "{candidate:?}");
    }
    let best = out
        .candidates
        .iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .expect("candidates");
    assert_eq!(out.winner_index, best.index);
    assert_eq!(out.winner().score, best.score);
}

#[test]
fn search_is_deterministic_across_thread_counts() {
    let space = space();
    let serial = smart_server::search::run(
        &space,
        SearchStrategy::Exhaustive,
        1,
        &DesignCache::new(space.len()),
        &|_| {},
    )
    .expect("serial sweep");
    assert_eq!(outcome().render(), serial.render());
}
