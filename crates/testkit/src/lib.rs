//! # smart-testkit — cross-design conformance harness
//!
//! Turns the seed's ad-hoc integration checks into a reusable
//! differential battery: every [`DesignUnderTest`] (the paper's three
//! evaluated designs plus the runtime-reconfigurable SMART) is driven
//! through every [`Scenario`] preset (the Fig 7 walk-through, the eight
//! Section VI task-graph applications, and uniform-random Bernoulli
//! traffic) under a **fixed RNG seed**, and three invariant families are
//! asserted on each combination:
//!
//! 1. **Delivery** — every injected packet (and every flit of it) is
//!    delivered once the network drains; the network *does* drain.
//! 2. **Link exclusivity** — flows that share a link must stop at the
//!    routers where the preset hardware cannot disambiguate them
//!    (divergence at the link's sink, convergence at its source), per
//!    the Section IV stop rules. The cycle-accurate engine additionally
//!    asserts per-cycle link exclusivity internally, so any dynamic
//!    violation fails the run itself.
//! 3. **Zero-load latency** — a lone packet's measured latency equals
//!    the analytical prediction: `1 + 3·stops` on SMART, `4·hops + 4`
//!    on the baseline mesh, `1` on the dedicated yardstick.
//!
//! Runs are deterministic: the same [`Conformance`] settings produce
//! byte-identical [`CaseReport`]s, which future scale/perf PRs can diff
//! against a golden matrix.
//!
//! ```
//! use smart_testkit::{Conformance, DesignUnderTest, Scenario};
//!
//! let conf = Conformance::quick();
//! let scenario = Scenario::fig7(&conf.cfg);
//! let report = conf.run_case(DesignUnderTest::Smart, &scenario);
//! assert_eq!(report.packets_delivered, report.packets_injected);
//! ```

pub mod harness;
pub mod scenario;

pub use harness::{CaseReport, Conformance, DesignUnderTest};
pub use scenario::Scenario;

// The multi-app schedule layer shares the conformance matrix's
// four-design axis ([`DesignUnderTest::schedule_design`] maps between
// them); re-export it so schedule-aware conformance consumers need only
// this crate.
pub use smart_harness::{
    AppSchedule, MultiAppExperiment, ScheduleDesign, ScheduleError, ScheduleMatrix, ScheduleReport,
};
