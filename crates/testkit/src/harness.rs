//! The conformance runner: drive one design through one scenario and
//! assert the delivery, link-exclusivity and zero-load invariants.

use crate::scenario::Scenario;
use smart_core::compile::CompiledApp;
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_core::reconfig::ReconfigurableNoc;
use smart_harness::{Experiment, RunPlan};
use smart_sim::traffic::TrafficSource;
use smart_sim::{BernoulliTraffic, Direction, FlowId, FlowTable, LinkId, NodeId, SourceRoute};
use std::collections::BTreeMap;

/// Base address for the memory-mapped preset registers in
/// reconfiguration cases (value is arbitrary; Section V).
const PRESET_BASE_ADDR: u64 = 0x4000_0000;

/// The design axis of the conformance matrix: the paper's three
/// evaluated designs plus the runtime-reconfigurable SMART wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DesignUnderTest {
    /// Baseline mesh (3-cycle router, 1-cycle link).
    Mesh,
    /// SMART with preset bypass.
    Smart,
    /// Ideal per-flow dedicated links.
    Dedicated,
    /// SMART behind [`ReconfigurableNoc`], exercising drain + store
    /// sequence application switching on top of the Smart invariants.
    Reconfigurable,
}

impl DesignUnderTest {
    /// Every design, in presentation order.
    pub const ALL: [DesignUnderTest; 4] = [
        DesignUnderTest::Mesh,
        DesignUnderTest::Smart,
        DesignUnderTest::Dedicated,
        DesignUnderTest::Reconfigurable,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DesignUnderTest::Mesh => "Mesh",
            DesignUnderTest::Smart => "SMART",
            DesignUnderTest::Dedicated => "Dedicated",
            DesignUnderTest::Reconfigurable => "Reconfigurable",
        }
    }

    /// The equivalent multi-app schedule design: the conformance matrix
    /// and [`smart_harness::ScheduleMatrix`] share the same four-design
    /// axis.
    #[must_use]
    pub fn schedule_design(self) -> smart_harness::ScheduleDesign {
        match self {
            DesignUnderTest::Mesh => smart_harness::ScheduleDesign::Mesh,
            DesignUnderTest::Smart => smart_harness::ScheduleDesign::Smart,
            DesignUnderTest::Dedicated => smart_harness::ScheduleDesign::Dedicated,
            DesignUnderTest::Reconfigurable => smart_harness::ScheduleDesign::Reconfigurable,
        }
    }
}

/// Everything measured while checking one (design, scenario) cell.
/// Byte-identical across runs with the same [`Conformance`] settings.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseReport {
    /// Design label.
    pub design: String,
    /// Scenario name.
    pub scenario: String,
    /// Packets offered during the loaded run.
    pub packets_injected: u64,
    /// Packets delivered by the end of the drain.
    pub packets_delivered: u64,
    /// Flits delivered by the end of the drain.
    pub flits_delivered: u64,
    /// Average head-flit network latency over the loaded run.
    pub avg_network_latency: f64,
    /// Flows whose lone-packet latency was checked against prediction.
    pub zero_load_flows_checked: usize,
    /// Links carrying more than one flow (0 means trivially exclusive).
    pub shared_links: usize,
}

impl CaseReport {
    /// One stable line, full float precision — the golden-matrix
    /// snapshot format (`tests/golden/conformance_matrix.txt`).
    #[must_use]
    pub fn golden_line(&self) -> String {
        format!(
            "{}/{} injected={} delivered={} flits={} latency={} zero_load={} shared={}",
            self.design,
            self.scenario,
            self.packets_injected,
            self.packets_delivered,
            self.flits_delivered,
            self.avg_network_latency,
            self.zero_load_flows_checked,
            self.shared_links
        )
    }
}

/// Conformance settings: one fixed seed, one design point, bounded
/// cycle budgets. The defaults suit CI; [`Conformance::quick`] is for
/// smoke tests.
#[derive(Debug, Clone)]
pub struct Conformance {
    /// The design point (Table II by default).
    pub cfg: NocConfig,
    /// Traffic RNG seed shared by every case.
    pub seed: u64,
    /// Cycles of Bernoulli load per case.
    pub run_cycles: u64,
    /// Drain budget after the loaded run.
    pub drain_budget: u64,
    /// At most this many flows get a lone-packet zero-load run.
    pub zero_load_flow_cap: usize,
}

impl Default for Conformance {
    fn default() -> Self {
        Conformance {
            cfg: NocConfig::paper_4x4(),
            seed: 0x5AA7_C0DE,
            run_cycles: 4_000,
            drain_budget: 4_000,
            zero_load_flow_cap: 6,
        }
    }
}

impl Conformance {
    /// A lighter battery for smoke tests and doctests.
    #[must_use]
    pub fn quick() -> Self {
        Conformance {
            run_cycles: 1_000,
            drain_budget: 2_000,
            zero_load_flow_cap: 2,
            ..Conformance::default()
        }
    }

    /// Run every design × every scenario; panics on the first invariant
    /// violation, otherwise returns one report per combination.
    #[must_use]
    pub fn run_matrix(
        &self,
        designs: &[DesignUnderTest],
        scenarios: &[Scenario],
    ) -> Vec<CaseReport> {
        let mut out = Vec::with_capacity(designs.len() * scenarios.len());
        for scenario in scenarios {
            for design in designs {
                out.push(self.run_case(*design, scenario));
            }
        }
        out
    }

    /// Check one (design, scenario) combination.
    ///
    /// # Panics
    ///
    /// Panics if any conformance invariant fails — delivery, structural
    /// link exclusivity, zero-load latency, or (for
    /// [`DesignUnderTest::Reconfigurable`]) the drain + store-sequence
    /// contract.
    #[must_use]
    pub fn run_case(&self, design: DesignUnderTest, scenario: &Scenario) -> CaseReport {
        let ctx = format!("{}/{}", design.label(), scenario.name);
        let table = FlowTable::mesh_baseline(self.cfg.topology, &scenario.routes);

        // --- Invariant 2 (structural): Section IV stop rules. ---
        let compiled = match design {
            DesignUnderTest::Smart | DesignUnderTest::Reconfigurable => {
                let app = smart_core::compile::compile(
                    self.cfg.topology,
                    self.cfg.hpc_max,
                    &scenario.routes,
                );
                check_link_exclusivity(&ctx, &self.cfg, scenario, &app);
                Some(app)
            }
            // The mesh stops at every router and the dedicated design
            // has one private link per flow: exclusive by construction.
            DesignUnderTest::Mesh | DesignUnderTest::Dedicated => None,
        };
        let shared_links = count_shared_links(&self.cfg, &scenario.routes);

        // --- Invariant 1: loaded run must deliver everything. ---
        let (injected, delivered, flits, avg_latency) = match design {
            DesignUnderTest::Reconfigurable => {
                // Same Bernoulli source the Experiment path seeds for
                // the other designs, driven through the wrapper.
                let mut traffic = BernoulliTraffic::new(
                    &scenario.rates,
                    &table,
                    self.cfg.topology,
                    self.cfg.flits_per_packet(),
                    self.seed,
                );
                self.reconfigurable_delivery(&ctx, scenario, &mut traffic)
            }
            _ => {
                let report = Experiment::new(self.cfg.clone())
                    .design(kind_of(design))
                    .plan(RunPlan::measure_all(
                        self.run_cycles,
                        self.drain_budget,
                        self.seed,
                    ))
                    .run_routed(scenario);
                assert!(
                    report.drained,
                    "{ctx}: network failed to drain within {} cycles",
                    self.drain_budget
                );
                (
                    report.packets_injected,
                    report.packets_delivered,
                    report.flits_delivered,
                    report.avg_network_latency,
                )
            }
        };
        assert_eq!(
            delivered, injected,
            "{ctx}: {injected} packets in, only {delivered} out"
        );
        assert_eq!(
            flits,
            delivered * u64::from(self.cfg.flits_per_packet()),
            "{ctx}: flit count disagrees with packet count"
        );

        // --- Invariant 3: lone-packet latency equals the prediction. ---
        let checked = self.check_zero_load(&ctx, design, scenario, compiled.as_ref(), &table);

        CaseReport {
            design: design.label().to_owned(),
            scenario: scenario.name.clone(),
            packets_injected: injected,
            packets_delivered: delivered,
            flits_delivered: flits,
            avg_network_latency: avg_latency,
            zero_load_flows_checked: checked,
            shared_links,
        }
    }

    /// Delivery run for the reconfigurable wrapper, plus its own
    /// contract: load, run, drain, then reload — the store sequence
    /// must be stable across reloads (presets are a pure function of
    /// the routes).
    fn reconfigurable_delivery(
        &self,
        ctx: &str,
        scenario: &Scenario,
        traffic: &mut dyn TrafficSource,
    ) -> (u64, u64, u64, f64) {
        let mut r = ReconfigurableNoc::new(self.cfg.clone(), PRESET_BASE_ADDR);
        let first = r
            .load_app(&scenario.name, &scenario.routes, self.drain_budget)
            .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert_eq!(
            first.drain_cycles, 0,
            "{ctx}: first load has nothing to drain"
        );
        assert!(
            !first.stores.is_empty(),
            "{ctx}: presets must take at least one store"
        );
        let noc = r.noc_mut().expect("app just loaded");
        noc.network_mut().run_with(traffic, self.run_cycles);
        assert!(
            noc.network_mut().drain(self.drain_budget),
            "{ctx}: reconfigurable network failed to drain"
        );
        let c = *noc.network().counters();
        let avg = noc.network().stats().avg_network_latency();
        let second = r
            .load_app(&scenario.name, &scenario.routes, self.drain_budget)
            .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert_eq!(r.reconfig_count(), 2, "{ctx}");
        assert_eq!(
            first.stores, second.stores,
            "{ctx}: store sequence changed across reload"
        );
        (
            c.packets_injected,
            c.packets_delivered,
            c.flits_delivered,
            avg,
        )
    }

    /// Lone-packet runs: measured latency must equal the analytical
    /// zero-load prediction for up to `zero_load_flow_cap` flows.
    fn check_zero_load(
        &self,
        ctx: &str,
        design: DesignUnderTest,
        scenario: &Scenario,
        compiled: Option<&CompiledApp>,
        table: &FlowTable,
    ) -> usize {
        let mut checked = 0;
        for (flow, route) in scenario.routes.iter().take(self.zero_load_flow_cap) {
            let expected = match design {
                DesignUnderTest::Mesh => 4.0 * route.num_hops() as f64 + 4.0,
                DesignUnderTest::Dedicated => {
                    // Private sink: NIC-to-NIC in one cycle. Shared
                    // sink: the paper serializes flows into the
                    // destination NIC through a stop router (+3).
                    let dst = route.destination(self.cfg.topology);
                    let shared = scenario
                        .routes
                        .iter()
                        .any(|(f, r)| f != flow && r.destination(self.cfg.topology) == dst);
                    if shared {
                        4.0
                    } else {
                        1.0
                    }
                }
                DesignUnderTest::Smart | DesignUnderTest::Reconfigurable => {
                    let app = compiled.expect("compiled for SMART designs");
                    app.flows.plan(*flow).zero_load_latency() as f64
                }
            };
            let got = match design {
                DesignUnderTest::Reconfigurable => {
                    let mut traffic = smart_sim::ScriptedTraffic::new(
                        vec![(0, *flow)],
                        self.cfg.flits_per_packet(),
                        table,
                        self.cfg.topology,
                    );
                    let mut r = ReconfigurableNoc::new(self.cfg.clone(), PRESET_BASE_ADDR);
                    r.load_app(&scenario.name, &scenario.routes, self.drain_budget)
                        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                    let noc = r.noc_mut().expect("app just loaded");
                    noc.network_mut().run_with(&mut traffic, 8);
                    assert!(noc.network_mut().drain(1_000), "{ctx}: lone packet stuck");
                    noc.network().stats().avg_network_latency()
                }
                _ => {
                    let report = Experiment::new(self.cfg.clone())
                        .design(kind_of(design))
                        .scripted(vec![(0, *flow)])
                        .plan(RunPlan::measure_all(8, 1_000, self.seed))
                        .run_routed(scenario);
                    assert!(report.drained, "{ctx}: lone packet stuck");
                    report.avg_network_latency
                }
            };
            assert!(
                (got - expected).abs() < 1e-9,
                "{ctx}: flow {flow} zero-load latency {got}, predicted {expected}"
            );
            checked += 1;
        }
        checked
    }
}

fn kind_of(d: DesignUnderTest) -> DesignKind {
    match d {
        DesignUnderTest::Mesh => DesignKind::Mesh,
        DesignUnderTest::Smart | DesignUnderTest::Reconfigurable => DesignKind::Smart,
        DesignUnderTest::Dedicated => DesignKind::Dedicated,
    }
}

/// Per-flow port usage along a route, mirroring the compiler's view:
/// `routers[i]` is entered via `inputs[i]` and left via `outputs[i]`
/// (`Core` at the source / destination); `links[i]` connects
/// `routers[i]` to `routers[i + 1]`.
struct RoutePorts {
    flow: FlowId,
    routers: Vec<NodeId>,
    inputs: Vec<Direction>,
    outputs: Vec<Direction>,
    links: Vec<LinkId>,
}

fn route_ports(cfg: &NocConfig, flow: FlowId, route: &SourceRoute) -> RoutePorts {
    let routers = route.routers(cfg.topology);
    let outputs = route.outputs();
    let mut inputs = Vec::with_capacity(routers.len());
    inputs.push(Direction::Core);
    for o in &outputs[..outputs.len() - 1] {
        inputs.push(o.opposite());
    }
    RoutePorts {
        flow,
        routers,
        inputs,
        outputs,
        links: route.links(cfg.topology),
    }
}

/// Number of mesh links used by more than one flow.
fn count_shared_links(cfg: &NocConfig, routes: &[(FlowId, SourceRoute)]) -> usize {
    let mut users: BTreeMap<LinkId, usize> = BTreeMap::new();
    for (_, route) in routes {
        for link in route.links(cfg.topology) {
            *users.entry(link).or_default() += 1;
        }
    }
    users.values().filter(|&&n| n > 1).count()
}

/// Structural link-exclusivity: the Section IV stop rules, checked as
/// *necessary* conditions against the compiler's stop sets. For every
/// link carried by more than one flow:
///
/// * flows **diverging at the sink** (different outputs there) must all
///   stop at the sink — the bypass mux cannot steer them apart;
/// * flows **converging at the source** (different inputs there) must
///   all stop at the source — the crossbar select cannot arbitrate.
fn check_link_exclusivity(ctx: &str, cfg: &NocConfig, scenario: &Scenario, app: &CompiledApp) {
    let ports: Vec<RoutePorts> = scenario
        .routes
        .iter()
        .map(|(f, r)| route_ports(cfg, *f, r))
        .collect();
    // link -> (flow, index of the link's source router in the route).
    let mut by_link: BTreeMap<LinkId, Vec<(usize, usize)>> = BTreeMap::new();
    for (pi, p) in ports.iter().enumerate() {
        for (i, link) in p.links.iter().enumerate() {
            by_link.entry(*link).or_default().push((pi, i));
        }
    }
    for (link, users) in &by_link {
        if users.len() < 2 {
            continue;
        }
        // Output direction at the sink router (Core when terminating),
        // input direction at the source router (Core when originating).
        let outputs_at_sink: Vec<Direction> = users
            .iter()
            .map(|(pi, i)| ports[*pi].outputs[i + 1])
            .collect();
        let inputs_at_source: Vec<Direction> =
            users.iter().map(|(pi, i)| ports[*pi].inputs[*i]).collect();
        let diverge = outputs_at_sink.windows(2).any(|w| w[0] != w[1]);
        let converge = inputs_at_source.windows(2).any(|w| w[0] != w[1]);
        for (pi, i) in users {
            let p = &ports[*pi];
            let stops = &app.stops[&p.flow];
            if diverge {
                let sink = p.routers[i + 1];
                assert!(
                    stops.contains(&sink),
                    "{ctx}: flows diverge after {link} but {} does not stop at {sink}",
                    p.flow
                );
            }
            if converge {
                let source = p.routers[*i];
                assert!(
                    stops.contains(&source),
                    "{ctx}: flows converge onto {link} but {} does not stop at {source}",
                    p.flow
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_smart_case_passes_and_reports() {
        let conf = Conformance::quick();
        let s = Scenario::fig7(&conf.cfg);
        let r = conf.run_case(DesignUnderTest::Smart, &s);
        assert_eq!(r.design, "SMART");
        assert_eq!(r.packets_delivered, r.packets_injected);
        // Red and blue share link 9→10.
        assert_eq!(r.shared_links, 1);
    }

    #[test]
    fn all_designs_pass_fig7() {
        let conf = Conformance::quick();
        let s = Scenario::fig7(&conf.cfg);
        for d in DesignUnderTest::ALL {
            let r = conf.run_case(d, &s);
            assert!(r.zero_load_flows_checked > 0, "{}", d.label());
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let conf = Conformance::quick();
        let s = Scenario::fig7(&conf.cfg);
        let a = conf.run_case(DesignUnderTest::Smart, &s);
        let b = conf.run_case(DesignUnderTest::Smart, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_link_counter_counts() {
        let cfg = NocConfig::paper_4x4();
        let s = Scenario::fig7(&cfg);
        assert_eq!(count_shared_links(&cfg, &s.routes), 1);
    }
}
