//! Scenario presets: named route sets with per-flow injection rates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smart_core::config::NocConfig;
use smart_core::scenarios::fig7_flows;
use smart_mapping::MappedApp;
use smart_sim::{FlowId, NodeId, SourceRoute};
use smart_taskgraph::apps;

/// A named workload: routed flows plus Bernoulli injection rates,
/// ready to drive any design.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Preset name (`fig7`, an application name, `uniform@<rate>`).
    pub name: String,
    /// Routed flows.
    pub routes: Vec<(FlowId, SourceRoute)>,
    /// Packets-per-cycle injection rate per flow.
    pub rates: Vec<(FlowId, f64)>,
}

impl Scenario {
    /// The Fig 7 "SMART NoC in action" four-flow walk-through, injected
    /// gently so bypass behaviour dominates.
    #[must_use]
    pub fn fig7(cfg: &NocConfig) -> Self {
        let routes: Vec<(FlowId, SourceRoute)> = fig7_flows(cfg.mesh)
            .into_iter()
            .map(|(f, r, _)| (f, r))
            .collect();
        let rates = routes.iter().map(|(f, _)| (*f, 0.02)).collect();
        Scenario {
            name: "fig7".to_owned(),
            routes,
            rates,
        }
    }

    /// One of the paper's eight SoC applications, NMAP-placed and
    /// routed with the paper's bandwidth-derived injection rates.
    #[must_use]
    pub fn app(cfg: &NocConfig, name: &str) -> Self {
        let graph = apps::by_name(name).unwrap_or_else(|| panic!("unknown application {name:?}"));
        let mapped = MappedApp::from_graph(cfg, &graph);
        Scenario {
            name: mapped.name.clone(),
            routes: mapped.routes,
            rates: mapped.rates,
        }
    }

    /// `flows` uniform-random (src, dst) pairs routed XY, each injected
    /// at `rate` packets/cycle. Pair choice is a pure function of
    /// `seed`, so the scenario is reproducible.
    #[must_use]
    pub fn uniform(cfg: &NocConfig, flows: usize, rate: f64, seed: u64) -> Self {
        assert!(flows > 0, "need at least one flow");
        let n = cfg.mesh.len() as u16;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut routes = Vec::with_capacity(flows);
        for i in 0..flows {
            let src = NodeId(rng.gen_range(0..n));
            let dst = loop {
                let d = NodeId(rng.gen_range(0..n));
                if d != src {
                    break d;
                }
            };
            routes.push((FlowId(i as u32), SourceRoute::xy(cfg.mesh, src, dst)));
        }
        let rates = routes.iter().map(|(f, _)| (*f, rate)).collect();
        Scenario {
            name: format!("uniform{flows}@{rate}"),
            routes,
            rates,
        }
    }

    /// The full preset battery: Fig 7, the eight applications, and two
    /// uniform-random Bernoulli loads (light and moderate).
    #[must_use]
    pub fn presets(cfg: &NocConfig) -> Vec<Scenario> {
        let mut v = vec![Scenario::fig7(cfg)];
        for name in [
            "H264", "MMS_DEC", "MMS_ENC", "MMS_MP3", "MWD", "VOPD", "WLAN", "PIP",
        ] {
            v.push(Scenario::app(cfg, name));
        }
        v.push(Scenario::uniform(cfg, 6, 0.01, 0x5EED));
        v.push(Scenario::uniform(cfg, 10, 0.03, 0xFEED));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_battery_covers_the_paper() {
        let cfg = NocConfig::paper_4x4();
        let all = Scenario::presets(&cfg);
        assert_eq!(all.len(), 11, "fig7 + 8 apps + 2 uniform");
        assert!(all.iter().all(|s| !s.routes.is_empty()));
        assert!(all.iter().all(|s| s.routes.len() == s.rates.len()));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let cfg = NocConfig::paper_4x4();
        let a = Scenario::uniform(&cfg, 8, 0.02, 42);
        let b = Scenario::uniform(&cfg, 8, 0.02, 42);
        let c = Scenario::uniform(&cfg, 8, 0.02, 43);
        assert_eq!(a.routes, b.routes);
        assert_ne!(a.routes, c.routes);
    }

    #[test]
    fn uniform_never_self_loops() {
        let cfg = NocConfig::paper_4x4();
        for seed in 0..20 {
            let s = Scenario::uniform(&cfg, 12, 0.01, seed);
            for (_, r) in &s.routes {
                assert_ne!(r.source(), r.destination(cfg.mesh));
            }
        }
    }
}
