//! Scenario presets: named route sets with per-flow injection rates.
//!
//! A scenario *is* a routed workload from the experiment API — the
//! constructors (`Scenario::fig7`, `Scenario::app`,
//! `Scenario::uniform`, `Scenario::presets`) live on
//! [`smart_harness::RoutedWorkload`]; this alias keeps the conformance
//! harness's vocabulary while sharing one implementation with every
//! bench bin and example.

pub use smart_harness::RoutedWorkload as Scenario;
