//! Multi-bit Tx/Rx macro-block assembly (Fig 8).
//!
//! Section V: "we implement a SKILL script to take 1-bit Tx/Rx layout
//! and data width as input and place-and-route them regularly to
//! multi-bit Tx/Rx blocks... we do not use existing commercial
//! place-and-route tools because these tools are often designed for
//! general circuit blocks and cannot leverage the regularity property."
//!
//! We reproduce the geometry: identical 1-bit cells tiled on the wire
//! pitch, a shared enable rail, and the resulting block bounding box /
//! area / pin positions that feed the `.lef` view and the floorplan.

use std::fmt;

/// Physical dimensions of a 1-bit transceiver cell, micrometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGeometry {
    /// Cell width (along the bit stack), µm.
    pub width_um: f64,
    /// Cell height (along the signal direction), µm.
    pub height_um: f64,
}

impl CellGeometry {
    /// The VLR transmitter cell (45 nm SOI; matches the chip's ~mm-pitch
    /// repeated layout density).
    #[must_use]
    pub fn vlr_tx_45nm() -> Self {
        CellGeometry {
            width_um: 2.4,
            height_um: 6.0,
        }
    }

    /// The VLR receiver cell (adds the feedback delay cell and clamp).
    #[must_use]
    pub fn vlr_rx_45nm() -> Self {
        CellGeometry {
            width_um: 2.4,
            height_um: 7.2,
        }
    }

    /// Area of one cell, µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.width_um * self.height_um
    }
}

/// A placed 1-bit cell within a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedCell {
    /// Bit index.
    pub bit: u32,
    /// Lower-left x, µm.
    pub x_um: f64,
    /// Lower-left y, µm.
    pub y_um: f64,
}

/// A W-bit Tx or Rx block assembled from 1-bit cells on a regular pitch.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroBlock {
    /// Block name (e.g. `"vlr_tx32"`).
    pub name: String,
    /// Bits (cells).
    pub bits: u32,
    /// The unit cell.
    pub cell: CellGeometry,
    /// Placement pitch between adjacent bits, µm (≥ cell width; equals
    /// the link wire pitch so bit wires run straight through).
    pub pitch_um: f64,
    /// Cell placements, bit 0 first.
    pub cells: Vec<PlacedCell>,
}

impl MacroBlock {
    /// Tile `bits` cells of `cell` at `pitch_um`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or the pitch is below the cell width
    /// (cells would overlap).
    #[must_use]
    pub fn assemble(name: &str, bits: u32, cell: CellGeometry, pitch_um: f64) -> Self {
        assert!(bits > 0, "a block needs at least one bit");
        assert!(
            pitch_um >= cell.width_um,
            "pitch {pitch_um} µm under the cell width {} µm",
            cell.width_um
        );
        let cells = (0..bits)
            .map(|bit| PlacedCell {
                bit,
                x_um: f64::from(bit) * pitch_um,
                y_um: 0.0,
            })
            .collect();
        MacroBlock {
            name: name.to_owned(),
            bits,
            cell,
            pitch_um,
            cells,
        }
    }

    /// The paper's Fig 8 example: a 32-bit VLR Tx block.
    #[must_use]
    pub fn fig8_tx32() -> Self {
        MacroBlock::assemble("vlr_tx32", 32, CellGeometry::vlr_tx_45nm(), 2.5)
    }

    /// Block width, µm.
    #[must_use]
    pub fn width_um(&self) -> f64 {
        f64::from(self.bits - 1) * self.pitch_um + self.cell.width_um
    }

    /// Block height, µm.
    #[must_use]
    pub fn height_um(&self) -> f64 {
        self.cell.height_um
    }

    /// Bounding-box area, µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.width_um() * self.height_um()
    }

    /// Cell-area utilization (cells / bounding box).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        f64::from(self.bits) * self.cell.area_um2() / self.area_um2()
    }

    /// Pin x-position of `bit`'s data pin (cell centre), µm.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    #[must_use]
    pub fn pin_x_um(&self, bit: u32) -> f64 {
        assert!(bit < self.bits, "bit {bit} out of range");
        f64::from(bit) * self.pitch_um + self.cell.width_um / 2.0
    }

    /// ASCII rendering of the placement (Fig 8-style), one glyph per
    /// cell.
    #[must_use]
    pub fn ascii(&self) -> String {
        let mut s = format!(
            "{}: {} bits, {:.1} x {:.1} um ({:.0} um2, {:.0}% util)\n",
            self.name,
            self.bits,
            self.width_um(),
            self.height_um(),
            self.area_um2(),
            self.utilization() * 100.0
        );
        s.push('|');
        for _ in 0..self.bits {
            s.push_str("Tx|");
        }
        s.push('\n');
        s
    }
}

impl fmt::Display for MacroBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_block_geometry() {
        let b = MacroBlock::fig8_tx32();
        assert_eq!(b.bits, 32);
        assert_eq!(b.cells.len(), 32);
        // 31 pitches + one cell width.
        assert!((b.width_um() - (31.0 * 2.5 + 2.4)).abs() < 1e-9);
        assert!((b.height_um() - 6.0).abs() < 1e-9);
        // Well under 1% of a 1 mm² tile.
        assert!(b.area_um2() < 1000.0);
    }

    #[test]
    fn placement_is_regular() {
        let b = MacroBlock::fig8_tx32();
        for w in b.cells.windows(2) {
            assert!((w[1].x_um - w[0].x_um - b.pitch_um).abs() < 1e-12);
            assert_eq!(w[1].y_um, 0.0);
        }
    }

    #[test]
    fn utilization_reasonable() {
        let b = MacroBlock::fig8_tx32();
        let u = b.utilization();
        assert!(u > 0.8 && u <= 1.0, "regular tiling packs tightly: {u}");
    }

    #[test]
    fn pins_sit_inside_their_cells() {
        let b = MacroBlock::fig8_tx32();
        for bit in 0..32 {
            let x = b.pin_x_um(bit);
            let cell_x = b.cells[bit as usize].x_um;
            assert!(x >= cell_x && x <= cell_x + b.cell.width_um);
        }
    }

    #[test]
    fn rx_is_taller_than_tx() {
        // The Rx cell carries the feedback delay cell + clamp.
        assert!(CellGeometry::vlr_rx_45nm().height_um > CellGeometry::vlr_tx_45nm().height_um);
    }

    #[test]
    #[should_panic(expected = "under the cell width")]
    fn overlapping_pitch_rejected() {
        let _ = MacroBlock::assemble("bad", 8, CellGeometry::vlr_tx_45nm(), 1.0);
    }

    #[test]
    fn ascii_mentions_every_bit() {
        let b = MacroBlock::assemble("t", 4, CellGeometry::vlr_tx_45nm(), 2.5);
        assert_eq!(b.ascii().matches("Tx|").count(), 4);
    }
}
