//! Parameterized Verilog RTL generation for the SMART router and mesh.
//!
//! Section V: "Given router parameters, the tool generates the RTL
//! description of the router in Verilog using an in-house parameterized
//! library of various router components. The input/output ports are
//! clock-gated to reduce unnecessary dynamic power consumption based on
//! the preset signals."
//!
//! The emitted RTL is synthesizable-style structural/behavioural
//! Verilog-2001: input buffers, free-VC queues, round-robin switch
//! allocator, the 5×5 flit crossbar with bypass muxes, the narrow
//! credit crossbar, the double-word configuration register, a router
//! top, and a mesh top that tiles the routers.

use crate::GenParams;
use std::fmt::Write as _;

/// One generated Verilog module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Full Verilog source.
    pub source: String,
}

impl Module {
    /// Count of `always` blocks (a cheap synthesis-shape indicator).
    #[must_use]
    pub fn always_blocks(&self) -> usize {
        self.source.matches("always").count()
    }
}

/// Generate the complete module set for `p`.
#[must_use]
pub fn generate_all(p: &GenParams) -> Vec<Module> {
    vec![
        input_buffer(p),
        free_vc_queue(p),
        rr_arbiter(p),
        bypass_mux(p),
        flit_crossbar(p),
        credit_crossbar(p),
        config_register(p),
        router_top(p),
        mesh_top(p),
    ]
}

fn header(p: &GenParams, what: &str) -> String {
    format!(
        "// -----------------------------------------------------------------\n\
         // SMART NoC generated RTL: {what}\n\
         // config: {}x{} mesh, {}b flit, {} VCs x {} flits, HPC_max={}\n\
         // -----------------------------------------------------------------\n",
        p.mesh_width, p.mesh_height, p.flit_bits, p.num_vcs, p.vc_depth, p.hpc_max
    )
}

/// Input-port buffer: `num_vcs` FIFOs of `vc_depth` flits.
#[must_use]
pub fn input_buffer(p: &GenParams) -> Module {
    let mut s = header(p, "per-port input buffer (VC FIFOs)");
    let w = p.flit_bits;
    let d = p.vc_depth;
    let v = p.num_vcs;
    let vbits = bits(v);
    let dbits = bits(d + 1);
    write!(
        s,
        "module smart_input_buffer #(\n\
         \x20 parameter W = {w},\n\
         \x20 parameter DEPTH = {d},\n\
         \x20 parameter VCS = {v}\n\
         ) (\n\
         \x20 input  wire             clk,\n\
         \x20 input  wire             rst_n,\n\
         \x20 input  wire             clk_en,        // preset clock gate\n\
         \x20 input  wire             wr_valid,\n\
         \x20 input  wire [{vb}:0]      wr_vc,\n\
         \x20 input  wire [W-1:0]     wr_flit,\n\
         \x20 input  wire             rd_valid,\n\
         \x20 input  wire [{vb}:0]      rd_vc,\n\
         \x20 output wire [W-1:0]     rd_flit,\n\
         \x20 output wire [VCS-1:0]   vc_empty\n\
         );\n\
         \x20 reg [W-1:0] mem [0:VCS*DEPTH-1];\n\
         \x20 reg [{db}:0] rd_ptr [0:VCS-1];\n\
         \x20 reg [{db}:0] wr_ptr [0:VCS-1];\n\
         \x20 integer i;\n\
         \x20 always @(posedge clk or negedge rst_n) begin\n\
         \x20   if (!rst_n) begin\n\
         \x20     for (i = 0; i < VCS; i = i + 1) begin\n\
         \x20       rd_ptr[i] <= 0;\n\
         \x20       wr_ptr[i] <= 0;\n\
         \x20     end\n\
         \x20   end else if (clk_en) begin\n\
         \x20     if (wr_valid) begin\n\
         \x20       mem[wr_vc*DEPTH + (wr_ptr[wr_vc] % DEPTH)] <= wr_flit;\n\
         \x20       wr_ptr[wr_vc] <= wr_ptr[wr_vc] + 1;\n\
         \x20     end\n\
         \x20     if (rd_valid) begin\n\
         \x20       rd_ptr[rd_vc] <= rd_ptr[rd_vc] + 1;\n\
         \x20     end\n\
         \x20   end\n\
         \x20 end\n\
         \x20 assign rd_flit = mem[rd_vc*DEPTH + (rd_ptr[rd_vc] % DEPTH)];\n\
         \x20 genvar g;\n\
         \x20 generate\n\
         \x20   for (g = 0; g < VCS; g = g + 1) begin : empties\n\
         \x20     assign vc_empty[g] = (rd_ptr[g] == wr_ptr[g]);\n\
         \x20   end\n\
         \x20 endgenerate\n\
         endmodule\n",
        vb = vbits.saturating_sub(1),
        db = dbits,
    )
    .expect("write to String cannot fail");
    Module {
        name: "smart_input_buffer".into(),
        source: s,
    }
}

/// Free-VC queue at each output port (tracks the leg endpoint's VCs).
#[must_use]
pub fn free_vc_queue(p: &GenParams) -> Module {
    let mut s = header(p, "output-port free VC queue (Section IV flow control)");
    let v = p.num_vcs;
    let vbits = bits(v);
    write!(
        s,
        "module smart_free_vc_queue #(\n\
         \x20 parameter VCS = {v}\n\
         ) (\n\
         \x20 input  wire         clk,\n\
         \x20 input  wire         rst_n,\n\
         \x20 input  wire         clk_en,\n\
         \x20 input  wire         dequeue,     // head flit granted\n\
         \x20 input  wire         credit_in,   // VCid returning on the credit mesh\n\
         \x20 input  wire [{vb}:0]  credit_vc,\n\
         \x20 output wire         available,\n\
         \x20 output wire [{vb}:0]  next_vc\n\
         );\n\
         \x20 reg [{vb}:0] fifo [0:VCS-1];\n\
         \x20 reg [{vb2}:0] head, tail, count;\n\
         \x20 integer i;\n\
         \x20 always @(posedge clk or negedge rst_n) begin\n\
         \x20   if (!rst_n) begin\n\
         \x20     for (i = 0; i < VCS; i = i + 1) fifo[i] <= i[{vb}:0];\n\
         \x20     head <= 0; tail <= 0; count <= VCS[{vb2}:0];\n\
         \x20   end else if (clk_en) begin\n\
         \x20     if (dequeue && count != 0) begin\n\
         \x20       head <= (head + 1) % VCS;\n\
         \x20       count <= count - (credit_in ? 0 : 1);\n\
         \x20     end\n\
         \x20     if (credit_in) begin\n\
         \x20       fifo[tail] <= credit_vc;\n\
         \x20       tail <= (tail + 1) % VCS;\n\
         \x20       count <= count + (dequeue ? 0 : 1);\n\
         \x20     end\n\
         \x20   end\n\
         \x20 end\n\
         \x20 assign available = (count != 0);\n\
         \x20 assign next_vc = fifo[head];\n\
         endmodule\n",
        vb = vbits.saturating_sub(1),
        vb2 = vbits,
    )
    .expect("write to String cannot fail");
    Module {
        name: "smart_free_vc_queue".into(),
        source: s,
    }
}

/// Round-robin arbiter over `N` requesters.
#[must_use]
pub fn rr_arbiter(p: &GenParams) -> Module {
    let n = 5 * p.num_vcs;
    let mut s = header(p, "round-robin switch-allocation arbiter");
    write!(
        s,
        "module smart_rr_arbiter #(\n\
         \x20 parameter N = {n}\n\
         ) (\n\
         \x20 input  wire         clk,\n\
         \x20 input  wire         rst_n,\n\
         \x20 input  wire         clk_en,\n\
         \x20 input  wire [N-1:0] request,\n\
         \x20 output reg  [N-1:0] grant\n\
         );\n\
         \x20 reg [N-1:0] pointer;\n\
         \x20 wire [2*N-1:0] dbl_req = {{request, request}};\n\
         \x20 wire [2*N-1:0] dbl_gnt = dbl_req & ~(dbl_req - {{{{N{{1'b0}}}}, pointer}});\n\
         \x20 always @(*) begin\n\
         \x20   grant = dbl_gnt[N-1:0] | dbl_gnt[2*N-1:N];\n\
         \x20 end\n\
         \x20 always @(posedge clk or negedge rst_n) begin\n\
         \x20   if (!rst_n) pointer <= {{{{(N-1){{1'b0}}}}, 1'b1}};\n\
         \x20   else if (clk_en && |grant) pointer <= {{grant[N-2:0], grant[N-1]}};\n\
         \x20 end\n\
         endmodule\n"
    )
    .expect("write to String cannot fail");
    Module {
        name: "smart_rr_arbiter".into(),
        source: s,
    }
}

/// The bypass mux in front of each crossbar input (Fig 6).
#[must_use]
pub fn bypass_mux(p: &GenParams) -> Module {
    let mut s = header(p, "input bypass mux (link vs buffer, preset)");
    write!(
        s,
        "module smart_bypass_mux #(\n\
         \x20 parameter W = {w}\n\
         ) (\n\
         \x20 input  wire         preset_bypass, // 1: incoming link feeds the crossbar\n\
         \x20 input  wire [W-1:0] link_flit,\n\
         \x20 input  wire         link_valid,\n\
         \x20 input  wire [W-1:0] buffer_flit,\n\
         \x20 input  wire         buffer_valid,\n\
         \x20 output wire [W-1:0] xbar_flit,\n\
         \x20 output wire         xbar_valid\n\
         );\n\
         \x20 assign xbar_flit  = preset_bypass ? link_flit  : buffer_flit;\n\
         \x20 assign xbar_valid = preset_bypass ? link_valid : buffer_valid;\n\
         endmodule\n",
        w = p.flit_bits
    )
    .expect("write to String cannot fail");
    Module {
        name: "smart_bypass_mux".into(),
        source: s,
    }
}

/// The 5×5 flit crossbar with per-output preset/arbitrated selects.
#[must_use]
pub fn flit_crossbar(p: &GenParams) -> Module {
    let mut s = header(p, "5x5 flit crossbar (SMART crossbar, Fig 5)");
    write!(
        s,
        "module smart_flit_xbar #(\n\
         \x20 parameter W = {w}\n\
         ) (\n\
         \x20 input  wire [5*W-1:0] in_flits,   // E,S,W,N,C\n\
         \x20 input  wire [4:0]     in_valid,\n\
         \x20 input  wire [14:0]    sel,        // 3 bits per output\n\
         \x20 output wire [5*W-1:0] out_flits,\n\
         \x20 output wire [4:0]     out_valid\n\
         );\n\
         \x20 genvar o;\n\
         \x20 generate\n\
         \x20   for (o = 0; o < 5; o = o + 1) begin : outs\n\
         \x20     wire [2:0] s = sel[3*o+2:3*o];\n\
         \x20     assign out_flits[W*(o+1)-1:W*o] =\n\
         \x20       (s == 3'd0) ? in_flits[1*W-1:0*W] :\n\
         \x20       (s == 3'd1) ? in_flits[2*W-1:1*W] :\n\
         \x20       (s == 3'd2) ? in_flits[3*W-1:2*W] :\n\
         \x20       (s == 3'd3) ? in_flits[4*W-1:3*W] :\n\
         \x20       (s == 3'd4) ? in_flits[5*W-1:4*W] : {{W{{1'b0}}}};\n\
         \x20     assign out_valid[o] = (s <= 3'd4) ? in_valid[s[2:0]] : 1'b0;\n\
         \x20   end\n\
         \x20 endgenerate\n\
         endmodule\n",
        w = p.flit_bits
    )
    .expect("write to String cannot fail");
    Module {
        name: "smart_flit_xbar".into(),
        source: s,
    }
}

/// The narrow preset credit crossbar (reverse credit mesh).
#[must_use]
pub fn credit_crossbar(p: &GenParams) -> Module {
    let mut s = header(p, "credit crossbar (log2(VCs)+1 bits, reverse credit mesh)");
    write!(
        s,
        "module smart_credit_xbar #(\n\
         \x20 parameter CW = {cw} // log2(VCs) + valid\n\
         ) (\n\
         \x20 input  wire [5*CW-1:0] in_credits,\n\
         \x20 input  wire [14:0]     sel, // 3 bits per credit output\n\
         \x20 output wire [5*CW-1:0] out_credits\n\
         );\n\
         \x20 genvar o;\n\
         \x20 generate\n\
         \x20   for (o = 0; o < 5; o = o + 1) begin : outs\n\
         \x20     wire [2:0] s = sel[3*o+2:3*o];\n\
         \x20     assign out_credits[CW*(o+1)-1:CW*o] =\n\
         \x20       (s == 3'd0) ? in_credits[1*CW-1:0*CW] :\n\
         \x20       (s == 3'd1) ? in_credits[2*CW-1:1*CW] :\n\
         \x20       (s == 3'd2) ? in_credits[3*CW-1:2*CW] :\n\
         \x20       (s == 3'd3) ? in_credits[4*CW-1:3*CW] :\n\
         \x20       (s == 3'd4) ? in_credits[5*CW-1:4*CW] : {{CW{{1'b0}}}};\n\
         \x20   end\n\
         \x20 endgenerate\n\
         endmodule\n",
        cw = p.credit_bits
    )
    .expect("write to String cannot fail");
    Module {
        name: "smart_credit_xbar".into(),
        source: s,
    }
}

/// The memory-mapped double-word configuration register (Section V).
#[must_use]
pub fn config_register(p: &GenParams) -> Module {
    let mut s = header(p, "double-word preset configuration register");
    write!(
        s,
        "module smart_config_reg (\n\
         \x20 input  wire        clk,\n\
         \x20 input  wire        rst_n,\n\
         \x20 input  wire        store_en,    // memory-mapped store strobe\n\
         \x20 input  wire [63:0] store_data,\n\
         \x20 output wire [9:0]  input_mux,   // 2 bits x 5 inputs\n\
         \x20 output wire [14:0] xbar_sel,    // 3 bits x 5 outputs\n\
         \x20 output wire [14:0] credit_sel,  // 3 bits x 5 credit outputs\n\
         \x20 output wire [63:0] raw\n\
         );\n\
         \x20 reg [63:0] cfg;\n\
         \x20 always @(posedge clk or negedge rst_n) begin\n\
         \x20   if (!rst_n) cfg <= 64'd0;\n\
         \x20   else if (store_en) cfg <= store_data;\n\
         \x20 end\n\
         \x20 assign input_mux  = cfg[9:0];\n\
         \x20 assign xbar_sel   = cfg[24:10];\n\
         \x20 assign credit_sel = cfg[39:25];\n\
         \x20 assign raw        = cfg;\n\
         endmodule\n"
    )
    .expect("write to String cannot fail");
    Module {
        name: "smart_config_reg".into(),
        source: s,
    }
}

/// The router top: 5 buffered inputs with bypass, SA, crossbars, config.
#[must_use]
pub fn router_top(p: &GenParams) -> Module {
    let mut s = header(p, "SMART router top (Fig 6)");
    write!(
        s,
        "module smart_router #(\n\
         \x20 parameter W   = {w},\n\
         \x20 parameter CW  = {cw},\n\
         \x20 parameter VCS = {v}\n\
         ) (\n\
         \x20 input  wire            clk,\n\
         \x20 input  wire            rst_n,\n\
         \x20 input  wire            store_en,\n\
         \x20 input  wire [63:0]     store_data,\n\
         \x20 input  wire [5*W-1:0]  link_in,\n\
         \x20 input  wire [4:0]      link_in_valid,\n\
         \x20 output wire [5*W-1:0]  link_out,\n\
         \x20 output wire [4:0]      link_out_valid,\n\
         \x20 input  wire [5*CW-1:0] credit_in,\n\
         \x20 output wire [5*CW-1:0] credit_out\n\
         );\n\
         \x20 wire [9:0]  input_mux;\n\
         \x20 wire [14:0] xbar_sel;\n\
         \x20 wire [14:0] credit_sel;\n\
         \x20 wire [63:0] cfg_raw;\n\
         \x20 smart_config_reg u_cfg (\n\
         \x20   .clk(clk), .rst_n(rst_n), .store_en(store_en),\n\
         \x20   .store_data(store_data), .input_mux(input_mux),\n\
         \x20   .xbar_sel(xbar_sel), .credit_sel(credit_sel), .raw(cfg_raw)\n\
         \x20 );\n\
         \x20 wire [5*W-1:0] xbar_in;\n\
         \x20 wire [4:0]     xbar_in_valid;\n\
         \x20 wire [5*W-1:0] buf_flit;\n\
         \x20 wire [4:0]     buf_valid;\n\
         \x20 genvar i;\n\
         \x20 generate\n\
         \x20   for (i = 0; i < 5; i = i + 1) begin : inputs\n\
         \x20     wire gate_en = (input_mux[2*i+1:2*i] != 2'd0);\n\
         \x20     smart_input_buffer #(.W(W), .DEPTH({d}), .VCS(VCS)) u_buf (\n\
         \x20       .clk(clk), .rst_n(rst_n), .clk_en(gate_en),\n\
         \x20       .wr_valid(link_in_valid[i] & (input_mux[2*i+1:2*i] == 2'd1)),\n\
         \x20       .wr_vc(1'b0), .wr_flit(link_in[W*(i+1)-1:W*i]),\n\
         \x20       .rd_valid(1'b0), .rd_vc(1'b0),\n\
         \x20       .rd_flit(buf_flit[W*(i+1)-1:W*i]), .vc_empty()\n\
         \x20     );\n\
         \x20     assign buf_valid[i] = 1'b0; // driven by SA in the full flow\n\
         \x20     smart_bypass_mux #(.W(W)) u_byp (\n\
         \x20       .preset_bypass(input_mux[2*i+1:2*i] == 2'd2),\n\
         \x20       .link_flit(link_in[W*(i+1)-1:W*i]),\n\
         \x20       .link_valid(link_in_valid[i]),\n\
         \x20       .buffer_flit(buf_flit[W*(i+1)-1:W*i]),\n\
         \x20       .buffer_valid(buf_valid[i]),\n\
         \x20       .xbar_flit(xbar_in[W*(i+1)-1:W*i]),\n\
         \x20       .xbar_valid(xbar_in_valid[i])\n\
         \x20     );\n\
         \x20   end\n\
         \x20 endgenerate\n\
         \x20 smart_flit_xbar #(.W(W)) u_xbar (\n\
         \x20   .in_flits(xbar_in), .in_valid(xbar_in_valid),\n\
         \x20   .sel(xbar_sel), .out_flits(link_out), .out_valid(link_out_valid)\n\
         \x20 );\n\
         \x20 smart_credit_xbar #(.CW(CW)) u_credit_xbar (\n\
         \x20   .in_credits(credit_in), .sel(credit_sel), .out_credits(credit_out)\n\
         \x20 );\n\
         endmodule\n",
        w = p.flit_bits,
        cw = p.credit_bits,
        v = p.num_vcs,
        d = p.vc_depth,
    )
    .expect("write to String cannot fail");
    Module {
        name: "smart_router".into(),
        source: s,
    }
}

/// The mesh top: tile `mesh_width × mesh_height` routers and wire
/// neighbours.
#[must_use]
pub fn mesh_top(p: &GenParams) -> Module {
    let mut s = header(p, "mesh top (tiled routers, Fig 9)");
    let (wd, ht) = (p.mesh_width, p.mesh_height);
    let n = wd as usize * ht as usize;
    write!(
        s,
        "module smart_mesh #(\n\
         \x20 parameter W  = {w},\n\
         \x20 parameter CW = {cw}\n\
         ) (\n\
         \x20 input  wire clk,\n\
         \x20 input  wire rst_n,\n\
         \x20 input  wire [{n}-1:0]      store_en,\n\
         \x20 input  wire [64*{n}-1:0]   store_data,\n\
         \x20 input  wire [{n}*W-1:0]    nic_in,\n\
         \x20 input  wire [{n}-1:0]      nic_in_valid,\n\
         \x20 output wire [{n}*W-1:0]    nic_out,\n\
         \x20 output wire [{n}-1:0]      nic_out_valid\n\
         );\n",
        w = p.flit_bits,
        cw = p.credit_bits,
    )
    .expect("write to String cannot fail");
    // Inter-router nets.
    writeln!(s, "  // east-west and north-south channel nets").expect("infallible");
    for y in 0..ht {
        for x in 0..wd {
            let id = y as usize * wd as usize + x as usize;
            writeln!(s, "  wire [5*W-1:0] r{id}_out; wire [4:0] r{id}_out_v;").expect("infallible");
            writeln!(s, "  wire [5*CW-1:0] r{id}_cr_out;").expect("infallible");
        }
    }
    for y in 0..ht {
        for x in 0..wd {
            let id = y as usize * wd as usize + x as usize;
            writeln!(
                s,
                "  smart_router #(.W(W), .CW(CW), .VCS({v})) u_r{id} (\n\
                 \x20   .clk(clk), .rst_n(rst_n),\n\
                 \x20   .store_en(store_en[{id}]), .store_data(store_data[64*{hi}-1:64*{id}]),\n\
                 \x20   .link_in({{ {east}, {south}, {west}, {north}, nic_in[W*{hi}-1:W*{id}] }}),\n\
                 \x20   .link_in_valid(5'b0),\n\
                 \x20   .link_out(r{id}_out), .link_out_valid(r{id}_out_v),\n\
                 \x20   .credit_in({{5*CW{{1'b0}}}}), .credit_out(r{id}_cr_out)\n\
                 \x20 );",
                v = p.num_vcs,
                hi = id + 1,
                // Each input comes from the neighbour's opposite output
                // slice (E=0,S=1,W=2,N=3,C=4).
                east = neighbour_slice(p, x, y, 1, 0, 2),
                south = neighbour_slice(p, x, y, 0, -1, 3),
                west = neighbour_slice(p, x, y, -1, 0, 0),
                north = neighbour_slice(p, x, y, 0, 1, 1),
            )
            .expect("infallible");
        }
    }
    for id in 0..n {
        writeln!(
            s,
            "  assign nic_out[W*{hi}-1:W*{id}] = r{id}_out[5*W-1:4*W];\n\
             \x20 assign nic_out_valid[{id}] = r{id}_out_v[4];",
            hi = id + 1
        )
        .expect("infallible");
    }
    s.push_str("endmodule\n");
    Module {
        name: "smart_mesh".into(),
        source: s,
    }
}

/// The `out_idx` output slice of the neighbour at `(x+dx, y+dy)`, or
/// all-zeros at the mesh edge.
fn neighbour_slice(p: &GenParams, x: u16, y: u16, dx: i32, dy: i32, out_idx: usize) -> String {
    let nx = i32::from(x) + dx;
    let ny = i32::from(y) + dy;
    if nx < 0 || ny < 0 || nx >= i32::from(p.mesh_width) || ny >= i32::from(p.mesh_height) {
        return "{W{1'b0}}".to_owned();
    }
    let id = ny as usize * p.mesh_width as usize + nx as usize;
    format!("r{id}_out[{hi}*W-1:{lo}*W]", hi = out_idx + 1, lo = out_idx)
}

/// Bits needed for `n` values (≥1).
fn bits(n: usize) -> usize {
    let mut b = 1;
    while (1usize << b) < n {
        b += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GenParams {
        GenParams::paper_4x4()
    }

    #[test]
    fn all_modules_generated_with_unique_names() {
        let mods = generate_all(&params());
        assert_eq!(mods.len(), 9);
        let mut names: Vec<&str> = mods.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9, "module names must be unique");
    }

    #[test]
    fn modules_are_balanced() {
        for m in generate_all(&params()) {
            assert_eq!(
                m.source.matches("module ").count(),
                m.source.matches("endmodule").count(),
                "{}: unbalanced module/endmodule",
                m.name
            );
            let begins = m.source.matches("begin").count();
            let ends = m.source.matches(" end").count() + m.source.matches("\nend").count();
            assert!(
                ends >= begins,
                "{}: begin/end look unbalanced ({begins} vs {ends})",
                m.name
            );
            assert!(
                !m.source.contains('#') || m.source.contains("parameter"),
                "{}: no delay constructs allowed",
                m.name
            );
        }
    }

    #[test]
    fn router_instantiates_all_components() {
        let r = router_top(&params());
        for sub in [
            "smart_config_reg",
            "smart_input_buffer",
            "smart_bypass_mux",
            "smart_flit_xbar",
            "smart_credit_xbar",
        ] {
            assert!(r.source.contains(sub), "router must instantiate {sub}");
        }
        assert!(r.source.contains("clk_en"), "clock gating must be wired");
    }

    #[test]
    fn mesh_instantiates_every_router() {
        let m = mesh_top(&params());
        assert_eq!(m.source.matches("smart_router #").count(), 16);
        // Edge routers get zero-tied neighbours.
        assert!(m.source.contains("{W{1'b0}}"));
    }

    #[test]
    fn parameters_flow_into_text() {
        let p = GenParams {
            flit_bits: 64,
            ..GenParams::paper_4x4()
        };
        let b = input_buffer(&p);
        assert!(b.source.contains("parameter W = 64"));
        let x = flit_crossbar(&p);
        assert!(x.source.contains("parameter W = 64"));
    }

    #[test]
    fn config_register_matches_preset_encoding_layout() {
        // The RTL slices must agree with RouterPreset::encode: input mux
        // bits [9:0], crossbar [24:10], credit [39:25].
        let c = config_register(&params());
        assert!(c.source.contains("cfg[9:0]"));
        assert!(c.source.contains("cfg[24:10]"));
        assert!(c.source.contains("cfg[39:25]"));
    }

    #[test]
    fn buffer_has_sequential_logic() {
        assert!(input_buffer(&params()).always_blocks() >= 1);
        assert!(config_register(&params()).always_blocks() >= 1);
    }
}
