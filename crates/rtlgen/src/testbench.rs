//! Self-checking Verilog testbench generation.
//!
//! Bridges the architectural and RTL layers: given a router's compiled
//! preset (from `smart_core::compile`), emit a testbench that programs
//! the configuration register with the *actual* encoded double word,
//! drives a flit at each bypassed input, and checks it appears at the
//! statically selected output in the same cycle — the single-cycle
//! bypass contract, checked in RTL simulation.

use crate::GenParams;
use smart_core::preset::{InputMux, RouterPreset, XbarSelect};
use smart_sim::Direction;
use std::fmt::Write as _;

/// A generated testbench for one router preset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Testbench {
    /// Module name (`smart_router_tb`).
    pub name: String,
    /// Verilog source.
    pub source: String,
    /// Number of bypass checks emitted.
    pub checks: usize,
}

/// Generate the testbench for `preset`.
#[must_use]
pub fn router_tb(p: &GenParams, preset: &RouterPreset) -> Testbench {
    let w = p.flit_bits;
    let cfg_word = preset.encode();
    let mut s = String::new();
    writeln!(s, "`timescale 1ns/1ps").expect("infallible");
    writeln!(s, "module smart_router_tb;").expect("infallible");
    writeln!(s, "  reg clk = 0; always #0.25 clk = ~clk; // 2 GHz").expect("infallible");
    writeln!(s, "  reg rst_n = 0;").expect("infallible");
    writeln!(s, "  reg store_en = 0;").expect("infallible");
    writeln!(s, "  reg [63:0] store_data = 64'h{cfg_word:016x};").expect("infallible");
    writeln!(s, "  reg  [5*{w}-1:0] link_in = 0;").expect("infallible");
    writeln!(s, "  reg  [4:0] link_in_valid = 0;").expect("infallible");
    writeln!(s, "  wire [5*{w}-1:0] link_out;").expect("infallible");
    writeln!(s, "  wire [4:0] link_out_valid;").expect("infallible");
    writeln!(s, "  integer errors = 0;").expect("infallible");
    writeln!(
        s,
        "  smart_router #(.W({w}), .CW({cw}), .VCS({v})) dut (\n\
         \x20   .clk(clk), .rst_n(rst_n), .store_en(store_en),\n\
         \x20   .store_data(store_data),\n\
         \x20   .link_in(link_in), .link_in_valid(link_in_valid),\n\
         \x20   .link_out(link_out), .link_out_valid(link_out_valid),\n\
         \x20   .credit_in({{5*{cw}{{1'b0}}}}), .credit_out()\n\
         \x20 );",
        cw = p.credit_bits,
        v = p.num_vcs
    )
    .expect("infallible");

    // One combinational check per preset bypass connection.
    let mut checks = 0;
    let mut body = String::new();
    for (o, sel) in preset.xbar.iter().enumerate() {
        let XbarSelect::FromInput(input) = sel else {
            continue;
        };
        if preset.input_mux[input.index()] != Some(InputMux::Bypass) {
            continue;
        }
        let i = input.index();
        let pattern = format!("{w}'h{:x}", 0xA5A5_5A5Au64 & ((1u64 << w.min(63)) - 1));
        writeln!(
            body,
            "    // bypass {} -> {}\n\
             \x20   link_in = 0; link_in_valid = 0;\n\
             \x20   link_in[{w}*{hi}-1 -: {w}] = {pattern};\n\
             \x20   link_in_valid[{i}] = 1'b1;\n\
             \x20   #0.1; // combinational settle within the cycle\n\
             \x20   if (link_out[{w}*{oh}-1 -: {w}] !== {pattern}) begin\n\
             \x20     $display(\"FAIL: bypass {} -> {} corrupted\");\n\
             \x20     errors = errors + 1;\n\
             \x20   end\n\
             \x20   if (link_out_valid[{o}] !== 1'b1) begin\n\
             \x20     $display(\"FAIL: bypass {} -> {} valid not forwarded\");\n\
             \x20     errors = errors + 1;\n\
             \x20   end",
            input,
            Direction::from_index(o),
            input,
            Direction::from_index(o),
            input,
            Direction::from_index(o),
            hi = i + 1,
            oh = o + 1,
        )
        .expect("infallible");
        checks += 1;
    }

    writeln!(s, "  initial begin").expect("infallible");
    writeln!(s, "    #1 rst_n = 1;").expect("infallible");
    writeln!(
        s,
        "    @(posedge clk); store_en = 1; @(posedge clk); store_en = 0;"
    )
    .expect("infallible");
    s.push_str(&body);
    writeln!(
        s,
        "    if (errors == 0) $display(\"PASS: {checks} bypass checks\");\n\
         \x20   else $display(\"FAIL: %0d errors\", errors);\n\
         \x20   $finish;\n\
         \x20 end\n\
         endmodule"
    )
    .expect("infallible");

    Testbench {
        name: "smart_router_tb".into(),
        source: s,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_core::compile::compile;
    use smart_sim::{FlowId, Mesh, NodeId, SourceRoute};

    fn preset_with_bypass() -> RouterPreset {
        // Compile the Fig 7 blue flow and take router 11 (pure bypass
        // W -> S).
        let mesh = Mesh::paper_4x4();
        let route = SourceRoute::from_router_path(
            mesh,
            &[
                NodeId(8),
                NodeId(9),
                NodeId(10),
                NodeId(11),
                NodeId(7),
                NodeId(3),
            ],
        );
        let app = compile(mesh, 8, &[(FlowId(0), route)]);
        app.presets.router(NodeId(11)).clone()
    }

    #[test]
    fn tb_encodes_the_actual_config_word() {
        let p = GenParams::paper_4x4();
        let preset = preset_with_bypass();
        let tb = router_tb(&p, &preset);
        let word = format!("64'h{:016x}", preset.encode());
        assert!(tb.source.contains(&word), "config word must be literal");
    }

    #[test]
    fn tb_checks_every_bypass_connection() {
        let p = GenParams::paper_4x4();
        let preset = preset_with_bypass();
        let tb = router_tb(&p, &preset);
        // Router 11 on the blue path: one bypass (W -> S).
        assert_eq!(tb.checks, 1);
        assert!(tb.source.contains("bypass W -> S"));
        assert!(tb.source.contains("PASS"));
        assert!(tb.source.contains("$finish"));
    }

    #[test]
    fn idle_preset_generates_no_checks() {
        let p = GenParams::paper_4x4();
        let tb = router_tb(&p, &RouterPreset::idle());
        assert_eq!(tb.checks, 0);
    }

    #[test]
    fn tb_is_structurally_balanced() {
        let p = GenParams::paper_4x4();
        let tb = router_tb(&p, &preset_with_bypass());
        assert_eq!(
            tb.source.matches("module").count(),
            tb.source.matches("endmodule").count() * 2,
            "tb instantiates one module and declares one"
        );
        assert!(tb.source.contains("smart_router #("));
    }
}
