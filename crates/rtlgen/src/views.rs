//! Liberty (`.lib`) and LEF (`.lef`) view emission for the Tx/Rx macro
//! blocks.
//!
//! Section V: "the script also generates the timing liberty format
//! (.lib) and the library exchange format (.lef) files to allow the
//! generated layout to be place-and-routed with the router." Timing
//! numbers are not invented here — they come from the calibrated
//! `smart-link` model, so the views stay consistent with Table I.

use crate::macroblock::MacroBlock;
use smart_link::{CalibratedLinkModel, Gbps};
use std::fmt::Write as _;

/// Emit a Liberty timing view for `block`, with the data-path delay
/// taken from `link` at `rate` for a 1 mm hop.
#[must_use]
pub fn liberty(block: &MacroBlock, link: &CalibratedLinkModel, rate: Gbps) -> String {
    let delay_ns = link.delay_ps_per_mm(rate).0 * 1e-3;
    let energy_pj = link.energy_fj_per_bit_mm(rate) * 1e-3;
    let mut s = String::new();
    writeln!(s, "library ({}_lib) {{", block.name).expect("infallible");
    writeln!(s, "  delay_model : table_lookup;").expect("infallible");
    writeln!(s, "  time_unit : \"1ns\";").expect("infallible");
    writeln!(s, "  voltage_unit : \"1V\";").expect("infallible");
    writeln!(s, "  nom_voltage : 0.9;").expect("infallible");
    writeln!(s, "  cell ({}) {{", block.name).expect("infallible");
    writeln!(s, "    area : {:.2};", block.area_um2()).expect("infallible");
    for bit in 0..block.bits {
        writeln!(s, "    pin (d_in[{bit}]) {{ direction : input; }}").expect("infallible");
        writeln!(s, "    pin (d_out[{bit}]) {{").expect("infallible");
        writeln!(s, "      direction : output;").expect("infallible");
        writeln!(s, "      timing () {{").expect("infallible");
        writeln!(s, "        related_pin : \"d_in[{bit}]\";").expect("infallible");
        writeln!(
            s,
            "        cell_rise(scalar) {{ values(\"{delay_ns:.4}\"); }}"
        )
        .expect("infallible");
        writeln!(
            s,
            "        cell_fall(scalar) {{ values(\"{delay_ns:.4}\"); }}"
        )
        .expect("infallible");
        writeln!(s, "      }}").expect("infallible");
        writeln!(
            s,
            "      internal_power () {{ rise_power(scalar) {{ values(\"{energy_pj:.4}\"); }} }}"
        )
        .expect("infallible");
        writeln!(s, "    }}").expect("infallible");
    }
    writeln!(s, "    pin (en) {{ direction : input; }}").expect("infallible");
    writeln!(s, "  }}").expect("infallible");
    writeln!(s, "}}").expect("infallible");
    s
}

/// Emit a LEF physical view for `block`.
#[must_use]
pub fn lef(block: &MacroBlock) -> String {
    let mut s = String::new();
    writeln!(s, "VERSION 5.8 ;").expect("infallible");
    writeln!(s, "MACRO {}", block.name).expect("infallible");
    writeln!(s, "  CLASS BLOCK ;").expect("infallible");
    writeln!(
        s,
        "  SIZE {:.3} BY {:.3} ;",
        block.width_um(),
        block.height_um()
    )
    .expect("infallible");
    for bit in 0..block.bits {
        let x = block.pin_x_um(bit);
        writeln!(s, "  PIN d_in_{bit}").expect("infallible");
        writeln!(s, "    DIRECTION INPUT ;").expect("infallible");
        writeln!(s, "    PORT").expect("infallible");
        writeln!(
            s,
            "      LAYER M4 ; RECT {:.3} 0.000 {:.3} 0.200 ;",
            x - 0.1,
            x + 0.1
        )
        .expect("infallible");
        writeln!(s, "    END").expect("infallible");
        writeln!(s, "  END d_in_{bit}").expect("infallible");
        writeln!(s, "  PIN d_out_{bit}").expect("infallible");
        writeln!(s, "    DIRECTION OUTPUT ;").expect("infallible");
        writeln!(s, "    PORT").expect("infallible");
        writeln!(
            s,
            "      LAYER M4 ; RECT {:.3} {:.3} {:.3} {:.3} ;",
            x - 0.1,
            block.height_um() - 0.2,
            x + 0.1,
            block.height_um()
        )
        .expect("infallible");
        writeln!(s, "    END").expect("infallible");
        writeln!(s, "  END d_out_{bit}").expect("infallible");
    }
    writeln!(s, "END {}", block.name).expect("infallible");
    writeln!(s, "END LIBRARY").expect("infallible");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_link::{CircuitVariant, LinkStyle, WireSpacing};

    fn link() -> CalibratedLinkModel {
        CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Resized2GHz,
            WireSpacing::Double,
        )
    }

    #[test]
    fn liberty_contains_all_pins_and_calibrated_delay() {
        let b = MacroBlock::fig8_tx32();
        let lib = liberty(&b, &link(), Gbps(2.0));
        assert_eq!(lib.matches("pin (d_out[").count(), 32);
        assert_eq!(lib.matches("pin (d_in[").count(), 32);
        // The 2 Gb/s low-swing delay anchor is ~56.5 ps = 0.0565 ns.
        assert!(lib.contains("0.056"), "calibrated delay must appear");
        // Braces balance.
        assert_eq!(lib.matches('{').count(), lib.matches('}').count());
    }

    #[test]
    fn lef_geometry_is_consistent() {
        let b = MacroBlock::fig8_tx32();
        let lef = lef(&b);
        assert!(lef.contains(&format!(
            "SIZE {:.3} BY {:.3} ;",
            b.width_um(),
            b.height_um()
        )));
        assert_eq!(lef.matches("PIN d_in_").count(), 32);
        assert_eq!(lef.matches("PIN d_out_").count(), 32);
        assert_eq!(lef.matches("END LIBRARY").count(), 1);
    }

    #[test]
    fn energy_flows_into_liberty_power() {
        let b = MacroBlock::fig8_tx32();
        let lib = liberty(&b, &link(), Gbps(2.0));
        // 104 fJ/b/mm = 0.104 pJ.
        assert!(lib.contains("0.1040"), "internal_power from Table I");
    }
}
