//! SDC (Synopsys Design Constraints) generation.
//!
//! The timing-closure side of the paper's claim: the clock is 2 GHz and
//! a bypass path must cross up to `HPC_max` hops of crossbars + links
//! within that single cycle. The constraints encode exactly that — a
//! `create_clock`, per-hop `set_max_delay` budgets derived from the
//! calibrated link model, and false paths through the quasi-static
//! configuration registers.

use crate::GenParams;
use smart_link::units::Gbps;
use smart_link::CalibratedLinkModel;
use std::fmt::Write as _;

/// Generate the SDC file for `p`, budgeting link delays from `link` at
/// the design clock.
#[must_use]
pub fn sdc(p: &GenParams, link: &CalibratedLinkModel, clock_ghz: f64) -> String {
    let period_ns = 1.0 / clock_ghz;
    let hop_delay_ns = link.delay_ps_per_mm(Gbps(clock_ghz)).0 * 1e-3 * p.hop_mm;
    let bypass_budget_ns = hop_delay_ns * p.hpc_max as f64;
    let setup_margin_ns = period_ns - bypass_budget_ns;
    let mut s = String::new();
    writeln!(s, "# SMART NoC timing constraints (generated)").expect("infallible");
    writeln!(
        s,
        "create_clock -name clk -period {period_ns:.3} [get_ports clk]"
    )
    .expect("infallible");
    writeln!(s, "set_clock_uncertainty 0.010 [get_clocks clk]").expect("infallible");
    writeln!(s).expect("infallible");
    writeln!(
        s,
        "# Single-cycle multi-hop bypass: up to {} hops of crossbar+link",
        p.hpc_max
    )
    .expect("infallible");
    writeln!(
        s,
        "# {:.1} ps/hop x {} hops = {:.3} ns of the {:.3} ns period",
        hop_delay_ns * 1e3,
        p.hpc_max,
        bypass_budget_ns,
        period_ns
    )
    .expect("infallible");
    writeln!(
        s,
        "set_max_delay {bypass_budget_ns:.3} -from [get_ports link_in*] -to [get_ports link_out*]"
    )
    .expect("infallible");
    writeln!(s).expect("infallible");
    writeln!(
        s,
        "# Preset registers are quasi-static: written only while the\n\
         # network is drained (Section V), so they are false paths."
    )
    .expect("infallible");
    writeln!(s, "set_false_path -from [get_pins u_cfg/cfg_reg*/Q]").expect("infallible");
    writeln!(s).expect("infallible");
    writeln!(
        s,
        "# Credit mesh is as wide as log2(VCs)+1 = {} bits and shares the\n\
         # bypass budget.",
        p.credit_bits
    )
    .expect("infallible");
    writeln!(
        s,
        "set_max_delay {bypass_budget_ns:.3} -from [get_ports credit_in*] -to [get_ports credit_out*]"
    )
    .expect("infallible");
    writeln!(s).expect("infallible");
    writeln!(s, "# Remaining setup margin: {setup_margin_ns:.3} ns").expect("infallible");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_link::{CircuitVariant, LinkStyle, WireSpacing};

    fn link() -> CalibratedLinkModel {
        CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Resized2GHz,
            WireSpacing::Double,
        )
    }

    #[test]
    fn clock_and_budgets_present() {
        let p = GenParams::paper_4x4();
        let text = sdc(&p, &link(), 2.0);
        assert!(text.contains("create_clock -name clk -period 0.500"));
        assert!(text.contains("set_max_delay"));
        assert!(text.contains("set_false_path"));
    }

    #[test]
    fn bypass_budget_fits_the_period() {
        // The whole point: 8 hops of calibrated link delay fit in the
        // 500 ps cycle with positive margin.
        let p = GenParams::paper_4x4();
        let text = sdc(&p, &link(), 2.0);
        let margin: f64 = text
            .lines()
            .find(|l| l.contains("Remaining setup margin"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().trim_end_matches(" ns").parse().ok())
            .expect("margin line present");
        assert!(margin > 0.0, "setup margin must be positive, got {margin}");
        assert!(
            margin < 0.1,
            "margin should be tight at HPC_max, got {margin}"
        );
    }

    #[test]
    fn slower_clock_relaxes_the_budget() {
        let p = GenParams::paper_4x4();
        let at2 = sdc(&p, &link(), 2.0);
        let at1 = sdc(&p, &link(), 1.0);
        assert!(at1.contains("-period 1.000"));
        assert_ne!(at1, at2);
    }
}
