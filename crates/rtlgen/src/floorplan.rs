//! Mesh floorplan generation (Fig 9).
//!
//! Section V: "we tile the routers and connect them as a mesh... the
//! routers are assumed to be 1 mm spaced and the black regions shown are
//! reserved for the cores." The floorplan places one router macro per
//! tile corner, Tx/Rx blocks on each used edge, routes the inter-router
//! channels, and reports area and wirelength.

use crate::macroblock::{CellGeometry, MacroBlock};
use crate::GenParams;
use std::fmt::Write as _;

/// Area model for one router macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterArea {
    /// Buffer array area, µm².
    pub buffers_um2: f64,
    /// Crossbars (flit + credit) + bypass muxes, µm².
    pub crossbar_um2: f64,
    /// Allocators + control + config register, µm².
    pub control_um2: f64,
}

impl RouterArea {
    /// 45 nm-class estimate from the configuration's storage and mux
    /// counts (≈2 µm² per buffered bit, ≈0.55 µm² per crossbar mux-bit).
    #[must_use]
    pub fn estimate(p: &GenParams) -> Self {
        let buffered_bits = 5.0 * p.num_vcs as f64 * p.vc_depth as f64 * f64::from(p.flit_bits);
        let xbar_bits = 25.0 * f64::from(p.flit_bits) + 25.0 * f64::from(p.credit_bits);
        RouterArea {
            buffers_um2: buffered_bits * 2.0,
            crossbar_um2: xbar_bits * 0.55,
            control_um2: 5.0 * p.num_vcs as f64 * 120.0 + 64.0 * 2.0,
        }
    }

    /// Total router area, µm².
    #[must_use]
    pub fn total_um2(&self) -> f64 {
        self.buffers_um2 + self.crossbar_um2 + self.control_um2
    }
}

/// The generated floorplan.
#[derive(Debug, Clone)]
pub struct Floorplan {
    /// Parameters it was built for.
    pub params: GenParams,
    /// Tile pitch, µm (1 mm cores → 1000 µm).
    pub tile_um: f64,
    /// Router macro area.
    pub router: RouterArea,
    /// Tx and Rx blocks per router edge in use.
    pub tx_block: MacroBlock,
    /// Rx block.
    pub rx_block: MacroBlock,
    /// Total router-to-router channel wirelength, mm (both directions,
    /// data + credit).
    pub channel_mm: f64,
}

impl Floorplan {
    /// Build the floorplan for `p` with 1 mm tiles.
    #[must_use]
    pub fn generate(p: &GenParams) -> Self {
        let w = u32::from(p.mesh_width);
        let h = u32::from(p.mesh_height);
        // Directed router-to-router channels: 2 per adjacent pair.
        let pairs = (w - 1) * h + (h - 1) * w;
        let directed = 2.0 * f64::from(pairs);
        // Each channel is 1 mm of data wires plus 1 mm of credit wires
        // (we count physical route length once per bundle).
        let channel_mm = directed * (1.0 + 1.0);
        Floorplan {
            params: p.clone(),
            tile_um: 1000.0 * p.hop_mm,
            router: RouterArea::estimate(p),
            tx_block: MacroBlock::assemble("vlr_tx", p.flit_bits, CellGeometry::vlr_tx_45nm(), 2.5),
            rx_block: MacroBlock::assemble("vlr_rx", p.flit_bits, CellGeometry::vlr_rx_45nm(), 2.5),
            channel_mm,
        }
    }

    /// Total die area of the mesh region, mm².
    #[must_use]
    pub fn die_mm2(&self) -> f64 {
        let w = f64::from(self.params.mesh_width) * self.tile_um * 1e-3;
        let h = f64::from(self.params.mesh_height) * self.tile_um * 1e-3;
        w * h
    }

    /// NoC overhead: fraction of the die taken by routers + transceiver
    /// blocks (the rest is the black core regions of Fig 9).
    #[must_use]
    pub fn noc_area_fraction(&self) -> f64 {
        let n = f64::from(self.params.mesh_width) * f64::from(self.params.mesh_height);
        // Per router: the macro + Tx/Rx blocks on each of its (≤4) mesh
        // edges; count 4 uniformly as the generator provisions all.
        let per_router =
            self.router.total_um2() + 4.0 * (self.tx_block.area_um2() + self.rx_block.area_um2());
        (n * per_router) / (self.die_mm2() * 1e6)
    }

    /// Fig 9-style textual report.
    #[must_use]
    pub fn report(&self) -> String {
        let p = &self.params;
        let mut s = String::new();
        writeln!(
            s,
            "Generated {}x{} SMART NoC layout (Fig 9 analogue)",
            p.mesh_width, p.mesh_height
        )
        .expect("infallible");
        writeln!(
            s,
            "  tile pitch          : {:.0} um ({} mm cores)",
            self.tile_um, p.hop_mm
        )
        .expect("infallible");
        writeln!(s, "  die area            : {:.1} mm2", self.die_mm2()).expect("infallible");
        writeln!(
            s,
            "  router macro        : {:.0} um2 (buffers {:.0}, xbar {:.0}, ctrl {:.0})",
            self.router.total_um2(),
            self.router.buffers_um2,
            self.router.crossbar_um2,
            self.router.control_um2
        )
        .expect("infallible");
        writeln!(
            s,
            "  tx/rx blocks        : {:.0} / {:.0} um2 per edge",
            self.tx_block.area_um2(),
            self.rx_block.area_um2()
        )
        .expect("infallible");
        writeln!(s, "  channel wirelength  : {:.0} mm", self.channel_mm).expect("infallible");
        writeln!(
            s,
            "  NoC area overhead   : {:.2}% (rest reserved for cores)",
            self.noc_area_fraction() * 100.0
        )
        .expect("infallible");
        s.push_str(&self.ascii());
        s
    }

    /// ASCII tile map: `R` routers, `.` core regions.
    #[must_use]
    pub fn ascii(&self) -> String {
        let mut s = String::new();
        for _y in 0..self.params.mesh_height {
            for _x in 0..self.params.mesh_width {
                s.push_str("R....");
            }
            s.push('\n');
            for _ in 0..2 {
                for _x in 0..self.params.mesh_width {
                    s.push_str(".....");
                }
                s.push('\n');
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_floorplan_numbers() {
        let f = Floorplan::generate(&GenParams::paper_4x4());
        assert!((f.die_mm2() - 16.0).abs() < 1e-9, "4x4 of 1 mm tiles");
        // 2·(3·4 + 3·4) = 48 directed channels × (1 data + 1 credit) mm.
        assert!((f.channel_mm - 96.0).abs() < 1e-9);
    }

    #[test]
    fn router_is_a_small_fraction_of_the_tile() {
        let f = Floorplan::generate(&GenParams::paper_4x4());
        let tile_um2 = f.tile_um * f.tile_um;
        assert!(
            f.router.total_um2() < 0.05 * tile_um2,
            "router {:.0} um2 must be well under 5% of a {:.0} um2 tile",
            f.router.total_um2(),
            tile_um2
        );
        let frac = f.noc_area_fraction();
        assert!(frac > 0.0 && frac < 0.05, "NoC overhead {frac}");
    }

    #[test]
    fn buffers_dominate_router_area() {
        // 3200 buffered bits dwarf the 850-mux-bit crossbar at Table II
        // parameters — the motivation for bypassing buffers.
        let r = RouterArea::estimate(&GenParams::paper_4x4());
        assert!(r.buffers_um2 > r.crossbar_um2);
        assert!(r.buffers_um2 > r.control_um2);
    }

    #[test]
    fn report_mentions_key_figures() {
        let f = Floorplan::generate(&GenParams::paper_4x4());
        let rep = f.report();
        assert!(rep.contains("4x4"));
        assert!(rep.contains("16.0 mm2"));
        assert!(rep.contains("channel wirelength"));
        // The ASCII art has one R per router.
        assert_eq!(f.ascii().matches('R').count(), 16);
    }

    #[test]
    fn bigger_mesh_scales_wirelength() {
        let f8 = Floorplan::generate(&GenParams {
            mesh_width: 8,
            mesh_height: 8,
            ..GenParams::paper_4x4()
        });
        // 2·(7·8 + 7·8) = 224 channels × 2 mm.
        assert!((f8.channel_mm - 448.0).abs() < 1e-9);
        assert!((f8.die_mm2() - 64.0).abs() < 1e-9);
    }
}
