//! The SMART NoC implementation tool flow (DATE 2013, Section V).
//!
//! Takes network configuration as input and generates:
//!
//! * [`verilog`] — parameterized RTL of the SMART router and mesh
//!   (clock-gated ports, bypass muxes, preset config registers);
//! * [`macroblock`] — regular placement of 1-bit Tx/Rx cells into
//!   W-bit transceiver blocks (Fig 8);
//! * [`views`] — `.lib` timing and `.lef` physical views for those
//!   blocks, with delays/energies from the calibrated `smart-link`
//!   model;
//! * [`floorplan`] — the tiled mesh layout with area and wirelength
//!   accounting (Fig 9).
//!
//! ```
//! use smart_rtlgen::{GenParams, verilog};
//!
//! let rtl = verilog::generate_all(&GenParams::paper_4x4());
//! assert!(rtl.iter().any(|m| m.name == "smart_router"));
//! ```

pub mod floorplan;
pub mod macroblock;
pub mod sdc;
pub mod testbench;
pub mod verilog;
pub mod views;

pub use floorplan::{Floorplan, RouterArea};
pub use macroblock::{CellGeometry, MacroBlock, PlacedCell};
pub use sdc::sdc;
pub use testbench::{router_tb, Testbench};
pub use verilog::{generate_all, Module};
pub use views::{lef, liberty};

use smart_core::config::NocConfig;

/// Generation parameters (the tool's command line in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Mesh width.
    pub mesh_width: u16,
    /// Mesh height.
    pub mesh_height: u16,
    /// Flit/channel width in bits.
    pub flit_bits: u32,
    /// Credit channel width in bits.
    pub credit_bits: u32,
    /// Virtual channels per port.
    pub num_vcs: usize,
    /// Buffer depth per VC, flits.
    pub vc_depth: usize,
    /// Single-cycle reach, hops.
    pub hpc_max: usize,
    /// Hop pitch, mm.
    pub hop_mm: f64,
}

impl GenParams {
    /// The Table II configuration.
    #[must_use]
    pub fn paper_4x4() -> Self {
        GenParams::from_config(&NocConfig::paper_4x4())
    }

    /// Derive generation parameters from a [`NocConfig`].
    #[must_use]
    pub fn from_config(cfg: &NocConfig) -> Self {
        GenParams {
            mesh_width: cfg.topology.width(),
            mesh_height: cfg.topology.height(),
            flit_bits: cfg.channel_bits,
            credit_bits: cfg.credit_bits,
            num_vcs: cfg.vcs_per_port,
            vc_depth: cfg.vc_depth,
            hpc_max: cfg.hpc_max,
            hop_mm: cfg.hop_mm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_follow_table2() {
        let p = GenParams::paper_4x4();
        assert_eq!(p.mesh_width, 4);
        assert_eq!(p.flit_bits, 32);
        assert_eq!(p.credit_bits, 2);
        assert_eq!(p.num_vcs, 2);
        assert_eq!(p.vc_depth, 10);
        assert_eq!(p.hpc_max, 8);
    }

    #[test]
    fn whole_flow_runs() {
        let p = GenParams::paper_4x4();
        let rtl = verilog::generate_all(&p);
        assert_eq!(rtl.len(), 9);
        let block = MacroBlock::fig8_tx32();
        let lef = views::lef(&block);
        assert!(lef.contains("MACRO vlr_tx32"));
        let plan = Floorplan::generate(&p);
        assert!(plan.report().contains("SMART NoC layout"));
    }
}
