//! Power model: activity counters × per-event energies → the Fig 10b
//! breakdown (Buffer / Allocator / Xbar(flit + credit) + pipeline
//! registers / Link).
//!
//! The paper measured post-layout dynamic power with Synopsys
//! PrimePower on VCD activity from the simulations. We substitute an
//! event-energy model at the same 45 nm / 0.9 V / 2 GHz design point:
//! every buffer write/read, arbitration, crossbar traversal, pipeline
//! latch and link millimetre costs a fixed energy, and clocked
//! structures burn clock energy each cycle their port is enabled —
//! which is where SMART's preset-driven clock gating and the baseline's
//! always-on clocks diverge (Section V: "The input/output ports are
//! clock-gated to reduce unnecessary dynamic power consumption based on
//! the preset signals").
//!
//! Link energy is not hand-tuned: it comes from the calibrated
//! `smart-link` model (Table I: 104 fJ/b/mm for the low-swing SMART
//! link at 2 Gb/s), times the 32-bit channel (2-bit credit channel for
//! credits).

use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use smart_link::{CalibratedLinkModel, CircuitVariant, Gbps, LinkStyle, WireSpacing};
use smart_sim::counters::ActivityCounters;
use std::fmt;

/// Per-event and per-port-cycle energies, picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Writing one 32-bit flit into an input buffer.
    pub buffer_write_pj: f64,
    /// Reading one flit out.
    pub buffer_read_pj: f64,
    /// One switch-allocation request.
    pub sa_request_pj: f64,
    /// One switch-allocation grant (arbiter state update).
    pub sa_grant_pj: f64,
    /// One flit through one 5×5 32-bit crossbar.
    pub xbar_flit_pj: f64,
    /// One credit through one 2-bit credit crossbar.
    pub xbar_credit_pj: f64,
    /// One 32-bit pipeline-register write (the baseline's ST→LT latch).
    pub pipeline_reg_pj: f64,
    /// One flit over one millimetre of data link.
    pub link_flit_pj_per_mm: f64,
    /// One credit over one millimetre of credit link.
    pub link_credit_pj_per_mm: f64,
    /// Clock energy per enabled input port per cycle (buffer FIFO
    /// clocking).
    pub input_clock_pj: f64,
    /// Clock energy per enabled output port per cycle (credit queues +
    /// pipeline registers).
    pub output_clock_pj: f64,
    /// Allocator clock energy, charged per enabled port per cycle.
    pub alloc_clock_pj: f64,
}

impl EnergyModel {
    /// The 45 nm / 0.9 V / 2 GHz model with link energies taken from the
    /// calibrated SMART link (all three designs use SMART links, per the
    /// paper).
    #[must_use]
    pub fn calibrated_45nm(cfg: &NocConfig) -> Self {
        let link = CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Resized2GHz,
            WireSpacing::Double,
        );
        let fj_per_bit_mm = link.energy_fj_per_bit_mm(Gbps(cfg.clock_ghz));
        EnergyModel {
            buffer_write_pj: 3.2,
            buffer_read_pj: 2.2,
            sa_request_pj: 0.3,
            sa_grant_pj: 0.8,
            xbar_flit_pj: 4.0,
            xbar_credit_pj: 0.25,
            pipeline_reg_pj: 0.7,
            link_flit_pj_per_mm: fj_per_bit_mm * f64::from(cfg.channel_bits) * 1e-3,
            link_credit_pj_per_mm: fj_per_bit_mm * f64::from(cfg.credit_bits) * 1e-3,
            input_clock_pj: 0.010,
            output_clock_pj: 0.006,
            alloc_clock_pj: 0.004,
        }
    }
}

/// The four bars of Fig 10b, watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Input buffers (dynamic + clock).
    pub buffer_w: f64,
    /// Switch allocators (dynamic + clock).
    pub allocator_w: f64,
    /// Flit + credit crossbars and pipeline registers.
    pub xbar_pipeline_w: f64,
    /// Data + credit links.
    pub link_w: f64,
}

impl PowerBreakdown {
    /// Total power, watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.buffer_w + self.allocator_w + self.xbar_pipeline_w + self.link_w
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer {:.2} mW | allocator {:.2} mW | xbar+pipe {:.2} mW | link {:.2} mW | total {:.2} mW",
            self.buffer_w * 1e3,
            self.allocator_w * 1e3,
            self.xbar_pipeline_w * 1e3,
            self.link_w * 1e3,
            self.total_w() * 1e3
        )
    }
}

/// Clock-gating discipline of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatingPolicy {
    /// Preset-driven gating: only enabled ports clock (SMART).
    PresetGated,
    /// No gating: every router port clocks every cycle (baseline Mesh).
    Ungated,
}

impl GatingPolicy {
    /// The policy each evaluated design uses.
    #[must_use]
    pub fn for_design(kind: DesignKind) -> Self {
        match kind {
            DesignKind::Mesh => GatingPolicy::Ungated,
            // Dedicated has no routers at all in the power model (the
            // paper plots only its link power), so the policy is moot;
            // its counters carry zero port-cycles either way.
            DesignKind::Smart | DesignKind::Dedicated => GatingPolicy::PresetGated,
        }
    }
}

/// Convert measured activity into the Fig 10b power breakdown.
///
/// # Panics
///
/// Panics if the counters cover zero cycles.
#[must_use]
pub fn breakdown(
    model: &EnergyModel,
    counters: &ActivityCounters,
    clock_ghz: f64,
    gating: GatingPolicy,
) -> PowerBreakdown {
    assert!(counters.cycles > 0, "no cycles measured");
    let seconds = counters.cycles as f64 / (clock_ghz * 1e9);
    let pj = 1e-12;

    let clocked_port_cycles = match gating {
        GatingPolicy::PresetGated => counters.active_port_cycles as f64,
        GatingPolicy::Ungated => (counters.active_port_cycles + counters.gated_port_cycles) as f64,
    };
    // Ports split evenly between inputs and outputs in our routers.
    let input_port_cycles = clocked_port_cycles / 2.0;
    let output_port_cycles = clocked_port_cycles / 2.0;

    let buffer = (counters.buffer_writes as f64 * model.buffer_write_pj
        + counters.buffer_reads as f64 * model.buffer_read_pj
        + input_port_cycles * model.input_clock_pj)
        * pj;
    let allocator = (counters.sa_requests as f64 * model.sa_request_pj
        + counters.sa_grants as f64 * model.sa_grant_pj
        + clocked_port_cycles * model.alloc_clock_pj)
        * pj;
    let xbar = (counters.xbar_flit_traversals as f64 * model.xbar_flit_pj
        + counters.xbar_credit_traversals as f64 * model.xbar_credit_pj
        + counters.pipeline_reg_writes as f64 * model.pipeline_reg_pj
        + output_port_cycles * model.output_clock_pj)
        * pj;
    let link = (counters.link_flit_mm * model.link_flit_pj_per_mm
        + counters.link_credit_mm * model.link_credit_pj_per_mm)
        * pj;

    PowerBreakdown {
        buffer_w: buffer / seconds,
        allocator_w: allocator / seconds,
        xbar_pipeline_w: xbar / seconds,
        link_w: link / seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::calibrated_45nm(&NocConfig::paper_4x4())
    }

    fn counters_with(cycles: u64) -> ActivityCounters {
        ActivityCounters {
            cycles,
            ..ActivityCounters::new()
        }
    }

    #[test]
    fn link_energy_comes_from_table1() {
        let m = model();
        // 104 fJ/b/mm × 32 b = 3.328 pJ/flit/mm.
        assert!((m.link_flit_pj_per_mm - 3.328).abs() < 1e-9);
        // 104 × 2 b = 0.208 pJ/credit/mm.
        assert!((m.link_credit_pj_per_mm - 0.208).abs() < 1e-9);
    }

    #[test]
    fn link_only_counters_give_link_only_power() {
        let m = model();
        let mut c = counters_with(1000);
        c.link_flit_mm = 500.0;
        let p = breakdown(&m, &c, 2.0, GatingPolicy::PresetGated);
        assert!(p.buffer_w == 0.0 && p.allocator_w == 0.0 && p.xbar_pipeline_w == 0.0);
        assert!(p.link_w > 0.0);
        // 500 mm × 3.328 pJ over 500 ns = 3.328 mW.
        assert!((p.link_w - 3.328e-3).abs() < 1e-6, "{}", p.link_w);
    }

    #[test]
    fn ungated_pays_for_idle_ports() {
        let m = model();
        let mut c = counters_with(1000);
        c.active_port_cycles = 40_000; // 40 of 160 ports enabled
        c.gated_port_cycles = 120_000;
        let gated = breakdown(&m, &c, 2.0, GatingPolicy::PresetGated);
        let ungated = breakdown(&m, &c, 2.0, GatingPolicy::Ungated);
        assert!(
            ungated.total_w() > 3.0 * gated.total_w(),
            "ungated {} vs gated {}",
            ungated.total_w(),
            gated.total_w()
        );
    }

    #[test]
    fn buffer_events_charge_the_buffer_bar() {
        let m = model();
        let mut c = counters_with(100);
        c.buffer_writes = 10;
        c.buffer_reads = 10;
        let p = breakdown(&m, &c, 2.0, GatingPolicy::PresetGated);
        assert!(p.buffer_w > 0.0);
        assert_eq!(p.allocator_w, 0.0);
        // 10 writes + 10 reads over 100 cycles at 2 GHz (50 ns).
        let expect = (10.0 * m.buffer_write_pj + 10.0 * m.buffer_read_pj) * 1e-12 / 50e-9;
        assert!((p.buffer_w - expect).abs() < 1e-9);
    }

    #[test]
    fn display_prints_milliwatts() {
        let m = model();
        let mut c = counters_with(100);
        c.link_flit_mm = 10.0;
        let p = breakdown(&m, &c, 2.0, GatingPolicy::PresetGated);
        let s = p.to_string();
        assert!(s.contains("link"), "{s}");
        assert!(s.contains("total"), "{s}");
    }

    #[test]
    #[should_panic(expected = "no cycles measured")]
    fn zero_cycles_rejected() {
        let m = model();
        let c = ActivityCounters::new();
        let _ = breakdown(&m, &c, 2.0, GatingPolicy::PresetGated);
    }

    #[test]
    fn gating_policy_per_design() {
        assert_eq!(
            GatingPolicy::for_design(DesignKind::Mesh),
            GatingPolicy::Ungated
        );
        assert_eq!(
            GatingPolicy::for_design(DesignKind::Smart),
            GatingPolicy::PresetGated
        );
    }
}
