//! Property tests for wrap-aware dimension-order routing on the torus:
//! every route is minimal (each axis independently takes the shorter
//! way around its ring, ties breaking East/North), terminates at its
//! destination, and is never longer than the same pair's mesh route.

use proptest::prelude::*;
use smart_sim::{Direction, Mesh, NodeId, SourceRoute, Topology, Torus};

/// Per-axis hop counts the shorter-way rule demands, as
/// `(east, west, north, south)`.
fn expected_steps(topo: Topology, src: NodeId, dst: NodeId) -> (u16, u16, u16, u16) {
    let (cs, cd) = (topo.coord(src), topo.coord(dst));
    let axis = |from: u16, to: u16, size: u16| -> (u16, u16) {
        let fwd = (to + size - from) % size;
        let bwd = size - fwd;
        if fwd == 0 || fwd <= bwd {
            (fwd, 0)
        } else {
            (0, bwd)
        }
    };
    let (east, west) = axis(cs.x, cd.x, topo.width());
    let (north, south) = axis(cs.y, cd.y, topo.height());
    (east, west, north, south)
}

/// Count the route's steps per direction by walking its links.
fn taken_steps(route: &SourceRoute, topo: Topology) -> (u16, u16, u16, u16) {
    let mut counts = (0u16, 0u16, 0u16, 0u16);
    for link in route.links(topo) {
        match link.dir {
            Direction::East => counts.0 += 1,
            Direction::West => counts.1 += 1,
            Direction::North => counts.2 += 1,
            Direction::South => counts.3 += 1,
            Direction::Core => panic!("a route never uses the core port"),
        }
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Each axis independently takes the direction with fewer hops
    /// around its ring; an exact half-way tie goes East/North.
    #[test]
    fn torus_routes_take_the_shorter_wrap_direction(
        w in 2u16..10,
        h in 2u16..10,
        src in 0u16..100,
        dst in 0u16..100,
    ) {
        let topo = Topology::from(Torus::new(w, h));
        let n = topo.len() as u16;
        let (src, dst) = (NodeId(src % n), NodeId(dst % n));
        prop_assume!(src != dst);
        let route = SourceRoute::dimension_order(topo, src, dst).expect("distinct endpoints");
        prop_assert_eq!(taken_steps(&route, topo), expected_steps(topo, src, dst));
        // Minimality follows: the step counts sum to the wrap-aware
        // distance.
        prop_assert_eq!(route.num_hops() as u16, topo.distance(src, dst));
        prop_assert_eq!(route.destination(topo), dst);
    }

    /// On `2^k × 2^k` fabrics the torus route for any pair is at most
    /// as long as the mesh route (the wrap links can only help), and
    /// both fit the torus header budget `⌊w/2⌋ + ⌊h/2⌋`.
    #[test]
    fn torus_route_never_longer_than_mesh_route_on_pow2(
        k in 1u32..5,
        src in 0u16..1000,
        dst in 0u16..1000,
    ) {
        let edge = 2u16.pow(k);
        let torus = Topology::from(Torus::new(edge, edge));
        let mesh = Topology::from(Mesh::new(edge, edge));
        let n = torus.len() as u16;
        let (src, dst) = (NodeId(src % n), NodeId(dst % n));
        prop_assume!(src != dst);
        let on_torus = SourceRoute::dimension_order(torus, src, dst).expect("distinct endpoints");
        let on_mesh = SourceRoute::dimension_order(mesh, src, dst).expect("distinct endpoints");
        prop_assert!(on_torus.num_hops() <= on_mesh.num_hops());
        prop_assert!(on_torus.num_hops() <= torus.max_route_hops());
    }

    /// Self-routes are a typed error on every topology, never a panic.
    #[test]
    fn self_routes_fail_identically_on_mesh_and_torus(node in 0u16..64) {
        let node = NodeId(node);
        let mesh_err = SourceRoute::dimension_order(Mesh::new(8, 8), node, node);
        let torus_err = SourceRoute::dimension_order(Torus::new(8, 8), node, node);
        prop_assert_eq!(mesh_err.unwrap_err(), torus_err.unwrap_err());
    }
}
