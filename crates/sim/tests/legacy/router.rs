//! The router: input-port VC buffers, switch allocation with
//! virtual-cut-through switch hold, and preset-aware output ports.
//!
//! The pipeline is the paper's 3-stage organization (Fig 6):
//!
//! * **BW** — a flit arriving at the end of cycle *a* is buffer-written
//!   during *a+1*;
//! * **SA** — it may arbitrate from cycle *a+2*;
//! * **ST(+LT)** — on a grant at cycle *g* it traverses the crossbar (and,
//!   for SMART, the entire multi-hop link segment) during *g+1*.
//!
//! Virtual cut-through: a head flit's grant captures the output port and
//! one free VC at the *endpoint of its leg* (which for SMART may be a
//! router several hops away); body flits stream behind it; the tail
//! releases the hold and triggers the credit that frees this router's
//! input VC back at the upstream sender.
//!
//! The state of *all* routers lives in one [`RouterBank`]: flat
//! structure-of-arrays storage indexed by `(router, port, vc)`, so the
//! engine's per-cycle sweep walks dense arrays instead of chasing
//! per-router collections, and switch allocation reuses scratch buffers
//! instead of allocating per call. [`Router`] wraps a 1-router bank for
//! standalone protocol tests.

use crate::arbiter::RoundRobin;
use crate::counters::ActivityCounters;
use crate::flit::{Flit, FlowId, VcId};
use crate::forward::FlowTable;
use crate::topology::{Direction, NodeId, PORTS};
use std::collections::VecDeque;

/// A flit leaving this router, with the context the engine needs to
/// schedule its arrival.
#[derive(Debug, Clone)]
pub struct RouterDeparture {
    /// The flit (its `vc` field already set to the endpoint VC).
    pub flit: Flit,
    /// Output direction granted.
    pub out_dir: Direction,
}

/// A credit released by a departing tail: the upstream sender of
/// `in_dir` gets VC `vc` back.
#[derive(Debug, Clone, Copy)]
pub struct CreditRelease {
    /// Input port whose VC was freed.
    pub in_dir: Direction,
    /// The freed VC.
    pub vc: VcId,
}

/// The hot state of every router in the mesh, stored as flat
/// structure-of-arrays buffers.
///
/// Input-side arrays are indexed by `(router * 5 + port) * num_vcs + vc`,
/// output-side arrays by `router * 5 + port`. The per-cycle sweep reads
/// the dense [`front ready`](RouterBank::receive) array to find
/// SA-eligible VCs without touching the flit queues of idle ports, and
/// [`RouterBank::allocate`] appends into caller-owned scratch vectors so
/// steady-state simulation performs no heap allocation.
#[derive(Debug, Clone)]
pub struct RouterBank {
    n: usize,
    num_vcs: usize,
    depth: usize,
    /// Node id of bank slot 0, for diagnostics: the engine's bank maps
    /// slot `r` to node `r`, while a standalone [`Router`] pins its own
    /// node id here so protocol panics name the right router.
    base_node: u16,
    /// Buffered `(flit, buffer-write cycle)` pairs per input VC.
    queues: Vec<VecDeque<(Flit, u64)>>,
    /// `true` while a packet occupies the VC (head arrived, tail not yet
    /// departed).
    occupied: Vec<bool>,
    /// Cycle at which the front flit becomes SA-eligible (its arrival
    /// + 2 pipeline cycles); `u64::MAX` when the queue is empty.
    front_ready: Vec<u64>,
    /// Flits buffered per router (drives the idle-router skip).
    buffered: Vec<u32>,
    /// Flits buffered across the whole bank.
    total_buffered: u64,
    /// Free VCs at each output's leg endpoint.
    free_vcs: Vec<VecDeque<VcId>>,
    /// `(input port, input vc, endpoint vc)` holding each output's
    /// switch until the tail passes.
    held: Vec<Option<(u8, u8, VcId)>>,
    /// Output arbiters over `ports × vcs` requesters.
    arbs: Vec<RoundRobin>,
    /// Preset clock gating: whether any flow uses each input port.
    in_enabled: Vec<bool>,
    /// Preset clock gating: whether any flow uses each output port.
    out_enabled: Vec<bool>,
    /// Allocation scratch: desired output per `(port, vc)`, reused
    /// across calls.
    want: Vec<Option<u8>>,
    /// Allocation scratch: the arbiter request vector, reused across
    /// calls.
    requests: Vec<bool>,
}

impl RouterBank {
    /// A bank of `n` 5-port routers with `num_vcs` VCs of `depth` flits
    /// per input port.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` or `depth` is zero.
    #[must_use]
    pub fn new(n: usize, num_vcs: usize, depth: usize) -> Self {
        assert!(num_vcs > 0, "need at least one VC");
        assert!(depth > 0, "need at least one buffer slot");
        let nq = n * PORTS * num_vcs;
        let np = n * PORTS;
        RouterBank {
            n,
            num_vcs,
            depth,
            base_node: 0,
            queues: vec![VecDeque::new(); nq],
            occupied: vec![false; nq],
            front_ready: vec![u64::MAX; nq],
            buffered: vec![0; n],
            total_buffered: 0,
            free_vcs: vec![VecDeque::new(); np],
            held: vec![None; np],
            arbs: vec![RoundRobin::new(PORTS * num_vcs); np],
            in_enabled: vec![false; np],
            out_enabled: vec![false; np],
            want: vec![None; PORTS * num_vcs],
            requests: vec![false; PORTS * num_vcs],
        }
    }

    /// Node id of bank slot `r`, for diagnostics.
    fn node_of(&self, r: usize) -> NodeId {
        NodeId(self.base_node + r as u16)
    }

    /// Number of routers in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for a bank of zero routers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Flits buffered across all routers — `0` means every router is
    /// drained (the engine's quiescence check reads this instead of
    /// walking every queue).
    #[must_use]
    pub fn total_buffered(&self) -> u64 {
        self.total_buffered
    }

    /// `true` when no flit is buffered anywhere in router `r`.
    #[must_use]
    pub fn is_drained(&self, r: usize) -> bool {
        self.buffered[r] == 0
    }

    /// Mark input port `dir` of router `r` as used by some flow
    /// (ungated), per presets.
    pub fn enable_input(&mut self, r: usize, dir: Direction) {
        self.in_enabled[r * PORTS + dir.index()] = true;
    }

    /// Mark output port `dir` of router `r` as used and seed its
    /// free-VC queue with the endpoint's `num_vcs` VCs.
    pub fn enable_output(&mut self, r: usize, dir: Direction) {
        let oi = r * PORTS + dir.index();
        self.out_enabled[oi] = true;
        self.free_vcs[oi] = (0..self.num_vcs as u8).map(VcId).collect();
    }

    /// Number of clock-enabled ports (inputs + outputs) of router `r`
    /// for gating accounting.
    #[must_use]
    pub fn enabled_ports(&self, r: usize) -> usize {
        let range = r * PORTS..(r + 1) * PORTS;
        self.in_enabled[range.clone()]
            .iter()
            .filter(|e| **e)
            .count()
            + self.out_enabled[range].iter().filter(|e| **e).count()
    }

    /// Occupancy of router `r`'s input port `dir`.
    #[must_use]
    pub fn input_occupancy(&self, r: usize, dir: Direction) -> usize {
        let base = (r * PORTS + dir.index()) * self.num_vcs;
        self.queues[base..base + self.num_vcs]
            .iter()
            .map(VecDeque::len)
            .sum()
    }

    /// Free-VC count at router `r`'s output `dir` endpoint.
    #[must_use]
    pub fn output_free_vcs(&self, r: usize, dir: Direction) -> usize {
        self.free_vcs[r * PORTS + dir.index()].len()
    }

    /// Return a credit (freed endpoint VC) to output `dir` of router
    /// `r`.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already in the free queue (double-free).
    pub fn credit(&mut self, r: usize, dir: Direction, vc: VcId) {
        let q = &mut self.free_vcs[r * PORTS + dir.index()];
        assert!(
            !q.contains(&vc),
            "{}: double credit for {vc} at output {dir}",
            self.node_of(r)
        );
        q.push_back(vc);
        assert!(
            q.len() <= self.num_vcs,
            "{}: more credits than VCs at output {dir}",
            self.node_of(r)
        );
    }

    /// Buffer-write a flit arriving at router `r` (end-of-cycle `cycle`
    /// arrival) into input `in_dir`, VC `flit.vc`.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations: missing VC allocation, overflow,
    /// a head arriving into an occupied VC, or a body arriving into an
    /// idle one.
    pub fn receive(
        &mut self,
        r: usize,
        in_dir: Direction,
        flit: Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) {
        let vc = flit
            .vc
            .unwrap_or_else(|| panic!("{}: flit arrived without a VC", self.node_of(r)));
        let qi = (r * PORTS + in_dir.index()) * self.num_vcs + vc.0 as usize;
        if flit.is_head() {
            assert!(
                !self.occupied[qi] && self.queues[qi].is_empty(),
                "{}: head of {:?} arrived into occupied {vc} at input {in_dir}",
                self.node_of(r),
                flit.packet
            );
            self.occupied[qi] = true;
        } else {
            assert!(
                self.occupied[qi],
                "{}: body/tail arrived into idle {vc} at input {in_dir}",
                self.node_of(r)
            );
        }
        assert!(
            self.queues[qi].len() < self.depth,
            "{}: buffer overflow at input {in_dir} {vc}",
            self.node_of(r)
        );
        if self.queues[qi].is_empty() {
            self.front_ready[qi] = cycle + 2;
        }
        self.queues[qi].push_back((flit, cycle));
        self.buffered[r] += 1;
        self.total_buffered += 1;
        counters.buffer_writes += 1;
    }

    /// Run switch allocation for router `r` at `cycle`, appending
    /// departures (flits entering ST in cycle `cycle + 1`) and credits
    /// released by departing tails into the caller's scratch vectors.
    ///
    /// `head_out` resolves the output direction an SA-eligible head flit
    /// requests at this router (the engine passes a [`LegLut`] lookup,
    /// the standalone [`Router`] a [`FlowTable`] one).
    ///
    /// [`LegLut`]: crate::forward::LegLut
    pub fn allocate(
        &mut self,
        r: usize,
        cycle: u64,
        head_out: impl Fn(FlowId) -> Direction,
        counters: &mut ActivityCounters,
        departures: &mut Vec<RouterDeparture>,
        credits: &mut Vec<CreditRelease>,
    ) {
        // An empty router requests nothing and streams nothing, and a
        // granted-nothing arbiter does not rotate: skipping is
        // behavior-identical and makes idle routers ~free.
        if self.buffered[r] == 0 {
            return;
        }
        let nv = self.num_vcs;
        let base_q = r * PORTS * nv;
        let base_p = r * PORTS;

        // Which (input, vc) is SA-eligible this cycle, and toward which
        // output does its front flit point? `front_ready` answers the
        // eligibility question without touching the queue itself.
        self.want.fill(None);
        let mut any = false;
        for pv in 0..PORTS * nv {
            if self.front_ready[base_q + pv] > cycle {
                continue; // empty, still in BW, or just arrived
            }
            let (flit, _) = self.queues[base_q + pv]
                .front()
                .expect("ready VC has a front flit");
            let out = if flit.is_head() {
                head_out(flit.flow)
            } else {
                // Body/tail follow the hold; find which output holds us.
                let (p, v) = ((pv / nv) as u8, (pv % nv) as u8);
                match (0..PORTS).find(
                    |&o| matches!(self.held[base_p + o], Some((hp, hv, _)) if hp == p && hv == v),
                ) {
                    Some(o) => Direction::from_index(o),
                    None => continue, // head not granted yet
                }
            };
            self.want[pv] = Some(out.index() as u8);
            any = true;
        }
        if !any {
            return;
        }

        // Output-major allocation: held outputs stream their holder; free
        // outputs arbitrate among eligible heads (needing a free VC).
        // winners[o] = (input, vc, is_new_head)
        let mut winners: [Option<(u8, u8, bool)>; PORTS] = [None; PORTS];
        for (o, winner) in winners.iter_mut().enumerate() {
            let oi = base_p + o;
            if !self.out_enabled[oi] {
                continue;
            }
            if let Some((hp, hv, _)) = self.held[oi] {
                if self.want[hp as usize * nv + hv as usize] == Some(o as u8) {
                    *winner = Some((hp, hv, false));
                }
                continue;
            }
            if self.free_vcs[oi].is_empty() {
                continue; // heads need a free endpoint VC to request
            }
            self.requests.fill(false);
            let mut any_req = false;
            for (pv, w) in self.want.iter().enumerate() {
                // Only heads can want a non-held output (bodies follow
                // their hold), so every wanter here is a head.
                if *w == Some(o as u8) {
                    self.requests[pv] = true;
                    any_req = true;
                    counters.sa_requests += 1;
                }
            }
            if any_req {
                if let Some(g) = self.arbs[oi].grant(&self.requests) {
                    *winner = Some(((g / nv) as u8, (g % nv) as u8, true));
                }
            }
        }

        // Input-port conflict resolution: one flit per input port per
        // cycle. Held streams take precedence over new heads; ties break
        // by output index.
        let mut port_taken = [false; PORTS];
        for new_head in [false, true] {
            for w in &mut winners {
                if let Some((p, _, is_new)) = *w {
                    if is_new == new_head {
                        if port_taken[p as usize] {
                            *w = None;
                        } else {
                            port_taken[p as usize] = true;
                        }
                    }
                }
            }
        }

        // Execute grants.
        for (o, w) in winners.iter().enumerate() {
            let Some((p, v, is_new)) = *w else { continue };
            let oi = base_p + o;
            let qi = base_q + p as usize * nv + v as usize;
            let (mut flit, _) = self.queues[qi]
                .pop_front()
                .expect("winner has a front flit");
            self.front_ready[qi] = self.queues[qi].front().map_or(u64::MAX, |(_, a)| a + 2);
            self.buffered[r] -= 1;
            self.total_buffered -= 1;
            counters.buffer_reads += 1;
            counters.sa_grants += 1;
            let endpoint_vc = if is_new {
                let vc = self.free_vcs[oi]
                    .pop_front()
                    .expect("head grant requires a free VC");
                self.held[oi] = Some((p, v, vc));
                vc
            } else {
                self.held[oi].expect("streaming under a hold").2
            };
            flit.vc = Some(endpoint_vc);
            if flit.is_tail() {
                self.held[oi] = None;
                assert!(
                    self.queues[qi].is_empty(),
                    "{}: tail departed but flits remain behind it",
                    self.node_of(r)
                );
                self.occupied[qi] = false;
                credits.push(CreditRelease {
                    in_dir: Direction::from_index(p as usize),
                    vc: VcId(v),
                });
            }
            departures.push(RouterDeparture {
                flit,
                out_dir: Direction::from_index(o),
            });
        }
    }
}

/// A standalone router: a 1-router [`RouterBank`] with the bank index
/// pinned, for protocol-level unit tests and external experimentation.
/// The engine itself drives the bank directly.
#[derive(Debug, Clone)]
pub struct Router {
    bank: RouterBank,
}

impl Router {
    /// A 5-port router with `num_vcs` VCs of `depth` flits per input.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` or `depth` is zero.
    #[must_use]
    pub fn new(node: NodeId, num_vcs: usize, depth: usize) -> Self {
        let mut bank = RouterBank::new(1, num_vcs, depth);
        bank.base_node = node.0;
        Router { bank }
    }

    /// This router's node id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.bank.node_of(0)
    }

    /// Mark an input port as used by some flow (ungated), per presets.
    pub fn enable_input(&mut self, dir: Direction) {
        self.bank.enable_input(0, dir);
    }

    /// Mark an output port as used and seed its free-VC queue with the
    /// endpoint's `num_vcs` VCs.
    pub fn enable_output(&mut self, dir: Direction) {
        self.bank.enable_output(0, dir);
    }

    /// Number of clock-enabled ports (inputs + outputs) for gating
    /// accounting.
    #[must_use]
    pub fn enabled_ports(&self) -> usize {
        self.bank.enabled_ports(0)
    }

    /// Occupancy of input port `dir`.
    #[must_use]
    pub fn input_occupancy(&self, dir: Direction) -> usize {
        self.bank.input_occupancy(0, dir)
    }

    /// Free-VC count at output `dir`'s endpoint.
    #[must_use]
    pub fn output_free_vcs(&self, dir: Direction) -> usize {
        self.bank.output_free_vcs(0, dir)
    }

    /// `true` when no flit is buffered anywhere in this router.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.bank.is_drained(0)
    }

    /// Return a credit (freed endpoint VC) to output port `dir`.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already in the free queue (double-free).
    pub fn credit(&mut self, dir: Direction, vc: VcId) {
        self.bank.credit(0, dir, vc);
    }

    /// Buffer-write an arriving flit (end-of-cycle `cycle` arrival) into
    /// input `in_dir`, VC `flit.vc`.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations: missing VC allocation, overflow,
    /// a head arriving into an occupied VC, or a body arriving into an
    /// idle one.
    pub fn receive(
        &mut self,
        in_dir: Direction,
        flit: Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) {
        self.bank.receive(0, in_dir, flit, cycle, counters);
    }

    /// Run switch allocation for `cycle` and return departures (flits
    /// entering ST in cycle `cycle + 1`) plus any credits released by
    /// departing tails.
    pub fn allocate(
        &mut self,
        cycle: u64,
        flows: &FlowTable,
        counters: &mut ActivityCounters,
    ) -> (Vec<RouterDeparture>, Vec<CreditRelease>) {
        let mut departures = Vec::new();
        let mut credits = Vec::new();
        let node = self.node();
        self.bank.allocate(
            0,
            cycle,
            |flow| flows.leg_from(flow, node).out_dir,
            counters,
            &mut departures,
            &mut credits,
        );
        (departures, credits)
    }
}
