//! The synchronous network engine.
//!
//! Drives routers and NICs through a deterministic per-cycle schedule:
//!
//! 1. apply credit returns scheduled for this cycle;
//! 2. apply flit arrivals (buffer writes / NIC deliveries);
//! 3. NIC injection (one flit per NIC per cycle);
//! 4. switch allocation at every router; granted flits traverse their
//!    leg (`ST+LT`) and are scheduled to arrive at its end;
//! 5. accounting (clock gating, cycle counters).
//!
//! The engine enforces the SMART preset invariant at runtime: **no two
//! flits may cross the same link in the same cycle** — if a preset
//! compiler produced plans that violate single-cycle exclusivity, the
//! engine panics rather than silently time-multiplexing the wire.

use crate::counters::ActivityCounters;
use crate::flit::{Flit, Packet, VcId};
use crate::forward::{Endpoint, FlowTable, LegLut, Segment, Sender};
use crate::nic::{Nic, RxEvent};
use crate::router::{CreditRelease, RouterBank, RouterDeparture};
use crate::stats::SimStats;
use crate::topology::{Direction, LinkId, Mesh, NodeId, PORTS};
use crate::trace::{TraceKind, TraceRecord, Tracer};
use crate::traffic::TrafficSource;
use std::collections::HashMap;

/// Sizing parameters shared by all designs (Table II defaults via
/// [`SimConfig::paper_4x4`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Mesh dimensions.
    pub mesh: Mesh,
    /// Virtual channels per input port.
    pub vcs_per_port: usize,
    /// Flits of buffering per VC.
    pub vc_depth: usize,
    /// Flits per packet (packet size / flit size).
    pub flits_per_packet: u8,
}

impl SimConfig {
    /// Table II: 4×4 mesh, 2 VCs × 10 flits, 256-bit packets of 32-bit
    /// flits.
    #[must_use]
    pub fn paper_4x4() -> Self {
        SimConfig {
            mesh: Mesh::paper_4x4(),
            vcs_per_port: 2,
            vc_depth: 10,
            flits_per_packet: 8,
        }
    }

    /// Validate invariants (virtual cut-through needs whole packets to
    /// fit in one VC).
    ///
    /// # Panics
    ///
    /// Panics if a packet cannot fit in a VC buffer.
    pub fn validate(&self) {
        assert!(
            usize::from(self.flits_per_packet) <= self.vc_depth,
            "virtual cut-through requires vc_depth >= flits_per_packet"
        );
        assert!(self.vcs_per_port > 0 && self.flits_per_packet > 0);
    }
}

/// Ring-buffer depth for scheduled events (max lookahead is 4 cycles).
const RING: usize = 16;

/// The precomputed reverse path of a credit: which sender's free-VC
/// queue gets the freed VC back, and the leg cost charged to the credit
/// network.
#[derive(Debug, Clone, Copy)]
struct CreditPath {
    sender: Sender,
    crossbars: u32,
    mm: f64,
}

/// Everything in flight between routers: the arrival/credit event rings
/// and the dense per-link occupancy arrays. Grouped so the launch path
/// can borrow it independently of the route tables.
#[derive(Debug)]
struct Flight {
    arrivals: Vec<Vec<(Endpoint, Flit)>>,
    credit_ring: Vec<Vec<(Sender, VcId)>>,
    /// Arrivals scheduled but not yet applied (quiescence check).
    scheduled_arrivals: usize,
    /// `1 + last ST cycle` each link carried a flit, indexed
    /// `node * 5 + dir` (0 = never) — single-cycle exclusivity.
    link_guard: Vec<u64>,
    /// Flits carried per link since the last counter reset, same index.
    link_flits: Vec<u64>,
}

/// The simulated network: the router bank + NICs + in-flight events.
#[derive(Debug)]
pub struct Network {
    cfg: SimConfig,
    flows: FlowTable,
    /// Dense leg lookup compiled from `flows` at build time.
    lut: LegLut,
    bank: RouterBank,
    nics: Vec<Nic>,
    /// Credit reverse paths for stop endpoints, indexed
    /// `router * 5 + in_dir`.
    stop_credit: Vec<Option<CreditPath>>,
    /// Credit reverse paths for NIC endpoints, indexed by node.
    nic_credit: Vec<Option<CreditPath>>,
    flight: Flight,
    cycle: u64,
    counters: ActivityCounters,
    stats: SimStats,
    stats_from: u64,
    enabled_ports: u64,
    total_ports: u64,
    tracer: Option<Tracer>,
    /// NICs with a nonzero injection backlog, ascending — the only
    /// NICs the per-cycle injection scan visits. Kept sorted so the
    /// scan order (and therefore every downstream event order) matches
    /// a full 0..n sweep exactly.
    active_nics: Vec<u32>,
    /// Membership mask for `active_nics`, indexed by node.
    nic_active: Vec<bool>,
    /// Per-cycle scratch, reused so the steady state allocates nothing.
    arrival_scratch: Vec<(Endpoint, Flit)>,
    credit_scratch: Vec<(Sender, VcId)>,
    dep_scratch: Vec<RouterDeparture>,
    rel_scratch: Vec<CreditRelease>,
}

impl Network {
    /// Build a network for `flows` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the flow plans are inconsistent
    /// (see [`FlowTable::sender_endpoints`]).
    #[must_use]
    pub fn new(cfg: SimConfig, flows: FlowTable) -> Self {
        cfg.validate();
        let n = cfg.mesh.len();
        let mut bank = RouterBank::new(n, cfg.vcs_per_port, cfg.vc_depth);
        let nics: Vec<Nic> = cfg
            .mesh
            .nodes()
            .map(|id| Nic::new(id, cfg.vcs_per_port))
            .collect();

        // Preset-driven port enables + credit reverse-path tables. The
        // sender/endpoint pairing invariant is checked up front.
        let _ = flows.sender_endpoints();
        let mut stop_credit = vec![None; n * PORTS];
        let mut nic_credit = vec![None; n];
        for plan in flows.iter() {
            for leg in &plan.legs {
                if let Sender::RouterOutput(r, d) = leg.sender {
                    bank.enable_output(r.0 as usize, d);
                }
                for link in &leg.links {
                    bank.enable_output(link.from.0 as usize, link.dir);
                    let to = cfg
                        .mesh
                        .neighbor(link.from, link.dir)
                        .unwrap_or_else(|| panic!("{link} leaves the mesh"));
                    bank.enable_input(to.0 as usize, link.dir.opposite());
                }
                let path = Some(CreditPath {
                    sender: leg.sender,
                    crossbars: leg.crossbars(),
                    mm: leg.link_mm(),
                });
                match leg.end {
                    Endpoint::Stop { router, in_dir } => {
                        bank.enable_input(router.0 as usize, in_dir);
                        stop_credit[router.0 as usize * PORTS + in_dir.index()] = path;
                    }
                    Endpoint::Nic { node } => nic_credit[node.0 as usize] = path,
                }
            }
        }

        let enabled_ports: u64 = (0..n).map(|r| bank.enabled_ports(r) as u64).sum();
        let total_ports = (n * 10) as u64; // 5 in + 5 out per router
        let lut = LegLut::new(&flows);

        Network {
            cfg,
            flows,
            lut,
            bank,
            nics,
            stop_credit,
            nic_credit,
            flight: Flight {
                arrivals: vec![Vec::new(); RING],
                credit_ring: vec![Vec::new(); RING],
                scheduled_arrivals: 0,
                link_guard: vec![0; n * PORTS],
                link_flits: vec![0; n * PORTS],
            },
            cycle: 0,
            counters: ActivityCounters::new(),
            stats: SimStats::new(),
            stats_from: 0,
            enabled_ports,
            total_ports,
            tracer: None,
            active_nics: Vec::new(),
            nic_active: vec![false; n],
            arrival_scratch: Vec::new(),
            credit_scratch: Vec::new(),
            dep_scratch: Vec::new(),
            rel_scratch: Vec::new(),
        }
    }

    /// Record micro-architectural events (up to `capacity` of them) for
    /// journey logs, VCD dumps and counter cross-validation.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::with_capacity(capacity));
    }

    /// The tracer, if tracing is enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// The mesh being simulated.
    #[must_use]
    pub fn mesh(&self) -> Mesh {
        self.cfg.mesh
    }

    /// The flow table in use.
    #[must_use]
    pub fn flows(&self) -> &FlowTable {
        &self.flows
    }

    /// Current cycle (cycles fully processed).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Activity counters accumulated since the last reset.
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Latency statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Only packets *generated* at or after `cycle` contribute to
    /// latency statistics (warm-up exclusion).
    pub fn set_stats_from(&mut self, cycle: u64) {
        self.stats_from = cycle;
    }

    /// Zero the activity counters (e.g. at the end of warm-up).
    pub fn reset_counters(&mut self) {
        self.counters = ActivityCounters::new();
        self.flight.link_flits.fill(0);
    }

    /// Flits carried per link since the last counter reset — the
    /// utilization heatmap's raw data. Assembled on demand from the
    /// engine's dense per-link array; links that carried nothing are
    /// absent.
    #[must_use]
    pub fn link_flit_counts(&self) -> HashMap<LinkId, u64> {
        self.flight
            .link_flits
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                (
                    LinkId {
                        from: NodeId((i / PORTS) as u16),
                        dir: Direction::from_index(i % PORTS),
                    },
                    *n,
                )
            })
            .collect()
    }

    /// Queue a generated packet at its source NIC.
    ///
    /// # Panics
    ///
    /// Panics if the packet's flow is unknown or its src/dst disagree
    /// with the flow's route.
    pub fn offer(&mut self, packet: Packet) {
        let plan = self.flows.plan(packet.flow);
        assert_eq!(packet.src, plan.route.source(), "packet src mismatch");
        assert_eq!(
            packet.dst,
            plan.route.destination(self.cfg.mesh),
            "packet dst mismatch"
        );
        let src = packet.src.0 as usize;
        self.nics[src].offer(packet);
        if !self.nic_active[src] {
            self.nic_active[src] = true;
            let pos = self
                .active_nics
                .binary_search(&(src as u32))
                .expect_err("mask says absent");
            self.active_nics.insert(pos, src as u32);
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let c = self.cycle;
        let slot = (c % RING as u64) as usize;

        // 1. Credits landing this cycle (swapped out through the scratch
        // buffer so ring-slot capacity is reused, not reallocated).
        let mut credits = std::mem::take(&mut self.credit_scratch);
        std::mem::swap(&mut credits, &mut self.flight.credit_ring[slot]);
        for (sender, vc) in credits.drain(..) {
            match sender {
                Sender::Nic(n) => self.nics[n.0 as usize].credit(vc),
                Sender::RouterOutput(r, d) => self.bank.credit(r.0 as usize, d, vc),
            }
        }
        self.credit_scratch = credits;

        // 2. Flit arrivals (scheduled for end of cycle c-1).
        let mut arrivals = std::mem::take(&mut self.arrival_scratch);
        std::mem::swap(&mut arrivals, &mut self.flight.arrivals[slot]);
        self.flight.scheduled_arrivals -= arrivals.len();
        for (end, flit) in arrivals.drain(..) {
            match end {
                Endpoint::Stop { router, in_dir } => {
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(TraceRecord {
                            cycle: c.saturating_sub(1),
                            flow: flit.flow,
                            packet: flit.packet,
                            kind: TraceKind::BufferWrite { router, in_dir },
                        });
                    }
                    self.bank.receive(
                        router.0 as usize,
                        in_dir,
                        flit,
                        c.saturating_sub(1),
                        &mut self.counters,
                    );
                }
                Endpoint::Nic { node } => {
                    let arrival_cycle = c - 1;
                    let gen = flit.gen_cycle;
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(TraceRecord {
                            cycle: arrival_cycle,
                            flow: flit.flow,
                            packet: flit.packet,
                            kind: TraceKind::Deliver {
                                node,
                                head: flit.is_head(),
                                tail: flit.is_tail(),
                            },
                        });
                    }
                    let events = self.nics[node.0 as usize].receive(
                        &flit,
                        arrival_cycle,
                        &mut self.counters,
                    );
                    for ev in events {
                        match ev {
                            RxEvent::Head(flow, lat, srcq) => {
                                if gen >= self.stats_from {
                                    self.stats.record_head(flow, lat, srcq);
                                }
                            }
                            RxEvent::Tail(flow, lat, vc) => {
                                if gen >= self.stats_from {
                                    self.stats.record_tail(flow, lat);
                                }
                                // Credit for the freed NIC reception VC.
                                let path = self.nic_credit[node.0 as usize]
                                    .unwrap_or_else(|| panic!("no sender tracks endpoint {end:?}"));
                                emit_credit(
                                    path,
                                    vc,
                                    c + 1,
                                    &mut self.flight,
                                    &mut self.counters,
                                    &mut self.tracer,
                                );
                            }
                        }
                    }
                }
            }
        }
        self.arrival_scratch = arrivals;

        // 3. NIC injection, scanning only the active set (NICs with a
        // backlog). A NIC whose backlog empties retires from the set in
        // place; the compaction preserves ascending order, so the event
        // stream is bit-identical to a full 0..n sweep. Skipped idle
        // NICs would have returned `None` without touching any state.
        let mut kept = 0;
        for k in 0..self.active_nics.len() {
            let i = self.active_nics[k] as usize;
            if let Some(flit) = self.nics[i].try_inject(c, &mut self.counters) {
                let leg = self.lut.first_leg(flit.flow);
                debug_assert!(matches!(leg.sender, Sender::Nic(n) if n.0 as usize == i));
                launch(
                    leg,
                    flit,
                    c,
                    &mut self.flight,
                    &mut self.counters,
                    &mut self.tracer,
                );
            }
            if self.nics[i].backlog() > 0 {
                self.active_nics[kept] = self.active_nics[k];
                kept += 1;
            } else {
                self.nic_active[i] = false;
            }
        }
        self.active_nics.truncate(kept);

        // 4. Switch allocation; ST happens during c + 1. Departures and
        // credit releases land in reused scratch vectors, and routers
        // with nothing buffered are skipped without touching their
        // state.
        let mut deps = std::mem::take(&mut self.dep_scratch);
        let mut rels = std::mem::take(&mut self.rel_scratch);
        for r in 0..self.bank.len() {
            if self.bank.is_drained(r) {
                continue;
            }
            let node = NodeId(r as u16);
            let lut = &self.lut;
            deps.clear();
            rels.clear();
            self.bank.allocate(
                r,
                c,
                |flow| lut.out_dir_from(flow, node),
                &mut self.counters,
                &mut deps,
                &mut rels,
            );
            for dep in deps.drain(..) {
                let leg = self.lut.leg_from(dep.flit.flow, node);
                assert_eq!(leg.out_dir, dep.out_dir, "plan/grant mismatch at {node}");
                launch(
                    leg,
                    dep.flit,
                    c + 1,
                    &mut self.flight,
                    &mut self.counters,
                    &mut self.tracer,
                );
            }
            for rel in rels.drain(..) {
                // Tail departs the buffer during c+1; the credit crosses
                // the reverse mesh during c+2 and is usable at c+3.
                let path = self.stop_credit[r * PORTS + rel.in_dir.index()]
                    .unwrap_or_else(|| panic!("no sender tracks endpoint {node}/{}", rel.in_dir));
                emit_credit(
                    path,
                    rel.vc,
                    c + 3,
                    &mut self.flight,
                    &mut self.counters,
                    &mut self.tracer,
                );
            }
        }
        self.dep_scratch = deps;
        self.rel_scratch = rels;

        // 5. Gating + cycle accounting.
        self.counters.active_port_cycles += self.enabled_ports;
        self.counters.gated_port_cycles += self.total_ports - self.enabled_ports;
        self.counters.cycles += 1;
        self.cycle += 1;
    }

    /// Run `cycles` cycles, pulling packets from `traffic` each cycle.
    pub fn run_with(&mut self, traffic: &mut dyn TrafficSource, cycles: u64) {
        for _ in 0..cycles {
            for p in traffic.generate(self.cycle) {
                self.offer(p);
            }
            self.step();
        }
    }

    /// `true` when no packet is queued, buffered, or in flight anywhere.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.bank.total_buffered() == 0
            && self.flight.scheduled_arrivals == 0
            && self.nics.iter().all(Nic::is_drained)
    }

    /// Step until quiescent, up to `max_cycles`. Returns `true` if the
    /// network drained (the precondition for reconfiguration, Section V).
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_quiescent() {
                return true;
            }
            self.step();
        }
        self.is_quiescent()
    }

    /// Injection backlog across all NICs.
    #[must_use]
    pub fn total_backlog(&self) -> usize {
        self.nics.iter().map(Nic::backlog).sum()
    }
}

/// Launch `flit` onto `leg`, with ST (and the whole link traversal)
/// occurring during `st_cycle`. A free function over the engine's
/// in-flight state so the caller can keep borrowing the route tables
/// the `leg` reference lives in.
fn launch(
    leg: &Segment,
    flit: Flit,
    st_cycle: u64,
    flight: &mut Flight,
    counters: &mut ActivityCounters,
    tracer: &mut Option<Tracer>,
) {
    // Single-cycle link exclusivity (the preset invariant). The guard
    // array stores `st_cycle + 1` so the zero initial state means
    // "never used".
    for link in &leg.links {
        let li = link.from.0 as usize * PORTS + link.dir.index();
        let stamp = st_cycle + 1;
        assert!(
            flight.link_guard[li] != stamp,
            "two flits on {link} in cycle {st_cycle}: preset violation"
        );
        flight.link_guard[li] = stamp;
        flight.link_flits[li] += 1;
    }
    counters.xbar_flit_traversals += u64::from(leg.crossbars());
    counters.link_flit_mm += leg.link_mm();
    if leg.cycles == 2 {
        counters.pipeline_reg_writes += 1;
    }
    if let Some(t) = tracer.as_mut() {
        let from = match leg.sender {
            Sender::Nic(n) | Sender::RouterOutput(n, _) => n,
        };
        t.record(TraceRecord {
            cycle: st_cycle,
            flow: flit.flow,
            packet: flit.packet,
            kind: TraceKind::Launch {
                from,
                links: leg.links.len() as u8,
                crossbars: leg.crossbars() as u8,
                mm: leg.link_mm(),
            },
        });
    }
    let arrival = st_cycle + u64::from(leg.cycles) - 1;
    let slot = ((arrival + 1) % RING as u64) as usize;
    flight.arrivals[slot].push((leg.end, flit));
    flight.scheduled_arrivals += 1;
}

/// Schedule the credit for a freed VC back along `path` to its sender,
/// usable at `apply_cycle`.
fn emit_credit(
    path: CreditPath,
    vc: VcId,
    apply_cycle: u64,
    flight: &mut Flight,
    counters: &mut ActivityCounters,
    tracer: &mut Option<Tracer>,
) {
    counters.xbar_credit_traversals += u64::from(path.crossbars);
    counters.link_credit_mm += path.mm;
    if let Some(t) = tracer.as_mut() {
        t.record(TraceRecord {
            cycle: apply_cycle.saturating_sub(2),
            flow: crate::flit::FlowId(u32::MAX),
            packet: crate::flit::PacketId(u64::MAX),
            kind: TraceKind::Credit {
                crossbars: path.crossbars as u8,
                mm: path.mm,
            },
        });
    }
    let slot = (apply_cycle % RING as u64) as usize;
    flight.credit_ring[slot].push((path.sender, vc));
}
