//! Network interfaces: packet injection queues, serialization into
//! flits, and reception.
//!
//! A NIC owns the free-VC queue for the endpoint of its injection leg —
//! in SMART this can be the destination NIC itself (pure single-cycle
//! flow) or the input port of the first stop router. On the receive
//! side the NIC has `num_vcs` reception VCs; a tail arrival frees its VC
//! and returns a credit to whichever sender tracks this NIC.

use crate::counters::ActivityCounters;
use crate::flit::{into_flits, Flit, FlowId, Packet, VcId};
use crate::topology::NodeId;
use std::collections::VecDeque;

/// A packet-latency sample produced when flits arrive at their
/// destination NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxEvent {
    /// A head flit arrived: `(flow, head_latency, source_queue_delay)`.
    Head(FlowId, u64, u64),
    /// A tail arrived: `(flow, packet_latency, freed_vc)`.
    Tail(FlowId, u64, VcId),
}

/// State of one in-progress packet transmission.
#[derive(Debug, Clone)]
struct CurrentTx {
    flits: VecDeque<Flit>,
}

/// A network interface (one per node).
#[derive(Debug, Clone)]
pub struct Nic {
    node: NodeId,
    /// Packets waiting to enter the network, in generation order.
    inject_queue: VecDeque<Packet>,
    current: Option<CurrentTx>,
    /// Free VCs at this NIC's injection-leg endpoint (only meaningful if
    /// the node sources at least one flow).
    free_vcs: VecDeque<VcId>,
    /// Reception VCs: `true` while occupied by an in-flight packet.
    rx_occupied: Vec<bool>,
    /// Head send cycle per rx VC, for packet-latency computation.
    rx_head_send: Vec<u64>,
    num_vcs: usize,
}

impl Nic {
    /// A NIC with `num_vcs` injection-endpoint and reception VCs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` is zero.
    #[must_use]
    pub fn new(node: NodeId, num_vcs: usize) -> Self {
        assert!(num_vcs > 0, "need at least one VC");
        Nic {
            node,
            inject_queue: VecDeque::new(),
            current: None,
            free_vcs: (0..num_vcs as u8).map(VcId).collect(),
            rx_occupied: vec![false; num_vcs],
            rx_head_send: vec![0; num_vcs],
            num_vcs,
        }
    }

    /// This NIC's node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queue a generated packet for injection.
    ///
    /// # Panics
    ///
    /// Panics if the packet's source is not this node.
    pub fn offer(&mut self, packet: Packet) {
        assert_eq!(packet.src, self.node, "packet offered to the wrong NIC");
        self.inject_queue.push_back(packet);
    }

    /// Packets (whole or partially sent) still waiting at this NIC.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.inject_queue.len() + usize::from(self.current.is_some())
    }

    /// Return a credit for the injection-leg endpoint.
    ///
    /// # Panics
    ///
    /// Panics on double-free.
    pub fn credit(&mut self, vc: VcId) {
        assert!(
            !self.free_vcs.contains(&vc),
            "{}: double credit for {vc} at NIC",
            self.node
        );
        self.free_vcs.push_back(vc);
        assert!(self.free_vcs.len() <= self.num_vcs);
    }

    /// Try to send one flit during `cycle`. Returns the flit to launch
    /// onto the injection leg, if any.
    ///
    /// A new packet starts only when the endpoint has a free VC
    /// (virtual cut-through); once started, a packet streams one flit
    /// per cycle without stalling.
    pub fn try_inject(&mut self, cycle: u64, counters: &mut ActivityCounters) -> Option<Flit> {
        if self.current.is_none() {
            let packet = self.inject_queue.front()?;
            let _ = packet;
            let vc = self.free_vcs.pop_front()?;
            let packet = self.inject_queue.pop_front().expect("front checked above");
            let mut flits: VecDeque<Flit> = into_flits(packet, cycle).into();
            for f in &mut flits {
                f.vc = Some(vc);
            }
            counters.packets_injected += 1;
            self.current = Some(CurrentTx { flits });
        }
        let tx = self.current.as_mut().expect("set above");
        let flit = tx.flits.pop_front().expect("current tx is nonempty");
        if tx.flits.is_empty() {
            self.current = None;
        }
        Some(flit)
    }

    /// Receive a flit arriving at the end of `cycle`; returns the
    /// latency events and (for tails) the freed reception VC.
    ///
    /// # Panics
    ///
    /// Panics on reception-VC protocol violations.
    pub fn receive(
        &mut self,
        flit: &Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) -> Vec<RxEvent> {
        let vc = flit
            .vc
            .unwrap_or_else(|| panic!("{}: flit without VC at NIC", self.node));
        let slot = vc.0 as usize;
        counters.flits_delivered += 1;
        let mut events = Vec::new();
        if flit.is_head() {
            assert!(
                !self.rx_occupied[slot],
                "{}: head arrived into occupied rx {vc}",
                self.node
            );
            self.rx_occupied[slot] = true;
            self.rx_head_send[slot] = flit.inject_cycle;
            let head_latency = cycle - flit.inject_cycle + 1;
            let src_q = flit.inject_cycle - flit.gen_cycle;
            events.push(RxEvent::Head(flit.flow, head_latency, src_q));
        }
        if flit.is_tail() {
            assert!(
                self.rx_occupied[slot],
                "{}: tail arrived into idle rx {vc}",
                self.node
            );
            self.rx_occupied[slot] = false;
            let packet_latency = cycle - self.rx_head_send[slot] + 1;
            counters.packets_delivered += 1;
            events.push(RxEvent::Tail(flit.flow, packet_latency, vc));
        }
        events
    }

    /// `true` when nothing is queued, in flight, or half-received.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.inject_queue.is_empty()
            && self.current.is_none()
            && self.rx_occupied.iter().all(|o| !o)
    }
}
