//! Property tests over [`SimStats`]: for *any* interleaving of head and
//! tail records — including tails arriving before their heads and
//! latencies far beyond the histogram cap — the per-flow ordering
//! `min ≤ avg ≤ max` must hold, quantiles must be monotone in `p`, and
//! the top quantile must report the true maximum.

use proptest::prelude::*;
use smart_sim::{FlowId, SimStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariants_hold_under_arbitrary_record_sequences(
        ops in prop::collection::vec((0u8..2, 0u8..4, 0u16..1500, 0u8..10), 1..60)
    ) {
        let mut s = SimStats::new();
        let mut heads: Vec<u64> = Vec::new();
        for (kind, flow, latency, queue) in &ops {
            let flow = FlowId(u32::from(*flow));
            let latency = u64::from(*latency);
            if *kind == 0 {
                s.record_head(flow, latency, u64::from(*queue));
                heads.push(latency);
            } else {
                // Tails may arrive for flows that never saw a head.
                s.record_tail(flow, latency);
            }
        }
        prop_assert_eq!(s.packets(), heads.len() as u64);

        for f in s.flows().values() {
            if f.packets == 0 {
                // Tail-only flow: the min sentinel survives, no NaN-free
                // average is claimed.
                prop_assert_eq!(f.head_latency_min, u64::MAX);
                prop_assert!(f.avg_head_latency().is_nan());
            } else {
                prop_assert!(f.head_latency_min <= f.head_latency_max);
                let avg = f.avg_head_latency();
                prop_assert!(f.head_latency_min as f64 <= avg + 1e-9);
                prop_assert!(avg <= f.head_latency_max as f64 + 1e-9);
            }
        }

        if heads.is_empty() {
            prop_assert_eq!(s.head_latency_quantile(0.7), None);
            prop_assert_eq!(s.head_latency_max(), None);
        } else {
            let ps = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
            let qs: Vec<u64> = ps
                .iter()
                .map(|p| s.head_latency_quantile(*p).expect("non-empty"))
                .collect();
            prop_assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles monotone in p");
            let max = *heads.iter().max().expect("non-empty");
            prop_assert_eq!(qs[ps.len() - 1], max, "top quantile is the true max");
            prop_assert_eq!(s.head_latency_max(), Some(max));
        }
    }
}
