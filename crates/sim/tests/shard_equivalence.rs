//! Equivalence net for the sharded cycle engine: a row-band sharded run
//! must be *bit-identical* to the serial engine — same drain cycle,
//! same per-flow latency statistics, same activity counters (including
//! the float link-millimeter accumulators), same per-link flit counts —
//! at every shard count, on the mesh and on the torus (whose wrap links
//! carry flits across the outermost band boundary in one hop), from
//! light load to deep saturation.
//!
//! The serial engine is the reference: it predates sharding and is
//! itself locked against the pre-refactor engine by
//! `legacy_equivalence.rs`, so this net transitively anchors the
//! sharded engine to the original semantics.

use proptest::prelude::*;
use smart_sim::route::SourceRoute;
use smart_sim::topology::{LinkId, Mesh, Topology, Torus};
use smart_sim::{BernoulliTraffic, Engine, FlowId, FlowTable, ShardPlan, SimConfig};
use std::collections::HashMap;

/// Transpose routes + a uniform per-flow rate: `(x, y) → (y, x)` flows
/// cross every row-band boundary, and on the torus the long vertical
/// legs take the wrap seam — exactly the traffic that exercises
/// cross-shard handoff (mesh) and seam handoff (torus).
fn transpose_workload(topo: Topology, rate: f64) -> (FlowTable, Vec<(FlowId, f64)>) {
    let routes: Vec<(FlowId, SourceRoute)> = topo
        .nodes()
        .filter_map(|src| {
            let c = topo.coord(src);
            let dst = topo.node_at(smart_sim::topology::Coord { x: c.y, y: c.x });
            SourceRoute::xy(topo, src, dst).ok().map(|r| (src, r))
        })
        .enumerate()
        .map(|(i, (_, r))| (FlowId(i as u32), r))
        .collect();
    let rates = routes.iter().map(|(f, _)| (*f, rate)).collect();
    (FlowTable::mesh_baseline(topo, &routes), rates)
}

/// Run one engine over a fresh, identically seeded Bernoulli stream.
fn run(engine: &mut Engine, cfg: SimConfig, rates: &[(FlowId, f64)], seed: u64, cycles: u64) {
    let mut traffic = BernoulliTraffic::new(
        rates,
        engine.flows(),
        cfg.topology,
        cfg.flits_per_packet,
        seed,
    );
    engine.run_with(&mut traffic, cycles);
    assert!(engine.drain(100_000), "engine failed to drain");
}

/// Drive the serial engine and the sharded engine at every shard count
/// in {2, 4, 8} over the same traffic, then assert every externally
/// observable quantity matches bit-for-bit.
fn assert_shards_agree(topo: Topology, rate: f64, seed: u64, cycles: u64) {
    let cfg = SimConfig {
        topology: topo,
        ..SimConfig::paper_4x4()
    };
    let (flows, rates) = transpose_workload(topo, rate);

    let mut serial = Engine::serial(cfg, flows.clone());
    run(&mut serial, cfg, &rates, seed, cycles);
    let serial_links: HashMap<LinkId, u64> = serial.link_flit_counts().collect();

    for k in [2usize, 4, 8] {
        let mut sharded = Engine::new(cfg, flows.clone(), ShardPlan::banded(k));
        assert_eq!(sharded.shards(), k.min(usize::from(topo.height())));
        run(&mut sharded, cfg, &rates, seed, cycles);

        // Same wall clock: quiescence was reached on the same cycle.
        assert_eq!(serial.cycle(), sharded.cycle(), "k={k}: drain cycle");
        // Per-flow latency statistics — the delivered-packet multiset.
        assert_eq!(serial.stats(), sharded.stats(), "k={k}: stats");
        // Every activity counter, including the float link-millimeter
        // accumulators (bit-identical accumulation by construction).
        assert_eq!(serial.counters(), sharded.counters(), "k={k}: counters");
        // Per-link flit counts: the same flits crossed the same wires.
        let sharded_links: HashMap<LinkId, u64> = sharded.link_flit_counts().collect();
        assert_eq!(serial_links, sharded_links, "k={k}: link utilization");
    }
}

proptest! {
    // Each case is four full simulations (serial + three shard counts);
    // keep the case count low but the coverage wide: rates span light
    // load to ~3x the transpose saturation point.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mesh_shards_agree_from_light_load_to_saturation(
        seed in 0u64..1_000_000,
        rate_milli in prop::sample::select(vec![10u32, 40, 80, 150, 300]),
    ) {
        assert_shards_agree(
            Mesh::new(8, 8).into(),
            f64::from(rate_milli) / 1_000.0,
            seed,
            1_000,
        );
    }

    #[test]
    fn torus_shards_agree_across_the_wrap_seam(
        seed in 0u64..1_000_000,
        rate_milli in prop::sample::select(vec![10u32, 80, 300]),
    ) {
        assert_shards_agree(
            Torus::new(8, 8).into(),
            f64::from(rate_milli) / 1_000.0,
            seed,
            1_000,
        );
    }
}

/// Deterministic anchor well past saturation on the mesh: transpose on
/// 8×8 admits nowhere near 0.3 packets/cycle/flow, so the run spends
/// ~all its cycles with full VCs, live switch holds, and credit stalls
/// — the regime where a boundary-exchange ordering bug would surface.
#[test]
fn deep_saturation_anchor_mesh() {
    assert_shards_agree(Mesh::new(8, 8).into(), 0.3, 0xD1E7, 2_000);
}

/// The torus twin: wrap routes put band-0 ↔ band-(k−1) traffic on the
/// seam links, so the outermost shards exchange flits directly — the
/// one adjacency a mesh run never exercises.
#[test]
fn deep_saturation_anchor_torus() {
    assert_shards_agree(Torus::new(8, 8).into(), 0.3, 0x5EA1, 2_000);
}

/// Shard counts that do not divide the height produce uneven bands;
/// identity must not depend on divisibility. 6 rows across 4 shards
/// gives bands of 1 and 2 rows.
#[test]
fn uneven_bands_agree() {
    assert_shards_agree(Mesh::new(6, 6).into(), 0.08, 0xBADBA2D, 1_000);
}
