//! Saturation regression suite for the PR-6 flit diet: the arena-interned
//! compact-flit engine must be *observationally identical* to the
//! pre-refactor inline-flit engine — same delivered packets, same
//! per-flow latency statistics, same activity counters, same per-link
//! flit counts — including deep past the saturation point where VC
//! backpressure, switch holds, and credit starvation dominate.
//!
//! The reference implementation under `legacy/` is a frozen snapshot of
//! the old `flit`/`nic`/`router`/`network` modules (heap-allocated
//! `VecDeque` queues, full packet metadata on every flit), sharing the
//! live crate's topology, routing, traffic, stats, and counter types so
//! both engines consume the same packet stream.

// The legacy snapshot keeps its full public surface; only part of it is
// exercised here.
#[allow(dead_code)]
#[path = "legacy/flit.rs"]
mod flit;
#[allow(dead_code)]
#[path = "legacy/network.rs"]
mod network;
#[allow(dead_code)]
#[path = "legacy/nic.rs"]
mod nic;
#[allow(dead_code)]
#[path = "legacy/router.rs"]
mod router;

// `crate::<module>` paths inside the legacy snapshot resolve through
// these root re-exports to the live crate's unchanged modules.
pub use smart_sim::{arbiter, counters, forward, route, stats, topology, trace, traffic};

use proptest::prelude::*;
use smart_sim::forward::FlowTable;
use smart_sim::route::SourceRoute;
use smart_sim::topology::{LinkId, Topology};
use smart_sim::{BernoulliTraffic, FlowId, Network, Pattern, SimConfig};
use std::collections::HashMap;

/// Per-flow source routes, as `FlowTable` constructors consume them.
type Routes = Vec<(FlowId, SourceRoute)>;

/// Transpose routes + a uniform per-flow rate on the 4×4 paper mesh.
fn transpose_workload(mesh: Topology, rate: f64) -> (Routes, Vec<(FlowId, f64)>) {
    let routes: Routes = Pattern::Transpose
        .pairs(mesh)
        .into_iter()
        .enumerate()
        .map(|(i, (s, d))| (FlowId(i as u32), SourceRoute::xy(mesh, s, d).unwrap()))
        .collect();
    let rates = routes.iter().map(|(f, _)| (*f, rate)).collect();
    (routes, rates)
}

/// Drive the live and the legacy engine over the same Bernoulli stream
/// (independently constructed, identically seeded), then assert every
/// externally observable quantity matches.
fn assert_engines_agree(rate: f64, seed: u64, cycles: u64) {
    let cfg = SimConfig::paper_4x4();
    let mesh = cfg.topology;
    let (routes, rates) = transpose_workload(mesh, rate);

    let flows_new = FlowTable::mesh_baseline(mesh, &routes);
    let flows_old = FlowTable::mesh_baseline(mesh, &routes);
    let mut src_new = BernoulliTraffic::new(&rates, &flows_new, mesh, cfg.flits_per_packet, seed);
    let mut src_old = BernoulliTraffic::new(&rates, &flows_old, mesh, cfg.flits_per_packet, seed);

    let mut live = Network::new(cfg, flows_new);
    let legacy_cfg = network::SimConfig {
        mesh: mesh.as_mesh().expect("paper config is a mesh"),
        vcs_per_port: cfg.vcs_per_port,
        vc_depth: cfg.vc_depth,
        flits_per_packet: cfg.flits_per_packet,
    };
    let mut old = network::Network::new(legacy_cfg, flows_old);

    live.run_with(&mut src_new, cycles);
    old.run_with(&mut src_old, cycles);
    assert!(live.drain(50_000), "live engine failed to drain");
    assert!(old.drain(50_000), "legacy engine failed to drain");

    // Same wall clock: quiescence was reached on the same cycle.
    assert_eq!(
        live.cycle(),
        old.cycle(),
        "engines drained at different cycles"
    );
    // Per-flow latency statistics (head/packet latency, queue delay,
    // delivered counts) — the delivered-packet multiset in aggregate.
    assert_eq!(live.stats(), old.stats(), "per-flow stats diverged");
    // Every activity counter, including the float link-millimeter
    // accumulators (bit-identical accumulation order by construction).
    assert_eq!(
        live.counters(),
        old.counters(),
        "activity counters diverged"
    );
    // Per-link flit counts: the same flits crossed the same wires.
    let live_links: HashMap<LinkId, u64> = live.link_flit_counts().collect();
    assert_eq!(
        live_links,
        old.link_flit_counts(),
        "link utilization diverged"
    );
}

proptest! {
    // Each case is a pair of full simulations; keep the case count low
    // but the coverage wide (rates from light load to ~3× saturation).
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn engines_agree_from_light_load_to_deep_saturation(
        seed in 0u64..1_000_000,
        rate_milli in prop::sample::select(vec![10u32, 40, 80, 150, 300]),
    ) {
        assert_engines_agree(f64::from(rate_milli) / 1_000.0, seed, 2_000);
    }
}

/// Deterministic anchor well past saturation: transpose on 4×4 admits
/// nowhere near 0.3 packets/cycle/flow, so the run spends ~all its
/// cycles with full VCs, live switch holds, and credit stalls — the
/// regime where a representation bug in hold/credit bookkeeping would
/// surface as a divergence.
#[test]
fn deep_saturation_anchor() {
    assert_engines_agree(0.3, 0xD1E7, 4_000);
}

/// The legacy serializer and the live incremental NIC mint the same
/// flit sequence for the same packet.
#[test]
fn legacy_serializer_matches_packet_shape() {
    let p = smart_sim::Packet {
        id: smart_sim::PacketId(7),
        flow: FlowId(3),
        src: smart_sim::topology::NodeId(0),
        dst: smart_sim::topology::NodeId(5),
        gen_cycle: 100,
        num_flits: 8,
    };
    let flits = flit::into_flits(p, 110);
    assert_eq!(flits.len(), 8);
    assert!(flits[0].is_head() && flits[7].is_tail());
    assert!(flits.iter().enumerate().all(|(i, f)| f.seq as usize == i));
    assert!(flits
        .iter()
        .all(|f| f.inject_cycle == 110 && f.flow == FlowId(3)));
}
