//! Scenario tests for the cycle-accurate engine: flow control under
//! backpressure, arbitration fairness, and conservation under synthetic
//! pattern traffic.

use smart_sim::flit::{FlowId, Packet, PacketId};
use smart_sim::forward::FlowTable;
use smart_sim::network::{Network, SimConfig};
use smart_sim::patterns::Pattern;
use smart_sim::route::SourceRoute;
use smart_sim::topology::{Mesh, NodeId};
use smart_sim::traffic::{BernoulliTraffic, ScriptedTraffic};

fn packet(id: u64, flow: u32, src: u16, dst: u16, gen: u64) -> Packet {
    Packet {
        id: PacketId(id),
        flow: FlowId(flow),
        src: NodeId(src),
        dst: NodeId(dst),
        gen_cycle: gen,
        num_flits: 8,
    }
}

#[test]
fn vc_backpressure_stalls_and_recovers() {
    // One flow, 2 VCs at every endpoint: a burst of 6 packets can have
    // at most 2 packets' worth of flits committed toward any endpoint
    // at once. All must still arrive, strictly in order.
    let cfg = SimConfig::paper_4x4();
    let route = SourceRoute::xy(cfg.topology, NodeId(0), NodeId(3)).unwrap();
    let flows = FlowTable::mesh_baseline(cfg.topology, &[(FlowId(0), route)]);
    let mut net = Network::new(cfg, flows);
    for i in 0..6 {
        net.offer(packet(i, 0, 0, 3, 0));
    }
    assert!(net.drain(2_000), "burst must clear");
    let st = net.stats().flow(FlowId(0)).expect("delivered");
    assert_eq!(st.packets, 6);
    // Network latency itself stays near zero-load (the stall shows up
    // as source queueing at the NIC while VCs recycle).
    assert_eq!(st.head_latency_min, 16);
    assert!(st.head_latency_max <= 24, "got {}", st.head_latency_max);
    // Five of the six packets waited at the source: ≥ 8 serialization
    // cycles each on average across the burst.
    assert!(
        st.avg_source_queue() > 8.0,
        "source queueing {:.1} must reflect the burst",
        st.avg_source_queue()
    );
}

#[test]
fn round_robin_shares_a_merging_output_fairly() {
    // Two flows merging onto one link, equal offered load: delivered
    // packet counts must match within 10% over a long run.
    let mesh = Mesh::paper_4x4();
    let cfg = SimConfig::paper_4x4();
    let routes = vec![
        (
            FlowId(0),
            SourceRoute::xy(mesh, NodeId(0), NodeId(3)).unwrap(),
        ),
        (
            FlowId(1),
            SourceRoute::xy(mesh, NodeId(4), NodeId(3)).unwrap(),
        ),
    ];
    let flows = FlowTable::mesh_baseline(mesh, &routes);
    let mut net = Network::new(cfg, flows);
    let rates = vec![(FlowId(0), 0.04), (FlowId(1), 0.04)];
    let mut traffic = BernoulliTraffic::new(&rates, net.flows(), mesh, cfg.flits_per_packet, 23);
    net.run_with(&mut traffic, 40_000);
    net.drain(5_000);
    let a = net.stats().flow(FlowId(0)).expect("f0").packets as f64;
    let b = net.stats().flow(FlowId(1)).expect("f1").packets as f64;
    assert!(a > 1000.0 && b > 1000.0, "enough samples ({a}, {b})");
    assert!((a / b - 1.0).abs() < 0.1, "fair split: {a} vs {b}");
}

#[test]
fn transpose_pattern_conserves_packets_on_the_baseline() {
    let mesh = Mesh::paper_4x4();
    let cfg = SimConfig::paper_4x4();
    let pairs = Pattern::Transpose.pairs(mesh);
    let routes: Vec<(FlowId, SourceRoute)> = pairs
        .iter()
        .enumerate()
        .map(|(i, (s, d))| (FlowId(i as u32), SourceRoute::xy(mesh, *s, *d).unwrap()))
        .collect();
    let flows = FlowTable::mesh_baseline(mesh, &routes);
    let mut net = Network::new(cfg, flows);
    let rates: Vec<(FlowId, f64)> = routes.iter().map(|(f, _)| (*f, 0.01)).collect();
    let mut traffic = BernoulliTraffic::new(&rates, net.flows(), mesh, cfg.flits_per_packet, 99);
    net.run_with(&mut traffic, 20_000);
    assert!(net.drain(5_000));
    let c = net.counters();
    assert_eq!(c.packets_injected, c.packets_delivered);
    assert_eq!(
        c.flits_delivered,
        c.packets_delivered * u64::from(cfg.flits_per_packet)
    );
    assert!(c.packets_delivered > 1_500, "got {}", c.packets_delivered);
}

#[test]
fn hotspot_saturates_gracefully_not_fatally() {
    // 15 sources hammer one sink beyond its ejection bandwidth. The
    // network must keep conserving flits (backpressure into source
    // queues), not crash or lose packets.
    let mesh = Mesh::paper_4x4();
    let cfg = SimConfig::paper_4x4();
    let pairs = Pattern::Hotspot(NodeId(5)).pairs(mesh);
    let routes: Vec<(FlowId, SourceRoute)> = pairs
        .iter()
        .enumerate()
        .map(|(i, (s, d))| (FlowId(i as u32), SourceRoute::xy(mesh, *s, *d).unwrap()))
        .collect();
    let flows = FlowTable::mesh_baseline(mesh, &routes);
    let mut net = Network::new(cfg, flows);
    // 15 flows × 0.02 packets/cycle × 8 flits = 2.4 flits/cycle toward
    // a sink that ejects 1 flit/cycle: heavily oversubscribed.
    let rates: Vec<(FlowId, f64)> = routes.iter().map(|(f, _)| (*f, 0.02)).collect();
    let mut traffic = BernoulliTraffic::new(&rates, net.flows(), mesh, cfg.flits_per_packet, 7);
    net.run_with(&mut traffic, 10_000);
    let c = net.counters();
    assert!(c.packets_delivered > 500, "sink keeps draining");
    assert!(
        net.total_backlog() > 0,
        "oversubscription must back up into the NICs"
    );
    // Stop offering traffic; everything in flight must still complete.
    assert!(net.drain(1_000_000), "drains once sources go quiet");
    let c = net.counters();
    assert_eq!(c.packets_injected, c.packets_delivered);
}

#[test]
fn single_flit_packets_work() {
    // Head==tail degenerate packets (config with 1 flit/packet).
    let mesh = Mesh::paper_4x4();
    let cfg = SimConfig {
        flits_per_packet: 1,
        ..SimConfig::paper_4x4()
    };
    let routes = vec![(
        FlowId(0),
        SourceRoute::xy(mesh, NodeId(2), NodeId(13)).unwrap(),
    )];
    let flows = FlowTable::mesh_baseline(mesh, &routes);
    let mut net = Network::new(cfg, flows);
    let mut traffic = ScriptedTraffic::new(
        (0..10).map(|i| (i * 3, FlowId(0))).collect(),
        1,
        net.flows(),
        mesh,
    );
    net.run_with(&mut traffic, 500);
    assert!(net.drain(500));
    assert_eq!(net.counters().packets_delivered, 10);
    let st = net.stats().flow(FlowId(0)).expect("delivered");
    // Head latency == packet latency for 1-flit packets.
    assert_eq!(st.avg_head_latency(), st.avg_packet_latency());
}

#[test]
fn deep_mesh_16x16_zero_load_formula_still_holds() {
    let mesh = Mesh::new(16, 16);
    let cfg = SimConfig {
        topology: mesh.into(),
        ..SimConfig::paper_4x4()
    };
    // Corner to corner: 30 hops.
    let route = SourceRoute::xy(mesh, NodeId(0), NodeId(255)).unwrap();
    let flows = FlowTable::mesh_baseline(mesh, &[(FlowId(0), route)]);
    let mut net = Network::new(cfg, flows);
    net.offer(packet(0, 0, 0, 255, 0));
    assert!(net.drain(1_000));
    assert_eq!(
        net.stats()
            .flow(FlowId(0))
            .expect("delivered")
            .avg_head_latency(),
        (4 * 30 + 4) as f64
    );
}
