//! Equivalence net for the telemetry layer: attaching a probe must
//! never perturb the simulation (telemetry-on and telemetry-off runs
//! are bit-identical in every externally observable quantity), and the
//! merged per-shard series must equal the serial engine's series
//! byte-for-byte — on the mesh and on the torus, whose wrap links carry
//! probe events across the outermost band boundary. The wire format is
//! closed under round-trip for arbitrary series, not just simulated
//! ones.

use proptest::prelude::*;
use smart_sim::route::SourceRoute;
use smart_sim::telemetry::BYPASS_BUCKETS;
use smart_sim::topology::{LinkId, Mesh, Topology, Torus};
use smart_sim::{
    BernoulliTraffic, Engine, FlowId, FlowTable, MetricsWindow, ShardPlan, SimConfig,
    TelemetryConfig, TelemetrySeries,
};
use std::collections::HashMap;

/// Transpose routes + a uniform per-flow rate — the same cross-band,
/// cross-seam workload `shard_equivalence.rs` uses.
fn transpose_workload(topo: Topology, rate: f64) -> (FlowTable, Vec<(FlowId, f64)>) {
    let routes: Vec<(FlowId, SourceRoute)> = topo
        .nodes()
        .filter_map(|src| {
            let c = topo.coord(src);
            let dst = topo.node_at(smart_sim::topology::Coord { x: c.y, y: c.x });
            SourceRoute::xy(topo, src, dst).ok().map(|r| (src, r))
        })
        .enumerate()
        .map(|(i, (_, r))| (FlowId(i as u32), r))
        .collect();
    let rates = routes.iter().map(|(f, _)| (*f, rate)).collect();
    (FlowTable::mesh_baseline(topo, &routes), rates)
}

fn run(engine: &mut Engine, cfg: SimConfig, rates: &[(FlowId, f64)], seed: u64, cycles: u64) {
    let mut traffic = BernoulliTraffic::new(
        rates,
        engine.flows(),
        cfg.topology,
        cfg.flits_per_packet,
        seed,
    );
    engine.run_with(&mut traffic, cycles);
    assert!(engine.drain(100_000), "engine failed to drain");
}

/// Telemetry must be a pure observer: the probed run and the plain run
/// agree on drain cycle, per-flow latency statistics, activity
/// counters, and per-link flit counts.
fn assert_probe_is_invisible(topo: Topology, rate: f64, seed: u64, cycles: u64) {
    let cfg = SimConfig {
        topology: topo,
        ..SimConfig::paper_4x4()
    };
    let (flows, rates) = transpose_workload(topo, rate);

    let mut plain = Engine::serial(cfg, flows.clone());
    run(&mut plain, cfg, &rates, seed, cycles);

    let mut probed = Engine::serial(cfg, flows);
    probed.set_telemetry(TelemetryConfig::windowed(64));
    run(&mut probed, cfg, &rates, seed, cycles);

    assert_eq!(plain.cycle(), probed.cycle(), "drain cycle");
    assert_eq!(plain.stats(), probed.stats(), "stats");
    assert_eq!(plain.counters(), probed.counters(), "counters");
    let plain_links: HashMap<LinkId, u64> = plain.link_flit_counts().collect();
    let probed_links: HashMap<LinkId, u64> = probed.link_flit_counts().collect();
    assert_eq!(plain_links, probed_links, "link utilization");

    // And the series itself is coherent: the final window's cumulative
    // figures match the engine's own counters.
    let series = probed.take_telemetry().expect("telemetry enabled");
    let last = series.windows.last().expect("at least one window");
    assert_eq!(last.injected, probed.counters().packets_injected);
    assert_eq!(last.delivered, probed.counters().packets_delivered);
    assert_eq!(last.buffered, 0, "drained fabric buffers nothing");
}

/// The merged per-shard series must serialize byte-identically to the
/// serial engine's series at every shard count.
fn assert_sharded_series_match(topo: Topology, rate: f64, seed: u64, cycles: u64, window: u64) {
    let cfg = SimConfig {
        topology: topo,
        ..SimConfig::paper_4x4()
    };
    let (flows, rates) = transpose_workload(topo, rate);

    let mut serial = Engine::serial(cfg, flows.clone());
    serial.set_telemetry(TelemetryConfig::windowed(window));
    run(&mut serial, cfg, &rates, seed, cycles);
    let reference = serial
        .take_telemetry()
        .expect("telemetry enabled")
        .to_jsonl();

    for k in [2usize, 4, 8] {
        let mut sharded = Engine::new(cfg, flows.clone(), ShardPlan::banded(k));
        sharded.set_telemetry(TelemetryConfig::windowed(window));
        run(&mut sharded, cfg, &rates, seed, cycles);
        let merged = sharded
            .take_telemetry()
            .expect("telemetry enabled")
            .to_jsonl();
        assert_eq!(reference, merged, "k={k}: telemetry series diverged");
    }
}

proptest! {
    // Each case runs multiple full simulations; keep cases few but
    // rates spanning light load to past transpose saturation.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn probe_never_perturbs_the_simulation(
        seed in 0u64..1_000_000,
        rate_milli in prop::sample::select(vec![10u32, 80, 300]),
    ) {
        assert_probe_is_invisible(
            Mesh::new(8, 8).into(),
            f64::from(rate_milli) / 1_000.0,
            seed,
            1_000,
        );
    }

    #[test]
    fn mesh_sharded_telemetry_is_byte_identical(
        seed in 0u64..1_000_000,
        rate_milli in prop::sample::select(vec![10u32, 80, 300]),
    ) {
        assert_sharded_series_match(
            Mesh::new(8, 8).into(),
            f64::from(rate_milli) / 1_000.0,
            seed,
            1_000,
            128,
        );
    }

    #[test]
    fn torus_sharded_telemetry_is_byte_identical_across_the_seam(
        seed in 0u64..1_000_000,
        rate_milli in prop::sample::select(vec![10u32, 300]),
    ) {
        assert_sharded_series_match(
            Torus::new(8, 8).into(),
            f64::from(rate_milli) / 1_000.0,
            seed,
            1_000,
            128,
        );
    }
}

/// Build an arbitrary-but-consistent series from a flat pool of
/// generated counters: vectors are sized to the header's router/link
/// counts (as the collector guarantees for real series), every other
/// field is drawn freely from the pool. Sparse rendering is exercised
/// by the pool's zeros.
fn series_from_pool(
    routers: usize,
    window: u64,
    label: Option<String>,
    n_windows: usize,
    pool: &[u64],
) -> TelemetrySeries {
    let links = routers * 5;
    let mut cursor = pool.iter().copied().cycle();
    let mut take = |n: usize| -> Vec<u64> { cursor.by_ref().take(n).collect() };
    let windows = (0..n_windows)
        .map(|i| MetricsWindow {
            end: (i as u64 + 1) * window,
            ssr_setups: take(1)[0],
            ssr_grants: take(1)[0],
            bypass: take(BYPASS_BUCKETS),
            stalls: take(routers * 4),
            link_flits: take(links),
            injected: take(1)[0],
            delivered: take(1)[0],
            buffered: take(1)[0],
        })
        .collect();
    TelemetrySeries {
        window,
        routers,
        links,
        label,
        windows,
    }
}

proptest! {
    #[test]
    fn metrics_v1_round_trips_arbitrary_series(
        routers in 1usize..20,
        window in 1u64..10_000,
        n_windows in 0usize..6,
        label_kind in 0usize..3,
        pool in prop::collection::vec(0u64..100_000, 32..300),
    ) {
        // Labels cover: absent, plain, and needing JSON escaping.
        let label = match label_kind {
            0 => None,
            1 => Some("phase0:WLAN".to_owned()),
            _ => Some("a \"quoted\"\\label\n".to_owned()),
        };
        let series = series_from_pool(routers, window, label, n_windows, &pool);
        let jsonl = series.to_jsonl();
        let parsed = TelemetrySeries::parse(&jsonl).expect("round-trip");
        prop_assert_eq!(parsed, series);
    }
}
