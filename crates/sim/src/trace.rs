//! Event tracing and VCD emission.
//!
//! The paper estimated power by feeding VCD activity dumps from
//! post-layout simulation into Synopsys PrimePower. This module is the
//! reproduction's analogue: the engine can record micro-architectural
//! events (buffer writes, segment launches, deliveries, credits), which
//! can be re-aggregated into activity counters (validating the live
//! accounting), rendered as a flit-journey log, or dumped as a VCD
//! waveform of per-router activity for external viewers.

use crate::flit::{FlowId, PacketId};
use crate::topology::{Direction, NodeId, Topology};
use std::fmt;
use std::fmt::Write as _;

/// Why tracing could not be enabled on an engine.
///
/// Flit tracing records a single global event order, which the
/// row-band-sharded engine cannot produce (each shard appends its own
/// events concurrently). Callers get this typed error instead of the
/// former `panic!`, and can either fall back to a serial engine or
/// surface the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceError {
    /// Number of row-band shards the refusing engine runs.
    pub shards: usize,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tracing requires the serial engine: this engine runs {} row-band shards \
             and cannot record a single global event order; rebuild with shards = 1 \
             (windowed telemetry works on both engines)",
            self.shards
        )
    }
}

impl std::error::Error for TraceError {}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A flit was written into input `in_dir` of `router`.
    BufferWrite {
        /// Stop router.
        router: NodeId,
        /// Input port.
        in_dir: Direction,
    },
    /// A flit launched onto a leg: it crosses `links` links and
    /// `crossbars` crossbars within one `ST(+LT)`.
    Launch {
        /// Router it departs from (or the source for NIC injections).
        from: NodeId,
        /// Links crossed this cycle.
        links: u8,
        /// Crossbars traversed.
        crossbars: u8,
        /// Millimetres of wire.
        mm: f64,
    },
    /// A flit reached its destination NIC.
    Deliver {
        /// Destination node.
        node: NodeId,
        /// Head flit?
        head: bool,
        /// Tail flit?
        tail: bool,
    },
    /// A credit returned to its sender across the reverse mesh.
    Credit {
        /// Crossbars the credit traversed.
        crossbars: u8,
        /// Millimetres of credit wire.
        mm: f64,
    },
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Cycle of the event (the `ST` cycle for launches).
    pub cycle: u64,
    /// Flow involved.
    pub flow: FlowId,
    /// Packet involved.
    pub packet: PacketId,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded in-memory event recorder.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// A tracer holding at most `capacity` records (older events are
    /// never evicted; overflow is counted instead, keeping the record
    /// stream contiguous from cycle zero).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Record one event.
    pub fn record(&mut self, rec: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Events that arrived after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Re-aggregate activity counts from the trace (the event-driven
    /// subset: buffer writes, crossbar/link activity, deliveries).
    /// Used to cross-validate the engine's live counters.
    #[must_use]
    pub fn replay_counts(&self) -> ReplayCounts {
        let mut c = ReplayCounts::default();
        for r in &self.records {
            match r.kind {
                TraceKind::BufferWrite { .. } => c.buffer_writes += 1,
                TraceKind::Launch { crossbars, mm, .. } => {
                    c.xbar_flit_traversals += u64::from(crossbars);
                    c.link_flit_mm += mm;
                }
                TraceKind::Deliver { head, tail, .. } => {
                    c.flits_delivered += 1;
                    if head {
                        c.heads_delivered += 1;
                    }
                    if tail {
                        c.packets_delivered += 1;
                    }
                }
                TraceKind::Credit { crossbars, mm } => {
                    c.xbar_credit_traversals += u64::from(crossbars);
                    c.link_credit_mm += mm;
                }
            }
        }
        c
    }

    /// Human-readable journey of one packet, one line per event,
    /// chronologically ordered (records are appended in engine-phase
    /// order, which can interleave cycles).
    #[must_use]
    pub fn journey(&self, packet: PacketId) -> String {
        let mut s = String::new();
        let mut recs: Vec<&TraceRecord> =
            self.records.iter().filter(|r| r.packet == packet).collect();
        recs.sort_by_key(|r| r.cycle);
        for r in recs {
            let line = match r.kind {
                TraceKind::BufferWrite { router, in_dir } => {
                    format!(
                        "cycle {:>4}: buffered at {} input {}",
                        r.cycle, router, in_dir
                    )
                }
                TraceKind::Launch {
                    from,
                    links,
                    crossbars,
                    ..
                } => format!(
                    "cycle {:>4}: ST from {} — {} links / {} crossbars in this cycle",
                    r.cycle, from, links, crossbars
                ),
                TraceKind::Deliver { node, head, tail } => format!(
                    "cycle {:>4}: delivered at {}{}{}",
                    r.cycle,
                    node,
                    if head { " [head]" } else { "" },
                    if tail { " [tail]" } else { "" }
                ),
                TraceKind::Credit { .. } => {
                    format!("cycle {:>4}: credit returned upstream", r.cycle)
                }
            };
            writeln!(s, "{line}").expect("infallible");
        }
        s
    }

    /// Dump per-router activity as a VCD waveform (one wire per router,
    /// high on cycles with any event there), with the cycle as the VCD
    /// timescale unit.
    #[must_use]
    pub fn to_vcd(&self, topo: impl Into<Topology>, module: &str) -> String {
        let n = topo.into().len();
        let mut s = String::new();
        writeln!(s, "$date smart-noc trace $end").expect("infallible");
        writeln!(s, "$timescale 500ps $end").expect("infallible");
        writeln!(s, "$scope module {module} $end").expect("infallible");
        for i in 0..n {
            writeln!(s, "$var wire 1 {} router_{}_active $end", ident(i), i).expect("infallible");
        }
        writeln!(s, "$upscope $end").expect("infallible");
        writeln!(s, "$enddefinitions $end").expect("infallible");

        // Per-cycle activity bitmap. Records are appended in engine-phase
        // order; VCD requires monotone timestamps.
        let mut sorted: Vec<&TraceRecord> = self.records.iter().collect();
        sorted.sort_by_key(|r| r.cycle);
        let mut active = vec![false; n];
        let mut last_cycle = None::<u64>;
        let mut pending = vec![false; n];
        let flush = |s: &mut String, cycle: u64, active: &mut Vec<bool>, pending: &Vec<bool>| {
            writeln!(s, "#{cycle}").expect("infallible");
            for i in 0..n {
                if active[i] != pending[i] {
                    writeln!(s, "{}{}", u8::from(pending[i]), ident(i)).expect("infallible");
                    active[i] = pending[i];
                }
            }
        };
        for r in sorted {
            if last_cycle != Some(r.cycle) {
                if let Some(c) = last_cycle {
                    flush(&mut s, c, &mut active, &pending);
                }
                pending = vec![false; n];
                last_cycle = Some(r.cycle);
            }
            let node = match r.kind {
                TraceKind::BufferWrite { router, .. } => Some(router),
                TraceKind::Launch { from, .. } => Some(from),
                TraceKind::Deliver { node, .. } => Some(node),
                TraceKind::Credit { .. } => None,
            };
            if let Some(nd) = node {
                pending[nd.0 as usize] = true;
            }
        }
        if let Some(c) = last_cycle {
            flush(&mut s, c, &mut active, &pending);
            // Return all wires low one cycle later.
            pending = vec![false; n];
            flush(&mut s, c + 1, &mut active, &pending);
        }
        s
    }
}

/// Counter subset reconstructable from a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayCounts {
    /// Buffer writes observed.
    pub buffer_writes: u64,
    /// Flit crossbar traversals.
    pub xbar_flit_traversals: u64,
    /// Credit crossbar traversals.
    pub xbar_credit_traversals: u64,
    /// Flit link mm.
    pub link_flit_mm: f64,
    /// Credit link mm.
    pub link_credit_mm: f64,
    /// Flits delivered.
    pub flits_delivered: u64,
    /// Head flits delivered.
    pub heads_delivered: u64,
    /// Packets (tails) delivered.
    pub packets_delivered: u64,
}

/// Compact printable VCD identifier for index `i`.
fn ident(i: usize) -> String {
    // Printable ASCII '!'..'~', multi-char for larger indices.
    let chars: Vec<u8> = (b'!'..=b'~').collect();
    let mut v = Vec::new();
    let mut x = i;
    loop {
        v.push(chars[x % chars.len()]);
        x /= chars.len();
        if x == 0 {
            break;
        }
    }
    String::from_utf8(v).expect("printable ascii")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            cycle,
            flow: FlowId(0),
            packet: PacketId(1),
            kind,
        }
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record(rec(
                i,
                TraceKind::Deliver {
                    node: NodeId(0),
                    head: true,
                    tail: false,
                },
            ));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn replay_counts_aggregate() {
        let mut t = Tracer::with_capacity(100);
        t.record(rec(
            0,
            TraceKind::Launch {
                from: NodeId(0),
                links: 3,
                crossbars: 4,
                mm: 3.0,
            },
        ));
        t.record(rec(
            1,
            TraceKind::BufferWrite {
                router: NodeId(2),
                in_dir: Direction::West,
            },
        ));
        t.record(rec(
            2,
            TraceKind::Deliver {
                node: NodeId(3),
                head: true,
                tail: true,
            },
        ));
        t.record(rec(
            3,
            TraceKind::Credit {
                crossbars: 4,
                mm: 3.0,
            },
        ));
        let c = t.replay_counts();
        assert_eq!(c.buffer_writes, 1);
        assert_eq!(c.xbar_flit_traversals, 4);
        assert_eq!(c.xbar_credit_traversals, 4);
        assert!((c.link_flit_mm - 3.0).abs() < 1e-12);
        assert_eq!(c.flits_delivered, 1);
        assert_eq!(c.packets_delivered, 1);
    }

    #[test]
    fn journey_is_chronological_prose() {
        let mut t = Tracer::with_capacity(10);
        t.record(rec(
            5,
            TraceKind::Launch {
                from: NodeId(0),
                links: 2,
                crossbars: 2,
                mm: 2.0,
            },
        ));
        t.record(rec(
            5,
            TraceKind::BufferWrite {
                router: NodeId(2),
                in_dir: Direction::West,
            },
        ));
        let j = t.journey(PacketId(1));
        assert!(j.contains("cycle    5: ST from n0"));
        assert!(j.contains("buffered at n2 input W"));
        assert!(t.journey(PacketId(99)).is_empty());
    }

    #[test]
    fn vcd_structure() {
        let mesh = crate::topology::Mesh::paper_4x4();
        let mut t = Tracer::with_capacity(10);
        t.record(rec(
            0,
            TraceKind::Launch {
                from: NodeId(5),
                links: 1,
                crossbars: 1,
                mm: 1.0,
            },
        ));
        t.record(rec(
            3,
            TraceKind::Deliver {
                node: NodeId(6),
                head: true,
                tail: false,
            },
        ));
        let vcd = t.to_vcd(mesh, "smart_mesh");
        assert_eq!(vcd.matches("$var wire 1").count(), 16);
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#3"));
        // Router 5's wire goes high at its event.
        let id5 = ident(5);
        assert!(vcd.contains(&format!("1{id5}")), "{vcd}");
    }

    #[test]
    fn idents_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let id = ident(i);
            assert!(id.bytes().all(|b| (b'!'..=b'~').contains(&b)));
            assert!(seen.insert(id));
        }
    }
}
