//! The router: input-port VC buffers, switch allocation with
//! virtual-cut-through switch hold, and preset-aware output ports.
//!
//! The pipeline is the paper's 3-stage organization (Fig 6):
//!
//! * **BW** — a flit arriving at the end of cycle *a* is buffer-written
//!   during *a+1*;
//! * **SA** — it may arbitrate from cycle *a+2*;
//! * **ST(+LT)** — on a grant at cycle *g* it traverses the crossbar (and,
//!   for SMART, the entire multi-hop link segment) during *g+1*.
//!
//! Virtual cut-through: a head flit's grant captures the output port and
//! one free VC at the *endpoint of its leg* (which for SMART may be a
//! router several hops away); body flits stream behind it; the tail
//! releases the hold and triggers the credit that frees this router's
//! input VC back at the upstream sender.

use crate::arbiter::RoundRobin;
use crate::counters::ActivityCounters;
use crate::flit::{Flit, VcId};
use crate::forward::FlowTable;
use crate::topology::{Direction, NodeId};
use std::collections::VecDeque;

/// One virtual-channel buffer within an input port.
#[derive(Debug, Clone, Default)]
struct VcBuf {
    /// Buffered flits with their arrival (buffer-write) cycles.
    queue: VecDeque<(Flit, u64)>,
    /// `true` while a packet occupies this VC (head arrived, tail not yet
    /// departed).
    occupied: bool,
}

/// An input port: `vcs` virtual channels of `depth` flits each.
#[derive(Debug, Clone)]
pub struct InputPort {
    vcs: Vec<VcBuf>,
    depth: usize,
    /// Whether any flow uses this port (preset clock gating).
    enabled: bool,
}

impl InputPort {
    fn new(num_vcs: usize, depth: usize) -> Self {
        InputPort {
            vcs: vec![VcBuf::default(); num_vcs],
            depth,
            enabled: false,
        }
    }

    /// Total buffered flits across VCs.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.vcs.iter().map(|v| v.queue.len()).sum()
    }
}

/// An output port: the free-VC queue tracking the leg endpoint, and the
/// VCT switch-hold state.
#[derive(Debug, Clone)]
pub struct OutputPort {
    /// Free VCs at this port's leg endpoint (possibly multiple hops away
    /// in SMART).
    free_vcs: VecDeque<VcId>,
    /// `(input port, input vc, endpoint vc)` holding the switch until the
    /// tail passes.
    held: Option<(usize, usize, VcId)>,
    /// Output arbiter over `inputs × vcs` requesters.
    arb: RoundRobin,
    /// Whether any flow uses this port (preset clock gating).
    enabled: bool,
}

impl OutputPort {
    fn new(num_inputs: usize, num_vcs: usize) -> Self {
        OutputPort {
            free_vcs: VecDeque::new(),
            held: None,
            arb: RoundRobin::new(num_inputs * num_vcs),
            enabled: false,
        }
    }

    /// Free VCs currently available at the endpoint.
    #[must_use]
    pub fn free_vc_count(&self) -> usize {
        self.free_vcs.len()
    }
}

/// A flit leaving this router, with the context the engine needs to
/// schedule its arrival.
#[derive(Debug, Clone)]
pub struct RouterDeparture {
    /// The flit (its `vc` field already set to the endpoint VC).
    pub flit: Flit,
    /// Output direction granted.
    pub out_dir: Direction,
}

/// A credit released by a departing tail: the upstream sender of
/// `in_dir` gets VC `vc` back.
#[derive(Debug, Clone, Copy)]
pub struct CreditRelease {
    /// Input port whose VC was freed.
    pub in_dir: Direction,
    /// The freed VC.
    pub vc: VcId,
}

/// A router instance.
#[derive(Debug, Clone)]
pub struct Router {
    node: NodeId,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    num_vcs: usize,
}

impl Router {
    /// A 5-port router with `num_vcs` VCs of `depth` flits per input.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` or `depth` is zero.
    #[must_use]
    pub fn new(node: NodeId, num_vcs: usize, depth: usize) -> Self {
        assert!(num_vcs > 0, "need at least one VC");
        assert!(depth > 0, "need at least one buffer slot");
        Router {
            node,
            inputs: (0..5).map(|_| InputPort::new(num_vcs, depth)).collect(),
            outputs: (0..5).map(|_| OutputPort::new(5, num_vcs)).collect(),
            num_vcs,
        }
    }

    /// This router's node id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Mark an input port as used by some flow (ungated), per presets.
    pub fn enable_input(&mut self, dir: Direction) {
        self.inputs[dir.index()].enabled = true;
    }

    /// Mark an output port as used and seed its free-VC queue with the
    /// endpoint's `num_vcs` VCs.
    pub fn enable_output(&mut self, dir: Direction) {
        let o = &mut self.outputs[dir.index()];
        o.enabled = true;
        o.free_vcs = (0..self.num_vcs as u8).map(VcId).collect();
    }

    /// Number of clock-enabled ports (inputs + outputs) for gating
    /// accounting.
    #[must_use]
    pub fn enabled_ports(&self) -> usize {
        self.inputs.iter().filter(|p| p.enabled).count()
            + self.outputs.iter().filter(|p| p.enabled).count()
    }

    /// Occupancy of input port `dir`.
    #[must_use]
    pub fn input_occupancy(&self, dir: Direction) -> usize {
        self.inputs[dir.index()].occupancy()
    }

    /// Free-VC count at output `dir`'s endpoint.
    #[must_use]
    pub fn output_free_vcs(&self, dir: Direction) -> usize {
        self.outputs[dir.index()].free_vc_count()
    }

    /// `true` when no flit is buffered anywhere in this router.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.inputs.iter().all(|p| p.occupancy() == 0)
    }

    /// Return a credit (freed endpoint VC) to output port `dir`.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already in the free queue (double-free).
    pub fn credit(&mut self, dir: Direction, vc: VcId) {
        let o = &mut self.outputs[dir.index()];
        assert!(
            !o.free_vcs.contains(&vc),
            "{}: double credit for {vc} at output {dir}",
            self.node
        );
        o.free_vcs.push_back(vc);
        assert!(
            o.free_vcs.len() <= self.num_vcs,
            "{}: more credits than VCs at output {dir}",
            self.node
        );
    }

    /// Buffer-write an arriving flit (end-of-cycle `cycle` arrival) into
    /// input `in_dir`, VC `flit.vc`.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations: missing VC allocation, overflow,
    /// a head arriving into an occupied VC, or a body arriving into an
    /// idle one.
    pub fn receive(
        &mut self,
        in_dir: Direction,
        flit: Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) {
        let vc = flit
            .vc
            .unwrap_or_else(|| panic!("{}: flit arrived without a VC", self.node));
        let depth = self.inputs[in_dir.index()].depth;
        let buf = &mut self.inputs[in_dir.index()].vcs[vc.0 as usize];
        if flit.is_head() {
            assert!(
                !buf.occupied && buf.queue.is_empty(),
                "{}: head of {:?} arrived into occupied {vc} at input {in_dir}",
                self.node,
                flit.packet
            );
            buf.occupied = true;
        } else {
            assert!(
                buf.occupied,
                "{}: body/tail arrived into idle {vc} at input {in_dir}",
                self.node
            );
        }
        assert!(
            buf.queue.len() < depth,
            "{}: buffer overflow at input {in_dir} {vc}",
            self.node
        );
        buf.queue.push_back((flit, cycle));
        counters.buffer_writes += 1;
    }

    /// Run switch allocation for `cycle` and return departures (flits
    /// entering ST in cycle `cycle + 1`) plus any credits released by
    /// departing tails.
    pub fn allocate(
        &mut self,
        cycle: u64,
        flows: &FlowTable,
        counters: &mut ActivityCounters,
    ) -> (Vec<RouterDeparture>, Vec<CreditRelease>) {
        let nv = self.num_vcs;
        // Which (input, vc) is SA-eligible this cycle, and toward which
        // output does its front flit point?
        let mut want: Vec<Vec<Option<usize>>> = vec![vec![None; nv]; 5];
        for (p, port) in self.inputs.iter().enumerate() {
            for (v, buf) in port.vcs.iter().enumerate() {
                let Some((flit, arrived)) = buf.queue.front() else {
                    continue;
                };
                if arrived + 2 > cycle {
                    continue; // still in BW or just arrived
                }
                let out = if flit.is_head() {
                    flows.leg_from(flit.flow, self.node).out_dir
                } else {
                    // Body/tail follow the hold; find which output holds us.
                    match self
                        .outputs
                        .iter()
                        .position(|o| matches!(o.held, Some((hp, hv, _)) if hp == p && hv == v))
                    {
                        Some(o) => Direction::from_index(o),
                        None => continue, // head not granted yet
                    }
                };
                want[p][v] = Some(out.index());
            }
        }

        // Output-major allocation: held outputs stream their holder; free
        // outputs arbitrate among eligible heads (needing a free VC).
        // winners[o] = (input, vc, is_new_head)
        let mut winners: Vec<Option<(usize, usize, bool)>> = vec![None; 5];
        for (o, out) in self.outputs.iter_mut().enumerate() {
            if !out.enabled {
                continue;
            }
            if let Some((hp, hv, _)) = out.held {
                if want[hp][hv] == Some(o) {
                    winners[o] = Some((hp, hv, false));
                }
                continue;
            }
            let mut requests = vec![false; 5 * nv];
            for (p, row) in want.iter().enumerate() {
                for (v, w) in row.iter().enumerate() {
                    if *w == Some(o) {
                        let (flit, _) = self.inputs[p].vcs[v]
                            .queue
                            .front()
                            .expect("eligible VC has a front flit");
                        if flit.is_head() && !out.free_vcs.is_empty() {
                            requests[p * nv + v] = true;
                            counters.sa_requests += 1;
                        }
                    }
                }
            }
            if let Some(g) = out.arb.grant(&requests) {
                winners[o] = Some((g / nv, g % nv, true));
            }
        }

        // Input-port conflict resolution: one flit per input port per
        // cycle. Held streams take precedence over new heads; ties break
        // by output index.
        let mut port_taken = [false; 5];
        let mut cancel = |winners: &mut Vec<Option<(usize, usize, bool)>>, new_head: bool| {
            for w in winners.iter_mut() {
                if let Some((p, _, is_new)) = *w {
                    if is_new == new_head {
                        if port_taken[p] {
                            *w = None;
                        } else {
                            port_taken[p] = true;
                        }
                    }
                }
            }
        };
        cancel(&mut winners, false);
        cancel(&mut winners, true);

        // Execute grants.
        let mut departures = Vec::new();
        let mut credits = Vec::new();
        for (o, w) in winners.iter().enumerate() {
            let Some((p, v, is_new)) = *w else { continue };
            let out_dir = Direction::from_index(o);
            let (mut flit, _) = self.inputs[p].vcs[v]
                .queue
                .pop_front()
                .expect("winner has a front flit");
            counters.buffer_reads += 1;
            counters.sa_grants += 1;
            let endpoint_vc = if is_new {
                let vc = self.outputs[o]
                    .free_vcs
                    .pop_front()
                    .expect("head grant requires a free VC");
                self.outputs[o].held = Some((p, v, vc));
                vc
            } else {
                self.outputs[o].held.expect("streaming under a hold").2
            };
            flit.vc = Some(endpoint_vc);
            if flit.is_tail() {
                self.outputs[o].held = None;
                let buf = &mut self.inputs[p].vcs[v];
                assert!(
                    buf.queue.is_empty(),
                    "{}: tail departed but flits remain behind it",
                    self.node
                );
                buf.occupied = false;
                credits.push(CreditRelease {
                    in_dir: Direction::from_index(p),
                    vc: VcId(v as u8),
                });
            }
            departures.push(RouterDeparture { flit, out_dir });
        }
        (departures, credits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlowId, Packet, PacketId};
    use crate::forward::FlowTable;
    use crate::route::SourceRoute;
    use crate::topology::Mesh;

    fn mesh() -> Mesh {
        Mesh::paper_4x4()
    }

    /// A flow table with a single 2-hop flow 0 -> 2 (baseline plan).
    fn table() -> FlowTable {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(2));
        FlowTable::mesh_baseline(mesh(), &[(FlowId(0), route)])
    }

    fn packet_flits(n: u8) -> Vec<Flit> {
        Packet {
            id: PacketId(1),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(2),
            gen_cycle: 0,
            num_flits: n,
        }
        .into_flits(0)
    }

    fn prepared_router() -> Router {
        let mut r = Router::new(NodeId(0), 2, 10);
        r.enable_input(Direction::Core);
        r.enable_output(Direction::East);
        r
    }

    #[test]
    fn head_waits_two_cycles_before_sa() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        let mut flits = packet_flits(2);
        let mut head = flits.remove(0);
        head.vc = Some(VcId(0));
        r.receive(Direction::Core, head, 5, &mut c);
        // SA at cycle 6 is too early (BW happens during 6).
        let (d, _) = r.allocate(6, &flows, &mut c);
        assert!(d.is_empty());
        // SA at cycle 7 grants.
        let (d, _) = r.allocate(7, &flows, &mut c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].out_dir, Direction::East);
        assert_eq!(c.sa_grants, 1);
        assert_eq!(c.buffer_writes, 1);
        assert_eq!(c.buffer_reads, 1);
    }

    #[test]
    fn packet_streams_one_flit_per_cycle_and_tail_releases() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        // 4-flit packet arrives on consecutive cycles.
        for (i, mut f) in packet_flits(4).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, 10 + i as u64, &mut c);
        }
        let mut sent = Vec::new();
        let mut credits = Vec::new();
        for cycle in 12..=15 {
            let (d, cr) = r.allocate(cycle, &flows, &mut c);
            sent.extend(d);
            credits.extend(cr);
        }
        assert_eq!(sent.len(), 4, "one flit per cycle");
        assert!(sent[0].flit.is_head());
        assert!(sent[3].flit.is_tail());
        // All flits carry the same endpoint VC.
        let vc = sent[0].flit.vc;
        assert!(sent.iter().all(|d| d.flit.vc == vc));
        // Tail released exactly one credit for Core/vc0.
        assert_eq!(credits.len(), 1);
        assert_eq!(credits[0].in_dir, Direction::Core);
        assert_eq!(credits[0].vc, VcId(0));
        assert!(r.is_drained());
        // Output free VCs: started 2, head took 1, none returned yet.
        assert_eq!(r.output_free_vcs(Direction::East), 1);
    }

    #[test]
    fn no_grant_without_free_vc() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        // Exhaust both endpoint VCs.
        let o = &mut r.outputs[Direction::East.index()];
        o.free_vcs.clear();
        let mut head = packet_flits(1).remove(0);
        head.vc = Some(VcId(0));
        r.receive(Direction::Core, head, 0, &mut c);
        let (d, _) = r.allocate(10, &flows, &mut c);
        assert!(d.is_empty(), "head must wait for a credit");
        // A credit arrives; now it goes.
        r.credit(Direction::East, VcId(1));
        let (d, _) = r.allocate(11, &flows, &mut c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].flit.vc, Some(VcId(1)));
    }

    #[test]
    fn two_flows_share_output_without_interleaving() {
        // Two flows, both 0 -> 2, on different VCs: packets must not
        // interleave on the East output.
        let mesh = mesh();
        let r0 = SourceRoute::xy(mesh, NodeId(0), NodeId(2));
        let r1 = SourceRoute::xy(mesh, NodeId(0), NodeId(3));
        let flows = FlowTable::mesh_baseline(mesh, &[(FlowId(0), r0), (FlowId(1), r1)]);
        let mut r = prepared_router();
        let mut c = ActivityCounters::new();
        // Packet A (flow 0) into vc0, packet B (flow 1) into vc1, same cycle.
        for (flow, vc, pid) in [(FlowId(0), VcId(0), 10), (FlowId(1), VcId(1), 11)] {
            let pkt = Packet {
                id: PacketId(pid),
                flow,
                src: NodeId(0),
                dst: NodeId(2),
                gen_cycle: 0,
                num_flits: 3,
            };
            for (i, mut f) in pkt.into_flits(0).into_iter().enumerate() {
                f.vc = Some(vc);
                r.receive(Direction::Core, f, i as u64, &mut c);
            }
        }
        let mut order = Vec::new();
        for cycle in 5..14 {
            let (d, _) = r.allocate(cycle, &flows, &mut c);
            for dep in d {
                order.push((dep.flit.packet, dep.flit.kind));
            }
        }
        assert_eq!(order.len(), 6);
        // First three flits belong to one packet, next three to the other.
        let first = order[0].0;
        assert!(order[..3].iter().all(|(p, _)| *p == first));
        assert!(order[3..].iter().all(|(p, _)| *p != first));
        assert_eq!(order[2].1, FlitKind::Tail);
    }

    #[test]
    fn held_stream_beats_new_head_on_the_same_input_port() {
        // One input port feeds two outputs: vc0 streams a packet to East
        // (hold established), vc1's head wants North. The physical
        // crossbar input carries one flit per cycle, so while the stream
        // has flits ready the new head must wait; it proceeds once the
        // stream's tail has passed.
        let mesh = Mesh::paper_4x4();
        // Flow 0: 0 -> 2 (East at router 0); flow 1: 0 -> 4 (North).
        let r0 = SourceRoute::xy(mesh, NodeId(0), NodeId(2));
        let r1 = SourceRoute::xy(mesh, NodeId(0), NodeId(4));
        let flows = FlowTable::mesh_baseline(mesh, &[(FlowId(0), r0), (FlowId(1), r1)]);
        let mut r = Router::new(NodeId(0), 2, 10);
        r.enable_input(Direction::Core);
        r.enable_output(Direction::East);
        r.enable_output(Direction::North);
        let mut c = ActivityCounters::new();
        // Packet A (flow 0, 3 flits) into vc0 at cycles 0..2.
        let pkt_a = Packet {
            id: PacketId(1),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(2),
            gen_cycle: 0,
            num_flits: 3,
        };
        for (i, mut f) in pkt_a.into_flits(0).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, i as u64, &mut c);
        }
        // Packet B (flow 1, 1 flit) into vc1 at cycle 0 as well.
        let pkt_b = Packet {
            id: PacketId(2),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(4),
            gen_cycle: 0,
            num_flits: 1,
        };
        let mut head_b = pkt_b.into_flits(0).remove(0);
        head_b.vc = Some(VcId(1));
        r.receive(Direction::Core, head_b, 0, &mut c);

        let mut order = Vec::new();
        for cycle in 2..10 {
            let (d, _) = r.allocate(cycle, &flows, &mut c);
            for dep in d {
                order.push((cycle, dep.out_dir, dep.flit.packet));
            }
        }
        // One flit per cycle from the shared Core input.
        let cycles: Vec<u64> = order.iter().map(|(c, _, _)| *c).collect();
        let mut dedup = cycles.clone();
        dedup.dedup();
        assert_eq!(cycles, dedup, "one flit per input port per cycle");
        assert_eq!(order.len(), 4, "all four flits depart");
        // A's first grant happens at cycle 2 (round-robin may admit B's
        // head first or defer it, but once A's stream holds East it may
        // not be interleaved with B on the input port).
        let a_cycles: Vec<u64> = order
            .iter()
            .filter(|(_, _, p)| *p == PacketId(1))
            .map(|(c, _, _)| *c)
            .collect();
        assert_eq!(a_cycles.len(), 3);
        assert!(
            a_cycles[2] - a_cycles[0] >= 2,
            "stream keeps its cadence: {a_cycles:?}"
        );
        // B's single-flit packet eventually leaves via North.
        assert!(order
            .iter()
            .any(|(_, d, p)| *p == PacketId(2) && *d == Direction::North));
    }

    #[test]
    #[should_panic(expected = "double credit")]
    fn double_credit_panics() {
        let mut r = prepared_router();
        r.credit(Direction::East, VcId(0));
        // VC 0 is already free (enable_output seeded it).
    }

    #[test]
    #[should_panic(expected = "buffer overflow")]
    fn overflow_panics() {
        let mut r = Router::new(NodeId(0), 1, 2);
        r.enable_input(Direction::Core);
        let mut c = ActivityCounters::new();
        for (i, mut f) in packet_flits(3).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, i as u64, &mut c);
        }
    }

    #[test]
    fn gating_counts_enabled_ports() {
        let mut r = Router::new(NodeId(3), 2, 10);
        assert_eq!(r.enabled_ports(), 0);
        r.enable_input(Direction::West);
        r.enable_output(Direction::Core);
        r.enable_output(Direction::East);
        assert_eq!(r.enabled_ports(), 3);
    }
}
