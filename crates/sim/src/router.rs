//! The router: input-port VC buffers, switch allocation with
//! virtual-cut-through switch hold, and preset-aware output ports.
//!
//! The pipeline is the paper's 3-stage organization (Fig 6):
//!
//! * **BW** — a flit arriving at the end of cycle *a* is buffer-written
//!   during *a+1*;
//! * **SA** — it may arbitrate from cycle *a+2*;
//! * **ST(+LT)** — on a grant at cycle *g* it traverses the crossbar (and,
//!   for SMART, the entire multi-hop link segment) during *g+1*.
//!
//! Virtual cut-through: a head flit's grant captures the output port and
//! one free VC at the *endpoint of its leg* (which for SMART may be a
//! router several hops away); body flits stream behind it; the tail
//! releases the hold and triggers the credit that frees this router's
//! input VC back at the upstream sender.
//!
//! The state of *all* routers lives in one [`RouterBank`]: flat
//! structure-of-arrays storage indexed by `(router, port, vc)`, so the
//! engine's per-cycle sweep walks dense arrays instead of chasing
//! per-router collections, and switch allocation reuses scratch buffers
//! instead of allocating per call. [`Router`] wraps a 1-router bank for
//! standalone protocol tests.

use crate::arbiter::RoundRobin;
use crate::counters::ActivityCounters;
use crate::flit::{Flit, FlowId, VcId};
use crate::forward::FlowTable;
use crate::topology::{Direction, NodeId, PORTS};
use std::collections::VecDeque;

/// A flit leaving this router, with the context the engine needs to
/// schedule its arrival.
#[derive(Debug, Clone)]
pub struct RouterDeparture {
    /// The flit (its `vc` field already set to the endpoint VC).
    pub flit: Flit,
    /// Output direction granted.
    pub out_dir: Direction,
}

/// A credit released by a departing tail: the upstream sender of
/// `in_dir` gets VC `vc` back.
#[derive(Debug, Clone, Copy)]
pub struct CreditRelease {
    /// Input port whose VC was freed.
    pub in_dir: Direction,
    /// The freed VC.
    pub vc: VcId,
}

/// The hot state of every router in the mesh, stored as flat
/// structure-of-arrays buffers.
///
/// Input-side arrays are indexed by `(router * 5 + port) * num_vcs + vc`,
/// output-side arrays by `router * 5 + port`. The per-cycle sweep reads
/// the dense [`front ready`](RouterBank::receive) array to find
/// SA-eligible VCs without touching the flit queues of idle ports, and
/// [`RouterBank::allocate`] appends into caller-owned scratch vectors so
/// steady-state simulation performs no heap allocation.
#[derive(Debug, Clone)]
pub struct RouterBank {
    n: usize,
    num_vcs: usize,
    depth: usize,
    /// Node id of bank slot 0, for diagnostics: the engine's bank maps
    /// slot `r` to node `r`, while a standalone [`Router`] pins its own
    /// node id here so protocol panics name the right router.
    base_node: u16,
    /// Buffered `(flit, buffer-write cycle)` pairs per input VC.
    queues: Vec<VecDeque<(Flit, u64)>>,
    /// `true` while a packet occupies the VC (head arrived, tail not yet
    /// departed).
    occupied: Vec<bool>,
    /// Cycle at which the front flit becomes SA-eligible (its arrival
    /// + 2 pipeline cycles); `u64::MAX` when the queue is empty.
    front_ready: Vec<u64>,
    /// Flits buffered per router (drives the idle-router skip).
    buffered: Vec<u32>,
    /// Flits buffered across the whole bank.
    total_buffered: u64,
    /// Free VCs at each output's leg endpoint.
    free_vcs: Vec<VecDeque<VcId>>,
    /// `(input port, input vc, endpoint vc)` holding each output's
    /// switch until the tail passes.
    held: Vec<Option<(u8, u8, VcId)>>,
    /// Output arbiters over `ports × vcs` requesters.
    arbs: Vec<RoundRobin>,
    /// Preset clock gating: whether any flow uses each input port.
    in_enabled: Vec<bool>,
    /// Preset clock gating: whether any flow uses each output port.
    out_enabled: Vec<bool>,
    /// Allocation scratch: desired output per `(port, vc)`, reused
    /// across calls.
    want: Vec<Option<u8>>,
    /// Allocation scratch: the arbiter request vector, reused across
    /// calls.
    requests: Vec<bool>,
}

impl RouterBank {
    /// A bank of `n` 5-port routers with `num_vcs` VCs of `depth` flits
    /// per input port.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` or `depth` is zero.
    #[must_use]
    pub fn new(n: usize, num_vcs: usize, depth: usize) -> Self {
        assert!(num_vcs > 0, "need at least one VC");
        assert!(depth > 0, "need at least one buffer slot");
        let nq = n * PORTS * num_vcs;
        let np = n * PORTS;
        RouterBank {
            n,
            num_vcs,
            depth,
            base_node: 0,
            queues: vec![VecDeque::new(); nq],
            occupied: vec![false; nq],
            front_ready: vec![u64::MAX; nq],
            buffered: vec![0; n],
            total_buffered: 0,
            free_vcs: vec![VecDeque::new(); np],
            held: vec![None; np],
            arbs: vec![RoundRobin::new(PORTS * num_vcs); np],
            in_enabled: vec![false; np],
            out_enabled: vec![false; np],
            want: vec![None; PORTS * num_vcs],
            requests: vec![false; PORTS * num_vcs],
        }
    }

    /// Node id of bank slot `r`, for diagnostics.
    fn node_of(&self, r: usize) -> NodeId {
        NodeId(self.base_node + r as u16)
    }

    /// Number of routers in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for a bank of zero routers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Flits buffered across all routers — `0` means every router is
    /// drained (the engine's quiescence check reads this instead of
    /// walking every queue).
    #[must_use]
    pub fn total_buffered(&self) -> u64 {
        self.total_buffered
    }

    /// `true` when no flit is buffered anywhere in router `r`.
    #[must_use]
    pub fn is_drained(&self, r: usize) -> bool {
        self.buffered[r] == 0
    }

    /// Mark input port `dir` of router `r` as used by some flow
    /// (ungated), per presets.
    pub fn enable_input(&mut self, r: usize, dir: Direction) {
        self.in_enabled[r * PORTS + dir.index()] = true;
    }

    /// Mark output port `dir` of router `r` as used and seed its
    /// free-VC queue with the endpoint's `num_vcs` VCs.
    pub fn enable_output(&mut self, r: usize, dir: Direction) {
        let oi = r * PORTS + dir.index();
        self.out_enabled[oi] = true;
        self.free_vcs[oi] = (0..self.num_vcs as u8).map(VcId).collect();
    }

    /// Number of clock-enabled ports (inputs + outputs) of router `r`
    /// for gating accounting.
    #[must_use]
    pub fn enabled_ports(&self, r: usize) -> usize {
        let range = r * PORTS..(r + 1) * PORTS;
        self.in_enabled[range.clone()]
            .iter()
            .filter(|e| **e)
            .count()
            + self.out_enabled[range].iter().filter(|e| **e).count()
    }

    /// Occupancy of router `r`'s input port `dir`.
    #[must_use]
    pub fn input_occupancy(&self, r: usize, dir: Direction) -> usize {
        let base = (r * PORTS + dir.index()) * self.num_vcs;
        self.queues[base..base + self.num_vcs]
            .iter()
            .map(VecDeque::len)
            .sum()
    }

    /// Free-VC count at router `r`'s output `dir` endpoint.
    #[must_use]
    pub fn output_free_vcs(&self, r: usize, dir: Direction) -> usize {
        self.free_vcs[r * PORTS + dir.index()].len()
    }

    /// Return a credit (freed endpoint VC) to output `dir` of router
    /// `r`.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already in the free queue (double-free).
    pub fn credit(&mut self, r: usize, dir: Direction, vc: VcId) {
        let q = &mut self.free_vcs[r * PORTS + dir.index()];
        assert!(
            !q.contains(&vc),
            "{}: double credit for {vc} at output {dir}",
            self.node_of(r)
        );
        q.push_back(vc);
        assert!(
            q.len() <= self.num_vcs,
            "{}: more credits than VCs at output {dir}",
            self.node_of(r)
        );
    }

    /// Buffer-write a flit arriving at router `r` (end-of-cycle `cycle`
    /// arrival) into input `in_dir`, VC `flit.vc`.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations: missing VC allocation, overflow,
    /// a head arriving into an occupied VC, or a body arriving into an
    /// idle one.
    pub fn receive(
        &mut self,
        r: usize,
        in_dir: Direction,
        flit: Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) {
        let vc = flit
            .vc
            .unwrap_or_else(|| panic!("{}: flit arrived without a VC", self.node_of(r)));
        let qi = (r * PORTS + in_dir.index()) * self.num_vcs + vc.0 as usize;
        if flit.is_head() {
            assert!(
                !self.occupied[qi] && self.queues[qi].is_empty(),
                "{}: head of {:?} arrived into occupied {vc} at input {in_dir}",
                self.node_of(r),
                flit.packet
            );
            self.occupied[qi] = true;
        } else {
            assert!(
                self.occupied[qi],
                "{}: body/tail arrived into idle {vc} at input {in_dir}",
                self.node_of(r)
            );
        }
        assert!(
            self.queues[qi].len() < self.depth,
            "{}: buffer overflow at input {in_dir} {vc}",
            self.node_of(r)
        );
        if self.queues[qi].is_empty() {
            self.front_ready[qi] = cycle + 2;
        }
        self.queues[qi].push_back((flit, cycle));
        self.buffered[r] += 1;
        self.total_buffered += 1;
        counters.buffer_writes += 1;
    }

    /// Run switch allocation for router `r` at `cycle`, appending
    /// departures (flits entering ST in cycle `cycle + 1`) and credits
    /// released by departing tails into the caller's scratch vectors.
    ///
    /// `head_out` resolves the output direction an SA-eligible head flit
    /// requests at this router (the engine passes a [`LegLut`] lookup,
    /// the standalone [`Router`] a [`FlowTable`] one).
    ///
    /// [`LegLut`]: crate::forward::LegLut
    pub fn allocate(
        &mut self,
        r: usize,
        cycle: u64,
        head_out: impl Fn(FlowId) -> Direction,
        counters: &mut ActivityCounters,
        departures: &mut Vec<RouterDeparture>,
        credits: &mut Vec<CreditRelease>,
    ) {
        // An empty router requests nothing and streams nothing, and a
        // granted-nothing arbiter does not rotate: skipping is
        // behavior-identical and makes idle routers ~free.
        if self.buffered[r] == 0 {
            return;
        }
        let nv = self.num_vcs;
        let base_q = r * PORTS * nv;
        let base_p = r * PORTS;

        // Which (input, vc) is SA-eligible this cycle, and toward which
        // output does its front flit point? `front_ready` answers the
        // eligibility question without touching the queue itself.
        self.want.fill(None);
        let mut any = false;
        for pv in 0..PORTS * nv {
            if self.front_ready[base_q + pv] > cycle {
                continue; // empty, still in BW, or just arrived
            }
            let (flit, _) = self.queues[base_q + pv]
                .front()
                .expect("ready VC has a front flit");
            let out = if flit.is_head() {
                head_out(flit.flow)
            } else {
                // Body/tail follow the hold; find which output holds us.
                let (p, v) = ((pv / nv) as u8, (pv % nv) as u8);
                match (0..PORTS).find(
                    |&o| matches!(self.held[base_p + o], Some((hp, hv, _)) if hp == p && hv == v),
                ) {
                    Some(o) => Direction::from_index(o),
                    None => continue, // head not granted yet
                }
            };
            self.want[pv] = Some(out.index() as u8);
            any = true;
        }
        if !any {
            return;
        }

        // Output-major allocation: held outputs stream their holder; free
        // outputs arbitrate among eligible heads (needing a free VC).
        // winners[o] = (input, vc, is_new_head)
        let mut winners: [Option<(u8, u8, bool)>; PORTS] = [None; PORTS];
        for (o, winner) in winners.iter_mut().enumerate() {
            let oi = base_p + o;
            if !self.out_enabled[oi] {
                continue;
            }
            if let Some((hp, hv, _)) = self.held[oi] {
                if self.want[hp as usize * nv + hv as usize] == Some(o as u8) {
                    *winner = Some((hp, hv, false));
                }
                continue;
            }
            if self.free_vcs[oi].is_empty() {
                continue; // heads need a free endpoint VC to request
            }
            self.requests.fill(false);
            let mut any_req = false;
            for (pv, w) in self.want.iter().enumerate() {
                // Only heads can want a non-held output (bodies follow
                // their hold), so every wanter here is a head.
                if *w == Some(o as u8) {
                    self.requests[pv] = true;
                    any_req = true;
                    counters.sa_requests += 1;
                }
            }
            if any_req {
                if let Some(g) = self.arbs[oi].grant(&self.requests) {
                    *winner = Some(((g / nv) as u8, (g % nv) as u8, true));
                }
            }
        }

        // Input-port conflict resolution: one flit per input port per
        // cycle. Held streams take precedence over new heads; ties break
        // by output index.
        let mut port_taken = [false; PORTS];
        for new_head in [false, true] {
            for w in &mut winners {
                if let Some((p, _, is_new)) = *w {
                    if is_new == new_head {
                        if port_taken[p as usize] {
                            *w = None;
                        } else {
                            port_taken[p as usize] = true;
                        }
                    }
                }
            }
        }

        // Execute grants.
        for (o, w) in winners.iter().enumerate() {
            let Some((p, v, is_new)) = *w else { continue };
            let oi = base_p + o;
            let qi = base_q + p as usize * nv + v as usize;
            let (mut flit, _) = self.queues[qi]
                .pop_front()
                .expect("winner has a front flit");
            self.front_ready[qi] = self.queues[qi].front().map_or(u64::MAX, |(_, a)| a + 2);
            self.buffered[r] -= 1;
            self.total_buffered -= 1;
            counters.buffer_reads += 1;
            counters.sa_grants += 1;
            let endpoint_vc = if is_new {
                let vc = self.free_vcs[oi]
                    .pop_front()
                    .expect("head grant requires a free VC");
                self.held[oi] = Some((p, v, vc));
                vc
            } else {
                self.held[oi].expect("streaming under a hold").2
            };
            flit.vc = Some(endpoint_vc);
            if flit.is_tail() {
                self.held[oi] = None;
                assert!(
                    self.queues[qi].is_empty(),
                    "{}: tail departed but flits remain behind it",
                    self.node_of(r)
                );
                self.occupied[qi] = false;
                credits.push(CreditRelease {
                    in_dir: Direction::from_index(p as usize),
                    vc: VcId(v),
                });
            }
            departures.push(RouterDeparture {
                flit,
                out_dir: Direction::from_index(o),
            });
        }
    }
}

/// A standalone router: a 1-router [`RouterBank`] with the bank index
/// pinned, for protocol-level unit tests and external experimentation.
/// The engine itself drives the bank directly.
#[derive(Debug, Clone)]
pub struct Router {
    bank: RouterBank,
}

impl Router {
    /// A 5-port router with `num_vcs` VCs of `depth` flits per input.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` or `depth` is zero.
    #[must_use]
    pub fn new(node: NodeId, num_vcs: usize, depth: usize) -> Self {
        let mut bank = RouterBank::new(1, num_vcs, depth);
        bank.base_node = node.0;
        Router { bank }
    }

    /// This router's node id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.bank.node_of(0)
    }

    /// Mark an input port as used by some flow (ungated), per presets.
    pub fn enable_input(&mut self, dir: Direction) {
        self.bank.enable_input(0, dir);
    }

    /// Mark an output port as used and seed its free-VC queue with the
    /// endpoint's `num_vcs` VCs.
    pub fn enable_output(&mut self, dir: Direction) {
        self.bank.enable_output(0, dir);
    }

    /// Number of clock-enabled ports (inputs + outputs) for gating
    /// accounting.
    #[must_use]
    pub fn enabled_ports(&self) -> usize {
        self.bank.enabled_ports(0)
    }

    /// Occupancy of input port `dir`.
    #[must_use]
    pub fn input_occupancy(&self, dir: Direction) -> usize {
        self.bank.input_occupancy(0, dir)
    }

    /// Free-VC count at output `dir`'s endpoint.
    #[must_use]
    pub fn output_free_vcs(&self, dir: Direction) -> usize {
        self.bank.output_free_vcs(0, dir)
    }

    /// `true` when no flit is buffered anywhere in this router.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.bank.is_drained(0)
    }

    /// Return a credit (freed endpoint VC) to output port `dir`.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already in the free queue (double-free).
    pub fn credit(&mut self, dir: Direction, vc: VcId) {
        self.bank.credit(0, dir, vc);
    }

    /// Buffer-write an arriving flit (end-of-cycle `cycle` arrival) into
    /// input `in_dir`, VC `flit.vc`.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations: missing VC allocation, overflow,
    /// a head arriving into an occupied VC, or a body arriving into an
    /// idle one.
    pub fn receive(
        &mut self,
        in_dir: Direction,
        flit: Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) {
        self.bank.receive(0, in_dir, flit, cycle, counters);
    }

    /// Run switch allocation for `cycle` and return departures (flits
    /// entering ST in cycle `cycle + 1`) plus any credits released by
    /// departing tails.
    pub fn allocate(
        &mut self,
        cycle: u64,
        flows: &FlowTable,
        counters: &mut ActivityCounters,
    ) -> (Vec<RouterDeparture>, Vec<CreditRelease>) {
        let mut departures = Vec::new();
        let mut credits = Vec::new();
        let node = self.node();
        self.bank.allocate(
            0,
            cycle,
            |flow| flows.leg_from(flow, node).out_dir,
            counters,
            &mut departures,
            &mut credits,
        );
        (departures, credits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlowId, Packet, PacketId};
    use crate::forward::FlowTable;
    use crate::route::SourceRoute;
    use crate::topology::Mesh;

    fn mesh() -> Mesh {
        Mesh::paper_4x4()
    }

    /// A flow table with a single 2-hop flow 0 -> 2 (baseline plan).
    fn table() -> FlowTable {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(2));
        FlowTable::mesh_baseline(mesh(), &[(FlowId(0), route)])
    }

    fn packet_flits(n: u8) -> Vec<Flit> {
        Packet {
            id: PacketId(1),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(2),
            gen_cycle: 0,
            num_flits: n,
        }
        .into_flits(0)
    }

    fn prepared_router() -> Router {
        let mut r = Router::new(NodeId(0), 2, 10);
        r.enable_input(Direction::Core);
        r.enable_output(Direction::East);
        r
    }

    #[test]
    fn head_waits_two_cycles_before_sa() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        let mut flits = packet_flits(2);
        let mut head = flits.remove(0);
        head.vc = Some(VcId(0));
        r.receive(Direction::Core, head, 5, &mut c);
        // SA at cycle 6 is too early (BW happens during 6).
        let (d, _) = r.allocate(6, &flows, &mut c);
        assert!(d.is_empty());
        // SA at cycle 7 grants.
        let (d, _) = r.allocate(7, &flows, &mut c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].out_dir, Direction::East);
        assert_eq!(c.sa_grants, 1);
        assert_eq!(c.buffer_writes, 1);
        assert_eq!(c.buffer_reads, 1);
    }

    #[test]
    fn packet_streams_one_flit_per_cycle_and_tail_releases() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        // 4-flit packet arrives on consecutive cycles.
        for (i, mut f) in packet_flits(4).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, 10 + i as u64, &mut c);
        }
        let mut sent = Vec::new();
        let mut credits = Vec::new();
        for cycle in 12..=15 {
            let (d, cr) = r.allocate(cycle, &flows, &mut c);
            sent.extend(d);
            credits.extend(cr);
        }
        assert_eq!(sent.len(), 4, "one flit per cycle");
        assert!(sent[0].flit.is_head());
        assert!(sent[3].flit.is_tail());
        // All flits carry the same endpoint VC.
        let vc = sent[0].flit.vc;
        assert!(sent.iter().all(|d| d.flit.vc == vc));
        // Tail released exactly one credit for Core/vc0.
        assert_eq!(credits.len(), 1);
        assert_eq!(credits[0].in_dir, Direction::Core);
        assert_eq!(credits[0].vc, VcId(0));
        assert!(r.is_drained());
        // Output free VCs: started 2, head took 1, none returned yet.
        assert_eq!(r.output_free_vcs(Direction::East), 1);
    }

    #[test]
    fn no_grant_without_free_vc() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        // Exhaust both endpoint VCs.
        r.bank.free_vcs[Direction::East.index()].clear();
        let mut head = packet_flits(1).remove(0);
        head.vc = Some(VcId(0));
        r.receive(Direction::Core, head, 0, &mut c);
        let (d, _) = r.allocate(10, &flows, &mut c);
        assert!(d.is_empty(), "head must wait for a credit");
        // A credit arrives; now it goes.
        r.credit(Direction::East, VcId(1));
        let (d, _) = r.allocate(11, &flows, &mut c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].flit.vc, Some(VcId(1)));
    }

    #[test]
    fn two_flows_share_output_without_interleaving() {
        // Two flows, both 0 -> 2, on different VCs: packets must not
        // interleave on the East output.
        let mesh = mesh();
        let r0 = SourceRoute::xy(mesh, NodeId(0), NodeId(2));
        let r1 = SourceRoute::xy(mesh, NodeId(0), NodeId(3));
        let flows = FlowTable::mesh_baseline(mesh, &[(FlowId(0), r0), (FlowId(1), r1)]);
        let mut r = prepared_router();
        let mut c = ActivityCounters::new();
        // Packet A (flow 0) into vc0, packet B (flow 1) into vc1, same cycle.
        for (flow, vc, pid) in [(FlowId(0), VcId(0), 10), (FlowId(1), VcId(1), 11)] {
            let pkt = Packet {
                id: PacketId(pid),
                flow,
                src: NodeId(0),
                dst: NodeId(2),
                gen_cycle: 0,
                num_flits: 3,
            };
            for (i, mut f) in pkt.into_flits(0).into_iter().enumerate() {
                f.vc = Some(vc);
                r.receive(Direction::Core, f, i as u64, &mut c);
            }
        }
        let mut order = Vec::new();
        for cycle in 5..14 {
            let (d, _) = r.allocate(cycle, &flows, &mut c);
            for dep in d {
                order.push((dep.flit.packet, dep.flit.kind));
            }
        }
        assert_eq!(order.len(), 6);
        // First three flits belong to one packet, next three to the other.
        let first = order[0].0;
        assert!(order[..3].iter().all(|(p, _)| *p == first));
        assert!(order[3..].iter().all(|(p, _)| *p != first));
        assert_eq!(order[2].1, FlitKind::Tail);
    }

    #[test]
    fn held_stream_beats_new_head_on_the_same_input_port() {
        // One input port feeds two outputs: vc0 streams a packet to East
        // (hold established), vc1's head wants North. The physical
        // crossbar input carries one flit per cycle, so while the stream
        // has flits ready the new head must wait; it proceeds once the
        // stream's tail has passed.
        let mesh = Mesh::paper_4x4();
        // Flow 0: 0 -> 2 (East at router 0); flow 1: 0 -> 4 (North).
        let r0 = SourceRoute::xy(mesh, NodeId(0), NodeId(2));
        let r1 = SourceRoute::xy(mesh, NodeId(0), NodeId(4));
        let flows = FlowTable::mesh_baseline(mesh, &[(FlowId(0), r0), (FlowId(1), r1)]);
        let mut r = Router::new(NodeId(0), 2, 10);
        r.enable_input(Direction::Core);
        r.enable_output(Direction::East);
        r.enable_output(Direction::North);
        let mut c = ActivityCounters::new();
        // Packet A (flow 0, 3 flits) into vc0 at cycles 0..2.
        let pkt_a = Packet {
            id: PacketId(1),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(2),
            gen_cycle: 0,
            num_flits: 3,
        };
        for (i, mut f) in pkt_a.into_flits(0).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, i as u64, &mut c);
        }
        // Packet B (flow 1, 1 flit) into vc1 at cycle 0 as well.
        let pkt_b = Packet {
            id: PacketId(2),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(4),
            gen_cycle: 0,
            num_flits: 1,
        };
        let mut head_b = pkt_b.into_flits(0).remove(0);
        head_b.vc = Some(VcId(1));
        r.receive(Direction::Core, head_b, 0, &mut c);

        let mut order = Vec::new();
        for cycle in 2..10 {
            let (d, _) = r.allocate(cycle, &flows, &mut c);
            for dep in d {
                order.push((cycle, dep.out_dir, dep.flit.packet));
            }
        }
        // One flit per cycle from the shared Core input.
        let cycles: Vec<u64> = order.iter().map(|(c, _, _)| *c).collect();
        let mut dedup = cycles.clone();
        dedup.dedup();
        assert_eq!(cycles, dedup, "one flit per input port per cycle");
        assert_eq!(order.len(), 4, "all four flits depart");
        // A's first grant happens at cycle 2 (round-robin may admit B's
        // head first or defer it, but once A's stream holds East it may
        // not be interleaved with B on the input port).
        let a_cycles: Vec<u64> = order
            .iter()
            .filter(|(_, _, p)| *p == PacketId(1))
            .map(|(c, _, _)| *c)
            .collect();
        assert_eq!(a_cycles.len(), 3);
        assert!(
            a_cycles[2] - a_cycles[0] >= 2,
            "stream keeps its cadence: {a_cycles:?}"
        );
        // B's single-flit packet eventually leaves via North.
        assert!(order
            .iter()
            .any(|(_, d, p)| *p == PacketId(2) && *d == Direction::North));
    }

    #[test]
    #[should_panic(expected = "double credit")]
    fn double_credit_panics() {
        let mut r = prepared_router();
        r.credit(Direction::East, VcId(0));
        // VC 0 is already free (enable_output seeded it).
    }

    #[test]
    #[should_panic(expected = "buffer overflow")]
    fn overflow_panics() {
        let mut r = Router::new(NodeId(0), 1, 2);
        r.enable_input(Direction::Core);
        let mut c = ActivityCounters::new();
        for (i, mut f) in packet_flits(3).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, i as u64, &mut c);
        }
    }

    #[test]
    fn gating_counts_enabled_ports() {
        let mut r = Router::new(NodeId(3), 2, 10);
        assert_eq!(r.enabled_ports(), 0);
        r.enable_input(Direction::West);
        r.enable_output(Direction::Core);
        r.enable_output(Direction::East);
        assert_eq!(r.enabled_ports(), 3);
    }
}
