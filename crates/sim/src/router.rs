//! The router: input-port VC buffers, switch allocation with
//! virtual-cut-through switch hold, and preset-aware output ports.
//!
//! The pipeline is the paper's 3-stage organization (Fig 6):
//!
//! * **BW** — a flit arriving at the end of cycle *a* is buffer-written
//!   during *a+1*;
//! * **SA** — it may arbitrate from cycle *a+2*;
//! * **ST(+LT)** — on a grant at cycle *g* it traverses the crossbar (and,
//!   for SMART, the entire multi-hop link segment) during *g+1*.
//!
//! Virtual cut-through: a head flit's grant captures the output port and
//! one free VC at the *endpoint of its leg* (which for SMART may be a
//! router several hops away); body flits stream behind it; the tail
//! releases the hold and triggers the credit that frees this router's
//! input VC back at the upstream sender.
//!
//! The state of *all* routers lives in one [`RouterBank`]: flat
//! structure-of-arrays storage indexed by `(router, port, vc)`, so the
//! engine's per-cycle sweep walks dense arrays instead of chasing
//! per-router collections, and switch allocation reuses scratch buffers
//! instead of allocating per call. Per-router occupancy is mirrored in a
//! u64 bitset (one bit per `(port, vc)`), so allocation touches only the
//! occupied VCs; body flits find their captured output through a
//! reverse hold map instead of scanning the output ports; and each
//! output's free-VC queue is a nibble-packed u64 FIFO, bit-exact with
//! the `VecDeque` it replaced. [`Router`] wraps a 1-router bank for
//! standalone protocol tests.

use crate::counters::ActivityCounters;
use crate::flit::{Flit, FlowId, VcId};
use crate::forward::FlowTable;
use crate::telemetry::{NoProbe, Probe, StallCause};
use crate::topology::{Direction, NodeId, PORTS};

/// Sentinel in the reverse hold map: this input VC holds no output.
const HOLD_NONE: u8 = 0xFF;

/// A free-VC queue packed into one u64, one nibble per entry.
///
/// Semantically identical to the `VecDeque<VcId>` it replaced — pops
/// come from the low nibble, pushes append after the last — so credit
/// return order (and therefore VC allocation order and every downstream
/// arbitration decision) is preserved exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct VcFifo {
    bits: u64,
    len: u8,
}

impl VcFifo {
    /// FIFO seeded with VCs `0..n` in ascending order.
    fn seed(n: usize) -> Self {
        let mut f = VcFifo::default();
        for v in 0..n as u8 {
            f.push(VcId(v));
        }
        f
    }

    fn len(self) -> usize {
        usize::from(self.len)
    }

    fn is_empty(self) -> bool {
        self.len == 0
    }

    #[cfg(test)]
    fn clear(&mut self) {
        self.bits = 0;
        self.len = 0;
    }

    fn push(&mut self, vc: VcId) {
        debug_assert!(vc.0 < 16, "VC id exceeds nibble packing");
        debug_assert!(self.len < 16, "VcFifo overflow");
        self.bits |= u64::from(vc.0) << (4 * self.len);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<VcId> {
        if self.len == 0 {
            return None;
        }
        let v = (self.bits & 0xF) as u8;
        self.bits >>= 4;
        self.len -= 1;
        Some(VcId(v))
    }

    fn contains(self, vc: VcId) -> bool {
        let mut bits = self.bits;
        for _ in 0..self.len {
            if (bits & 0xF) as u8 == vc.0 {
                return true;
            }
            bits >>= 4;
        }
        false
    }
}

/// A flit leaving this router, with the context the engine needs to
/// schedule its arrival.
#[derive(Debug, Clone)]
pub struct RouterDeparture {
    /// The flit (its `vc` field already set to the endpoint VC).
    pub flit: Flit,
    /// Output direction granted.
    pub out_dir: Direction,
    /// Opaque route token from the allocator's `head_out` lookup: heads
    /// carry the token returned for them, body flits the one their
    /// head's grant captured. The engine passes leg indices through
    /// here so the launch path never re-resolves the route.
    pub leg: u32,
}

/// A credit released by a departing tail: the upstream sender of
/// `in_dir` gets VC `vc` back.
#[derive(Debug, Clone, Copy)]
pub struct CreditRelease {
    /// Bank index of the router whose input VC was freed (releases from
    /// several routers may share one batch).
    pub router: u16,
    /// Input port whose VC was freed.
    pub in_dir: Direction,
    /// The freed VC.
    pub vc: VcId,
}

/// The hot state of every router in the mesh, stored as flat
/// structure-of-arrays buffers.
///
/// Input-side arrays are indexed by `(router * 5 + port) * num_vcs + vc`,
/// output-side arrays by `router * 5 + port`. The per-cycle sweep walks
/// the set bits of the per-router [`occupancy bitset`](RouterBank::receive)
/// to find SA-eligible VCs without touching idle ports, and
/// [`RouterBank::allocate`] appends into caller-owned scratch vectors so
/// steady-state simulation performs no heap allocation.
#[derive(Debug, Clone)]
pub struct RouterBank {
    n: usize,
    num_vcs: usize,
    depth: usize,
    /// Node id of bank slot 0, for diagnostics: the engine's bank maps
    /// slot `r` to node `r`, while a standalone [`Router`] pins its own
    /// node id here so protocol panics name the right router.
    base_node: u16,
    /// Buffered `(flit, buffer-write cycle)` pairs: all input VC queues
    /// in one contiguous slab of fixed `depth`-slot rings (`buf[qi *
    /// depth ..]` with the [`VcState`] cursors), so the hot front-flit
    /// reads and push/pop walk one dense allocation instead of chasing
    /// per-queue heap buffers. Write cycles are stored as `u32` (16-byte
    /// slots instead of 24); `receive` checks the range.
    buf: Vec<(Flit, u32)>,
    /// Hot per-input-VC state, one packed record per `(router, port,
    /// vc)` — a busy router's allocation touches a couple of cache
    /// lines here instead of one line per field-array.
    vcs: Vec<VcState>,
    /// Per-router occupancy bitset: bit `port * num_vcs + vc` is set
    /// while that input VC buffers at least one flit.
    nonempty: Vec<u64>,
    /// Flits buffered per router (drives the idle-router skip).
    buffered: Vec<u32>,
    /// Flits buffered across the whole bank.
    total_buffered: u64,
    /// Hot per-output state, one packed record per `(router, port)`.
    outs: Vec<OutState>,
    /// Preset clock gating: whether any flow uses each input port.
    in_enabled: Vec<bool>,
}

/// Hot state of one input VC, packed into a single record.
#[derive(Debug, Clone, Copy)]
struct VcState {
    /// Ring cursor: index of the front slot in this VC's slab ring.
    head: u8,
    /// Buffered flits.
    len: u8,
    /// Cached output index requested by the current front flit, or
    /// [`HOLD_NONE`] when not yet computed. A head's route lookup is
    /// pure in `(flow, router)`, so while the same flit waits at the
    /// front the allocator reuses this instead of re-resolving the
    /// route every cycle; any push-to-empty or pop invalidates it.
    front_out: u8,
    /// Reverse hold map: the output index this VC currently holds, or
    /// [`HOLD_NONE`] — O(1) lookup for body flits following their
    /// head's grant.
    hold_in: u8,
    /// `true` while a packet occupies the VC (head arrived, tail not
    /// yet departed).
    occupied: bool,
    /// Route token returned by `head_out` alongside `front_out`; valid
    /// exactly when `front_out` is.
    front_leg: u32,
    /// Cycle at which the front flit becomes SA-eligible (its arrival
    /// + 2 pipeline cycles); `u32::MAX` when the queue is empty.
    front_ready: u32,
}

impl VcState {
    const IDLE: VcState = VcState {
        head: 0,
        len: 0,
        front_out: HOLD_NONE,
        hold_in: HOLD_NONE,
        occupied: false,
        front_leg: 0,
        front_ready: u32::MAX,
    };
}

/// Hot state of one output port, packed into a single record.
#[derive(Debug, Clone, Copy)]
struct OutState {
    /// Free VCs at the output's leg endpoint.
    free_vcs: VcFifo,
    /// `(input port, input vc, endpoint vc, route token)` holding the
    /// switch until the tail passes.
    held: Option<(u8, u8, VcId, u32)>,
    /// Round-robin pointer of the output's arbiter over `ports × vcs`
    /// requesters: the index with highest priority next grant.
    arb_next: u8,
    /// Preset clock gating: whether any flow uses the port.
    enabled: bool,
}

impl OutState {
    const IDLE: OutState = OutState {
        free_vcs: VcFifo { bits: 0, len: 0 },
        held: None,
        arb_next: 0,
        enabled: false,
    };
}

impl RouterBank {
    /// A bank of `n` 5-port routers with `num_vcs` VCs of `depth` flits
    /// per input port.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` or `depth` is zero, or if `num_vcs` exceeds
    /// 12 (the per-router occupancy bitset packs `5 * num_vcs` input
    /// VCs into a u64, and free-VC FIFOs pack VC ids into nibbles).
    #[must_use]
    pub fn new(n: usize, num_vcs: usize, depth: usize) -> Self {
        assert!(num_vcs > 0, "need at least one VC");
        assert!(
            num_vcs <= 12,
            "bitset router state supports at most 12 VCs per port"
        );
        assert!(depth > 0, "need at least one buffer slot");
        assert!(depth <= 255, "ring cursors are u8");
        let nq = n * PORTS * num_vcs;
        let np = n * PORTS;
        const EMPTY: (Flit, u32) = (
            Flit {
                pkt: crate::flit::PacketSlot(0),
                flow: FlowId(0),
                seq: 0,
                num_flits: 1,
                vc: None,
            },
            0,
        );
        RouterBank {
            n,
            num_vcs,
            depth,
            base_node: 0,
            buf: vec![EMPTY; nq * depth],
            vcs: vec![VcState::IDLE; nq],
            nonempty: vec![0; n],
            buffered: vec![0; n],
            total_buffered: 0,
            outs: vec![OutState::IDLE; np],
            in_enabled: vec![false; np],
        }
    }

    /// Node id of bank slot `r`, for diagnostics.
    fn node_of(&self, r: usize) -> NodeId {
        NodeId(self.base_node + r as u16)
    }

    /// Set the node id of bank slot 0, so diagnostics from a bank that
    /// covers nodes `[base, base + n)` (a shard's region) name the real
    /// router instead of a region-relative index.
    pub fn set_base_node(&mut self, base: NodeId) {
        self.base_node = base.0;
    }

    /// Front entry of input-VC ring `qi` (caller checks non-empty).
    #[inline]
    fn q_front(&self, qi: usize) -> &(Flit, u32) {
        &self.buf[qi * self.depth + self.vcs[qi].head as usize]
    }

    /// Append to input-VC ring `qi` (caller checks capacity).
    #[inline]
    fn q_push(&mut self, qi: usize, entry: (Flit, u32)) {
        let vc = &mut self.vcs[qi];
        let pos = (vc.head as usize + vc.len as usize) % self.depth;
        vc.len += 1;
        self.buf[qi * self.depth + pos] = entry;
    }

    /// Pop the front of input-VC ring `qi` (caller checks non-empty).
    #[inline]
    fn q_pop(&mut self, qi: usize) -> (Flit, u32) {
        let vc = &mut self.vcs[qi];
        let head = vc.head as usize;
        vc.head = ((head + 1) % self.depth) as u8;
        vc.len -= 1;
        self.buf[qi * self.depth + head]
    }

    /// Number of routers in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for a bank of zero routers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Flits buffered across all routers — `0` means every router is
    /// drained (the engine's quiescence check reads this instead of
    /// walking every queue).
    #[must_use]
    pub fn total_buffered(&self) -> u64 {
        self.total_buffered
    }

    /// `true` when no flit is buffered anywhere in router `r`.
    #[must_use]
    pub fn is_drained(&self, r: usize) -> bool {
        self.buffered[r] == 0
    }

    /// Mark input port `dir` of router `r` as used by some flow
    /// (ungated), per presets.
    pub fn enable_input(&mut self, r: usize, dir: Direction) {
        self.in_enabled[r * PORTS + dir.index()] = true;
    }

    /// Mark output port `dir` of router `r` as used and seed its
    /// free-VC queue with the endpoint's `num_vcs` VCs.
    pub fn enable_output(&mut self, r: usize, dir: Direction) {
        let oi = r * PORTS + dir.index();
        self.outs[oi].enabled = true;
        self.outs[oi].free_vcs = VcFifo::seed(self.num_vcs);
    }

    /// Number of clock-enabled ports (inputs + outputs) of router `r`
    /// for gating accounting.
    #[must_use]
    pub fn enabled_ports(&self, r: usize) -> usize {
        let range = r * PORTS..(r + 1) * PORTS;
        self.in_enabled[range.clone()]
            .iter()
            .filter(|e| **e)
            .count()
            + self.outs[range].iter().filter(|o| o.enabled).count()
    }

    /// Occupancy of router `r`'s input port `dir`.
    #[must_use]
    pub fn input_occupancy(&self, r: usize, dir: Direction) -> usize {
        let base = (r * PORTS + dir.index()) * self.num_vcs;
        self.vcs[base..base + self.num_vcs]
            .iter()
            .map(|v| usize::from(v.len))
            .sum()
    }

    /// Free-VC count at router `r`'s output `dir` endpoint.
    #[must_use]
    pub fn output_free_vcs(&self, r: usize, dir: Direction) -> usize {
        self.outs[r * PORTS + dir.index()].free_vcs.len()
    }

    /// Return a credit (freed endpoint VC) to output `dir` of router
    /// `r`.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already in the free queue (double-free).
    pub fn credit(&mut self, r: usize, dir: Direction, vc: VcId) {
        let q = &mut self.outs[r * PORTS + dir.index()].free_vcs;
        assert!(
            !q.contains(vc),
            "{}: double credit for {vc} at output {dir}",
            self.node_of(r)
        );
        q.push(vc);
        assert!(
            q.len() <= self.num_vcs,
            "{}: more credits than VCs at output {dir}",
            self.node_of(r)
        );
    }

    /// Buffer-write a flit arriving at router `r` (end-of-cycle `cycle`
    /// arrival) into input `in_dir`, VC `flit.vc`.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations: missing VC allocation, overflow,
    /// a head arriving into an occupied VC, or a body arriving into an
    /// idle one.
    pub fn receive(
        &mut self,
        r: usize,
        in_dir: Direction,
        flit: Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) {
        let vc = flit
            .vc
            .unwrap_or_else(|| panic!("{}: flit arrived without a VC", self.node_of(r)));
        let pv = in_dir.index() * self.num_vcs + vc.0 as usize;
        let qi = r * PORTS * self.num_vcs + pv;
        if flit.is_head() {
            assert!(
                !self.vcs[qi].occupied && self.vcs[qi].len == 0,
                "{}: head of {:?} arrived into occupied {vc} at input {in_dir}",
                self.node_of(r),
                flit.pkt
            );
            self.vcs[qi].occupied = true;
        } else {
            assert!(
                self.vcs[qi].occupied,
                "{}: body/tail arrived into idle {vc} at input {in_dir}",
                self.node_of(r)
            );
        }
        assert!(
            usize::from(self.vcs[qi].len) < self.depth,
            "{}: buffer overflow at input {in_dir} {vc}",
            self.node_of(r)
        );
        // Ready stamps are u32 so buffer slots stay 16 bytes; a run
        // would need ~4 billion cycles to reach this.
        assert!(
            cycle < u64::from(u32::MAX) - 2,
            "cycle count exceeds the u32 buffer-stamp range"
        );
        if self.vcs[qi].len == 0 {
            self.vcs[qi].front_ready = cycle as u32 + 2;
            self.vcs[qi].front_out = HOLD_NONE;
        }
        self.q_push(qi, (flit, cycle as u32));
        self.nonempty[r] |= 1 << pv;
        self.buffered[r] += 1;
        self.total_buffered += 1;
        counters.buffer_writes += 1;
    }

    /// Run switch allocation for router `r` at `cycle`, appending
    /// departures (flits entering ST in cycle `cycle + 1`) and credits
    /// released by departing tails into the caller's scratch vectors.
    ///
    /// `head_out` resolves the output direction an SA-eligible head flit
    /// requests at this router, plus an opaque route token carried on
    /// the resulting departures (the engine passes a [`LegLut`] lookup
    /// returning the leg index, the standalone [`Router`] a
    /// [`FlowTable`] one).
    ///
    /// The probe observes SSR traffic (Section III): every head flit
    /// presenting a request is a *setup*; a setup that wins its output,
    /// keeps a free endpoint VC, and survives input-port conflict
    /// resolution becomes a *grant* (a new multi-hop hold); every other
    /// setup is a *deny* with a [`StallCause`] — a premature stop.
    /// Streaming body/tail flits ride an established hold and are not
    /// SSR traffic. Per window, `setups == grants + stalls` exactly.
    ///
    /// [`LegLut`]: crate::forward::LegLut
    #[allow(clippy::too_many_arguments)]
    pub fn allocate<P: Probe>(
        &mut self,
        r: usize,
        cycle: u64,
        head_out: impl Fn(FlowId) -> (Direction, u32),
        counters: &mut ActivityCounters,
        departures: &mut Vec<RouterDeparture>,
        credits: &mut Vec<CreditRelease>,
        probe: &mut P,
    ) {
        // An empty router requests nothing and streams nothing, and a
        // granted-nothing arbiter does not rotate: skipping is
        // behavior-identical and makes idle routers ~free.
        if self.buffered[r] == 0 {
            return;
        }
        let nv = self.num_vcs;
        let base_q = r * PORTS * nv;
        let base_p = r * PORTS;

        // Which (input, vc) is SA-eligible this cycle, and toward which
        // output does its front flit point? Walking the set bits of the
        // occupancy word visits exactly the non-empty VCs in the same
        // ascending (port, vc) order as a full scan; `front_ready`
        // answers the eligibility question without touching the queue.
        // Eligible wanters land directly in their output's request mask.
        let mut out_req: [u64; PORTS] = [0; PORTS];
        let mut out_mask: u8 = 0;
        let mut occ = self.nonempty[r];
        while occ != 0 {
            let pv = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let st = self.vcs[base_q + pv];
            if u64::from(st.front_ready) > cycle {
                continue; // still in BW or just arrived
            }
            let out = if st.hold_in != HOLD_NONE {
                // Body/tail follow the hold their head captured.
                st.hold_in
            } else if st.front_out != HOLD_NONE {
                st.front_out
            } else {
                let (flit, _) = self.q_front(base_q + pv);
                if !flit.is_head() {
                    continue; // head not granted yet
                }
                let (dir, leg) = head_out(flit.flow);
                let o = dir.index() as u8;
                self.vcs[base_q + pv].front_out = o;
                self.vcs[base_q + pv].front_leg = leg;
                o
            };
            out_req[usize::from(out)] |= 1 << pv;
            out_mask |= 1 << out;
        }
        if out_mask == 0 {
            return;
        }

        // Output-major allocation: held outputs stream their holder; free
        // outputs arbitrate among eligible heads (needing a free VC).
        // Only outputs somebody wants are visited — an unwanted output
        // can have no winner and its granted-nothing arbiter would not
        // rotate, so skipping it is behavior-identical.
        // winners[o] = (input, vc, is_new_head), valid where `win_mask`
        // has bit `o`.
        let mut winners: [(u8, u8, bool); PORTS] = [(0, 0, false); PORTS];
        let mut win_mask: u8 = 0;
        let mut outs = out_mask;
        while outs != 0 {
            let o = outs.trailing_zeros() as usize;
            outs &= outs - 1;
            let oi = base_p + o;
            let ost = self.outs[oi];
            if !ost.enabled {
                continue;
            }
            if let Some((hp, hv, _, _)) = ost.held {
                let pvh = hp as usize * nv + hv as usize;
                if out_req[o] & (1 << pvh) != 0 {
                    winners[o] = (hp, hv, false);
                    win_mask |= 1 << o;
                }
                if P::ENABLED {
                    // Heads wanting a held output presented setups that
                    // are denied outright (the holder itself streams —
                    // not SSR traffic).
                    let denied = (out_req[o] & !(1u64 << pvh)).count_ones();
                    if denied > 0 {
                        let gr = u32::from(self.base_node) + r as u32;
                        probe.on_ssr_setups(denied);
                        probe.on_stall(gr, StallCause::HeldOutput, denied);
                    }
                }
                continue;
            }
            if ost.free_vcs.is_empty() {
                if P::ENABLED {
                    let denied = out_req[o].count_ones();
                    let gr = u32::from(self.base_node) + r as u32;
                    probe.on_ssr_setups(denied);
                    probe.on_stall(gr, StallCause::NoFreeVc, denied);
                }
                continue; // heads need a free endpoint VC to request
            }
            // Only heads can want a non-held output (bodies follow
            // their hold), so every requester here is a head, and each
            // presented request is charged to the allocator.
            let req = out_req[o];
            counters.sa_requests += u64::from(req.count_ones());
            if P::ENABLED {
                // Every requester is a head presenting an SSR setup;
                // round-robin losers stop prematurely in their buffers.
                let n = req.count_ones();
                probe.on_ssr_setups(n);
                if n > 1 {
                    let gr = u32::from(self.base_node) + r as u32;
                    probe.on_stall(gr, StallCause::OutputArb, n - 1);
                }
            }
            // Round-robin grant, bit-compatible with
            // [`RoundRobin::grant_mask`]: first requester at or after
            // the rotating pointer wins and becomes lowest priority (a
            // granted-nothing arbiter does not rotate).
            let next = usize::from(ost.arb_next);
            let above = req >> next;
            let g = if above != 0 {
                next + above.trailing_zeros() as usize
            } else {
                req.trailing_zeros() as usize
            };
            self.outs[oi].arb_next = ((g + 1) % (PORTS * nv)) as u8;
            winners[o] = ((g / nv) as u8, (g % nv) as u8, true);
            win_mask |= 1 << o;
        }

        // Input-port conflict resolution: one flit per input port per
        // cycle. Held streams take precedence over new heads; ties break
        // by output index. A single winner cannot conflict, so the two
        // passes run only when at least two outputs granted.
        if win_mask & win_mask.wrapping_sub(1) != 0 {
            let mut port_taken: u8 = 0;
            for new_head in [false, true] {
                let mut m = win_mask;
                while m != 0 {
                    let ob = m & m.wrapping_neg();
                    let o = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (p, _, is_new) = winners[o];
                    if is_new == new_head {
                        if port_taken & (1 << p) != 0 {
                            win_mask &= !ob;
                            if P::ENABLED && is_new {
                                // A setup that won arbitration but lost
                                // the input port (a streaming loser is
                                // not SSR traffic and stays uncounted).
                                let gr = u32::from(self.base_node) + r as u32;
                                probe.on_stall(gr, StallCause::PortConflict, 1);
                            }
                        } else {
                            port_taken |= 1 << p;
                        }
                    }
                }
            }
        }

        // Execute grants.
        let mut m = win_mask;
        while m != 0 {
            let o = m.trailing_zeros() as usize;
            m &= m - 1;
            let (p, v, is_new) = winners[o];
            let oi = base_p + o;
            let pv = p as usize * nv + v as usize;
            let qi = base_q + pv;
            let (mut flit, _) = self.q_pop(qi);
            self.vcs[qi].front_out = HOLD_NONE;
            if self.vcs[qi].len == 0 {
                self.vcs[qi].front_ready = u32::MAX;
                self.nonempty[r] &= !(1 << pv);
            } else {
                self.vcs[qi].front_ready = self.q_front(qi).1 + 2;
            }
            self.buffered[r] -= 1;
            self.total_buffered -= 1;
            counters.buffer_reads += 1;
            counters.sa_grants += 1;
            let (endpoint_vc, leg) = if is_new {
                if P::ENABLED {
                    probe.on_ssr_grant();
                }
                let vc = self.outs[oi]
                    .free_vcs
                    .pop()
                    .expect("head grant requires a free VC");
                let leg = self.vcs[qi].front_leg;
                self.outs[oi].held = Some((p, v, vc, leg));
                self.vcs[qi].hold_in = o as u8;
                (vc, leg)
            } else {
                let (_, _, vc, leg) = self.outs[oi].held.expect("streaming under a hold");
                (vc, leg)
            };
            flit.vc = Some(endpoint_vc);
            if flit.is_tail() {
                self.outs[oi].held = None;
                self.vcs[qi].hold_in = HOLD_NONE;
                assert!(
                    self.vcs[qi].len == 0,
                    "{}: tail departed but flits remain behind it",
                    self.node_of(r)
                );
                self.vcs[qi].occupied = false;
                credits.push(CreditRelease {
                    router: r as u16,
                    in_dir: Direction::from_index(p as usize),
                    vc: VcId(v),
                });
            }
            departures.push(RouterDeparture {
                flit,
                out_dir: Direction::from_index(o),
                leg,
            });
        }
    }
}

/// A standalone router: a 1-router [`RouterBank`] with the bank index
/// pinned, for protocol-level unit tests and external experimentation.
/// The engine itself drives the bank directly.
#[derive(Debug, Clone)]
pub struct Router {
    bank: RouterBank,
}

impl Router {
    /// A 5-port router with `num_vcs` VCs of `depth` flits per input.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` or `depth` is zero.
    #[must_use]
    pub fn new(node: NodeId, num_vcs: usize, depth: usize) -> Self {
        let mut bank = RouterBank::new(1, num_vcs, depth);
        bank.base_node = node.0;
        Router { bank }
    }

    /// This router's node id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.bank.node_of(0)
    }

    /// Mark an input port as used by some flow (ungated), per presets.
    pub fn enable_input(&mut self, dir: Direction) {
        self.bank.enable_input(0, dir);
    }

    /// Mark an output port as used and seed its free-VC queue with the
    /// endpoint's `num_vcs` VCs.
    pub fn enable_output(&mut self, dir: Direction) {
        self.bank.enable_output(0, dir);
    }

    /// Number of clock-enabled ports (inputs + outputs) for gating
    /// accounting.
    #[must_use]
    pub fn enabled_ports(&self) -> usize {
        self.bank.enabled_ports(0)
    }

    /// Occupancy of input port `dir`.
    #[must_use]
    pub fn input_occupancy(&self, dir: Direction) -> usize {
        self.bank.input_occupancy(0, dir)
    }

    /// Free-VC count at output `dir`'s endpoint.
    #[must_use]
    pub fn output_free_vcs(&self, dir: Direction) -> usize {
        self.bank.output_free_vcs(0, dir)
    }

    /// `true` when no flit is buffered anywhere in this router.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.bank.is_drained(0)
    }

    /// Return a credit (freed endpoint VC) to output port `dir`.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already in the free queue (double-free).
    pub fn credit(&mut self, dir: Direction, vc: VcId) {
        self.bank.credit(0, dir, vc);
    }

    /// Buffer-write an arriving flit (end-of-cycle `cycle` arrival) into
    /// input `in_dir`, VC `flit.vc`.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations: missing VC allocation, overflow,
    /// a head arriving into an occupied VC, or a body arriving into an
    /// idle one.
    pub fn receive(
        &mut self,
        in_dir: Direction,
        flit: Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) {
        self.bank.receive(0, in_dir, flit, cycle, counters);
    }

    /// Run switch allocation for `cycle` and return departures (flits
    /// entering ST in cycle `cycle + 1`) plus any credits released by
    /// departing tails.
    pub fn allocate(
        &mut self,
        cycle: u64,
        flows: &FlowTable,
        counters: &mut ActivityCounters,
    ) -> (Vec<RouterDeparture>, Vec<CreditRelease>) {
        let mut departures = Vec::new();
        let mut credits = Vec::new();
        let node = self.node();
        self.bank.allocate(
            0,
            cycle,
            |flow| (flows.leg_from(flow, node).out_dir, 0),
            counters,
            &mut departures,
            &mut credits,
            &mut NoProbe,
        );
        (departures, credits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlowId, PacketSlot};
    use crate::forward::FlowTable;
    use crate::route::SourceRoute;
    use crate::topology::Mesh;

    fn mesh() -> Mesh {
        Mesh::paper_4x4()
    }

    /// A flow table with a single 2-hop flow 0 -> 2 (baseline plan).
    fn table() -> FlowTable {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(2)).unwrap();
        FlowTable::mesh_baseline(mesh(), &[(FlowId(0), route)])
    }

    fn packet_flits(slot: u32, flow: FlowId, n: u8) -> Vec<Flit> {
        (0..n)
            .map(|s| Flit::new(PacketSlot(slot), flow, s, n))
            .collect()
    }

    fn prepared_router() -> Router {
        let mut r = Router::new(NodeId(0), 2, 10);
        r.enable_input(Direction::Core);
        r.enable_output(Direction::East);
        r
    }

    #[test]
    fn vc_fifo_matches_deque_semantics() {
        let mut f = VcFifo::seed(3);
        assert_eq!(f.len(), 3);
        assert_eq!(f.pop(), Some(VcId(0)));
        assert_eq!(f.pop(), Some(VcId(1)));
        // Credits returning out of order come back in *return* order.
        f.push(VcId(1));
        f.push(VcId(0));
        assert!(f.contains(VcId(2)) && f.contains(VcId(1)) && f.contains(VcId(0)));
        assert_eq!(f.pop(), Some(VcId(2)));
        assert_eq!(f.pop(), Some(VcId(1)));
        assert_eq!(f.pop(), Some(VcId(0)));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn head_waits_two_cycles_before_sa() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        let mut head = packet_flits(1, FlowId(0), 2).remove(0);
        head.vc = Some(VcId(0));
        r.receive(Direction::Core, head, 5, &mut c);
        // SA at cycle 6 is too early (BW happens during 6).
        let (d, _) = r.allocate(6, &flows, &mut c);
        assert!(d.is_empty());
        // SA at cycle 7 grants.
        let (d, _) = r.allocate(7, &flows, &mut c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].out_dir, Direction::East);
        assert_eq!(c.sa_grants, 1);
        assert_eq!(c.buffer_writes, 1);
        assert_eq!(c.buffer_reads, 1);
    }

    #[test]
    fn packet_streams_one_flit_per_cycle_and_tail_releases() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        // 4-flit packet arrives on consecutive cycles.
        for (i, mut f) in packet_flits(1, FlowId(0), 4).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, 10 + i as u64, &mut c);
        }
        let mut sent = Vec::new();
        let mut credits = Vec::new();
        for cycle in 12..=15 {
            let (d, cr) = r.allocate(cycle, &flows, &mut c);
            sent.extend(d);
            credits.extend(cr);
        }
        assert_eq!(sent.len(), 4, "one flit per cycle");
        assert!(sent[0].flit.is_head());
        assert!(sent[3].flit.is_tail());
        // All flits carry the same endpoint VC.
        let vc = sent[0].flit.vc;
        assert!(sent.iter().all(|d| d.flit.vc == vc));
        // Tail released exactly one credit for Core/vc0.
        assert_eq!(credits.len(), 1);
        assert_eq!(credits[0].in_dir, Direction::Core);
        assert_eq!(credits[0].vc, VcId(0));
        assert!(r.is_drained());
        // Output free VCs: started 2, head took 1, none returned yet.
        assert_eq!(r.output_free_vcs(Direction::East), 1);
    }

    #[test]
    fn no_grant_without_free_vc() {
        let mut r = prepared_router();
        let flows = table();
        let mut c = ActivityCounters::new();
        // Exhaust both endpoint VCs.
        r.bank.outs[Direction::East.index()].free_vcs.clear();
        let mut head = packet_flits(1, FlowId(0), 1).remove(0);
        head.vc = Some(VcId(0));
        r.receive(Direction::Core, head, 0, &mut c);
        let (d, _) = r.allocate(10, &flows, &mut c);
        assert!(d.is_empty(), "head must wait for a credit");
        // A credit arrives; now it goes.
        r.credit(Direction::East, VcId(1));
        let (d, _) = r.allocate(11, &flows, &mut c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].flit.vc, Some(VcId(1)));
    }

    #[test]
    fn two_flows_share_output_without_interleaving() {
        // Two flows, both crossing East, on different VCs: packets must
        // not interleave on the East output.
        let mesh = mesh();
        let r0 = SourceRoute::xy(mesh, NodeId(0), NodeId(2)).unwrap();
        let r1 = SourceRoute::xy(mesh, NodeId(0), NodeId(3)).unwrap();
        let flows = FlowTable::mesh_baseline(mesh, &[(FlowId(0), r0), (FlowId(1), r1)]);
        let mut r = prepared_router();
        let mut c = ActivityCounters::new();
        // Packet A (flow 0) into vc0, packet B (flow 1) into vc1, same cycle.
        for (flow, vc, slot) in [(FlowId(0), VcId(0), 10), (FlowId(1), VcId(1), 11)] {
            for (i, mut f) in packet_flits(slot, flow, 3).into_iter().enumerate() {
                f.vc = Some(vc);
                r.receive(Direction::Core, f, i as u64, &mut c);
            }
        }
        let mut order = Vec::new();
        for cycle in 5..14 {
            let (d, _) = r.allocate(cycle, &flows, &mut c);
            for dep in d {
                order.push((dep.flit.pkt, dep.flit.kind()));
            }
        }
        assert_eq!(order.len(), 6);
        // First three flits belong to one packet, next three to the other.
        let first = order[0].0;
        assert!(order[..3].iter().all(|(p, _)| *p == first));
        assert!(order[3..].iter().all(|(p, _)| *p != first));
        assert_eq!(order[2].1, FlitKind::Tail);
    }

    #[test]
    fn held_stream_beats_new_head_on_the_same_input_port() {
        // One input port feeds two outputs: vc0 streams a packet to East
        // (hold established), vc1's head wants North. The physical
        // crossbar input carries one flit per cycle, so while the stream
        // has flits ready the new head must wait; it proceeds once the
        // stream's tail has passed.
        let mesh = Mesh::paper_4x4();
        // Flow 0: 0 -> 2 (East at router 0); flow 1: 0 -> 4 (North).
        let r0 = SourceRoute::xy(mesh, NodeId(0), NodeId(2)).unwrap();
        let r1 = SourceRoute::xy(mesh, NodeId(0), NodeId(4)).unwrap();
        let flows = FlowTable::mesh_baseline(mesh, &[(FlowId(0), r0), (FlowId(1), r1)]);
        let mut r = Router::new(NodeId(0), 2, 10);
        r.enable_input(Direction::Core);
        r.enable_output(Direction::East);
        r.enable_output(Direction::North);
        let mut c = ActivityCounters::new();
        // Packet A (flow 0, 3 flits) into vc0 at cycles 0..2.
        for (i, mut f) in packet_flits(1, FlowId(0), 3).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, i as u64, &mut c);
        }
        // Packet B (flow 1, 1 flit) into vc1 at cycle 0 as well.
        let mut head_b = packet_flits(2, FlowId(1), 1).remove(0);
        head_b.vc = Some(VcId(1));
        r.receive(Direction::Core, head_b, 0, &mut c);

        let mut order = Vec::new();
        for cycle in 2..10 {
            let (d, _) = r.allocate(cycle, &flows, &mut c);
            for dep in d {
                order.push((cycle, dep.out_dir, dep.flit.pkt));
            }
        }
        // One flit per cycle from the shared Core input.
        let cycles: Vec<u64> = order.iter().map(|(c, _, _)| *c).collect();
        let mut dedup = cycles.clone();
        dedup.dedup();
        assert_eq!(cycles, dedup, "one flit per input port per cycle");
        assert_eq!(order.len(), 4, "all four flits depart");
        // A's first grant happens at cycle 2 (round-robin may admit B's
        // head first or defer it, but once A's stream holds East it may
        // not be interleaved with B on the input port).
        let a_cycles: Vec<u64> = order
            .iter()
            .filter(|(_, _, p)| *p == PacketSlot(1))
            .map(|(c, _, _)| *c)
            .collect();
        assert_eq!(a_cycles.len(), 3);
        assert!(
            a_cycles[2] - a_cycles[0] >= 2,
            "stream keeps its cadence: {a_cycles:?}"
        );
        // B's single-flit packet eventually leaves via North.
        assert!(order
            .iter()
            .any(|(_, d, p)| *p == PacketSlot(2) && *d == Direction::North));
    }

    #[test]
    #[should_panic(expected = "double credit")]
    fn double_credit_panics() {
        let mut r = prepared_router();
        r.credit(Direction::East, VcId(0));
        // VC 0 is already free (enable_output seeded it).
    }

    #[test]
    #[should_panic(expected = "buffer overflow")]
    fn overflow_panics() {
        let mut r = Router::new(NodeId(0), 1, 2);
        r.enable_input(Direction::Core);
        let mut c = ActivityCounters::new();
        for (i, mut f) in packet_flits(1, FlowId(0), 3).into_iter().enumerate() {
            f.vc = Some(VcId(0));
            r.receive(Direction::Core, f, i as u64, &mut c);
        }
    }

    #[test]
    #[should_panic(expected = "at most 12 VCs")]
    fn too_many_vcs_rejected() {
        let _ = RouterBank::new(1, 13, 4);
    }

    #[test]
    fn gating_counts_enabled_ports() {
        let mut r = Router::new(NodeId(3), 2, 10);
        assert_eq!(r.enabled_ports(), 0);
        r.enable_input(Direction::West);
        r.enable_output(Direction::Core);
        r.enable_output(Direction::East);
        assert_eq!(r.enabled_ports(), 3);
    }
}
