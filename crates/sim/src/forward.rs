//! Flow plans: how packets of a flow traverse the network as a sequence
//! of single-cycle *segments* between stop routers.
//!
//! This is the unifying abstraction of the reproduction. In the paper,
//! a flit either **bypasses** a router (the preset crossbar forwards it
//! within the same cycle) or **stops** (it is buffered, arbitrates, and
//! leaves one or more cycles later). A flow's journey is therefore a list
//! of *legs*: each leg starts at the NIC or at a stop router, crosses
//! zero or more links in a single `ST(+LT)` cycle, and ends buffered at
//! the next stop router or delivered at the destination NIC.
//!
//! * The baseline 3-cycle **Mesh** router is the degenerate plan where
//!   every router is a stop and `ST`/`LT` are separate cycles.
//! * **SMART** plans have multi-link legs (bounded by `HPC_max`) with
//!   merged `ST+LT`.
//!
//! Virtual-cut-through flow control attaches to legs: the sender of a leg
//! (a NIC or a router output port) owns the *free-VC queue* tracking the
//! VCs of the leg's endpoint, which — in the SMART case — can be an input
//! port several hops away (paper, Section IV *Flow Control*).

use crate::flit::FlowId;
use crate::route::SourceRoute;
use crate::topology::{Direction, LinkId, NodeId, Topology, PORTS};
use std::collections::HashMap;

/// The party that launches flits onto a leg (and owns the free-VC queue
/// for the leg's endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sender {
    /// The injecting NIC at `node`.
    Nic(NodeId),
    /// Output port `dir` of router `node`.
    RouterOutput(NodeId, Direction),
}

/// Where a leg lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Buffered at input port `in_dir` of `router` (a *stop*).
    Stop {
        /// The stop router.
        router: NodeId,
        /// The input port the flit lands in (`Core` for injection into
        /// the local router).
        in_dir: Direction,
    },
    /// Delivered to the destination NIC at `node`.
    Nic {
        /// Destination node.
        node: NodeId,
    },
}

/// One single-`ST` traversal: from a sender, across `links`, into an
/// endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Who launches flits onto this leg.
    pub sender: Sender,
    /// Output direction arbitrated at the sender (routers only; `Core`
    /// for ejection legs).
    pub out_dir: Direction,
    /// Links crossed within the single `ST(+LT)` traversal.
    pub links: Vec<LinkId>,
    /// Where the leg ends.
    pub end: Endpoint,
    /// Cycles from switch-allocation grant to arrival at the endpoint:
    /// 1 when `ST+LT` are merged (SMART, and all ejections), 2 for the
    /// baseline's separate `ST` then `LT`.
    pub cycles: u8,
}

impl Segment {
    /// Number of router crossbars a flit traverses on this leg (for
    /// activity/power accounting): one per link plus the destination
    /// router's crossbar when ejecting to a NIC.
    #[must_use]
    pub fn crossbars(&self) -> u32 {
        let eject = matches!(self.end, Endpoint::Nic { .. });
        self.links.len() as u32 + u32::from(eject)
    }

    /// Millimetres of link wire crossed (1 mm per hop).
    #[must_use]
    pub fn link_mm(&self) -> f64 {
        self.links.len() as f64
    }
}

/// The complete journey of a flow: its static route plus the stop
/// decomposition into legs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPlan {
    /// Flow this plan is for.
    pub flow: FlowId,
    /// The underlying source route.
    pub route: SourceRoute,
    /// Legs in travel order; `legs[0]` starts at the source NIC.
    pub legs: Vec<Segment>,
}

impl FlowPlan {
    /// Number of *stops* (buffered routers) along the journey — the `S`
    /// in the zero-load latency `1 + 3·S`.
    #[must_use]
    pub fn num_stops(&self) -> usize {
        self.legs.len() - 1
    }

    /// Zero-load head-flit network latency in cycles: every leg costs
    /// its `cycles` (the first from injection), and every stop adds the
    /// `BW` + `SA` pipeline cycles before the next leg's `ST`.
    #[must_use]
    pub fn zero_load_latency(&self) -> u64 {
        let legs: u64 = self.legs.iter().map(|l| u64::from(l.cycles)).sum();
        legs + 2 * self.num_stops() as u64
    }

    /// The destination node.
    #[must_use]
    pub fn destination(&self, topo: impl Into<Topology>) -> NodeId {
        self.route.destination(topo)
    }

    /// Validate internal consistency: legs chain (each leg's endpoint is
    /// the next leg's sender router), the first leg starts at the source
    /// NIC, and the last leg ends at the destination NIC.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation found.
    pub fn validate(&self, topo: impl Into<Topology>) {
        let mesh = topo.into();
        assert!(!self.legs.is_empty(), "{}: plan has no legs", self.flow);
        assert_eq!(
            self.legs[0].sender,
            Sender::Nic(self.route.source()),
            "{}: first leg must start at the source NIC",
            self.flow
        );
        let dst = self.route.destination(mesh);
        assert_eq!(
            self.legs.last().expect("nonempty").end,
            Endpoint::Nic { node: dst },
            "{}: last leg must end at the destination NIC",
            self.flow
        );
        for w in self.legs.windows(2) {
            match (w[0].end, w[1].sender) {
                (Endpoint::Stop { router, .. }, Sender::RouterOutput(r, _)) => {
                    assert_eq!(router, r, "{}: legs do not chain", self.flow);
                }
                (e, s) => panic!("{}: leg ends {e:?} but next starts {s:?}", self.flow),
            }
        }
        // The union of leg links must equal the route's links, in order.
        let from_legs: Vec<LinkId> = self.legs.iter().flat_map(|l| l.links.clone()).collect();
        assert_eq!(
            from_legs,
            self.route.links(mesh),
            "{}: leg links do not cover the route",
            self.flow
        );
    }
}

/// All flow plans of an application, with lookup indices used by the
/// engine every cycle.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    plans: HashMap<FlowId, FlowPlan>,
    /// (flow, stop router) → leg index departing that router.
    leg_from: HashMap<(FlowId, NodeId), usize>,
}

impl FlowTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Insert a plan (validating it against `mesh`).
    ///
    /// # Panics
    ///
    /// Panics if the plan is inconsistent or a plan for the flow already
    /// exists.
    pub fn insert(&mut self, topo: impl Into<Topology>, plan: FlowPlan) {
        let mesh = topo.into();
        plan.validate(mesh);
        let flow = plan.flow;
        assert!(!self.plans.contains_key(&flow), "{flow}: duplicate plan");
        for (i, leg) in plan.legs.iter().enumerate().skip(1) {
            if let Sender::RouterOutput(r, _) = leg.sender {
                let prev = self.leg_from.insert((flow, r), i);
                assert!(prev.is_none(), "{flow}: revisits router {r}");
            }
        }
        let prev = self.plans.insert(flow, plan);
        assert!(prev.is_none(), "{flow}: duplicate plan");
    }

    /// The plan for `flow`.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    #[must_use]
    pub fn plan(&self, flow: FlowId) -> &FlowPlan {
        self.plans
            .get(&flow)
            .unwrap_or_else(|| panic!("no plan for {flow}"))
    }

    /// The leg that departs stop router `router` for `flow`.
    ///
    /// # Panics
    ///
    /// Panics if the flow does not stop at that router.
    #[must_use]
    pub fn leg_from(&self, flow: FlowId, router: NodeId) -> &Segment {
        let idx = self
            .leg_from
            .get(&(flow, router))
            .unwrap_or_else(|| panic!("{flow} does not stop at {router}"));
        &self.plan(flow).legs[*idx]
    }

    /// Index of the leg departing `router` for `flow`, if it stops there.
    #[must_use]
    pub fn leg_index_from(&self, flow: FlowId, router: NodeId) -> Option<usize> {
        self.leg_from.get(&(flow, router)).copied()
    }

    /// Iterate over all plans.
    pub fn iter(&self) -> impl Iterator<Item = &FlowPlan> {
        self.plans.values()
    }

    /// Number of flows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` when no flows are planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Every (sender, endpoint) pair in the table. Used to size
    /// sender-side free-VC queues and to check the paper's invariant
    /// that each endpoint is fed by exactly one sender.
    ///
    /// # Panics
    ///
    /// Panics if two different senders feed the same endpoint, or one
    /// sender feeds two different endpoints — either would break the
    /// output-port free-VC-queue design of Section IV.
    #[must_use]
    pub fn sender_endpoints(&self) -> HashMap<Sender, Endpoint> {
        let mut by_sender: HashMap<Sender, Endpoint> = HashMap::new();
        let mut by_endpoint: HashMap<Endpoint, Sender> = HashMap::new();
        for plan in self.plans.values() {
            for leg in &plan.legs {
                if let Some(prev) = by_sender.insert(leg.sender, leg.end) {
                    assert_eq!(
                        prev, leg.end,
                        "sender {:?} would track two endpoints",
                        leg.sender
                    );
                }
                if let Some(prev) = by_endpoint.insert(leg.end, leg.sender) {
                    assert_eq!(
                        prev, leg.sender,
                        "endpoint {:?} would be fed by two senders",
                        leg.end
                    );
                }
            }
        }
        by_sender
    }

    /// Build the baseline **Mesh** plan for a set of routed flows: every
    /// router on the route is a stop, `ST` and `LT` are separate cycles
    /// (the paper's 3-cycle router + 1-cycle link).
    #[must_use]
    pub fn mesh_baseline(topo: impl Into<Topology>, routes: &[(FlowId, SourceRoute)]) -> Self {
        let mesh = topo.into();
        let mut table = FlowTable::new();
        for (flow, route) in routes {
            table.insert(mesh, mesh_plan_for(mesh, *flow, route.clone()));
        }
        table
    }
}

/// Dense per-cycle leg lookup compiled once from a [`FlowTable`].
///
/// [`FlowTable`] is the mutable, validated source of truth; its lookups
/// hash `(FlowId, NodeId)` keys, which is fine at build time but not in
/// the engine's per-cycle hot path. `LegLut` flattens every plan's legs
/// into one dense array and resolves `(flow, router)` through a direct
/// flow index plus a tiny sorted per-flow table, so switch allocation
/// and link launches never touch a `HashMap`.
#[derive(Debug, Clone)]
pub struct LegLut {
    index: FlowIndex,
    /// Every leg of every plan, flattened in dense-flow order.
    legs: Vec<Segment>,
    /// Dense flow → index of its injection leg in `legs`.
    first: Vec<u32>,
    /// `(stop router, leg index)` pairs for all flows in one flat CSR
    /// array: flow `d`'s pairs, sorted by router, live at
    /// `per[per_start[d] .. per_start[d + 1]]`. One contiguous
    /// allocation keeps the allocator's per-head route lookup off
    /// scattered per-flow heap buffers.
    per_start: Vec<u32>,
    per: Vec<(u16, u32)>,
    /// Hot launch-path facts per leg, parallel to `legs`.
    recs: Vec<LegRec>,
    /// Precomputed dense link indices (`node * 5 + dir`) of every leg's
    /// links, flattened; a leg's slice starts at its `links_start`.
    link_idx: Vec<u32>,
}

/// Flat, copyable summary of one leg's launch-path facts, resolved at
/// build time: the engine's per-departure work reads one dense record
/// instead of the full [`Segment`], whose link list lives behind a
/// separate allocation.
#[derive(Debug, Clone, Copy)]
pub struct LegRec {
    /// Start of this leg's links in the lut's flat link-index array.
    links_start: u32,
    /// Number of links crossed in the single traversal.
    pub n_links: u8,
    /// Cycles from grant to arrival ([`Segment::cycles`]).
    pub cycles: u8,
    /// Output direction arbitrated at the sender.
    pub out_dir: Direction,
    /// Who launches flits onto the leg.
    pub sender: Sender,
    /// Crossbar traversals charged per flit ([`Segment::crossbars`]).
    pub crossbars: u32,
    /// Millimetres of link wire charged per flit ([`Segment::link_mm`]).
    pub mm: f64,
    /// Where the leg lands.
    pub end: Endpoint,
}

/// Flow-id → dense-index mapping: direct-indexed when ids are compact
/// (every workload in the tree numbers flows from 0), hashed otherwise.
#[derive(Debug, Clone)]
enum FlowIndex {
    /// `ids[flow.0]` is the dense index, `u32::MAX` for unknown flows.
    Direct(Vec<u32>),
    /// Fallback for sparse id spaces.
    Hashed(HashMap<FlowId, u32>),
}

impl LegLut {
    /// Compile the lookup tables for `flows`.
    #[must_use]
    pub fn new(flows: &FlowTable) -> Self {
        let mut plans: Vec<&FlowPlan> = flows.iter().collect();
        plans.sort_by_key(|p| p.flow);
        let mut legs = Vec::new();
        let mut first = Vec::with_capacity(plans.len());
        let mut per_start = Vec::with_capacity(plans.len() + 1);
        let mut per: Vec<(u16, u32)> = Vec::new();
        for plan in &plans {
            first.push(legs.len() as u32);
            per_start.push(per.len() as u32);
            let row = per.len();
            for (i, leg) in plan.legs.iter().enumerate() {
                if i > 0 {
                    if let Sender::RouterOutput(r, _) = leg.sender {
                        per.push((r.0, legs.len() as u32));
                    }
                }
                legs.push(leg.clone());
            }
            per[row..].sort_unstable_by_key(|(r, _)| *r);
        }
        per_start.push(per.len() as u32);
        let mut link_idx = Vec::new();
        let mut recs = Vec::with_capacity(legs.len());
        for leg in &legs {
            let links_start = link_idx.len() as u32;
            for link in &leg.links {
                link_idx.push(link.from.0 as u32 * PORTS as u32 + link.dir.index() as u32);
            }
            recs.push(LegRec {
                links_start,
                n_links: leg.links.len() as u8,
                cycles: leg.cycles,
                out_dir: leg.out_dir,
                sender: leg.sender,
                crossbars: leg.crossbars(),
                mm: leg.link_mm(),
                end: leg.end,
            });
        }
        let max_id = plans.iter().map(|p| p.flow.0 as usize).max().unwrap_or(0);
        let index = if max_id <= 8 * plans.len() + 1024 {
            let mut ids = vec![u32::MAX; max_id + 1];
            for (d, plan) in plans.iter().enumerate() {
                ids[plan.flow.0 as usize] = d as u32;
            }
            FlowIndex::Direct(ids)
        } else {
            FlowIndex::Hashed(
                plans
                    .iter()
                    .enumerate()
                    .map(|(d, p)| (p.flow, d as u32))
                    .collect(),
            )
        };
        LegLut {
            index,
            legs,
            first,
            per_start,
            per,
            recs,
            link_idx,
        }
    }

    /// Dense index of `flow`.
    fn dense(&self, flow: FlowId) -> usize {
        let d = match &self.index {
            FlowIndex::Direct(ids) => ids.get(flow.0 as usize).copied().unwrap_or(u32::MAX),
            FlowIndex::Hashed(map) => map.get(&flow).copied().unwrap_or(u32::MAX),
        };
        assert!(d != u32::MAX, "no plan for {flow}");
        d as usize
    }

    /// The injection leg of `flow` (starts at the source NIC).
    #[must_use]
    pub fn first_leg(&self, flow: FlowId) -> &Segment {
        &self.legs[self.first_leg_idx(flow) as usize]
    }

    /// Index of the injection leg of `flow`, for [`LegLut::rec`].
    #[must_use]
    pub fn first_leg_idx(&self, flow: FlowId) -> u32 {
        self.first[self.dense(flow)]
    }

    /// The leg departing stop router `router` for `flow`.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown or does not stop at that router.
    #[must_use]
    pub fn leg_from(&self, flow: FlowId, router: NodeId) -> &Segment {
        &self.legs[self.leg_idx_from(flow, router) as usize]
    }

    /// Index of the leg departing stop router `router` for `flow`, for
    /// [`LegLut::rec`].
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown or does not stop at that router.
    #[must_use]
    pub fn leg_idx_from(&self, flow: FlowId, router: NodeId) -> u32 {
        let d = self.dense(flow);
        let per = &self.per[self.per_start[d] as usize..self.per_start[d + 1] as usize];
        match per.binary_search_by_key(&router.0, |(r, _)| *r) {
            Ok(i) => per[i].1,
            Err(_) => panic!("{flow} does not stop at {router}"),
        }
    }

    /// The launch-path record of leg `leg` (an index from
    /// [`LegLut::first_leg_idx`] or [`LegLut::leg_idx_from`]).
    #[must_use]
    pub fn rec(&self, leg: u32) -> &LegRec {
        &self.recs[leg as usize]
    }

    /// Dense link indices (`node * 5 + dir`) crossed by `rec`'s leg.
    #[must_use]
    pub fn rec_links(&self, rec: &LegRec) -> &[u32] {
        let s = rec.links_start as usize;
        &self.link_idx[s..s + rec.n_links as usize]
    }

    /// Output direction of the leg departing `router` for `flow` — the
    /// switch allocator's per-head route lookup.
    #[must_use]
    pub fn out_dir_from(&self, flow: FlowId, router: NodeId) -> Direction {
        self.leg_from(flow, router).out_dir
    }
}

/// The baseline plan for one routed flow (every router a stop).
#[must_use]
pub fn mesh_plan_for(topo: impl Into<Topology>, flow: FlowId, route: SourceRoute) -> FlowPlan {
    let mesh = topo.into();
    let routers = route.routers(mesh);
    let src = route.source();
    let mut legs = Vec::with_capacity(routers.len() + 1);
    // Injection: NIC into the source router's Core input buffer.
    legs.push(Segment {
        sender: Sender::Nic(src),
        out_dir: Direction::Core,
        links: Vec::new(),
        end: Endpoint::Stop {
            router: src,
            in_dir: Direction::Core,
        },
        cycles: 1,
    });
    let outputs = route.outputs();
    for (i, (&r, &out)) in routers.iter().zip(outputs.iter()).enumerate() {
        if out == Direction::Core {
            // Ejection from the destination router.
            legs.push(Segment {
                sender: Sender::RouterOutput(r, Direction::Core),
                out_dir: Direction::Core,
                links: Vec::new(),
                end: Endpoint::Nic { node: r },
                cycles: 1,
            });
        } else {
            let next = routers[i + 1];
            legs.push(Segment {
                sender: Sender::RouterOutput(r, out),
                out_dir: out,
                links: vec![LinkId { from: r, dir: out }],
                end: Endpoint::Stop {
                    router: next,
                    in_dir: out.opposite(),
                },
                cycles: 2,
            });
        }
    }
    FlowPlan { flow, route, legs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    fn mesh() -> Mesh {
        Mesh::paper_4x4()
    }

    #[test]
    fn mesh_plan_stops_everywhere() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(15)).unwrap();
        let plan = mesh_plan_for(mesh(), FlowId(0), route);
        plan.validate(mesh());
        // 6 hops -> 7 routers; legs = inject + 6 links + eject = 8.
        assert_eq!(plan.legs.len(), 8);
        assert_eq!(plan.num_stops(), 7);
        // Zero-load: every leg (1 + 6·2 + 1 = 14) + 2 per stop (14) = 28
        // = 4·hops + 4 = 4·(6+1).
        assert_eq!(plan.zero_load_latency(), 28);
        assert_eq!(plan.zero_load_latency(), 4 * (6 + 1));
    }

    #[test]
    fn one_hop_mesh_latency_is_eight() {
        let route = SourceRoute::xy(mesh(), NodeId(9), NodeId(10)).unwrap();
        let plan = mesh_plan_for(mesh(), FlowId(1), route);
        assert_eq!(plan.zero_load_latency(), 8);
    }

    #[test]
    fn crossbar_and_mm_accounting() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(2)).unwrap();
        let plan = mesh_plan_for(mesh(), FlowId(0), route);
        let xbars: u32 = plan.legs.iter().map(Segment::crossbars).sum();
        let mm: f64 = plan.legs.iter().map(Segment::link_mm).sum();
        // Inject leg: 0 xbars; two link legs: 1 each; eject: 1.
        assert_eq!(xbars, 3);
        assert!((mm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flow_table_leg_lookup() {
        let r0 = SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap();
        let table = FlowTable::mesh_baseline(mesh(), &[(FlowId(7), r0)]);
        let leg = table.leg_from(FlowId(7), NodeId(1));
        assert_eq!(leg.sender, Sender::RouterOutput(NodeId(1), Direction::East));
        assert_eq!(
            leg.end,
            Endpoint::Stop {
                router: NodeId(2),
                in_dir: Direction::West
            }
        );
        assert!(table.leg_index_from(FlowId(7), NodeId(5)).is_none());
    }

    #[test]
    fn sender_endpoint_map_is_consistent_for_mesh() {
        let flows = vec![
            (
                FlowId(0),
                SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap(),
            ),
            (
                FlowId(1),
                SourceRoute::xy(mesh(), NodeId(4), NodeId(3)).unwrap(),
            ),
            (
                FlowId(2),
                SourceRoute::xy(mesh(), NodeId(0), NodeId(12)).unwrap(),
            ),
        ];
        let table = FlowTable::mesh_baseline(mesh(), &flows);
        let map = table.sender_endpoints();
        // Every mesh sender's endpoint is its physical neighbour.
        for (s, e) in &map {
            if let (Sender::RouterOutput(r, d), Endpoint::Stop { router, in_dir }) = (s, e) {
                if *d != Direction::Core {
                    assert_eq!(mesh().neighbor(*r, *d), Some(*router));
                    assert_eq!(*in_dir, d.opposite());
                }
            }
        }
    }

    #[test]
    fn leg_lut_agrees_with_flow_table() {
        // Sparse, shuffled flow ids exercise both the direct index and
        // the per-flow router tables.
        let flows = vec![
            (
                FlowId(7),
                SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap(),
            ),
            (
                FlowId(0),
                SourceRoute::xy(mesh(), NodeId(4), NodeId(6)).unwrap(),
            ),
            (
                FlowId(3),
                SourceRoute::xy(mesh(), NodeId(12), NodeId(0)).unwrap(),
            ),
        ];
        let table = FlowTable::mesh_baseline(mesh(), &flows);
        let lut = LegLut::new(&table);
        for (flow, _) in &flows {
            let plan = table.plan(*flow);
            assert_eq!(lut.first_leg(*flow), &plan.legs[0]);
            for leg in plan.legs.iter().skip(1) {
                if let Sender::RouterOutput(r, _) = leg.sender {
                    assert_eq!(lut.leg_from(*flow, r), leg, "{flow} at {r}");
                    assert_eq!(lut.out_dir_from(*flow, r), leg.out_dir);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not stop at")]
    fn leg_lut_rejects_non_stop_router() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap();
        let table = FlowTable::mesh_baseline(mesh(), &[(FlowId(0), route)]);
        let lut = LegLut::new(&table);
        let _ = lut.leg_from(FlowId(0), NodeId(12));
    }

    #[test]
    #[should_panic(expected = "no plan for")]
    fn leg_lut_rejects_unknown_flow() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap();
        let table = FlowTable::mesh_baseline(mesh(), &[(FlowId(0), route)]);
        let lut = LegLut::new(&table);
        let _ = lut.first_leg(FlowId(99));
    }

    #[test]
    #[should_panic(expected = "duplicate plan")]
    fn duplicate_flow_rejected() {
        let mut t = FlowTable::new();
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(1)).unwrap();
        t.insert(mesh(), mesh_plan_for(mesh(), FlowId(0), route.clone()));
        t.insert(mesh(), mesh_plan_for(mesh(), FlowId(0), route));
    }

    #[test]
    #[should_panic(expected = "leg links do not cover the route")]
    fn truncated_plan_rejected() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(2)).unwrap();
        let mut plan = mesh_plan_for(mesh(), FlowId(0), route);
        // Drop one link from a middle leg.
        plan.legs[1].links.clear();
        plan.validate(mesh());
    }
}
