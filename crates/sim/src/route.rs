//! Source routes and their 2-bit-per-router encoding.
//!
//! The paper (Section IV, *Routing*): routes are static and carried in
//! the head flit. "At the source router, the 2-bit corresponds to East,
//! South, West and North output ports, while at all other routers, the
//! bits correspond to Left, Right, Straight and Core", relative to the
//! flit's travelling direction. Deadlock freedom is enforced by the route
//! *generator* (a turn model — see `smart-mapping`), not by the encoding.

use crate::topology::{Direction, LinkId, Mesh, NodeId, Turn};

/// A static source route: the absolute output direction at the source
/// router, followed by one relative turn per subsequent router, ending
/// with [`Turn::Core`] at the destination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceRoute {
    src: NodeId,
    first: Direction,
    turns: Vec<Turn>,
}

impl SourceRoute {
    /// Build a route from the source output direction and per-router
    /// turns.
    ///
    /// # Panics
    ///
    /// Panics if `first` is `Core`, if `turns` is empty, if any turn
    /// before the last is `Core`, or if the last turn is not `Core`.
    #[must_use]
    pub fn new(src: NodeId, first: Direction, turns: Vec<Turn>) -> Self {
        assert!(
            first != Direction::Core,
            "source output must be a mesh port"
        );
        assert!(!turns.is_empty(), "route must terminate with a Core turn");
        assert_eq!(
            *turns.last().expect("nonempty"),
            Turn::Core,
            "route must end by ejecting to the core"
        );
        assert!(
            turns[..turns.len() - 1].iter().all(|t| *t != Turn::Core),
            "Core turn only allowed at the destination"
        );
        SourceRoute { src, first, turns }
    }

    /// Build the route that follows `routers` (which must start at the
    /// source, step between adjacent nodes, and have ≥ 2 entries).
    ///
    /// # Panics
    ///
    /// Panics if consecutive routers are not mesh neighbours or fewer
    /// than two routers are given.
    #[must_use]
    pub fn from_router_path(mesh: Mesh, routers: &[NodeId]) -> Self {
        assert!(routers.len() >= 2, "a route needs at least two routers");
        let mut dirs = Vec::with_capacity(routers.len() - 1);
        for w in routers.windows(2) {
            let dir = Direction::MESH
                .iter()
                .copied()
                .find(|d| mesh.neighbor(w[0], *d) == Some(w[1]))
                .unwrap_or_else(|| panic!("{} and {} are not neighbours", w[0], w[1]));
            dirs.push(dir);
        }
        let first = dirs[0];
        let mut turns = Vec::with_capacity(dirs.len());
        for w in dirs.windows(2) {
            turns.push(w[0].turn_to(w[1]));
        }
        turns.push(Turn::Core);
        SourceRoute::new(routers[0], first, turns)
    }

    /// Dimension-ordered (X-then-Y) minimal route from `src` to `dst` —
    /// the classic deadlock-free baseline.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    #[must_use]
    pub fn xy(mesh: Mesh, src: NodeId, dst: NodeId) -> Self {
        assert_ne!(src, dst, "no route from a node to itself");
        let mut routers = vec![src];
        let (cs, cd) = (mesh.coord(src), mesh.coord(dst));
        let mut cur = cs;
        while cur.x != cd.x {
            cur.x = if cd.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            routers.push(mesh.node_at(cur));
        }
        while cur.y != cd.y {
            cur.y = if cd.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            routers.push(mesh.node_at(cur));
        }
        SourceRoute::from_router_path(mesh, &routers)
    }

    /// Source node of the route.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.src
    }

    /// Output direction taken at the source router.
    #[must_use]
    pub fn first_direction(&self) -> Direction {
        self.first
    }

    /// The relative turns at routers after the source.
    #[must_use]
    pub fn turns(&self) -> &[Turn] {
        &self.turns
    }

    /// Number of links traversed.
    #[must_use]
    pub fn num_hops(&self) -> usize {
        self.turns.len()
    }

    /// The routers visited, source first, destination last
    /// (`num_hops() + 1` entries).
    ///
    /// # Panics
    ///
    /// Panics if the route walks off the mesh edge.
    #[must_use]
    pub fn routers(&self, mesh: Mesh) -> Vec<NodeId> {
        let mut out = vec![self.src];
        let mut travel = self.first;
        let mut at = mesh
            .neighbor(self.src, travel)
            .unwrap_or_else(|| panic!("route leaves the mesh at {}", self.src));
        out.push(at);
        for t in &self.turns[..self.turns.len() - 1] {
            travel = travel.apply_turn(*t);
            at = mesh
                .neighbor(at, travel)
                .unwrap_or_else(|| panic!("route leaves the mesh at {at}"));
            out.push(at);
        }
        out
    }

    /// The destination node.
    #[must_use]
    pub fn destination(&self, mesh: Mesh) -> NodeId {
        *self.routers(mesh).last().expect("routes are nonempty")
    }

    /// Output direction at each visited router, ending with `Core`
    /// (`num_hops() + 1` entries, aligned with [`SourceRoute::routers`]).
    #[must_use]
    pub fn outputs(&self) -> Vec<Direction> {
        let mut out = vec![self.first];
        let mut travel = self.first;
        for t in &self.turns {
            if *t == Turn::Core {
                out.push(Direction::Core);
            } else {
                travel = travel.apply_turn(*t);
                out.push(travel);
            }
        }
        out
    }

    /// The directed links traversed, in order.
    #[must_use]
    pub fn links(&self, mesh: Mesh) -> Vec<LinkId> {
        let routers = self.routers(mesh);
        let outputs = self.outputs();
        routers
            .iter()
            .zip(outputs.iter())
            .filter(|(_, d)| **d != Direction::Core)
            .map(|(r, d)| LinkId { from: *r, dir: *d })
            .collect()
    }

    /// Encode as the paper's bit format: 2 bits absolute at the source,
    /// then 2 bits per router (LSB-first per field).
    #[must_use]
    pub fn encode(&self) -> u64 {
        let mut bits = u64::from(self.first.index() as u32);
        let mut shift = 2;
        for t in &self.turns {
            assert!(shift + 2 <= 64, "route too long for a 64-bit encoding");
            bits |= u64::from(t.bits()) << shift;
            shift += 2;
        }
        bits
    }

    /// Decode a route of `num_hops` links for source `src` from the bit
    /// format produced by [`SourceRoute::encode`].
    ///
    /// # Panics
    ///
    /// Panics if the encoded fields violate route invariants.
    #[must_use]
    pub fn decode(src: NodeId, bits: u64, num_hops: usize) -> Self {
        let first = Direction::from_index((bits & 0b11) as usize);
        let mut turns = Vec::with_capacity(num_hops);
        for i in 0..num_hops {
            let f = (bits >> (2 + 2 * i)) & 0b11;
            turns.push(Turn::from_bits(f as u32));
        }
        SourceRoute::new(src, first, turns)
    }

    /// Number of route bits in a head-flit header for a mesh whose
    /// longest minimal route has `max_hops` links: one absolute field
    /// plus one per subsequent router.
    #[must_use]
    pub fn header_bits(max_hops: usize) -> usize {
        2 * (max_hops + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::paper_4x4()
    }

    #[test]
    fn xy_route_shape() {
        let r = SourceRoute::xy(mesh(), NodeId(0), NodeId(15));
        assert_eq!(r.num_hops(), 6);
        assert_eq!(
            r.routers(mesh()),
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(7),
                NodeId(11),
                NodeId(15)
            ]
        );
        assert_eq!(r.destination(mesh()), NodeId(15));
        let outs = r.outputs();
        assert_eq!(outs[0], Direction::East);
        assert_eq!(outs[3], Direction::North);
        assert_eq!(*outs.last().expect("nonempty"), Direction::Core);
    }

    #[test]
    fn single_hop_route() {
        let r = SourceRoute::xy(mesh(), NodeId(9), NodeId(10));
        assert_eq!(r.num_hops(), 1);
        assert_eq!(r.turns(), &[Turn::Core]);
        assert_eq!(r.links(mesh()).len(), 1);
        assert_eq!(
            r.links(mesh())[0],
            LinkId {
                from: NodeId(9),
                dir: Direction::East
            }
        );
    }

    #[test]
    fn from_router_path_round_trips_routers() {
        let path = vec![NodeId(8), NodeId(9), NodeId(10), NodeId(6), NodeId(2)];
        let r = SourceRoute::from_router_path(mesh(), &path);
        assert_eq!(r.routers(mesh()), path);
        // East, East, then turn right (South), straight, eject.
        assert_eq!(
            r.turns(),
            &[Turn::Straight, Turn::Right, Turn::Straight, Turn::Core]
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        for (s, d) in [(0u16, 15u16), (9, 10), (3, 12), (14, 1), (5, 6)] {
            let r = SourceRoute::xy(mesh(), NodeId(s), NodeId(d));
            let bits = r.encode();
            let back = SourceRoute::decode(NodeId(s), bits, r.num_hops());
            assert_eq!(back, r, "route {s}->{d}");
        }
    }

    #[test]
    fn paper_header_budget() {
        // 4x4 mesh: longest minimal route is 6 links; 2·(6+1) = 14 route
        // bits — fits the 20-bit head header with VC + type to spare.
        assert_eq!(SourceRoute::header_bits(6), 14);
    }

    #[test]
    fn links_match_hops() {
        let r = SourceRoute::xy(mesh(), NodeId(12), NodeId(3));
        assert_eq!(r.links(mesh()).len(), r.num_hops());
        assert_eq!(r.num_hops(), 6);
    }

    #[test]
    #[should_panic(expected = "not neighbours")]
    fn non_adjacent_path_rejected() {
        let _ = SourceRoute::from_router_path(mesh(), &[NodeId(0), NodeId(5)]);
    }

    #[test]
    #[should_panic(expected = "no route from a node to itself")]
    fn self_route_rejected() {
        let _ = SourceRoute::xy(mesh(), NodeId(3), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "Core turn only allowed at the destination")]
    fn early_core_rejected() {
        let _ = SourceRoute::new(NodeId(0), Direction::East, vec![Turn::Core, Turn::Core]);
    }
}
