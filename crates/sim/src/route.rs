//! Source routes and their 2-bit-per-router encoding.
//!
//! The paper (Section IV, *Routing*): routes are static and carried in
//! the head flit. "At the source router, the 2-bit corresponds to East,
//! South, West and North output ports, while at all other routers, the
//! bits correspond to Left, Right, Straight and Core", relative to the
//! flit's travelling direction. Deadlock freedom is enforced by the route
//! *generator* (a turn model — see `smart-mapping`), not by the encoding.
//!
//! The encoding is topology-agnostic: crossing a torus wrap link
//! preserves the travelling direction (East across the seam is still
//! East), so the same relative turns steer a flit on either fabric.
//! [`SourceRoute::dimension_order`] is the generic minimal generator —
//! classic XY on a mesh, per-axis shorter-way-around on a torus.

use crate::topology::{Direction, LinkId, NodeId, Topology, Turn};
use std::fmt;

/// Why a route could not be generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The source and destination are the same node: the paper's route
    /// encoding has no zero-hop form (the first field is an absolute
    /// output port, so every route crosses at least one link). Flow
    /// generators must filter self-pairs before routing.
    SelfRoute(NodeId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::SelfRoute(node) => write!(
                f,
                "no route from {node} to itself: the 2-bit route encoding \
                 has no zero-hop form"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// A static source route: the absolute output direction at the source
/// router, followed by one relative turn per subsequent router, ending
/// with [`Turn::Core`] at the destination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceRoute {
    src: NodeId,
    first: Direction,
    turns: Vec<Turn>,
}

impl SourceRoute {
    /// Build a route from the source output direction and per-router
    /// turns.
    ///
    /// # Panics
    ///
    /// Panics if `first` is `Core`, if `turns` is empty, if any turn
    /// before the last is `Core`, or if the last turn is not `Core`.
    #[must_use]
    pub fn new(src: NodeId, first: Direction, turns: Vec<Turn>) -> Self {
        assert!(
            first != Direction::Core,
            "source output must be a mesh port"
        );
        assert!(!turns.is_empty(), "route must terminate with a Core turn");
        assert_eq!(
            *turns.last().expect("nonempty"),
            Turn::Core,
            "route must end by ejecting to the core"
        );
        assert!(
            turns[..turns.len() - 1].iter().all(|t| *t != Turn::Core),
            "Core turn only allowed at the destination"
        );
        SourceRoute { src, first, turns }
    }

    /// Build the route that follows `routers` (which must start at the
    /// source, step between adjacent nodes, and have ≥ 2 entries).
    ///
    /// # Panics
    ///
    /// Panics if consecutive routers are not neighbours on `topo` or
    /// fewer than two routers are given.
    #[must_use]
    pub fn from_router_path(topo: impl Into<Topology>, routers: &[NodeId]) -> Self {
        let topo = topo.into();
        assert!(routers.len() >= 2, "a route needs at least two routers");
        let mut dirs = Vec::with_capacity(routers.len() - 1);
        for w in routers.windows(2) {
            let dir = Direction::MESH
                .iter()
                .copied()
                .find(|d| topo.neighbor(w[0], *d) == Some(w[1]))
                .unwrap_or_else(|| panic!("{} and {} are not neighbours", w[0], w[1]));
            dirs.push(dir);
        }
        SourceRoute::from_directions(routers[0], &dirs)
    }

    /// Build the route that leaves `src` and takes `dirs` in order
    /// (≥ 1 of them), ejecting to the core after the last.
    ///
    /// # Panics
    ///
    /// Panics if `dirs` is empty, contains `Core`, or reverses
    /// direction between consecutive hops (U-turns are not encodable).
    #[must_use]
    pub fn from_directions(src: NodeId, dirs: &[Direction]) -> Self {
        assert!(!dirs.is_empty(), "a route needs at least one hop");
        let first = dirs[0];
        let mut turns = Vec::with_capacity(dirs.len());
        for w in dirs.windows(2) {
            turns.push(w[0].turn_to(w[1]));
        }
        turns.push(Turn::Core);
        SourceRoute::new(src, first, turns)
    }

    /// Dimension-ordered (X-then-Y) minimal route from `src` to `dst`.
    /// On a mesh this is the classic deadlock-free XY baseline; on a
    /// torus each axis independently takes the direction with fewer
    /// hops, wrapping across the seam when that is shorter (ties — an
    /// even ring crossed exactly half-way — break toward East/North for
    /// determinism).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::SelfRoute`] when `src == dst` — the route
    /// encoding has no zero-hop form, so self-flows must be filtered by
    /// the caller.
    pub fn dimension_order(
        topo: impl Into<Topology>,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Self, RouteError> {
        let topo = topo.into();
        if src == dst {
            return Err(RouteError::SelfRoute(src));
        }
        let (cs, cd) = (topo.coord(src), topo.coord(dst));
        let mut dirs = Vec::with_capacity(topo.distance(src, dst) as usize);
        let mut axis = |from: u16, to: u16, size: u16, pos: Direction, neg: Direction| {
            let (dir, hops) = match topo {
                Topology::Mesh(_) => {
                    if to >= from {
                        (pos, to - from)
                    } else {
                        (neg, from - to)
                    }
                }
                Topology::Torus(_) => {
                    let fwd = (to + size - from) % size;
                    let bwd = size - fwd;
                    // fwd == 0 contributes no hops; on a tie take the
                    // positive direction.
                    if fwd == 0 || fwd <= bwd {
                        (pos, fwd)
                    } else {
                        (neg, bwd)
                    }
                }
            };
            dirs.extend(std::iter::repeat_n(dir, usize::from(hops)));
        };
        axis(cs.x, cd.x, topo.width(), Direction::East, Direction::West);
        axis(
            cs.y,
            cd.y,
            topo.height(),
            Direction::North,
            Direction::South,
        );
        Ok(SourceRoute::from_directions(src, &dirs))
    }

    /// The historical name for [`SourceRoute::dimension_order`] —
    /// X-then-Y on a mesh, wrap-aware on a torus.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::SelfRoute`] when `src == dst`.
    pub fn xy(topo: impl Into<Topology>, src: NodeId, dst: NodeId) -> Result<Self, RouteError> {
        SourceRoute::dimension_order(topo, src, dst)
    }

    /// Source node of the route.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.src
    }

    /// Output direction taken at the source router.
    #[must_use]
    pub fn first_direction(&self) -> Direction {
        self.first
    }

    /// The relative turns at routers after the source.
    #[must_use]
    pub fn turns(&self) -> &[Turn] {
        &self.turns
    }

    /// Number of links traversed.
    #[must_use]
    pub fn num_hops(&self) -> usize {
        self.turns.len()
    }

    /// The routers visited, source first, destination last
    /// (`num_hops() + 1` entries).
    ///
    /// # Panics
    ///
    /// Panics if the route walks off a fabric edge.
    #[must_use]
    pub fn routers(&self, topo: impl Into<Topology>) -> Vec<NodeId> {
        let topo = topo.into();
        let mut out = vec![self.src];
        let mut travel = self.first;
        let mut at = topo
            .neighbor(self.src, travel)
            .unwrap_or_else(|| panic!("route leaves the fabric at {}", self.src));
        out.push(at);
        for t in &self.turns[..self.turns.len() - 1] {
            travel = travel.apply_turn(*t);
            at = topo
                .neighbor(at, travel)
                .unwrap_or_else(|| panic!("route leaves the fabric at {at}"));
            out.push(at);
        }
        out
    }

    /// The destination node.
    #[must_use]
    pub fn destination(&self, topo: impl Into<Topology>) -> NodeId {
        *self.routers(topo).last().expect("routes are nonempty")
    }

    /// Output direction at each visited router, ending with `Core`
    /// (`num_hops() + 1` entries, aligned with [`SourceRoute::routers`]).
    #[must_use]
    pub fn outputs(&self) -> Vec<Direction> {
        let mut out = vec![self.first];
        let mut travel = self.first;
        for t in &self.turns {
            if *t == Turn::Core {
                out.push(Direction::Core);
            } else {
                travel = travel.apply_turn(*t);
                out.push(travel);
            }
        }
        out
    }

    /// The directed links traversed, in order.
    #[must_use]
    pub fn links(&self, topo: impl Into<Topology>) -> Vec<LinkId> {
        let routers = self.routers(topo);
        let outputs = self.outputs();
        routers
            .iter()
            .zip(outputs.iter())
            .filter(|(_, d)| **d != Direction::Core)
            .map(|(r, d)| LinkId { from: *r, dir: *d })
            .collect()
    }

    /// Encode as the paper's bit format: 2 bits absolute at the source,
    /// then 2 bits per router (LSB-first per field).
    #[must_use]
    pub fn encode(&self) -> u64 {
        let mut bits = u64::from(self.first.index() as u32);
        let mut shift = 2;
        for t in &self.turns {
            assert!(shift + 2 <= 64, "route too long for a 64-bit encoding");
            bits |= u64::from(t.bits()) << shift;
            shift += 2;
        }
        bits
    }

    /// Decode a route of `num_hops` links for source `src` from the bit
    /// format produced by [`SourceRoute::encode`].
    ///
    /// # Panics
    ///
    /// Panics if the encoded fields violate route invariants.
    #[must_use]
    pub fn decode(src: NodeId, bits: u64, num_hops: usize) -> Self {
        let first = Direction::from_index((bits & 0b11) as usize);
        let mut turns = Vec::with_capacity(num_hops);
        for i in 0..num_hops {
            let f = (bits >> (2 + 2 * i)) & 0b11;
            turns.push(Turn::from_bits(f as u32));
        }
        SourceRoute::new(src, first, turns)
    }

    /// Number of route bits in a head-flit header for a mesh whose
    /// longest minimal route has `max_hops` links: one absolute field
    /// plus one per subsequent router.
    #[must_use]
    pub fn header_bits(max_hops: usize) -> usize {
        2 * (max_hops + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Mesh, TopologyOps, Torus};

    fn mesh() -> Mesh {
        Mesh::paper_4x4()
    }

    #[test]
    fn xy_route_shape() {
        let r = SourceRoute::xy(mesh(), NodeId(0), NodeId(15)).unwrap();
        assert_eq!(r.num_hops(), 6);
        assert_eq!(
            r.routers(mesh()),
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(7),
                NodeId(11),
                NodeId(15)
            ]
        );
        assert_eq!(r.destination(mesh()), NodeId(15));
        let outs = r.outputs();
        assert_eq!(outs[0], Direction::East);
        assert_eq!(outs[3], Direction::North);
        assert_eq!(*outs.last().expect("nonempty"), Direction::Core);
    }

    #[test]
    fn single_hop_route() {
        let r = SourceRoute::xy(mesh(), NodeId(9), NodeId(10)).unwrap();
        assert_eq!(r.num_hops(), 1);
        assert_eq!(r.turns(), &[Turn::Core]);
        assert_eq!(r.links(mesh()).len(), 1);
        assert_eq!(
            r.links(mesh())[0],
            LinkId {
                from: NodeId(9),
                dir: Direction::East
            }
        );
    }

    #[test]
    fn from_router_path_round_trips_routers() {
        let path = vec![NodeId(8), NodeId(9), NodeId(10), NodeId(6), NodeId(2)];
        let r = SourceRoute::from_router_path(mesh(), &path);
        assert_eq!(r.routers(mesh()), path);
        // East, East, then turn right (South), straight, eject.
        assert_eq!(
            r.turns(),
            &[Turn::Straight, Turn::Right, Turn::Straight, Turn::Core]
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        for (s, d) in [(0u16, 15u16), (9, 10), (3, 12), (14, 1), (5, 6)] {
            let r = SourceRoute::xy(mesh(), NodeId(s), NodeId(d)).unwrap();
            let bits = r.encode();
            let back = SourceRoute::decode(NodeId(s), bits, r.num_hops());
            assert_eq!(back, r, "route {s}->{d}");
        }
    }

    #[test]
    fn paper_header_budget() {
        // 4x4 mesh: longest minimal route is 6 links; 2·(6+1) = 14 route
        // bits — fits the 20-bit head header with VC + type to spare.
        assert_eq!(SourceRoute::header_bits(6), 14);
    }

    #[test]
    fn links_match_hops() {
        let r = SourceRoute::xy(mesh(), NodeId(12), NodeId(3)).unwrap();
        assert_eq!(r.links(mesh()).len(), r.num_hops());
        assert_eq!(r.num_hops(), 6);
    }

    #[test]
    #[should_panic(expected = "not neighbours")]
    fn non_adjacent_path_rejected() {
        let _ = SourceRoute::from_router_path(mesh(), &[NodeId(0), NodeId(5)]);
    }

    #[test]
    fn self_route_is_a_typed_error() {
        let err = SourceRoute::xy(mesh(), NodeId(3), NodeId(3)).expect_err("self route");
        assert_eq!(err, RouteError::SelfRoute(NodeId(3)));
        assert!(err.to_string().contains("no route from n3 to itself"));
        let torus_err = SourceRoute::dimension_order(Torus::new(4, 4), NodeId(0), NodeId(0))
            .expect_err("self route");
        assert_eq!(torus_err, RouteError::SelfRoute(NodeId(0)));
    }

    #[test]
    fn torus_route_wraps_the_short_way() {
        let t = Torus::new(4, 4);
        // 0 -> 3: one West wrap hop instead of three East hops.
        let r = SourceRoute::dimension_order(t, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(r.num_hops(), 1);
        assert_eq!(r.first_direction(), Direction::West);
        assert_eq!(r.routers(t), vec![NodeId(0), NodeId(3)]);
        // 0 -> 15: West wrap then South wrap, 2 hops total.
        let r = SourceRoute::dimension_order(t, NodeId(0), NodeId(15)).unwrap();
        assert_eq!(r.num_hops(), 2);
        assert_eq!(r.routers(t), vec![NodeId(0), NodeId(3), NodeId(15)]);
        assert_eq!(r.destination(t), NodeId(15));
        // The same pair on the mesh needs 6 hops.
        let m = SourceRoute::dimension_order(mesh(), NodeId(0), NodeId(15)).unwrap();
        assert_eq!(m.num_hops(), 6);
    }

    #[test]
    fn torus_half_way_tie_breaks_east_and_north() {
        let t = Torus::new(4, 4);
        // x: 0 -> 2 is 2 hops either way; the tie goes East.
        let r = SourceRoute::dimension_order(t, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(r.first_direction(), Direction::East);
        assert_eq!(r.num_hops(), 2);
        // y: 0 -> 8 is 2 hops either way; the tie goes North.
        let r = SourceRoute::dimension_order(t, NodeId(0), NodeId(8)).unwrap();
        assert_eq!(r.first_direction(), Direction::North);
    }

    #[test]
    fn torus_route_length_matches_distance() {
        let t = Torus::new(4, 4);
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                let r = SourceRoute::dimension_order(t, NodeId(s), NodeId(d)).unwrap();
                assert_eq!(
                    r.num_hops() as u16,
                    t.distance(NodeId(s), NodeId(d)),
                    "{s}->{d}"
                );
                assert_eq!(r.destination(t), NodeId(d), "{s}->{d}");
            }
        }
    }

    #[test]
    fn torus_routes_encode_and_decode_like_mesh_routes() {
        let t = Torus::new(8, 8);
        let r = SourceRoute::dimension_order(t, NodeId(0), NodeId(63)).unwrap();
        let back = SourceRoute::decode(NodeId(0), r.encode(), r.num_hops());
        assert_eq!(back, r);
    }

    #[test]
    fn mesh_routes_on_wrapped_grid_still_work() {
        // A mesh route threaded through a same-size torus visits the
        // same routers: non-wrap links are identical in both fabrics.
        let m = mesh();
        let t = Torus::new(4, 4);
        let r = SourceRoute::dimension_order(m, NodeId(1), NodeId(14)).unwrap();
        assert_eq!(r.routers(m), r.routers(t));
    }

    #[test]
    #[should_panic(expected = "Core turn only allowed at the destination")]
    fn early_core_rejected() {
        let _ = SourceRoute::new(NodeId(0), Direction::East, vec![Turn::Core, Turn::Core]);
    }
}
