//! Arbiters for switch allocation.
//!
//! The baseline and SMART routers use round-robin arbitration at each
//! crossbar output port (and a round-robin pick among ready VCs at each
//! input port), matching the paper's "state-of-the-art" 3-stage router.

/// A round-robin arbiter over `n` requesters with a rotating priority
/// pointer: the winner becomes lowest priority for the next grant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobin {
    n: usize,
    /// Index with highest priority next time.
    next: usize,
    /// Grants issued (for activity accounting).
    grants: u64,
}

impl RoundRobin {
    /// Arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobin {
            n,
            next: 0,
            grants: 0,
        }
    }

    /// Number of requesters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the arbiter has zero requesters (impossible through
    /// [`RoundRobin::new`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grant one of the asserted `requests`, rotating priority past the
    /// winner. Returns `None` if nothing is requesting.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter width.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requests[i] {
                self.next = (i + 1) % self.n;
                self.grants += 1;
                return Some(i);
            }
        }
        None
    }

    /// Grant one of the requesters asserted in the `requests` bitmask
    /// (bit `i` = requester `i`), rotating priority past the winner —
    /// the same decision [`RoundRobin::grant`] makes on a bool slice,
    /// without scanning idle requesters. Returns `None` if nothing is
    /// requesting.
    ///
    /// # Panics
    ///
    /// Panics if the arbiter is wider than 64 requesters or a bit at or
    /// above the width is set.
    pub fn grant_mask(&mut self, requests: u64) -> Option<usize> {
        assert!(self.n <= 64, "mask grant supports at most 64 requesters");
        assert!(
            self.n == 64 || requests >> self.n == 0,
            "request bit beyond arbiter width"
        );
        if requests == 0 {
            return None;
        }
        // First set bit at or after `next`, wrapping at the width.
        let above = requests >> self.next;
        let i = if above != 0 {
            self.next + above.trailing_zeros() as usize
        } else {
            requests.trailing_zeros() as usize
        };
        self.next = (i + 1) % self.n;
        self.grants += 1;
        Some(i)
    }

    /// Total grants issued so far.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_rotate_fairly() {
        let mut arb = RoundRobin::new(3);
        let all = [true, true, true];
        let seq: Vec<usize> = (0..6).filter_map(|_| arb.grant(&all)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(arb.grants(), 6);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut arb = RoundRobin::new(4);
        assert_eq!(arb.grant(&[false, false, true, false]), Some(2));
        // Priority moved past 2.
        assert_eq!(arb.grant(&[true, false, true, false]), Some(0));
        assert_eq!(arb.grant(&[true, false, true, false]), Some(2));
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = RoundRobin::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
        assert_eq!(arb.grants(), 0);
    }

    #[test]
    fn single_requester_always_wins() {
        let mut arb = RoundRobin::new(1);
        for _ in 0..3 {
            assert_eq!(arb.grant(&[true]), Some(0));
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut arb = RoundRobin::new(2);
        let _ = arb.grant(&[true]);
    }

    #[test]
    fn mask_grant_matches_slice_grant() {
        // Exhaustive agreement on a 6-wide arbiter across every request
        // pattern, applied to both arbiters in lockstep.
        let mut a = RoundRobin::new(6);
        let mut b = RoundRobin::new(6);
        for mask in 0u64..64 {
            let slice: Vec<bool> = (0..6).map(|i| mask & (1 << i) != 0).collect();
            assert_eq!(a.grant(&slice), b.grant_mask(mask), "mask {mask:#b}");
        }
        assert_eq!(a.grants(), b.grants());
    }

    #[test]
    #[should_panic(expected = "beyond arbiter width")]
    fn mask_bit_beyond_width_panics() {
        let mut arb = RoundRobin::new(3);
        let _ = arb.grant_mask(0b1000);
    }

    #[test]
    fn starvation_freedom_under_contention() {
        // Two hot requesters: both must be served equally over time.
        let mut arb = RoundRobin::new(2);
        let mut counts = [0u32; 2];
        for _ in 0..100 {
            let g = arb.grant(&[true, true]).expect("someone requests");
            counts[g] += 1;
        }
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
    }
}
