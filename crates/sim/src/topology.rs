//! Mesh topology: node coordinates, ports and links.
//!
//! The paper's SoC is a k×k 2D mesh of 1 mm tiles (Table II: 4×4), with
//! five router ports: the four compass neighbours and the local core
//! (NIC). Nodes are numbered row-major from the bottom-left, matching the
//! paper's figures:
//!
//! ```text
//! 12 13 14 15
//!  8  9 10 11
//!  4  5  6  7
//!  0  1  2  3
//! ```

use std::fmt;

/// Identifies a node (router + core tile) in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// (x, y) position of a node; x grows east, y grows north.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Coord {
    /// Column, 0 at the west edge.
    pub x: u16,
    /// Row, 0 at the south edge.
    pub y: u16,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Router ports per node (4 compass + core). Every flat per-port array
/// in the engine — router-bank state, link guards, credit tables — is
/// indexed `node * PORTS + direction`, so the constant lives here next
/// to [`Direction`] as the single source of truth.
pub const PORTS: usize = 5;

/// A router port direction. `Core` is the local NIC port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Toward larger x.
    East,
    /// Toward smaller y.
    South,
    /// Toward smaller x.
    West,
    /// Toward larger y.
    North,
    /// The local core / NIC.
    Core,
}

impl Direction {
    /// All five port directions, in the paper's E/S/W/N/C order.
    pub const ALL: [Direction; 5] = [
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::North,
        Direction::Core,
    ];

    /// The four mesh directions (no `Core`).
    pub const MESH: [Direction; 4] = [
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::North,
    ];

    /// Port index in the E/S/W/N/C ordering used for crossbar wiring and
    /// preset registers.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::South => 1,
            Direction::West => 2,
            Direction::North => 3,
            Direction::Core => 4,
        }
    }

    /// Inverse of [`Direction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx > 4`.
    #[must_use]
    pub fn from_index(idx: usize) -> Direction {
        Direction::ALL[idx]
    }

    /// The opposite compass direction; `Core` is its own opposite.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::Core => Direction::Core,
        }
    }

    /// Turn relative to travelling direction `self`: the direction that
    /// is `turn` of a flit that entered a router moving along `self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is `Core` (a flit at its source has no travelling
    /// direction; use absolute encoding there) or if `turn` is
    /// [`Turn::Core`] (which maps to `Direction::Core` trivially).
    #[must_use]
    pub fn apply_turn(self, turn: Turn) -> Direction {
        if turn == Turn::Core {
            return Direction::Core;
        }
        assert!(
            self != Direction::Core,
            "relative turns are undefined when travelling on the Core port"
        );
        // Compass order for rotation: E -> S -> W -> N -> E is a
        // clockwise... East turning right is South; South turning right
        // is West; West->North; North->East. That matches index+1 mod 4.
        let i = self.index();
        match turn {
            Turn::Straight => self,
            Turn::Right => Direction::from_index((i + 1) % 4),
            Turn::Left => Direction::from_index((i + 3) % 4),
            Turn::Core => unreachable!("handled above"),
        }
    }

    /// The turn a flit travelling along `self` must take to leave along
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is `Core`, or if `out` is the reverse of `self`
    /// (U-turns are not representable in the paper's 2-bit encoding).
    #[must_use]
    pub fn turn_to(self, out: Direction) -> Turn {
        if out == Direction::Core {
            return Turn::Core;
        }
        assert!(self != Direction::Core, "no travelling direction at source");
        let d = (out.index() + 4 - self.index()) % 4;
        match d {
            0 => Turn::Straight,
            1 => Turn::Right,
            3 => Turn::Left,
            _ => panic!("u-turn from {self:?} to {out:?} is not encodable"),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::North => "N",
            Direction::Core => "C",
        };
        f.write_str(s)
    }
}

/// Relative output selection at a non-source router (the paper's 2-bit
/// route field: Left / Right / Straight / Core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Turn {
    /// Continue in the travelling direction.
    Straight,
    /// Turn left relative to travel.
    Left,
    /// Turn right relative to travel.
    Right,
    /// Eject to the local core.
    Core,
}

impl Turn {
    /// 2-bit encoding (L=0, R=1, S=2, C=3 — the paper's field order
    /// "Left, Right, Straight and Core").
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Turn::Left => 0,
            Turn::Right => 1,
            Turn::Straight => 2,
            Turn::Core => 3,
        }
    }

    /// Inverse of [`Turn::bits`].
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    #[must_use]
    pub fn from_bits(bits: u32) -> Turn {
        match bits {
            0 => Turn::Left,
            1 => Turn::Right,
            2 => Turn::Straight,
            3 => Turn::Core,
            _ => panic!("turn encoding is 2 bits, got {bits}"),
        }
    }
}

/// A directed router-to-router (or router-to-NIC) link: the `dir` output
/// of router `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Router whose output port this is.
    pub from: NodeId,
    /// Output direction.
    pub dir: Direction,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.from, self.dir)
    }
}

/// A k×k (or rectangular) 2D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// A `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        Mesh { width, height }
    }

    /// The paper's 4×4 evaluation mesh.
    #[must_use]
    pub fn paper_4x4() -> Self {
        Mesh::new(4, 4)
    }

    /// Mesh width (columns).
    #[must_use]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    #[must_use]
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    #[must_use]
    pub fn len(self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// `true` only for the degenerate 0-node mesh (unreachable through
    /// [`Mesh::new`]); present for API completeness.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Iterate over all node ids, row-major from the bottom-left.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId)
    }

    /// Coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(
            (node.0 as usize) < self.len(),
            "{node} outside {}x{} mesh",
            self.width,
            self.height
        );
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Node at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn node_at(self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width && c.y < self.height,
            "{c} outside {}x{} mesh",
            self.width,
            self.height
        );
        NodeId(c.y * self.width + c.x)
    }

    /// Neighbour of `node` in compass direction `dir`, if it exists.
    ///
    /// Returns `None` at mesh edges and for `dir == Core`.
    #[must_use]
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let next = match dir {
            Direction::East if c.x + 1 < self.width => Coord { x: c.x + 1, y: c.y },
            Direction::West if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            Direction::North if c.y + 1 < self.height => Coord { x: c.x, y: c.y + 1 },
            Direction::South if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            _ => return None,
        };
        Some(self.node_at(next))
    }

    /// Number of mesh neighbours of `node` (2 at corners, 3 at edges, 4
    /// inside) — NMAP seeds the highest-traffic task at the node with the
    /// most neighbours.
    #[must_use]
    pub fn degree(self, node: NodeId) -> usize {
        Direction::MESH
            .iter()
            .filter(|d| self.neighbor(node, **d).is_some())
            .count()
    }

    /// Manhattan (minimal hop) distance between two nodes.
    #[must_use]
    pub fn manhattan(self, a: NodeId, b: NodeId) -> u16 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// All directed router-to-router links.
    pub fn links(self) -> impl Iterator<Item = LinkId> {
        self.nodes().flat_map(move |n| {
            Direction::MESH
                .iter()
                .filter(move |d| self.neighbor(n, **d).is_some())
                .map(move |d| LinkId { from: n, dir: *d })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_numbering() {
        let m = Mesh::paper_4x4();
        assert_eq!(m.len(), 16);
        assert_eq!(m.coord(NodeId(0)), Coord { x: 0, y: 0 });
        assert_eq!(m.coord(NodeId(3)), Coord { x: 3, y: 0 });
        assert_eq!(m.coord(NodeId(12)), Coord { x: 0, y: 3 });
        assert_eq!(m.node_at(Coord { x: 2, y: 2 }), NodeId(10));
    }

    #[test]
    fn neighbors_and_edges() {
        let m = Mesh::paper_4x4();
        assert_eq!(m.neighbor(NodeId(5), Direction::East), Some(NodeId(6)));
        assert_eq!(m.neighbor(NodeId(5), Direction::North), Some(NodeId(9)));
        assert_eq!(m.neighbor(NodeId(5), Direction::South), Some(NodeId(1)));
        assert_eq!(m.neighbor(NodeId(5), Direction::West), Some(NodeId(4)));
        assert_eq!(m.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::South), None);
        assert_eq!(m.neighbor(NodeId(15), Direction::East), None);
        assert_eq!(m.neighbor(NodeId(3), Direction::Core), None);
    }

    #[test]
    fn degree_identifies_mesh_center() {
        let m = Mesh::paper_4x4();
        assert_eq!(m.degree(NodeId(0)), 2);
        assert_eq!(m.degree(NodeId(1)), 3);
        assert_eq!(m.degree(NodeId(5)), 4);
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh::paper_4x4();
        assert_eq!(m.manhattan(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.manhattan(NodeId(9), NodeId(10)), 1);
        assert_eq!(m.manhattan(NodeId(7), NodeId(7)), 0);
    }

    #[test]
    fn link_count_is_2_times_internal_edges() {
        // 4x4 mesh: 2 · (3·4 + 3·4) = 48 directed links.
        let m = Mesh::paper_4x4();
        assert_eq!(m.links().count(), 48);
    }

    #[test]
    fn direction_indexing_round_trips() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn opposites() {
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::Core.opposite(), Direction::Core);
    }

    #[test]
    fn turns_compose_correctly() {
        use Direction::*;
        // Travelling East: straight keeps East, right goes South, left
        // goes North.
        assert_eq!(East.apply_turn(Turn::Straight), East);
        assert_eq!(East.apply_turn(Turn::Right), South);
        assert_eq!(East.apply_turn(Turn::Left), North);
        assert_eq!(North.apply_turn(Turn::Right), East);
        assert_eq!(South.apply_turn(Turn::Left), East);
        // And turn_to inverts apply_turn.
        for travel in [East, South, West, North] {
            for turn in [Turn::Straight, Turn::Left, Turn::Right] {
                let out = travel.apply_turn(turn);
                assert_eq!(travel.turn_to(out), turn);
            }
            assert_eq!(travel.turn_to(Core), Turn::Core);
        }
    }

    #[test]
    #[should_panic(expected = "u-turn")]
    fn u_turn_is_not_encodable() {
        let _ = Direction::East.turn_to(Direction::West);
    }

    #[test]
    fn turn_bit_encoding_round_trips() {
        for t in [Turn::Left, Turn::Right, Turn::Straight, Turn::Core] {
            assert_eq!(Turn::from_bits(t.bits()), t);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coord_bounds_checked() {
        let m = Mesh::new(2, 2);
        let _ = m.coord(NodeId(4));
    }

    #[test]
    fn rectangular_meshes_work() {
        let m = Mesh::new(8, 2);
        assert_eq!(m.len(), 16);
        assert_eq!(m.coord(NodeId(9)), Coord { x: 1, y: 1 });
        assert_eq!(m.neighbor(NodeId(9), Direction::North), None);
    }
}
